"""The runner's unit of work: one picklable, deterministic measurement.

A :class:`Cell` fully describes one goodput measurement -- the platform
(as a serializable :class:`PlatformSpec` rather than a live network),
the measurement window, and the optional attack (a single
:class:`~repro.core.attack.PulseTrain` or a distributed
:class:`DeploymentSpec`).  :func:`execute_cell` is the pure executor:
it rebuilds the scenario from scratch, seeds it from the spec, and
measures -- so the same cell yields bit-identical results whether it
runs inline, in a worker process, or is replayed from the cache.

Warm-start grouping: every cell's execution begins with an attack-free
warm-up that depends only on the platform, the warm-up length, and the
(passive) conformance-detector setting -- :func:`warmup_key` captures
exactly that identity.  :func:`execute_cell_group` runs a batch of
same-key cells by simulating the shared prefix once, freezing it with
:class:`~repro.sim.checkpoint.NetworkSnapshot`, and measuring every
cell on a bit-identical fork.  ``execute_cell(cell)`` and a grouped run
of the same cell produce byte-for-byte equal :class:`CellResult`\\ s.
"""

from __future__ import annotations

import dataclasses
import json
import time
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.core.attack import PulseTrain
from repro.sim.convergence import ConvergenceConfig, GoodputConvergenceMonitor
from repro.sim.tcp import TCPConfig
from repro.sim.topology import (
    QUEUE_FACTORIES,
    DumbbellConfig,
    ParkingLotConfig,
    build_dumbbell,
    build_parking_lot,
)
from repro.testbed.dummynet import TestbedConfig, build_testbed
from repro.util.errors import ValidationError
from repro.util.validate import check_non_negative, check_positive

__all__ = ["PlatformSpec", "DeploymentSpec", "Cell", "CellResult",
           "CellOutcome", "GroupResult", "execute_cell",
           "execute_cell_group", "iter_cell_group", "goodput_rate",
           "measured_seconds", "warmup_key"]


def _tcp_payload(tcp: Optional[TCPConfig]) -> Optional[dict]:
    if tcp is None:
        return None
    payload = dataclasses.asdict(tcp)
    payload["variant"] = tcp.variant.value
    return payload


def _train_payload(train: Optional[PulseTrain]) -> Optional[dict]:
    if train is None:
        return None
    return {
        "extents": list(train.extents),
        "rates_bps": list(train.rates_bps),
        "spaces": list(train.spaces),
    }


@dataclasses.dataclass(frozen=True)
class PlatformSpec:
    """A serializable description of one measurement environment.

    Attributes:
        kind: ``"dumbbell"`` (the ns-2-style topology of Figs. 6-10),
            ``"testbed"`` (the Dummynet emulation of Fig. 12), or
            ``"parking_lot"`` (the N-bottleneck chain of the
            multi-bottleneck experiment).
        n_flows: victim TCP flow count (the *long* flows on the
            parking lot).
        seed: the scenario seed (flow-start jitter, RED coin flips).
        queue: bottleneck discipline name (dumbbell / parking lot);
            one of :data:`repro.sim.topology.QUEUE_FACTORIES`.
        use_red: RED vs drop-tail pipe (testbed only).
        tcp: the victim stack; ``None`` selects the platform's stock
            configuration.
        extra: additional :class:`~repro.sim.topology.ParkingLotConfig`
            fields as a tuple of ``(name, value)`` pairs (parking lot
            only) -- e.g. ``(("n_segments", 3), ("attack_segments",
            (0, 1)))``.  A tuple rather than a dict keeps the spec
            hashable; ``None`` (the default) keeps dumbbell/testbed
            specs byte-identical to their historical cache identity.
    """

    kind: str
    n_flows: int
    seed: int
    queue: str = "red"
    use_red: bool = True
    tcp: Optional[TCPConfig] = None
    extra: Optional[Tuple[Tuple[str, object], ...]] = None

    def __post_init__(self) -> None:
        if self.kind not in ("dumbbell", "testbed", "parking_lot"):
            raise ValidationError(
                f"kind must be 'dumbbell', 'testbed', or 'parking_lot', "
                f"got {self.kind!r}"
            )
        if self.kind != "testbed" and self.queue not in QUEUE_FACTORIES:
            raise ValidationError(
                f"queue must be one of {sorted(QUEUE_FACTORIES)}, "
                f"got {self.queue!r}"
            )
        if self.extra is not None and self.kind != "parking_lot":
            raise ValidationError(
                "extra platform fields apply to the parking lot only"
            )
        if self.n_flows < 1:
            raise ValidationError(f"n_flows must be >= 1, got {self.n_flows}")

    # ------------------------------------------------------------------
    def _extra_kwargs(self) -> dict:
        """``extra`` as keyword arguments (sequence fields re-tupled)."""
        kwargs = dict(self.extra or ())
        for key in ("attack_segments", "segment_rates_bps"):
            if key in kwargs:
                kwargs[key] = tuple(kwargs[key])
        return kwargs

    def to_config(self):
        """The platform's config dataclass (frozen, picklable)."""
        if self.kind == "dumbbell":
            return DumbbellConfig(
                n_flows=self.n_flows,
                queue_factory=QUEUE_FACTORIES[self.queue],
                tcp=self.tcp if self.tcp is not None else TCPConfig(),
                seed=self.seed,
            )
        if self.kind == "parking_lot":
            return ParkingLotConfig(
                long_flows=self.n_flows,
                queue_factory=QUEUE_FACTORIES[self.queue],
                tcp=self.tcp if self.tcp is not None else TCPConfig(),
                seed=self.seed,
                **self._extra_kwargs(),
            )
        config = TestbedConfig(
            n_flows=self.n_flows, use_red=self.use_red, seed=self.seed,
        )
        if self.tcp is not None:
            config = dataclasses.replace(config, tcp=self.tcp)
        return config

    def build(self):
        """A freshly built, unstarted network for this spec."""
        if self.kind == "dumbbell":
            return build_dumbbell(self.to_config())
        if self.kind == "parking_lot":
            return build_parking_lot(self.to_config())
        return build_testbed(self.to_config())

    def describe(self) -> dict:
        """A JSON-serializable identity (feeds the cache key)."""
        payload = {
            "kind": self.kind,
            "n_flows": self.n_flows,
            "seed": self.seed,
            "tcp": _tcp_payload(self.tcp),
        }
        if self.kind == "dumbbell":
            payload["queue"] = self.queue
        elif self.kind == "parking_lot":
            payload["queue"] = self.queue
            payload["extra"] = [
                [name, list(value) if isinstance(value, tuple) else value]
                for name, value in (self.extra or ())
            ]
        else:
            payload["use_red"] = self.use_red
        return payload


@dataclasses.dataclass(frozen=True)
class DeploymentSpec:
    """A distributed attack as (train, start-offset) pairs per source.

    Duck-compatible with
    :class:`~repro.core.distributed.DistributedAttack` where launching
    is concerned (``trains`` / ``offsets``), but picklable-by-value and
    serializable for cache keys.
    """

    trains: Tuple[PulseTrain, ...]
    offsets: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.trains) != len(self.offsets):
            raise ValidationError(
                f"got {len(self.trains)} trains but {len(self.offsets)} offsets"
            )
        if not self.trains:
            raise ValidationError("a deployment needs at least one source")

    @classmethod
    def from_attack(cls, attack) -> "DeploymentSpec":
        """Adapt a :class:`~repro.core.distributed.DistributedAttack`."""
        return cls(
            trains=tuple(attack.trains),
            offsets=tuple(float(offset) for offset in attack.offsets),
        )

    def describe(self) -> list:
        return [
            {"train": _train_payload(train), "offset": offset}
            for train, offset in zip(self.trains, self.offsets)
        ]


@dataclasses.dataclass(frozen=True)
class Cell:
    """One independent goodput measurement.

    Attributes:
        platform: the environment to rebuild.
        warmup: seconds of attack-free warm-up before the window opens.
        window: measurement window length, seconds.
        train: single-source pulse train starting at ``warmup`` (or
            ``None`` for the no-attack baseline).
        deployment: multi-source attack (mutually exclusive with
            ``train``; dumbbell platforms only).
        rate_floor_bps: when set, a per-flow conformance detector with
            this rate floor observes the bottleneck and the result
            reports how many attack sources it flagged (dumbbell only;
            the detector is passive, so goodput is unaffected).
        early_exit: when set, a convergence monitor may end the window
            early once the goodput rate estimate stabilizes (the result
            then carries ``converged_at``).  Early-exit cells serialize
            the config into their identity, so they can never share a
            cache entry with an exact full-window cell.
        backend: ``"packet"`` (the exact event-driven engine, default)
            or ``"fluid"`` (the ODE model of :mod:`repro.sim.fluid` --
            milliseconds per cell, γ-landscape accuracy only).  The
            backend is part of :meth:`describe`, so fluid and packet
            results can never collide in the cache.
        fluid_max_step: integration step-size cap for fluid cells, or
            ``None`` for the backend default
            (:data:`repro.sim.fluid.DEFAULT_MAX_STEP`).  Coarser steps
            trade per-cell fidelity for speed -- the planner pre-pass
            uses one because it only needs the γ landscape's shape.
            Part of the cell identity, so results integrated at
            different resolutions never share a cache entry.
    """

    platform: PlatformSpec
    warmup: float
    window: float
    train: Optional[PulseTrain] = None
    deployment: Optional[DeploymentSpec] = None
    rate_floor_bps: Optional[float] = None
    early_exit: Optional[ConvergenceConfig] = None
    backend: str = "packet"
    fluid_max_step: Optional[float] = None

    def __post_init__(self) -> None:
        check_non_negative("warmup", self.warmup)
        check_positive("window", self.window)
        if self.train is not None and self.deployment is not None:
            raise ValidationError(
                "a cell takes a single train or a deployment, not both"
            )
        if self.platform.kind != "dumbbell" and (
            self.deployment is not None or self.rate_floor_bps is not None
        ):
            raise ValidationError(
                "deployments and conformance detection require the "
                "dumbbell platform"
            )
        if self.rate_floor_bps is not None:
            check_positive("rate_floor_bps", self.rate_floor_bps)
        if self.backend not in ("packet", "fluid"):
            raise ValidationError(
                f"backend must be 'packet' or 'fluid', got {self.backend!r}"
            )
        if self.backend == "fluid" and self.platform.kind == "parking_lot":
            raise ValidationError(
                "the fluid model covers single-bottleneck platforms; "
                "parking-lot cells run on the packet backend"
            )
        if self.backend == "fluid" and self.rate_floor_bps is not None:
            raise ValidationError(
                "conformance detection is packet-level; fluid cells "
                "cannot carry a rate floor"
            )
        if self.backend == "fluid" and self.early_exit is not None:
            raise ValidationError(
                "the fluid backend integrates the full window in "
                "milliseconds; early exit applies to packet cells only"
            )
        if self.fluid_max_step is not None:
            if self.backend != "fluid":
                raise ValidationError(
                    "fluid_max_step only applies to fluid cells"
                )
            check_positive("fluid_max_step", self.fluid_max_step)

    def describe(self) -> dict:
        """A JSON-serializable identity (feeds the cache key)."""
        payload = {
            "platform": self.platform.describe(),
            "warmup": self.warmup,
            "window": self.window,
            "train": _train_payload(self.train),
            "deployment": (
                None if self.deployment is None else self.deployment.describe()
            ),
            "rate_floor_bps": self.rate_floor_bps,
        }
        # Conditional so exact cells keep their historical identity (and
        # cache keys) byte for byte; early-exit cells hash differently.
        if self.early_exit is not None:
            payload["early_exit"] = self.early_exit.describe()
        # Same pattern: default packet cells keep their existing keys,
        # fluid cells can never collide with them.
        if self.backend != "packet":
            payload["backend"] = self.backend
        if self.fluid_max_step is not None:
            payload["fluid_max_step"] = self.fluid_max_step
        return payload


@dataclasses.dataclass(frozen=True)
class CellResult:
    """What a cell measures.

    Attributes:
        goodput_bytes: payload bytes delivered in the window.
        flagged_sources: attack sources the conformance detector
            flagged, or ``None`` when no detector was requested.
        converged_at: simulation time at which a convergence early-exit
            ended the window, or ``None`` for a full-horizon run.  When
            set, ``goodput_bytes`` covers only
            ``[warmup, converged_at]`` -- compare via
            :func:`goodput_rate`, never raw bytes.
    """

    goodput_bytes: float
    flagged_sources: Optional[int] = None
    converged_at: Optional[float] = None


def measured_seconds(cell: Cell, result: CellResult) -> float:
    """How much of the window *result* actually covers, in seconds."""
    if result.converged_at is not None:
        return result.converged_at - cell.warmup
    return cell.window


def goodput_rate(cell: Cell, result: CellResult) -> float:
    """Goodput normalized to bytes/second over the measured span.

    For full-horizon results this is ``goodput_bytes / window``; for
    early-exited results the divisor is the truncated span, so exact and
    fast measurements of the same scenario are comparable.
    """
    return result.goodput_bytes / measured_seconds(cell, result)


def warmup_key(cell: Cell) -> str:
    """The identity of a cell's attack-free warm-up prefix.

    Two cells with equal keys simulate byte-for-byte identical state up
    to ``t = warmup``: same platform (topology, seeds, stack), same
    warm-up length, and the same conformance-detector attachment (the
    detector is passive, but it *observes* warm-up traffic, so its
    setting is part of the prefix).  The attack train/deployment and the
    window length deliberately do not appear -- they only act after the
    prefix ends.
    """
    payload = {
        "platform": cell.platform.describe(),
        "warmup": cell.warmup,
        "rate_floor_bps": cell.rate_floor_bps,
    }
    # Fluid cells never share a snapshot with packet cells (there is no
    # packet-level network to fork); conditional for key stability.
    if cell.backend != "packet":
        payload["backend"] = cell.backend
    return json.dumps(payload, sort_keys=True)


def _build_warm(cell: Cell):
    """Build the cell's scenario and simulate its attack-free warm-up.

    Returns ``(net, detector)`` with the simulation clock at
    ``cell.warmup``; the result depends only on :func:`warmup_key`.
    """
    net = cell.platform.build()
    detector = None
    if cell.rate_floor_bps is not None:
        from repro.detection.feature import ConformanceDetector

        detector = ConformanceDetector(min_rate_bps=cell.rate_floor_bps)
        net.bottleneck.monitors.append(detector.observe_forward)
        net.reverse_bottleneck.monitors.append(detector.observe_reverse)

    net.start_flows()
    net.run(until=cell.warmup)
    return net, detector


def _make_recorder(cell: Cell, record: bool):
    """A fresh :class:`~repro.obs.recorder.FlightRecorder`, or ``None``.

    Fluid cells have no packet-level dynamics to record, so only packet
    cells get one.  Imported lazily: the default (unrecorded) executor
    never loads the obs recorder module.
    """
    if not record or cell.backend != "packet":
        return None
    from repro.obs.recorder import FlightRecorder

    return FlightRecorder()


def _measure_warmed(net, detector, cell: Cell, recorder=None) -> CellResult:
    """Apply the cell's attack to a warmed network and measure.

    An optional flight *recorder* is attached first -- purely passive
    taps (link monitors, sender telemetry pointers, an engine post-run
    hook), so the measured result is bit-identical with or without it.
    Attachment happens here, after any warm-start fork, because taps
    must never ride through a snapshot deep copy.
    """
    before = net.aggregate_goodput_bytes()
    if recorder is not None:
        recorder.attach(net, horizon=cell.warmup + cell.window)

    attack_flow_ids: List[int] = []
    if cell.deployment is not None:
        sources = net.launch_distributed(
            cell.deployment, start_time=cell.warmup,
        )
        attack_flow_ids = [source.flow_id for source in sources]
    elif cell.train is not None:
        source = net.add_attack(cell.train, start_time=cell.warmup)
        source.start()
        attack_flow_ids = [source.flow_id]

    monitor = None
    if cell.early_exit is not None:
        monitor = GoodputConvergenceMonitor(
            net.sim, net.aggregate_goodput_bytes, cell.early_exit,
        )
        monitor.arm(start=cell.warmup, horizon=cell.warmup + cell.window)

    net.run(until=cell.warmup + cell.window)
    goodput = net.aggregate_goodput_bytes() - before

    flagged = None
    if detector is not None:
        flagged = sum(
            1 for flow_id in attack_flow_ids if detector.is_flagged(flow_id)
        )
    return CellResult(
        goodput_bytes=goodput,
        flagged_sources=flagged,
        converged_at=monitor.converged_at if monitor is not None else None,
    )


def _execute_fluid(cell: Cell) -> CellResult:
    """Run one measurement on the fluid (ODE) backend."""
    # Imported lazily so the default packet path never loads the fluid
    # module (keeps the packet executor's import set, and its
    # determinism envelope, untouched).
    from repro.sim.fluid import scenario_from_config, simulate_fluid

    if cell.deployment is not None:
        sources = tuple(zip(cell.deployment.trains, cell.deployment.offsets))
    elif cell.train is not None:
        sources = ((cell.train, 0.0),)
    else:
        sources = ()
    kwargs = {}
    if cell.fluid_max_step is not None:
        kwargs["max_step"] = cell.fluid_max_step
    result = simulate_fluid(
        scenario_from_config(cell.platform.to_config()),
        warmup=cell.warmup,
        window=cell.window,
        sources=sources,
        **kwargs,
    )
    return CellResult(goodput_bytes=result.goodput_bytes)


def execute_cell(cell: Cell, recorder=None) -> CellResult:
    """Run one measurement from scratch (pure: spec in, result out).

    An optional :class:`~repro.obs.recorder.FlightRecorder` captures
    the cell's in-sim time series (packet cells only); harvest it after
    this returns.  The result is bit-identical either way.
    """
    if cell.backend == "fluid":
        return _execute_fluid(cell)
    net, detector = _build_warm(cell)
    return _measure_warmed(net, detector, cell, recorder=recorder)


@dataclasses.dataclass(frozen=True)
class GroupResult:
    """What :func:`execute_cell_group` produced, plus its economics.

    Attributes:
        results: one :class:`CellResult` per input cell, in order.
        elapsed: wall-clock seconds per cell.  The shared warm-up (and
            the snapshot) is attributed to the first cell, which
            actually paid for it, so ``sum(elapsed)`` is the group's
            total execution time.
        warmup_sims: warm-up prefixes simulated from scratch (1 here;
            the runner sums across groups).
        warm_starts: cells measured on a snapshot fork instead of
            re-simulating their warm-up.
        warmup_seconds_saved: *simulated* seconds avoided -- the sum of
            the forked cells' warm-up lengths.
        series: one flight-recorder capture per cell (a tuple of
            :class:`~repro.obs.recorder.Series`, or ``None`` when the
            cell was not recorded).  Empty when recording was off --
            the default -- so unrecorded group results pickle exactly
            as before.
        worker: execution-placement attribution (``host:pid`` of the
            process that measured the group), or ``None`` when unknown.
            Pure provenance -- never part of any cache key or result
            comparison.
    """

    results: Tuple[CellResult, ...]
    elapsed: Tuple[float, ...]
    warmup_sims: int
    warm_starts: int
    warmup_seconds_saved: float
    series: Tuple[Optional[tuple], ...] = ()
    worker: Optional[str] = None


@dataclasses.dataclass(frozen=True)
class CellOutcome:
    """One streamed result from :func:`iter_cell_group`.

    Attributes:
        index: the cell's position in the input sequence.
        result: the measurement (bit-identical to :func:`execute_cell`).
        elapsed: wall-clock seconds this cell took.  The shared warm-up
            is attributed to the outcome that paid for it.
        warm: the cell was measured on a snapshot fork instead of
            re-simulating its warm-up.
        warmed_up: this outcome simulated the group's attack-free
            warm-up prefix from scratch (at most one per packet group;
            never set for fluid cells, which have no prefix to share).
        series: the cell's harvested flight-recorder capture, or
            ``None`` when recording was off (or the backend is fluid).
    """

    index: int
    result: CellResult
    elapsed: float
    warm: bool
    warmed_up: bool
    series: Optional[tuple] = None


def iter_cell_group(cells: Sequence[Cell], *,
                    record: bool = False) -> Iterator[CellOutcome]:
    """Stream a warm-start group's measurements one cell at a time.

    The incremental core of :func:`execute_cell_group`: all cells must
    agree on :func:`warmup_key` (enforced before the first result).
    The prefix is simulated once; the first cell is measured on that
    very network (no copy), every later cell on a private
    :class:`~repro.sim.checkpoint.NetworkSnapshot` fork.  Each finished
    cell is yielded immediately as a :class:`CellOutcome`, in input
    order, so a consumer (the execution fabric's workers) can persist
    or stream results while the rest of the group is still running.
    Results are bit-identical to calling :func:`execute_cell` per cell.
    """
    if not cells:
        return
    first = cells[0]
    key = warmup_key(first)
    for cell in cells[1:]:
        if warmup_key(cell) != key:
            raise ValidationError(
                "execute_cell_group: cells must share a warmup prefix "
                f"(expected {key}, got {warmup_key(cell)})"
            )

    if first.backend == "fluid":
        # Fluid cells have no packet network to snapshot, and each one
        # integrates in milliseconds -- just run them back to back.
        for index, cell in enumerate(cells):
            started = time.perf_counter()
            result = execute_cell(cell)
            yield CellOutcome(index, result, time.perf_counter() - started,
                              warm=False, warmed_up=False)
        return

    def _harvest(recorder):
        return None if recorder is None else recorder.harvest()

    started = time.perf_counter()
    net, detector = _build_warm(first)
    if len(cells) == 1:
        recorder = _make_recorder(first, record)
        result = _measure_warmed(net, detector, first, recorder=recorder)
        yield CellOutcome(0, result, time.perf_counter() - started,
                          warm=False, warmed_up=True,
                          series=_harvest(recorder))
        return

    from repro.sim.checkpoint import NetworkSnapshot

    # Freeze before measuring the first cell: its attack must not leak
    # into the forks.  The detector rides in the same deep copy so its
    # monitor hooks stay aliased to the (copied) links.  Flight
    # recorders attach strictly after this freeze, for the same reason.
    snapshot = NetworkSnapshot(net, detector)
    recorder = _make_recorder(first, record)
    result = _measure_warmed(net, detector, first, recorder=recorder)
    yield CellOutcome(0, result, time.perf_counter() - started,
                      warm=False, warmed_up=True, series=_harvest(recorder))
    for index, cell in enumerate(cells[1:], start=1):
        forked = time.perf_counter()
        fork_net, (fork_detector,) = snapshot.fork()
        recorder = _make_recorder(cell, record)
        result = _measure_warmed(fork_net, fork_detector, cell,
                                 recorder=recorder)
        yield CellOutcome(index, result, time.perf_counter() - forked,
                          warm=True, warmed_up=False,
                          series=_harvest(recorder))


def execute_cell_group(cells: Sequence[Cell], *,
                       record: bool = False) -> GroupResult:
    """Run cells sharing one warm-up prefix: simulate it once, fork the rest.

    The batch wrapper over :func:`iter_cell_group`: drains the stream
    and folds the outcomes into one :class:`GroupResult` with the
    group's warm-start economics.  Results are bit-identical to calling
    :func:`execute_cell` per cell.

    With ``record=True`` every packet cell gets a private flight
    recorder whose harvested series ride back in
    :attr:`GroupResult.series`.  Recorders attach only after the
    snapshot fork (taps never leak between cells or into the frozen
    prefix), so recorded results stay bit-identical to unrecorded ones.
    """
    outcomes = list(iter_cell_group(cells, record=record))
    saved = sum(cells[o.index].warmup for o in outcomes if o.warm)
    return GroupResult(
        results=tuple(o.result for o in outcomes),
        elapsed=tuple(o.elapsed for o in outcomes),
        warmup_sims=sum(1 for o in outcomes if o.warmed_up),
        warm_starts=sum(1 for o in outcomes if o.warm),
        warmup_seconds_saved=float(saved),
        series=tuple(o.series for o in outcomes) if record else (),
    )
