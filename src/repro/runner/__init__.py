"""Parallel, cached experiment execution.

Every gain figure repeats one deterministic measurement -- build a
scenario, warm it up, measure goodput over a window, with or without an
attack -- across many independent (platform, γ, attack) cells.  This
package turns that structure into throughput:

* :mod:`repro.runner.cells` defines the picklable unit of work
  (:class:`Cell`) and its pure executor;
* :mod:`repro.runner.cache` persists results on disk under a content
  hash of the full scenario plus a code-version fingerprint;
* :mod:`repro.runner.runner` fans cells out across worker processes and
  layers an in-process memo plus the disk cache in front of execution,
  grouping cache misses by shared warm-up prefix so each prefix
  simulates once and every other cell forks from its frozen snapshot.

Cells are deterministic given their spec (every scenario is seeded and
rebuilt from scratch -- or forked from a deterministic warm-up snapshot
-- per measurement), so a cell run serially, in a worker process, warm-
started, or replayed from cache yields bit-identical goodput.
"""

from repro.runner.cache import (
    ResultCache,
    cell_key,
    code_version,
    default_cache_dir,
)
from repro.runner.cells import (
    Cell,
    CellOutcome,
    CellResult,
    DeploymentSpec,
    GroupResult,
    PlatformSpec,
    execute_cell,
    execute_cell_group,
    goodput_rate,
    iter_cell_group,
    measured_seconds,
    warmup_key,
)
from repro.runner.fabric import (
    DEFAULT_LEASE_TTL,
    FabricBroker,
    FabricError,
    LeaseQueue,
    local_worker_id,
    worker_main,
)
from repro.runner.planner import (
    PlannedPoint,
    PlannedSweep,
    PlannerPolicy,
    active_policy,
    fast_mode,
    run_planned_sweep,
)
from repro.runner.runner import (
    CellTiming,
    DryRunPlan,
    ExperimentRunner,
    PlanEntry,
    RunnerStats,
    check_jobs,
    get_default_runner,
    set_default_runner,
)

__all__ = [
    "Cell",
    "CellOutcome",
    "CellResult",
    "CellTiming",
    "DEFAULT_LEASE_TTL",
    "DeploymentSpec",
    "DryRunPlan",
    "ExperimentRunner",
    "FabricBroker",
    "FabricError",
    "GroupResult",
    "LeaseQueue",
    "PlanEntry",
    "PlannedPoint",
    "PlannedSweep",
    "PlannerPolicy",
    "PlatformSpec",
    "ResultCache",
    "RunnerStats",
    "active_policy",
    "cell_key",
    "check_jobs",
    "code_version",
    "default_cache_dir",
    "execute_cell",
    "execute_cell_group",
    "fast_mode",
    "get_default_runner",
    "goodput_rate",
    "iter_cell_group",
    "local_worker_id",
    "measured_seconds",
    "run_planned_sweep",
    "set_default_runner",
    "warmup_key",
    "worker_main",
]
