"""Work-stealing execution fabric: a durable lease queue plus workers.

The single-host runner executes cache-missing cells inline or through a
``ProcessPoolExecutor``.  Both paths push *statically chunked* work at
workers; one slow warm-up group (a straggler) idles every other worker
for the tail of the batch.  The fabric inverts the dispatch: the broker
*materializes* a batch into a durable sqlite **lease queue** and workers
*pull* -- each worker leases the oldest pending group, executes it, and
comes back for more, so fast workers automatically steal the work a
slow (or dead) worker never got to.

Design points, in the order they matter:

* **Steal granularity is a whole warm-start group.**  Tasks sharing a
  :func:`~repro.runner.cells.warmup_key` are enqueued as one group and
  leased as one group, so the shared warm-up prefix simulates exactly
  once per lease wherever the group lands (fork locality).  Stealing
  single cells would re-pay the warm-up per steal.
* **Leases expire; expiry is the crash signal.**  A lease carries a
  deadline; the executing worker heartbeats it forward.  A worker that
  dies (SIGKILL, OOM, lost host) simply stops heartbeating and the
  group re-enters the pending state -- reclaimed inline by the next
  ``lease()`` call or by the broker's poll loop, whichever comes first.
  No daemon, no janitor process.
* **Completion is idempotent.**  Every task is keyed by the cell's
  content hash (:func:`~repro.runner.cache.cell_key`).  Cells are
  deterministic, so if an expired lease's worker turns out to be alive
  (a stall, not a crash) and both it and the stealer finish the same
  task, the two results are bit-identical and the second write is a
  harmless overwrite.  Nothing needs fencing.
* **Results stream back incrementally.**  Workers persist each cell's
  result the moment it exists (mid-group, via
  :func:`~repro.runner.cells.iter_cell_group`), and the broker absorbs
  completed tasks while the batch is still running -- runner statistics
  advance as results land, not at batch barriers.
* **The queue is the only coordination channel.**  Local workers are
  spawned processes; remote workers (``repro worker --queue PATH``)
  need nothing but read/write access to the same sqlite file.  sqlite's
  locking does the rest (WAL + ``BEGIN IMMEDIATE`` claims).

Determinism: execution placement and steal order affect *which process*
runs a cell, never its result -- cells rebuild their scenario from
their spec and results are keyed by content hash, so a fabric run is
bit-identical to the serial path regardless of interleaving.
"""

from __future__ import annotations

import dataclasses
import logging
import os
import pickle
import socket
import sqlite3
import threading
import time
import traceback
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.runner.cells import Cell, iter_cell_group
from repro.util.errors import ReproError, ValidationError

__all__ = [
    "DEFAULT_LEASE_TTL",
    "FabricBatchStats",
    "FabricBroker",
    "FabricError",
    "LeaseQueue",
    "LeasedGroup",
    "local_worker_id",
    "worker_main",
]

_log = logging.getLogger("repro.fabric")

#: Default lease time-to-live, seconds.  Generous relative to heartbeat
#: cadence (ttl/3) so a paging stall is not mistaken for a crash; small
#: enough that a genuinely dead worker's group is stolen promptly.
DEFAULT_LEASE_TTL = 30.0

_PICKLE = pickle.HIGHEST_PROTOCOL


class FabricError(ReproError):
    """A fabric task failed on a worker (the error text rides along)."""


def local_worker_id() -> str:
    """This process's worker identity: ``hostname:pid``."""
    return f"{socket.gethostname()}:{os.getpid()}"


_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS groups (
    group_id       INTEGER PRIMARY KEY,
    batch_id       INTEGER NOT NULL,
    warmup_key     TEXT NOT NULL,
    state          TEXT NOT NULL DEFAULT 'pending',
    worker         TEXT,
    lease_deadline REAL,
    attempts       INTEGER NOT NULL DEFAULT 0
);
CREATE INDEX IF NOT EXISTS groups_by_state ON groups(state, group_id);
CREATE TABLE IF NOT EXISTS tasks (
    task_id     INTEGER PRIMARY KEY,
    group_id    INTEGER NOT NULL REFERENCES groups(group_id),
    batch_id    INTEGER NOT NULL,
    idx         INTEGER NOT NULL,
    key         TEXT NOT NULL,
    cell        BLOB NOT NULL,
    state       TEXT NOT NULL DEFAULT 'pending',
    result      BLOB,
    error       TEXT,
    elapsed     REAL,
    warm        INTEGER,
    worker      TEXT,
    finished_at REAL,
    absorbed    INTEGER NOT NULL DEFAULT 0
);
CREATE INDEX IF NOT EXISTS tasks_by_group ON tasks(group_id, idx);
CREATE INDEX IF NOT EXISTS tasks_by_batch ON tasks(batch_id, state, absorbed);
CREATE INDEX IF NOT EXISTS tasks_by_key ON tasks(key, state);
"""


@dataclasses.dataclass(frozen=True)
class LeasedGroup:
    """One leased warm-start group: the worker's unit of execution.

    ``task_ids``/``keys``/``payloads`` are parallel, ordered by the
    group's original cell order (``idx``), restricted to tasks not yet
    done -- a stolen group re-executes only what its first worker never
    finished persisting.
    """

    group_id: int
    batch_id: int
    warmup_key: str
    attempts: int
    task_ids: Tuple[int, ...]
    keys: Tuple[str, ...]
    payloads: Tuple[bytes, ...]


@dataclasses.dataclass(frozen=True)
class CompletedTask:
    """One finished task row, as the broker absorbs it."""

    task_id: int
    key: str
    result: Optional[bytes]
    error: Optional[str]
    elapsed: Optional[float]
    warm: Optional[bool]
    worker: Optional[str]


class LeaseQueue:
    """The durable sqlite lease queue -- every fabric role opens one.

    One connection per instance, and instances are **not** shareable
    across threads or across ``fork()``: each worker process and each
    heartbeat thread opens its own.  All multi-statement operations run
    under ``BEGIN IMMEDIATE`` so claims are serialized; WAL mode keeps
    readers (the broker's poll) off the writers' lock.
    """

    def __init__(self, path) -> None:
        self.path = str(path)
        self._db = sqlite3.connect(self.path, timeout=30.0,
                                   isolation_level=None)
        self._db.execute("PRAGMA journal_mode=WAL")
        self._db.execute("PRAGMA synchronous=NORMAL")
        self._db.execute("PRAGMA busy_timeout=30000")
        # executescript manages its own transaction (it commits any
        # open one first), so the schema is applied outside _txn().
        self._db.executescript(_SCHEMA)

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _txn(self):
        return _ImmediateTransaction(self._db)

    def close(self) -> None:
        self._db.close()

    # ------------------------------------------------------------------
    # lifecycle state
    # ------------------------------------------------------------------
    def set_state(self, state: str) -> None:
        """Mark the queue ``open`` (accepting work) or ``closed``."""
        if state not in ("open", "closed"):
            raise ValidationError(
                f"queue state must be 'open' or 'closed', got {state!r}"
            )
        with self._txn():
            self._db.execute(
                "INSERT INTO meta (key, value) VALUES ('state', ?) "
                "ON CONFLICT(key) DO UPDATE SET value = excluded.value",
                (state,),
            )

    def is_closed(self) -> bool:
        """Whether the broker declared the queue finished.

        Workers use this as their exit signal: an idle worker on a
        closed queue terminates instead of polling forever.
        """
        row = self._db.execute(
            "SELECT value FROM meta WHERE key = 'state'"
        ).fetchone()
        return row is not None and row[0] == "closed"

    # ------------------------------------------------------------------
    # broker side
    # ------------------------------------------------------------------
    def enqueue_batch(
        self,
        units: Sequence[Tuple[str, Sequence[Tuple[str, bytes]]]],
    ) -> Tuple[int, Dict[str, CompletedTask]]:
        """Materialize one batch; reuse durable results from prior runs.

        *units* is ``[(warmup_key, [(cell_key, payload), ...]), ...]``.
        Tasks whose content key already has a completed, error-free
        result in this queue file (a previous crashed/killed run of the
        same experiment) are **not** re-enqueued -- their results are
        returned in the reuse map instead.  The content key embeds the
        code-version fingerprint, so stale results cannot be reused.
        Groups left empty by reuse are skipped entirely.
        """
        every_key = [key for _, items in units for key, _ in items]
        reused: Dict[str, CompletedTask] = {}
        with self._txn():
            for key in every_key:
                row = self._db.execute(
                    "SELECT task_id, result, elapsed, warm, worker "
                    "FROM tasks WHERE key = ? AND state = 'done' "
                    "AND error IS NULL AND result IS NOT NULL "
                    "ORDER BY finished_at DESC LIMIT 1",
                    (key,),
                ).fetchone()
                if row is not None:
                    reused[key] = CompletedTask(
                        task_id=row[0], key=key, result=row[1], error=None,
                        elapsed=row[2],
                        warm=None if row[3] is None else bool(row[3]),
                        worker=row[4],
                    )
            batch_id = self._next_batch_locked()
            for warmup_key, items in units:
                remaining = [(k, blob) for k, blob in items
                             if k not in reused]
                if not remaining:
                    continue
                cursor = self._db.execute(
                    "INSERT INTO groups (batch_id, warmup_key) VALUES (?, ?)",
                    (batch_id, warmup_key),
                )
                group_id = cursor.lastrowid
                self._db.executemany(
                    "INSERT INTO tasks (group_id, batch_id, idx, key, cell) "
                    "VALUES (?, ?, ?, ?, ?)",
                    [(group_id, batch_id, idx, key, blob)
                     for idx, (key, blob) in enumerate(remaining)],
                )
        return batch_id, reused

    def _next_batch_locked(self) -> int:
        row = self._db.execute(
            "SELECT value FROM meta WHERE key = 'next_batch'"
        ).fetchone()
        batch_id = int(row[0]) if row is not None else 1
        self._db.execute(
            "INSERT INTO meta (key, value) VALUES ('next_batch', ?) "
            "ON CONFLICT(key) DO UPDATE SET value = excluded.value",
            (str(batch_id + 1),),
        )
        return batch_id

    def reclaim_expired(self, now: Optional[float] = None) -> int:
        """Re-queue groups whose lease deadline has passed.

        Returns the number of groups reclaimed.  Also called inline by
        :meth:`lease`, so workers are self-sufficient -- the broker's
        calls only make reclaim prompt when every worker is busy.
        """
        now = time.time() if now is None else now
        with self._txn():
            return self._reclaim_locked(now)

    def _reclaim_locked(self, now: float) -> int:
        cursor = self._db.execute(
            "UPDATE groups SET state = 'pending', worker = NULL, "
            "lease_deadline = NULL "
            "WHERE state = 'leased' AND lease_deadline < ?",
            (now,),
        )
        return cursor.rowcount

    def take_completed(self, batch_id: int) -> List[CompletedTask]:
        """Absorb (once) every newly completed task of *batch_id*.

        Marks the returned rows absorbed, so repeated polling never
        yields a task twice even when an idempotent duplicate execution
        overwrites an already-absorbed row.
        """
        with self._txn():
            rows = self._db.execute(
                "SELECT task_id, key, result, error, elapsed, warm, worker "
                "FROM tasks WHERE batch_id = ? AND state = 'done' "
                "AND absorbed = 0 ORDER BY task_id",
                (batch_id,),
            ).fetchall()
            if rows:
                self._db.executemany(
                    "UPDATE tasks SET absorbed = 1 WHERE task_id = ?",
                    [(row[0],) for row in rows],
                )
        return [
            CompletedTask(
                task_id=row[0], key=row[1], result=row[2], error=row[3],
                elapsed=row[4],
                warm=None if row[5] is None else bool(row[5]),
                worker=row[6],
            )
            for row in rows
        ]

    def batch_progress(self, batch_id: int) -> Tuple[int, int]:
        """``(done, total)`` task counts for one batch."""
        row = self._db.execute(
            "SELECT COUNT(*) FILTER (WHERE state = 'done'), COUNT(*) "
            "FROM tasks WHERE batch_id = ?",
            (batch_id,),
        ).fetchone()
        return int(row[0]), int(row[1])

    def requeued_groups(self, batch_id: int) -> int:
        """Groups of *batch_id* leased more than once (crash steals)."""
        row = self._db.execute(
            "SELECT COUNT(*) FROM groups WHERE batch_id = ? AND attempts > 1",
            (batch_id,),
        ).fetchone()
        return int(row[0])

    # ------------------------------------------------------------------
    # worker side
    # ------------------------------------------------------------------
    def lease(self, worker: str,
              ttl: float = DEFAULT_LEASE_TTL) -> Optional[LeasedGroup]:
        """Claim the oldest pending group, or ``None`` when idle.

        Expired leases are reclaimed first (inline -- workers never
        depend on the broker to unstick a crashed peer).  The claim and
        the reclaim share one ``BEGIN IMMEDIATE`` transaction, so two
        workers can never lease the same group.  Groups whose tasks all
        turn out to be done (a stall's lease expired *after* its worker
        finished persisting everything) are closed out here instead of
        being handed to a worker.
        """
        now = time.time()
        with self._txn():
            self._reclaim_locked(now)
            while True:
                row = self._db.execute(
                    "SELECT group_id, batch_id, warmup_key, attempts "
                    "FROM groups WHERE state = 'pending' "
                    "ORDER BY group_id LIMIT 1"
                ).fetchone()
                if row is None:
                    return None
                group_id, batch_id, warmup_key, attempts = row
                tasks = self._db.execute(
                    "SELECT task_id, key, cell FROM tasks "
                    "WHERE group_id = ? AND state != 'done' ORDER BY idx",
                    (group_id,),
                ).fetchall()
                if not tasks:
                    self._db.execute(
                        "UPDATE groups SET state = 'done', worker = NULL, "
                        "lease_deadline = NULL WHERE group_id = ?",
                        (group_id,),
                    )
                    continue
                self._db.execute(
                    "UPDATE groups SET state = 'leased', worker = ?, "
                    "lease_deadline = ?, attempts = attempts + 1 "
                    "WHERE group_id = ?",
                    (worker, now + ttl, group_id),
                )
                return LeasedGroup(
                    group_id=group_id,
                    batch_id=batch_id,
                    warmup_key=warmup_key,
                    attempts=attempts + 1,
                    task_ids=tuple(t[0] for t in tasks),
                    keys=tuple(t[1] for t in tasks),
                    payloads=tuple(t[2] for t in tasks),
                )

    def heartbeat(self, group_id: int, worker: str,
                  ttl: float = DEFAULT_LEASE_TTL) -> bool:
        """Extend *worker*'s lease on *group_id*; False if it was lost.

        A lost heartbeat (the lease expired and was stolen) is not an
        error -- the worker may finish the group anyway; completions are
        idempotent -- but the False return lets it stop early if it
        wants to.
        """
        with self._txn():
            cursor = self._db.execute(
                "UPDATE groups SET lease_deadline = ? "
                "WHERE group_id = ? AND worker = ? AND state = 'leased'",
                (time.time() + ttl, group_id, worker),
            )
            return cursor.rowcount == 1

    def complete_task(self, task_id: int, result: bytes, *,
                      elapsed: float, warm: bool, worker: str) -> None:
        """Persist one task's result (idempotent by determinism)."""
        with self._txn():
            self._db.execute(
                "UPDATE tasks SET state = 'done', result = ?, error = NULL, "
                "elapsed = ?, warm = ?, worker = ?, finished_at = ? "
                "WHERE task_id = ?",
                (result, elapsed, int(warm), worker, time.time(), task_id),
            )

    def fail_task(self, task_id: int, error: str, *, worker: str) -> None:
        """Persist one task's failure; the broker raises on absorption."""
        with self._txn():
            self._db.execute(
                "UPDATE tasks SET state = 'done', result = NULL, error = ?, "
                "worker = ?, finished_at = ? WHERE task_id = ?",
                (error, worker, time.time(), task_id),
            )

    def task_state(self, task_id: int) -> Optional[str]:
        """One task's state (``pending``/``done``), ``None`` if unknown."""
        row = self._db.execute(
            "SELECT state FROM tasks WHERE task_id = ?", (task_id,)
        ).fetchone()
        return None if row is None else row[0]

    def complete_group(self, group_id: int, worker: str) -> None:
        """Release *worker*'s lease after it finished the group.

        A no-op when the lease was already stolen -- the group is then
        owned by (or pending for) someone else, and every task this
        worker completed is durably persisted regardless.
        """
        with self._txn():
            self._db.execute(
                "UPDATE groups SET state = 'done', lease_deadline = NULL "
                "WHERE group_id = ? AND worker = ? AND state = 'leased'",
                (group_id, worker),
            )


class _ImmediateTransaction:
    """``with`` helper: BEGIN IMMEDIATE / COMMIT / ROLLBACK on error."""

    def __init__(self, db: sqlite3.Connection) -> None:
        self._db = db

    def __enter__(self):
        self._db.execute("BEGIN IMMEDIATE")
        return self._db

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self._db.execute("COMMIT")
        else:
            self._db.execute("ROLLBACK")


# ----------------------------------------------------------------------
# worker
# ----------------------------------------------------------------------
class _Heartbeat(threading.Thread):
    """Extends one lease every ttl/3 seconds until stopped.

    Owns a private :class:`LeaseQueue` connection (sqlite connections
    are not thread-shareable), opened lazily inside the thread.
    """

    def __init__(self, path: str, group_id: int, worker: str,
                 ttl: float) -> None:
        super().__init__(daemon=True, name=f"lease-heartbeat-{group_id}")
        self._path = path
        self._group_id = group_id
        self._worker = worker
        self._ttl = ttl
        # Not named _stop: Thread itself has a private _stop() method
        # that join() calls internally.
        self._halt = threading.Event()

    def run(self) -> None:
        queue = LeaseQueue(self._path)
        try:
            while not self._halt.wait(self._ttl / 3.0):
                try:
                    queue.heartbeat(self._group_id, self._worker, self._ttl)
                except sqlite3.Error:
                    # A transient lock blip must not kill the beat; the
                    # next tick retries, and the TTL absorbs one miss.
                    pass
        finally:
            queue.close()

    def stop(self) -> None:
        self._halt.set()


def _execute_lease(queue: LeaseQueue, lease: LeasedGroup,
                   worker: str, ttl: float) -> None:
    """Run one leased group, streaming each result into the queue.

    Payloads are normally pickled :class:`Cell`\\ s, executed through
    the streaming warm-start group executor.  Any other payload must be
    a zero-argument callable returning a picklable value -- the seam
    the dispatch benchmark and the queue's own tests use to measure
    fabric scheduling without simulating networks.
    """
    beat = _Heartbeat(queue.path, lease.group_id, worker, ttl)
    beat.start()
    try:
        items = [pickle.loads(blob) for blob in lease.payloads]
        if items and all(isinstance(item, Cell) for item in items):
            outcomes = iter_cell_group(items)
        else:
            outcomes = _run_callables(items)
        for outcome in outcomes:
            queue.complete_task(
                lease.task_ids[outcome.index],
                pickle.dumps(outcome.result, _PICKLE),
                elapsed=outcome.elapsed,
                warm=outcome.warm,
                worker=worker,
            )
    except BaseException:
        # Attribute the failure to the first unfinished task: the
        # streaming executor completes tasks strictly in order.
        failed = next(
            (task_id for task_id in lease.task_ids
             if queue.task_state(task_id) != "done"), None,
        )
        if failed is not None:
            queue.fail_task(failed, traceback.format_exc(), worker=worker)
        raise
    finally:
        beat.stop()
        beat.join(timeout=5.0)
    queue.complete_group(lease.group_id, worker)


@dataclasses.dataclass(frozen=True)
class _CallableOutcome:
    index: int
    result: object
    elapsed: float
    warm: bool = False


def _run_callables(items):
    for index, item in enumerate(items):
        started = time.perf_counter()
        result = item()
        yield _CallableOutcome(index, result,
                               time.perf_counter() - started)


def worker_main(queue_path, *, worker_id: Optional[str] = None,
                ttl: float = DEFAULT_LEASE_TTL, poll: float = 0.2,
                once: bool = False,
                max_groups: Optional[int] = None) -> int:
    """A fabric worker's whole life: lease, execute, repeat.

    Blocks until the broker closes the queue (or, with ``once=True``,
    until no group is leasable right now -- the drain mode tests use to
    interleave deterministically).  Returns the number of groups served.
    Task-level failures are persisted and re-raised: a worker that hit
    a real error (not a crash) dies loudly, and the broker both sees
    the task error and respawns the worker.
    """
    queue = LeaseQueue(queue_path)
    me = worker_id if worker_id is not None else local_worker_id()
    served = 0
    try:
        while True:
            if max_groups is not None and served >= max_groups:
                break
            lease = queue.lease(me, ttl)
            if lease is None:
                if once or queue.is_closed():
                    break
                time.sleep(poll)
                continue
            _execute_lease(queue, lease, me, ttl)
            served += 1
    finally:
        queue.close()
    return served


def _worker_process(queue_path: str, ttl: float, poll: float) -> None:
    """Entry point for broker-spawned local worker processes."""
    logging.basicConfig(level=logging.WARNING)
    worker_main(queue_path, ttl=ttl, poll=poll)


# ----------------------------------------------------------------------
# broker
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class FabricBatchStats:
    """What one fabric batch cost: placement accounting for the runner."""

    executed: int
    reused: int
    requeued_groups: int
    wall_seconds: float


def _mp_context():
    import multiprocessing

    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        return multiprocessing.get_context("spawn")


class FabricBroker:
    """Materializes batches into the lease queue and absorbs results.

    With ``spawn_workers > 0`` the broker keeps that many local worker
    processes alive (respawning any that die -- crash recovery is lease
    expiry, not process babysitting, but a dead worker still needs a
    replacement to keep parallelism up).  With ``spawn_workers=0`` the
    broker only enqueues and absorbs; execution is entirely up to
    external ``repro worker --queue PATH`` processes.
    """

    def __init__(self, queue_path, spawn_workers: int, *,
                 ttl: float = DEFAULT_LEASE_TTL, poll: float = 0.05,
                 worker_poll: float = 0.05) -> None:
        if spawn_workers < 0:
            raise ValidationError(
                f"spawn_workers must be >= 0, got {spawn_workers}"
            )
        self.queue_path = str(queue_path)
        self.queue = LeaseQueue(self.queue_path)
        self.queue.set_state("open")
        self.spawn_workers = spawn_workers
        self.ttl = ttl
        self.poll = poll
        self.worker_poll = worker_poll
        self._procs: List = []
        self._respawns = 0

    # -- worker management --------------------------------------------
    def ensure_workers(self) -> None:
        """(Re)spawn local workers up to the configured count."""
        alive = [p for p in self._procs if p.is_alive()]
        self._respawns += sum(
            1 for p in self._procs if not p.is_alive() and p.exitcode != 0
        )
        self._procs = alive
        context = _mp_context()
        while len(self._procs) < self.spawn_workers:
            process = context.Process(
                target=_worker_process,
                args=(self.queue_path, self.ttl, self.worker_poll),
                daemon=True,
            )
            process.start()
            self._procs.append(process)

    def worker_pids(self) -> List[int]:
        """PIDs of currently live broker-spawned workers."""
        return [p.pid for p in self._procs if p.is_alive()]

    # -- batch execution ----------------------------------------------
    def run_batch(
        self,
        units: Sequence[Tuple[str, Sequence[Tuple[str, Cell]]]],
        on_result: Callable[[str, Cell, object, float, Optional[str],
                             Optional[bool]], None],
    ) -> FabricBatchStats:
        """Execute one batch of warm-start groups through the fabric.

        *units* is ``[(warmup_key, [(cell_key, cell), ...]), ...]`` --
        the runner's planned groups, one queue group each.  *on_result*
        is invoked once per cell, **as results land**, with
        ``(key, cell, result, elapsed, worker, warm)``; invocation
        order follows completion order, which is placement-dependent --
        callers must not derive anything order-sensitive from it (the
        runner keys everything by content hash).

        Raises :class:`FabricError` if any task failed on a worker.
        """
        cells_by_key: Dict[str, Cell] = {}
        payload_units = []
        for warmup_key, items in units:
            encoded = []
            for key, cell in items:
                cells_by_key[key] = cell
                encoded.append((key, pickle.dumps(cell, _PICKLE)))
            payload_units.append((warmup_key, encoded))

        started = time.perf_counter()
        batch_id, reused = self.queue.enqueue_batch(payload_units)
        remaining = set(cells_by_key) - set(reused)
        for key, row in reused.items():
            on_result(key, cells_by_key[key], pickle.loads(row.result),
                      row.elapsed or 0.0, row.worker, row.warm)
        if _log.isEnabledFor(logging.INFO):
            _log.info(
                "[fabric batch %d: %d cells in %d groups (%d reused from "
                "queue)]", batch_id, len(cells_by_key), len(payload_units),
                len(reused),
            )

        executed = 0
        last_report = time.monotonic()
        while remaining:
            self.ensure_workers()
            self.queue.reclaim_expired()
            absorbed = self.queue.take_completed(batch_id)
            for row in absorbed:
                if row.error is not None:
                    raise FabricError(
                        f"fabric task {row.key[:12]} failed on worker "
                        f"{row.worker}:\n{row.error}"
                    )
                if row.key in remaining:
                    remaining.discard(row.key)
                    executed += 1
                    on_result(row.key, cells_by_key[row.key],
                              pickle.loads(row.result), row.elapsed or 0.0,
                              row.worker, row.warm)
            now = time.monotonic()
            if now - last_report >= 2.0 and _log.isEnabledFor(logging.INFO):
                done, total = self.queue.batch_progress(batch_id)
                _log.info("[fabric batch %d: %d/%d cells done, %d workers "
                          "live]", batch_id, done, total,
                          len(self.worker_pids()))
                last_report = now
            if not absorbed:
                time.sleep(self.poll)

        return FabricBatchStats(
            executed=executed,
            reused=len(reused),
            requeued_groups=self.queue.requeued_groups(batch_id),
            wall_seconds=time.perf_counter() - started,
        )

    # -- teardown ------------------------------------------------------
    def close(self) -> None:
        """Close the queue and retire local workers.

        Marking the queue closed is what stops idle workers; stragglers
        are terminated after a grace period.  External workers see the
        closed flag on their next idle poll and exit on their own.
        """
        self.queue.set_state("closed")
        for process in self._procs:
            process.join(timeout=2.0 + self.ttl / 3.0)
        for process in self._procs:
            if process.is_alive():
                process.terminate()
                process.join(timeout=2.0)
        self._procs = []
        self.queue.close()
