"""Adaptive experiment planner: coarse-to-fine γ search with CI stopping.

The gain figures only need ``G(γ) = Γ·(1−γ)^κ`` resolved accurately
near its peak γ* (Propositions 2-4), yet a dense fixed grid spends the
same budget on every γ.  :func:`run_planned_sweep` replaces the dense
grid with three stacked economies, all layered on the existing
:class:`~repro.runner.runner.ExperimentRunner` (so memoization, disk
caching, warm-start forking, and parallel fan-out keep working):

* **Coarse-to-fine refinement** -- simulate a coarse γ grid, then
  recursively subdivide only the bracket around the empirical peak
  until γ* is localized to :attr:`PlannerPolicy.gamma_resolution`.
* **Sequential seed allocation** -- each γ starts at
  :attr:`PlannerPolicy.min_seeds` replicas and gains more only while
  the gain estimate's t-based CI half-width
  (:func:`repro.analysis.stats.ci_stable`) exceeds the tolerance; the
  peak is always confirmed with enough replicas for a finite CI.
  Replicas differ only in platform seed, so they share their per-seed
  warm-up group with the runner's warm-start scheduler.
* **In-sim convergence early-exit** -- every planner cell carries the
  policy's :class:`~repro.sim.convergence.ConvergenceConfig`, so a
  simulation ends as soon as its windowed goodput rate stabilizes and
  measurements are compared as *rates* over the truncated span.

Everything here is strictly opt-in: the fast path activates only
through an explicit :class:`PlannerPolicy`, the ``--fast`` CLI flag, or
``REPRO_FAST=1`` (:func:`active_policy`).  Planner cells serialize
their early-exit config into the cache key, so fast and exact results
never mix, and with the planner disabled no code path here runs at all.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.stats import ci_stable, mean_ci_halfwidth
from repro.core.attack import PulseTrain
from repro.core.gain import attack_gain
from repro.core.throughput import c_psi
from repro.runner.cells import Cell, goodput_rate
from repro.runner.runner import ExperimentRunner, get_default_runner
from repro.sim.convergence import ConvergenceConfig
from repro.util.env import env_flag
from repro.util.errors import ValidationError
from repro.util.validate import check_positive

__all__ = ["PlannerPolicy", "PlannedPoint", "PlannedSweep",
           "run_planned_sweep", "fast_mode", "active_policy",
           "FAST_POLICY"]


@dataclasses.dataclass(frozen=True)
class PlannerPolicy:
    """How aggressively the planner trades coverage for speed.

    Attributes:
        coarse_points: γ samples in the initial grid (>= 3, so the peak
            always has a refinable bracket).
        refine_points: new γ samples inserted into the peak bracket per
            refinement round.
        max_rounds: refinement rounds after the coarse pass.
        gamma_resolution: stop refining once the peak's bracket
            neighbors are within this distance.
        min_seeds: replicas every sampled γ starts with.
        max_seeds: replica budget per γ (sequential allocation stops
            here regardless of CI width).
        ci_rel_tol: stop adding replicas once the gain CI half-width is
            below this fraction of the estimate's scale.
        confidence: CI confidence level.
        gain_floor: scale floor for the relative CI criterion (gains
            near zero would otherwise demand absurd precision).
        confirm_peak_seeds: minimum replicas at the final peak γ, so
            the reported peak always carries a finite CI.
        early_exit: convergence early-exit config stamped on every
            planner cell, or ``None`` to always run full windows.
        fluid_prepass: localize γ* on the fluid (ODE) backend first --
            milliseconds per cell -- and aim the packet-level coarse
            grid at just the neighborhood of the fluid peak.
        fluid_grid_points: resolution of the fluid localization grid --
            the pre-pass localizes γ* as finely as an N-point grid over
            the sweep span, but samples it in two stages (every other
            point, then just the peak's immediate neighbors), so it
            only integrates about half the grid.
        fluid_confirm_points: packet-level γ samples (spaced
            :attr:`gamma_resolution` apart, centered on the fluid peak)
            that confirm the peak when the pre-pass ran.
        fluid_max_step: integration step cap for pre-pass fluid cells.
            Coarser than the fluid backend's full-fidelity default: the
            pre-pass only needs the γ landscape's shape, and the packet
            confirm grid absorbs a one-step localization error.
    """

    coarse_points: int = 5
    refine_points: int = 2
    max_rounds: int = 3
    gamma_resolution: float = 0.05
    min_seeds: int = 1
    max_seeds: int = 3
    ci_rel_tol: float = 0.15
    confidence: float = 0.95
    gain_floor: float = 0.1
    confirm_peak_seeds: int = 2
    early_exit: Optional[ConvergenceConfig] = ConvergenceConfig()
    fluid_prepass: bool = False
    fluid_grid_points: int = 17
    fluid_confirm_points: int = 3
    fluid_max_step: float = 0.05

    def __post_init__(self) -> None:
        if self.coarse_points < 3:
            raise ValidationError(
                f"coarse_points must be >= 3, got {self.coarse_points}"
            )
        if self.refine_points < 1:
            raise ValidationError(
                f"refine_points must be >= 1, got {self.refine_points}"
            )
        if self.max_rounds < 0:
            raise ValidationError(
                f"max_rounds must be >= 0, got {self.max_rounds}"
            )
        check_positive("gamma_resolution", self.gamma_resolution)
        if self.min_seeds < 1:
            raise ValidationError(
                f"min_seeds must be >= 1, got {self.min_seeds}"
            )
        if self.max_seeds < self.min_seeds:
            raise ValidationError(
                f"max_seeds ({self.max_seeds}) must be >= min_seeds "
                f"({self.min_seeds})"
            )
        if self.confirm_peak_seeds < 1:
            raise ValidationError(
                f"confirm_peak_seeds must be >= 1, got "
                f"{self.confirm_peak_seeds}"
            )
        check_positive("ci_rel_tol", self.ci_rel_tol)
        if not 0.0 < self.confidence < 1.0:
            raise ValidationError(
                f"confidence must be in (0, 1), got {self.confidence}"
            )
        if self.gain_floor < 0.0:
            raise ValidationError(
                f"gain_floor must be >= 0, got {self.gain_floor}"
            )
        if self.fluid_grid_points < 3:
            raise ValidationError(
                f"fluid_grid_points must be >= 3, got "
                f"{self.fluid_grid_points}"
            )
        if self.fluid_confirm_points < 3:
            raise ValidationError(
                f"fluid_confirm_points must be >= 3, got "
                f"{self.fluid_confirm_points}"
            )
        check_positive("fluid_max_step", self.fluid_max_step)


#: The policy ``--fast`` / ``REPRO_FAST=1`` selects.
FAST_POLICY = PlannerPolicy(fluid_prepass=True)


def fast_mode() -> bool:
    """True when ``REPRO_FAST=1``: figure drivers use the planner."""
    return env_flag("REPRO_FAST")


def active_policy() -> Optional[PlannerPolicy]:
    """The environment-selected policy: :data:`FAST_POLICY` or ``None``.

    Figure drivers call this when no explicit policy is passed, so the
    planner stays invisible unless the user opted in.
    ``REPRO_NO_FLUID=1`` keeps the planner but drops its fluid
    pre-pass (``--no-fluid`` on the CLI).
    """
    if not fast_mode():
        return None
    if env_flag("REPRO_NO_FLUID"):
        return dataclasses.replace(FAST_POLICY, fluid_prepass=False)
    return FAST_POLICY


@dataclasses.dataclass(frozen=True)
class PlannedPoint:
    """One γ the planner sampled, with its replication economics."""

    gamma: float
    mean_gain: float
    mean_degradation: float
    ci_halfwidth: float
    n_seeds: int


@dataclasses.dataclass(frozen=True)
class PlannedSweep:
    """What an adaptive sweep resolved, plus what it saved.

    Attributes:
        curve: the classified gain curve over every sampled γ,
            structurally identical to an exact sweep's
            :class:`~repro.experiments.base.GainCurve`.
        gamma_star: the empirical peak γ.
        gain_at_peak / ci_at_peak / seeds_at_peak: the peak's gain
            estimate, its CI half-width, and how many replicas back it.
        rounds: refinement rounds actually run.
        gammas_sampled: distinct γ simulated.
        cells_saved: γ samples a dense grid at
            :attr:`PlannerPolicy.gamma_resolution` would have needed but
            the planner skipped.
        seeds_saved: replica budget left unspent by CI stopping.
        points: per-γ replication detail.
        fluid_gamma_star: the fluid pre-pass's peak estimate, or
            ``None`` when the pre-pass did not run.
        fluid_cells: fluid-backend measurements the pre-pass resolved
            (baseline included).
    """

    curve: Any
    gamma_star: float
    gain_at_peak: float
    ci_at_peak: float
    seeds_at_peak: int
    rounds: int
    gammas_sampled: int
    cells_saved: int
    seeds_saved: int
    points: Tuple[PlannedPoint, ...]
    fluid_gamma_star: Optional[float] = None
    fluid_cells: int = 0

    def summary(self) -> str:
        ci = "n/a" if math.isinf(self.ci_at_peak) else f"{self.ci_at_peak:.3f}"
        line = (
            f"planner[{self.curve.label}]: gamma*={self.gamma_star:.3f} "
            f"G={self.gain_at_peak:.3f} (CI +-{ci}, "
            f"{self.seeds_at_peak} seeds); {self.rounds} refinement rounds, "
            f"{self.gammas_sampled} gammas sampled, {self.cells_saved} grid "
            f"cells + {self.seeds_saved} seeds saved"
        )
        if self.fluid_gamma_star is not None:
            line += (
                f"; fluid pre-pass localized gamma*~"
                f"{self.fluid_gamma_star:.3f} with {self.fluid_cells} cells"
            )
        return line


def run_planned_sweep(
    platform,
    *,
    rate_bps: float,
    extent: float,
    gammas: Optional[Sequence[float]] = None,
    kappa: float = 1.0,
    warmup: Optional[float] = None,
    window: Optional[float] = None,
    label: str = "",
    policy: Optional[PlannerPolicy] = None,
    runner: Optional[ExperimentRunner] = None,
    exclude_shrew_from_classification: bool = True,
) -> PlannedSweep:
    """Adaptively resolve one gain curve on *platform*.

    The drop-in fast counterpart of
    :func:`repro.experiments.base.run_gain_sweep`: same platform
    abstraction, same Eq.-(4) period inversion per γ, same paired
    same-seed baseline -- but the γ grid grows toward the empirical
    peak, replicas are allocated by CI width, and every cell may end
    its window at convergence.  Measurements are therefore compared as
    goodput *rates* (:func:`repro.runner.cells.goodput_rate`).

    *gammas* overrides the coarse grid (>= 3 ascending values);
    refinement still operates inside its span.
    """
    # Imported late: experiments.base imports repro.runner at module
    # load, so a top-level import here would be circular.
    from repro.experiments.base import build_classified_curve, full_scale

    policy = policy if policy is not None else PlannerPolicy()
    runner = runner if runner is not None else get_default_runner()
    check_positive("rate_bps", rate_bps)
    check_positive("extent", extent)
    if warmup is None:
        warmup = 10.0 if full_scale() else 6.0
    if window is None:
        window = 50.0 if full_scale() else 20.0

    bottleneck = platform.bottleneck_bps
    c_psi_value = c_psi(
        platform.victim_population(), extent=extent, rate_bps=rate_bps,
        bottleneck_bps=bottleneck,
    )
    c_attack = rate_bps / bottleneck
    if gammas is None:
        grid = np.linspace(0.1, min(0.9, c_attack), policy.coarse_points)
    else:
        grid = np.asarray(sorted(float(g) for g in gammas), dtype=float)
        if grid.size < 3:
            raise ValidationError(
                f"the planner needs >= 3 coarse gammas, got {grid.size}"
            )
        if grid[-1] > c_attack + 1e-12:
            raise ValidationError(
                f"gamma {grid[-1]} exceeds C_attack={c_attack:.3f}"
            )
    lo, hi = float(grid[0]), float(grid[-1])

    base_spec = platform.spec()
    base_seed = base_spec.seed

    def _train(gamma: float) -> PulseTrain:
        period = PulseTrain.period_from_gamma(
            gamma=gamma, rate_bps=rate_bps, extent=extent,
            bottleneck_bps=bottleneck,
        )
        return PulseTrain.from_gamma(
            gamma=gamma, rate_bps=rate_bps, extent=extent,
            bottleneck_bps=bottleneck,
            n_pulses=int(math.ceil(window / period)) + 2,
        )

    def _cell(gamma: Optional[float], seed_index: int) -> Cell:
        spec = dataclasses.replace(base_spec, seed=base_seed + seed_index)
        return Cell(
            platform=spec, warmup=warmup, window=window,
            train=None if gamma is None else _train(gamma),
            early_exit=policy.early_exit,
        )

    def _fluid_cell(gamma: Optional[float]) -> Cell:
        return Cell(
            platform=base_spec, warmup=warmup, window=window,
            train=None if gamma is None else _train(gamma),
            backend="fluid", fluid_max_step=policy.fluid_max_step,
        )

    def _fluid_localize() -> Tuple[float, int]:
        """Find the γ* neighborhood on the fluid backend (two stages)."""
        full = np.linspace(lo, hi, policy.fluid_grid_points)
        stage = list(range(0, policy.fluid_grid_points, 2))
        cells = [_fluid_cell(None)]
        cells.extend(_fluid_cell(float(full[i])) for i in stage)
        results = runner.measure_many(cells)
        base_rate = goodput_rate(cells[0], results[0])
        if base_rate <= 0:
            raise ValidationError(
                "fluid baseline goodput is zero; the measurement window "
                "is too short"
            )
        n_cells = len(cells)

        def _gain(cell, result, g):
            return ((1.0 - goodput_rate(cell, result) / base_rate)
                    * (1.0 - g) ** kappa)

        gains = {i: _gain(cell, result, float(full[i]))
                 for i, cell, result in zip(stage, cells[1:], results[1:])}
        # Stage 2: fill in the full-resolution neighbors of the coarse
        # argmax -- the true grid peak cannot sit outside them, so this
        # recovers the full grid's localization with about half its
        # cells.
        peak_i = max(gains, key=gains.get)
        fill = [i for i in (peak_i - 1, peak_i + 1)
                if 0 <= i < policy.fluid_grid_points and i not in gains]
        if fill:
            cells = [_fluid_cell(float(full[i])) for i in fill]
            results = runner.measure_many(cells)
            gains.update(
                (i, _gain(cell, result, float(full[i])))
                for i, cell, result in zip(fill, cells, results)
            )
            n_cells += len(cells)
        peak_i = max(gains, key=gains.get)
        return float(full[peak_i]), n_cells

    fluid_gamma_star: Optional[float] = None
    fluid_cells = 0
    # The epsilon keeps float noise (0.4 - 0.3 > 0.1) from triggering a
    # pre-pass on a grid already too narrow to shrink.
    if (policy.fluid_prepass
            and hi - lo > 2.0 * policy.gamma_resolution + 1e-9):
        fluid_gamma_star, fluid_cells = _fluid_localize()
        # Re-aim the packet-level coarse grid at the fluid peak's
        # neighborhood: confirm points spaced one resolution step apart,
        # clamped so the whole grid stays inside [lo, hi].  Everything
        # downstream (refinement, seed allocation, peak confirmation)
        # operates on this narrow grid unchanged; the dense-grid savings
        # baseline keeps the original [lo, hi] span.
        half_span = (policy.fluid_confirm_points - 1) / 2.0
        center = min(max(fluid_gamma_star,
                         lo + half_span * policy.gamma_resolution),
                     hi - half_span * policy.gamma_resolution)
        grid = center + policy.gamma_resolution * (
            np.arange(policy.fluid_confirm_points) - half_span
        )

    # γ -> per-replica samples, in seed order; seed_index -> baseline rate.
    gains: Dict[float, List[float]] = {}
    degradations: Dict[float, List[float]] = {}
    baseline_rates: Dict[int, float] = {}

    def _measure(requests: Sequence[Tuple[float, int]]) -> None:
        """Resolve (γ, seed_index) measurements in one runner batch."""
        cells: List[Cell] = []
        slots: List[Tuple[str, Any]] = []
        for idx in sorted({i for _g, i in requests
                           if i not in baseline_rates}):
            cells.append(_cell(None, idx))
            slots.append(("baseline", idx))
        for gamma, idx in requests:
            cells.append(_cell(gamma, idx))
            slots.append(("attack", (gamma, idx)))
        results = runner.measure_many(cells)
        for (kind, ref), cell, result in zip(slots, cells, results):
            if kind != "baseline":
                continue
            rate = goodput_rate(cell, result)
            if rate <= 0:
                raise ValidationError(
                    "baseline goodput is zero; the measurement window "
                    "is too short"
                )
            baseline_rates[ref] = rate
        for (kind, ref), cell, result in zip(slots, cells, results):
            if kind != "attack":
                continue
            gamma, idx = ref
            degradation = 1.0 - goodput_rate(cell, result) / baseline_rates[idx]
            degradations.setdefault(gamma, []).append(degradation)
            gains.setdefault(gamma, []).append(
                degradation * (1.0 - gamma) ** kappa
            )

    def _needs_more(gamma: float) -> bool:
        samples = gains.get(gamma, ())
        if len(samples) < policy.min_seeds:
            return True
        if len(samples) >= policy.max_seeds or len(samples) < 2:
            # One replica carries no variance estimate; escalation past
            # a single seed is the peak-confirmation stage's call.
            return False
        return not ci_stable(
            samples, rel_tol=policy.ci_rel_tol,
            confidence=policy.confidence, scale_floor=policy.gain_floor,
        )

    def _settle(active: Sequence[float]) -> None:
        """Add one replica per still-unstable γ until all settle."""
        while True:
            requests = [(g, len(gains.get(g, ())))
                        for g in active if _needs_more(g)]
            if not requests:
                return
            _measure(requests)

    def _mean_gain(gamma: float) -> float:
        return float(np.mean(gains[gamma]))

    _settle([float(g) for g in grid])

    rounds = 0
    while rounds < policy.max_rounds:
        sampled = sorted(gains)
        peak_index = max(range(len(sampled)),
                         key=lambda i: _mean_gain(sampled[i]))
        left = sampled[max(peak_index - 1, 0)]
        right = sampled[min(peak_index + 1, len(sampled) - 1)]
        peak = sampled[peak_index]
        if max(peak - left, right - peak) <= policy.gamma_resolution + 1e-9:
            break
        interior = np.linspace(left, right, policy.refine_points + 2)[1:-1]
        fresh = [
            float(g) for g in interior
            if min(abs(g - s) for s in sampled) > policy.gamma_resolution / 4
        ]
        if not fresh:
            break
        rounds += 1
        _settle(fresh)

    # Confirm the peak with enough replicas for a finite, stable CI (the
    # argmax can move as replicas refine the estimates, so re-check).
    confirm = min(max(policy.confirm_peak_seeds, policy.min_seeds),
                  policy.max_seeds)
    while True:
        sampled = sorted(gains)
        peak = max(sampled, key=_mean_gain)
        n = len(gains[peak])
        if n < confirm or (n < policy.max_seeds and not ci_stable(
            gains[peak], rel_tol=policy.ci_rel_tol,
            confidence=policy.confidence, scale_floor=policy.gain_floor,
        )):
            _measure([(peak, n)])
            continue
        break

    sampled = sorted(gains)
    dense_cells = int(math.floor((hi - lo) / policy.gamma_resolution
                                 + 1e-9)) + 1
    cells_saved = max(0, dense_cells - len(sampled))
    seeds_saved = sum(policy.max_seeds - len(v) for v in gains.values())
    stats = runner.stats
    stats.planner_rounds += rounds
    stats.planner_cells_saved += cells_saved
    stats.planner_seeds_saved += seeds_saved

    from repro.experiments.base import GainPoint

    curve_points = [
        GainPoint(
            gamma=g,
            period=_train(g).period,
            analytic_gain=attack_gain(g, c_psi_value, kappa),
            measured_gain=_mean_gain(g),
            measured_degradation=float(np.mean(degradations[g])),
            is_shrew=False,
        )
        for g in sampled
    ]
    curve = build_classified_curve(
        curve_points,
        label=(label or f"R={rate_bps / 1e6:.0f}M "
                        f"T_extent={extent * 1e3:.0f}ms [fast]"),
        rate_bps=rate_bps,
        extent=extent,
        kappa=kappa,
        c_psi=c_psi_value,
        min_rto=platform.min_rto,
        exclude_shrew=exclude_shrew_from_classification,
    )

    planned_points = tuple(
        PlannedPoint(
            gamma=g,
            mean_gain=_mean_gain(g),
            mean_degradation=float(np.mean(degradations[g])),
            ci_halfwidth=mean_ci_halfwidth(gains[g], policy.confidence),
            n_seeds=len(gains[g]),
        )
        for g in sampled
    )
    peak = max(sampled, key=_mean_gain)
    return PlannedSweep(
        curve=curve,
        gamma_star=peak,
        gain_at_peak=_mean_gain(peak),
        ci_at_peak=mean_ci_halfwidth(gains[peak], policy.confidence),
        seeds_at_peak=len(gains[peak]),
        rounds=rounds,
        gammas_sampled=len(sampled),
        cells_saved=cells_saved,
        seeds_saved=seeds_saved,
        points=planned_points,
        fluid_gamma_star=fluid_gamma_star,
        fluid_cells=fluid_cells,
    )
