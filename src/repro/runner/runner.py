"""The process-pool executor with layered memo + disk caching.

:class:`ExperimentRunner` takes batches of independent
:class:`~repro.runner.cells.Cell` measurements and resolves each from,
in order: an in-process memo (covers e.g. the shared no-attack baseline
of a multi-curve figure), the on-disk :class:`ResultCache`, and finally
execution -- inline, or fanned out across worker processes when
``jobs > 1``.  Identical cells inside one batch are deduplicated before
dispatch, so a figure whose curves share a baseline measures it once.

Warm-start scheduling: cells that miss every cache are grouped by
:func:`~repro.runner.cells.warmup_key` -- the identity of their shared
attack-free warm-up prefix -- and each group simulates the prefix once,
then forks every member from a frozen
:class:`~repro.sim.checkpoint.NetworkSnapshot` (see
:func:`~repro.runner.cells.execute_cell_group`).  A gain sweep whose
cells differ only in the attack train pays for one warm-up instead of
one per cell.  Results are bit-identical to from-scratch execution, the
cache keys are unchanged, and ``warm_start=False`` (or
``REPRO_NO_WARM_START=1``) restores cell-at-a-time execution.

Determinism: cells carry their own seeds and are rebuilt from scratch
(or forked from a deterministic prefix) per execution, so worker
placement and completion order cannot change any result -- only
wall-clock time.  Parallel runs split a group into contiguous chunks,
each re-simulating the prefix; chunking therefore trades some warm-up
sharing for parallelism without affecting any result.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import hashlib
import json
import logging
import math
import multiprocessing
import os
import shutil
import tempfile
import time
from collections import Counter
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.obs import metrics as _obs_metrics
from repro.obs.instrument import publish_runner
from repro.runner.cache import ResultCache, cell_key
from repro.runner.cells import (
    Cell,
    CellResult,
    GroupResult,
    execute_cell_group,
    warmup_key,
)
from repro.util.env import env_flag, env_int, env_str
from repro.util.errors import ValidationError

__all__ = ["CellTiming", "DryRunPlan", "PlanEntry", "RunnerStats",
           "ExperimentRunner", "check_jobs", "get_default_runner",
           "set_default_runner"]

_log = logging.getLogger("repro.runner")


def check_jobs(value, *, source: str = "jobs") -> int:
    """Validate a worker count at an API/CLI boundary.

    *source* names the flag or parameter in the error (``--jobs``,
    ``jobs``), mirroring how ``REPRO_JOBS`` parsing names the variable.
    Accepts integers >= 1 only -- bools and other non-int types are
    rejected rather than coerced.
    """
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValidationError(
            f"{source} must be an integer >= 1, got {value!r}"
        )
    if value < 1:
        raise ValidationError(f"{source} must be >= 1, got {value}")
    return value


@dataclasses.dataclass(frozen=True)
class CellTiming:
    """How one cell was resolved and how long it took."""

    key: str
    source: str  #: "executed", "cache", or "memo"
    elapsed: float


@dataclasses.dataclass
class RunnerStats:
    """Cumulative per-runner accounting (memo/cache hits, sim time).

    Beyond the hit counters this tracks the telemetry the observability
    layer reports: distinct scenario seeds fanned out, and -- for
    parallel batches -- busy worker-seconds against available
    worker-seconds (:attr:`worker_utilization`).
    """

    executed: int = 0
    cache_hits: int = 0
    memo_hits: int = 0
    executed_seconds: float = 0.0
    #: cells measured on a warm-start fork instead of a fresh warm-up.
    warm_starts: int = 0
    #: warm-up prefixes actually simulated (one per executed group chunk).
    warmup_sims: int = 0
    #: simulated warm-up seconds avoided by forking.
    warmup_seconds_saved: float = 0.0
    #: adaptive-planner refinement rounds run (repro.runner.planner).
    planner_rounds: int = 0
    #: dense-grid cells the planner never had to simulate.
    planner_cells_saved: int = 0
    #: seed replicas the planner's CI stopping left unspent.
    planner_seeds_saved: int = 0
    #: executed cells whose window a convergence monitor ended early.
    truncated_cells: int = 0
    #: simulated seconds those early exits avoided.
    truncated_sim_seconds: float = 0.0
    #: executed cells resolved on the fluid (ODE) backend.
    fluid_cells: int = 0
    timings: List[CellTiming] = dataclasses.field(default_factory=list)
    #: distinct platform seeds seen across all measured cells.
    seeds: Set[int] = dataclasses.field(default_factory=set)
    parallel_batches: int = 0
    #: wall-clock seconds spent inside parallel batches.
    parallel_wall_seconds: float = 0.0
    #: sum of per-cell execution seconds inside parallel batches.
    parallel_busy_seconds: float = 0.0
    #: workers x wall for each parallel batch (the available capacity).
    parallel_worker_seconds: float = 0.0
    #: batches dispatched through the work-stealing fabric.
    fabric_batches: int = 0
    #: warm-start groups a fabric batch re-queued after a lease expired
    #: (a worker crashed or stalled and its work was stolen).
    fabric_requeues: int = 0

    def record(self, key: str, source: str, elapsed: float = 0.0) -> None:
        self.timings.append(CellTiming(key=key, source=source, elapsed=elapsed))
        if source == "executed":
            self.executed += 1
            self.executed_seconds += elapsed
        elif source == "cache":
            self.cache_hits += 1
        else:
            self.memo_hits += 1

    @property
    def cells(self) -> int:
        return self.executed + self.cache_hits + self.memo_hits

    @property
    def hit_ratio(self) -> float:
        """Fraction of cells answered without execution (cache + memo)."""
        total = self.cells
        if total == 0:
            return 0.0
        return (self.cache_hits + self.memo_hits) / total

    @property
    def worker_utilization(self) -> Optional[float]:
        """Busy / available worker time over parallel batches, or None.

        ``None`` until at least one multi-cell batch has fanned out --
        serial execution has no idle workers to account for.
        """
        if self.parallel_worker_seconds <= 0.0:
            return None
        return self.parallel_busy_seconds / self.parallel_worker_seconds

    def checkpoint(self) -> Tuple:
        """An opaque marker for :meth:`since` / :meth:`delta_snapshot`."""
        return (self.executed, self.cache_hits, self.memo_hits,
                self.executed_seconds, self.warm_starts, self.warmup_sims,
                self.warmup_seconds_saved, self.planner_rounds,
                self.planner_cells_saved, self.planner_seeds_saved,
                self.truncated_cells, self.truncated_sim_seconds,
                self.fluid_cells)

    def delta_snapshot(self, mark: Tuple) -> dict:
        """JSON-ready accounting of the work done since *mark*."""
        executed = self.executed - mark[0]
        cached = self.cache_hits - mark[1]
        memo = self.memo_hits - mark[2]
        total = executed + cached + memo
        # Marks from before the warm-start / planner counters existed
        # are accepted as zero baselines (run-log replay tooling stores
        # them).
        warm_mark = mark[4:7] if len(mark) >= 7 else (0, 0, 0.0)
        planner_mark = mark[7:12] if len(mark) >= 12 else (0, 0, 0, 0, 0.0)
        fluid_mark = mark[12] if len(mark) >= 13 else 0
        return {
            "cells": total,
            "executed": executed,
            "cache_hits": cached,
            "memo_hits": memo,
            "hit_ratio": ((cached + memo) / total) if total else 0.0,
            "executed_seconds": self.executed_seconds - mark[3],
            "warm_starts": self.warm_starts - warm_mark[0],
            "warmup_sims": self.warmup_sims - warm_mark[1],
            "warmup_seconds_saved": self.warmup_seconds_saved - warm_mark[2],
            "planner_rounds": self.planner_rounds - planner_mark[0],
            "planner_cells_saved": self.planner_cells_saved - planner_mark[1],
            "planner_seeds_saved": self.planner_seeds_saved - planner_mark[2],
            "truncated_cells": self.truncated_cells - planner_mark[3],
            "truncated_sim_seconds": (
                self.truncated_sim_seconds - planner_mark[4]
            ),
            "fluid_cells": self.fluid_cells - fluid_mark,
        }

    def snapshot(self) -> dict:
        """JSON-ready cumulative accounting (feeds run logs / metrics)."""
        snap = self.delta_snapshot(_ZERO_MARK)
        snap.update({
            "seed_fanout": len(self.seeds),
            "parallel_batches": self.parallel_batches,
            "parallel_wall_seconds": self.parallel_wall_seconds,
            "parallel_busy_seconds": self.parallel_busy_seconds,
            "worker_utilization": self.worker_utilization,
            "fabric_batches": self.fabric_batches,
            "fabric_requeues": self.fabric_requeues,
        })
        return snap

    def since(self, mark: Tuple) -> str:
        """Human-readable delta summary since *mark*."""
        delta = self.delta_snapshot(mark)
        line = (
            f"cells: {delta['cells']} ({delta['executed']} executed in "
            f"{delta['executed_seconds']:.1f}s sim, "
            f"{delta['cache_hits']} cache hits, "
            f"{delta['memo_hits']} memo hits; "
            f"{100.0 * delta['hit_ratio']:.0f}% hit ratio)"
        )
        if delta["warm_starts"]:
            line += (
                f"; {delta['warm_starts']} warm starts saved "
                f"{delta['warmup_seconds_saved']:.0f}s of simulated warm-up"
            )
        if delta["planner_rounds"] or delta["planner_seeds_saved"] or (
            delta["planner_cells_saved"]
        ):
            line += (
                f"; planner: {delta['planner_rounds']} refinement rounds, "
                f"{delta['planner_cells_saved']} grid cells + "
                f"{delta['planner_seeds_saved']} seeds saved"
            )
        if delta["truncated_cells"]:
            line += (
                f"; {delta['truncated_cells']} early exits truncated "
                f"{delta['truncated_sim_seconds']:.0f}s of simulation"
            )
        if delta["fluid_cells"]:
            line += (
                f"; {delta['fluid_cells']} cells on the fluid backend"
            )
        return line

    def summary(self) -> str:
        return self.since(_ZERO_MARK)


#: A checkpoint mark taken before any work (the epoch baseline).
_ZERO_MARK = (0, 0, 0, 0.0, 0, 0, 0.0, 0, 0, 0, 0, 0.0, 0)


def _execute_unit(cells: Tuple[Cell, ...],
                  record: bool = False) -> GroupResult:
    """Worker entry point: run one warm-up-sharing chunk of cells.

    With *record* set each packet cell carries a flight recorder and
    the returned :class:`GroupResult` ships the harvested series blobs
    back by value -- workers never touch the sqlite store; the parent
    process owns the only connection.  The result is stamped with the
    executing process's worker identity so straggler analysis
    (``repro obs query slowest-cells``) can attribute placement.
    """
    from repro.runner.fabric import local_worker_id

    group = execute_cell_group(cells, record=record)
    return dataclasses.replace(group, worker=local_worker_id())


@dataclasses.dataclass(frozen=True)
class PlanEntry:
    """One planned cell in a dry run: how it *would* resolve."""

    key: str
    warmup_key: str
    status: str  #: "execute", "cache", or "memo"
    cell: Cell


class DryRunPlan:
    """What a dry-run runner would have done, batch by batch.

    Collected instead of executing when :attr:`ExperimentRunner.dry_run`
    is set; rendered by the CLI's ``--dry-run``.  One entry per distinct
    content key; intra-batch duplicates only bump :attr:`duplicates`.
    """

    def __init__(self) -> None:
        self.entries: List[PlanEntry] = []
        self.duplicates = 0
        self.batches = 0

    def add(self, key: str, wkey: str, status: str, cell: Cell) -> None:
        self.entries.append(PlanEntry(key, wkey, status, cell))

    def render(self, start: int = 0,
               duplicates: Optional[int] = None) -> str:
        """Human-readable plan for entries from *start* onward.

        *duplicates* overrides the reported duplicate count (callers
        rendering a window of the plan pass the delta they observed).
        """
        entries = self.entries[start:]
        if not entries:
            return "dry run: no cells planned"
        counts = Counter(entry.status for entry in entries)
        head = (
            f"dry run: {len(entries)} cells planned -- "
            f"{counts.get('execute', 0)} to execute, "
            f"{counts.get('cache', 0)} cache hits, "
            f"{counts.get('memo', 0)} memo hits"
        )
        duplicates = self.duplicates if duplicates is None else duplicates
        if duplicates:
            head += f" (+{duplicates} duplicate cells batch-wide)"
        lines = [head]
        groups: Dict[str, List[PlanEntry]] = {}
        for entry in entries:
            if entry.status == "execute":
                groups.setdefault(entry.warmup_key, []).append(entry)
        lines.append(f"warm-up prefixes to simulate: {len(groups)}")
        for wkey, members in groups.items():
            tag = hashlib.sha256(wkey.encode()).hexdigest()[:8]
            info = json.loads(wkey)
            platform = info.get("platform") or {}
            fields = " ".join(
                f"{name}={platform[name]}"
                for name in ("kind", "n_flows", "seed")
                if name in platform
            )
            lines.append(
                f"  group {tag}: {fields} warmup={info.get('warmup')}s "
                f"-> {len(members)} cells"
            )
        return "\n".join(lines)


def _placeholder_result(cell: Cell) -> CellResult:
    """A stand-in for a cell a dry run chose not to execute.

    ``goodput_bytes == window`` makes every derived rate exactly 1.0,
    so downstream gain arithmetic stays finite without pretending to be
    a measurement.
    """
    return CellResult(
        goodput_bytes=float(cell.window),
        flagged_sources=0 if cell.rate_floor_bps is not None else None,
    )


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


class ExperimentRunner:
    """Parallel, cached, warm-start-scheduled execution of cells.

    Args:
        jobs: worker processes for cache-missing cells; 1 runs inline.
            The pool is created on first parallel batch and reused until
            :meth:`close` (the runner is also a context manager).
        cache_dir: directory for the persistent result cache, or
            ``None`` to disable disk caching (the in-process memo is
            always on).
        warm_start: group cache-missing cells by their shared warm-up
            prefix and fork each group from one frozen snapshot (the
            default).  ``False`` re-simulates every cell from scratch;
            results are bit-identical either way.
        fabric: when > 0, dispatch cache-missing cells through the
            work-stealing fabric (:mod:`repro.runner.fabric`) with this
            many broker-spawned local workers instead of the static
            process pool.  Results are bit-identical to ``fabric=0``.
        fabric_queue: path for the fabric's durable lease queue.
            ``None`` uses a private temporary file; point it at a
            shared location to let external ``repro worker`` processes
            (other hosts) steal work from the same batch.
        fabric_ttl: lease time-to-live in seconds -- how long a silent
            worker holds a group before it is stolen.
        dry_run: resolve memo/cache hits normally but *plan* (do not
            execute) everything else; see :class:`DryRunPlan`.
    """

    def __init__(self, *, jobs: int = 1, cache_dir=None,
                 warm_start: bool = True, fabric: int = 0,
                 fabric_queue=None, fabric_ttl: Optional[float] = None,
                 dry_run: bool = False) -> None:
        self.jobs = check_jobs(jobs)
        if isinstance(fabric, bool) or not isinstance(fabric, int):
            raise ValidationError(
                f"fabric must be an integer >= 0, got {fabric!r}"
            )
        if fabric < 0:
            raise ValidationError(f"fabric must be >= 0, got {fabric}")
        self.fabric = fabric
        self.fabric_queue = fabric_queue
        self.fabric_ttl = fabric_ttl
        self.cache = ResultCache(cache_dir) if cache_dir is not None else None
        self.warm_start = warm_start
        self.stats = RunnerStats()
        #: attached experiment store (sqlite), or None; see attach_store.
        self.store = None
        #: when True, executed packet cells carry a flight recorder and
        #: their harvested series land in the store.
        self.record_series = False
        #: when True, batches are planned, not executed; see DryRunPlan.
        self.dry_run = dry_run
        self.dry_run_plan = DryRunPlan()
        self._memo: Dict[str, CellResult] = {}
        #: placeholder results for cells a dry run "executed".
        self._dry_memo: Dict[str, CellResult] = {}
        self._pool: Optional[concurrent.futures.ProcessPoolExecutor] = None
        self._broker = None
        self._fabric_dir: Optional[str] = None

    def attach_store(self, store, *, record_series: bool = False) -> None:
        """Dual-write resolved cells into an experiment store.

        Every cell a batch resolves -- executed, cache hit, or memo
        hit -- gets one ``cells`` row (per distinct key per batch);
        with *record_series* each *executed* packet cell additionally
        carries a flight recorder whose harvested time series are
        stored alongside.  The store connection lives in this (parent)
        process only; worker processes return series by value.  Pass
        ``store=None`` to detach.
        """
        self.store = store
        self.record_series = bool(record_series) and store is not None

    # ------------------------------------------------------------------
    def measure(self, cell: Cell) -> CellResult:
        """Resolve one cell (memo -> disk cache -> execute)."""
        return self.measure_many([cell])[0]

    def measure_goodput(self, cell: Cell) -> float:
        """Convenience: :meth:`measure` and return the goodput bytes."""
        return self.measure(cell).goodput_bytes

    def measure_many(self, cells: Sequence[Cell]) -> List[CellResult]:
        """Resolve a batch, fanning cache misses out across workers.

        Results come back in input order.  Duplicate cells (same content
        key) are measured once and counted as memo hits thereafter.
        """
        # cell_key resolves the (memoized) per-backend code fingerprint.
        keys = [cell_key(cell) for cell in cells]
        if self.dry_run:
            return self._plan_dry_run(cells, keys)
        results: Dict[str, CellResult] = {}
        pending: Dict[str, Cell] = {}
        for key, cell in zip(keys, cells):
            self.stats.seeds.add(cell.platform.seed)
            if key in results or key in pending:
                # An intra-batch duplicate resolves to one measurement;
                # account for it, like any other avoided execution.
                self.stats.record(key, "memo")
                continue
            memo = self._memo.get(key)
            if memo is not None:
                results[key] = memo
                self.stats.record(key, "memo")
                self._record_store(key, cell, memo, "memo")
                _log.debug("cell %s: memo hit", key[:12])
                continue
            if self.cache is not None:
                hit = self.cache.get(key)
                if hit is not None:
                    results[key] = self._memo[key] = hit
                    self.stats.record(key, "cache")
                    self._record_store(key, cell, hit, "cache")
                    _log.debug("cell %s: cache hit", key[:12])
                    continue
            pending[key] = cell

        if pending:
            units = self._plan_units(pending)
            if self.fabric > 0:
                self._execute_fabric(units, results)
            elif self.jobs > 1 and len(units) > 1:
                self._execute_parallel(units, results)
            else:
                for unit in units:
                    self._absorb_unit(unit, _execute_unit(
                        tuple(cell for _key, cell in unit),
                        self.record_series), results)
        # Per-batch (never per-cell) telemetry refresh; a no-op without
        # an active registry.
        publish_runner(_obs_metrics.active(), self.stats.snapshot())
        return [results[key] for key in keys]

    # ------------------------------------------------------------------
    # execution planning / bookkeeping
    # ------------------------------------------------------------------
    def _plan_units(
        self, pending: Dict[str, Cell],
    ) -> List[List[Tuple[str, Cell]]]:
        """Partition cache-missing cells into warm-up-sharing work units.

        With warm starts off every cell is its own unit.  Otherwise
        cells group by :func:`warmup_key`; serially each group is one
        unit (maximal sharing).  In parallel, groups are split into
        contiguous chunks -- each chunk pays one warm-up -- only as far
        as needed to keep all workers busy, so a single large sweep
        still saturates the pool while many small groups stay whole.
        Chunking cannot change results, only how often the (bit-
        identical) prefix is re-simulated.

        Fabric batches are never chunked: the fabric's steal
        granularity is a whole warm-start group (one lease pays one
        warm-up wherever it lands), and work-stealing -- not static
        splitting -- is what keeps its workers busy.
        """
        if not self.warm_start:
            return [[(key, cell)] for key, cell in pending.items()]
        groups: Dict[str, List[Tuple[str, Cell]]] = {}
        for key, cell in pending.items():
            groups.setdefault(warmup_key(cell), []).append((key, cell))
        ordered = list(groups.values())
        chunks_per_group = 1
        if self.fabric == 0 and self.jobs > 1 and len(ordered) < self.jobs:
            chunks_per_group = math.ceil(self.jobs / len(ordered))
        units: List[List[Tuple[str, Cell]]] = []
        for group in ordered:
            n_chunks = min(len(group), chunks_per_group)
            size = math.ceil(len(group) / n_chunks)
            units.extend(
                group[i:i + size] for i in range(0, len(group), size)
            )
        return units

    def _plan_dry_run(self, cells: Sequence[Cell],
                      keys: List[str]) -> List[CellResult]:
        """Classify a batch without executing anything.

        Memo and cache hits resolve to their real results; everything
        else gets a placeholder and a plan entry.  Nothing is recorded
        into stats, the memo, the cache, or the store -- a dry run must
        leave no trace a later real run would trip over.
        """
        plan = self.dry_run_plan
        plan.batches += 1
        results: Dict[str, CellResult] = {}
        for key, cell in zip(keys, cells):
            if key in results:
                plan.duplicates += 1
                continue
            hit = self._memo.get(key)
            if hit is not None:
                results[key] = hit
                plan.add(key, warmup_key(cell), "memo", cell)
                continue
            dry = self._dry_memo.get(key)
            if dry is not None:
                # A previous dry-run batch "executed" it; a real run
                # would find it in the memo by now.
                results[key] = dry
                plan.add(key, warmup_key(cell), "memo", cell)
                continue
            if self.cache is not None:
                cached = self.cache.get(key)
                if cached is not None:
                    results[key] = cached
                    plan.add(key, warmup_key(cell), "cache", cell)
                    continue
            placeholder = _placeholder_result(cell)
            results[key] = self._dry_memo[key] = placeholder
            plan.add(key, warmup_key(cell), "execute", cell)
        return [results[key] for key in keys]

    def _absorb_unit(self, unit: List[Tuple[str, Cell]],
                     group_result: GroupResult,
                     results: Dict[str, CellResult]) -> None:
        """Fold one executed unit into results, memo, cache, and stats."""
        series = group_result.series or (None,) * len(unit)
        for (key, cell), result, elapsed, cell_series in zip(
            unit, group_result.results, group_result.elapsed, series,
        ):
            self._finish(key, cell, result, elapsed, cell_series,
                         worker=group_result.worker)
            results[key] = result
        stats = self.stats
        stats.warmup_sims += group_result.warmup_sims
        stats.warm_starts += group_result.warm_starts
        stats.warmup_seconds_saved += group_result.warmup_seconds_saved
        if group_result.warm_starts:
            _log.debug(
                "unit of %d cells: 1 warm-up + %d forks (saved %.0fs sim)",
                len(unit), group_result.warm_starts,
                group_result.warmup_seconds_saved,
            )

    # ------------------------------------------------------------------
    def _get_pool(self) -> concurrent.futures.ProcessPoolExecutor:
        """The persistent worker pool, created on first parallel batch."""
        if self._pool is None:
            self._pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.jobs, mp_context=_mp_context(),
            )
        return self._pool

    def _execute_parallel(self, units: List[List[Tuple[str, Cell]]],
                          results: Dict[str, CellResult]) -> None:
        cell_count = sum(len(unit) for unit in units)
        workers = min(self.jobs, len(units))
        _log.debug("fanning %d cells (%d units) over %d workers",
                   cell_count, len(units), workers)
        batch_started = time.perf_counter()
        busy = 0.0
        pool = self._get_pool()
        futures = {
            pool.submit(
                _execute_unit, tuple(cell for _key, cell in unit),
                self.record_series,
            ): unit
            for unit in units
        }
        for future in concurrent.futures.as_completed(futures):
            unit = futures[future]
            group_result = future.result()
            busy += sum(group_result.elapsed)
            self._absorb_unit(unit, group_result, results)
        wall = time.perf_counter() - batch_started
        stats = self.stats
        stats.parallel_batches += 1
        stats.parallel_wall_seconds += wall
        stats.parallel_busy_seconds += busy
        stats.parallel_worker_seconds += workers * wall

    # ------------------------------------------------------------------
    # fabric execution
    # ------------------------------------------------------------------
    def _get_broker(self):
        """The persistent fabric broker, created on first fabric batch."""
        if self._broker is None:
            from repro.runner.fabric import DEFAULT_LEASE_TTL, FabricBroker

            path = self.fabric_queue
            if path is None:
                self._fabric_dir = tempfile.mkdtemp(prefix="repro-fabric-")
                path = os.path.join(self._fabric_dir, "queue.sqlite")
            ttl = (DEFAULT_LEASE_TTL if self.fabric_ttl is None
                   else self.fabric_ttl)
            self._broker = FabricBroker(path, self.fabric, ttl=ttl)
        return self._broker

    def _execute_fabric(self, units: List[List[Tuple[str, Cell]]],
                        results: Dict[str, CellResult]) -> None:
        """Dispatch one batch through the work-stealing lease queue.

        Each unit (a whole warm-start group) becomes one leasable
        queue group; results are absorbed incrementally as workers
        persist them, in completion order.  Bit-identical to the serial
        and pool paths: cells are deterministic and keyed by content
        hash, so placement and steal order cannot change any value.
        """
        if self.record_series:
            raise ValidationError(
                "record_series is not supported through the fabric; "
                "use jobs-based execution to record flight series"
            )
        stats = self.stats
        busy = [0.0]

        def absorb(key, cell, result, elapsed, worker, warm):
            self._finish(key, cell, result, elapsed, worker=worker)
            results[key] = result
            busy[0] += elapsed
            if warm:
                stats.warm_starts += 1
                stats.warmup_seconds_saved += cell.warmup
            elif warm is not None and cell.backend == "packet":
                stats.warmup_sims += 1

        broker = self._get_broker()
        payload = [(warmup_key(unit[0][1]), unit) for unit in units]
        batch = broker.run_batch(payload, absorb)
        stats.fabric_batches += 1
        stats.fabric_requeues += batch.requeued_groups
        stats.parallel_batches += 1
        stats.parallel_wall_seconds += batch.wall_seconds
        stats.parallel_busy_seconds += busy[0]
        stats.parallel_worker_seconds += self.fabric * batch.wall_seconds
        if batch.requeued_groups:
            _log.info("[fabric batch: %d groups re-queued after lease "
                      "expiry]", batch.requeued_groups)

    def _record_store(self, key: str, cell: Cell, result: CellResult,
                      source: str, elapsed=None, series=None,
                      worker=None) -> None:
        """One store row per resolved cell (no-op without a store)."""
        if self.store is not None:
            self.store.record_cell(key, cell, result, source=source,
                                   elapsed=elapsed, series=series,
                                   worker=worker)

    def _finish(self, key: str, cell: Cell, result: CellResult,
                elapsed: float, series=None, worker=None) -> None:
        self._memo[key] = result
        if self.cache is not None:
            self.cache.put(key, result, meta={
                "cell": cell.describe(), "elapsed": elapsed,
            })
        self.stats.record(key, "executed", elapsed)
        self._record_store(key, cell, result, "executed", elapsed, series,
                           worker)
        if cell.backend == "fluid":
            self.stats.fluid_cells += 1
        if result.converged_at is not None:
            self.stats.truncated_cells += 1
            self.stats.truncated_sim_seconds += (
                cell.warmup + cell.window - result.converged_at
            )
        _log.debug("cell %s: executed in %.2fs", key[:12], elapsed)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down the worker pool and fabric broker (if created).

        Idempotent; the runner remains usable afterwards (a new pool or
        broker is created on the next parallel batch).  A private
        temporary fabric queue is deleted; an explicit ``fabric_queue``
        path is left in place -- it is the durable crash-recovery
        record.
        """
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        if self._broker is not None:
            self._broker.close()
            self._broker = None
        if self._fabric_dir is not None:
            shutil.rmtree(self._fabric_dir, ignore_errors=True)
            self._fabric_dir = None

    def __enter__(self) -> "ExperimentRunner":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


# ----------------------------------------------------------------------
# the process-wide default runner
# ----------------------------------------------------------------------
_default_runner: Optional[ExperimentRunner] = None


def get_default_runner() -> ExperimentRunner:
    """The runner measurements use when no explicit one is passed.

    Created lazily from the environment: ``REPRO_JOBS`` sets the worker
    count (default 1; must parse as an integer >= 1),
    ``REPRO_CACHE_DIR`` enables the disk cache at that location
    (default: memo only, no disk cache), ``REPRO_NO_WARM_START=1``
    disables warm-start scheduling, and ``REPRO_FABRIC=N`` routes
    cache-missing batches through the work-stealing fabric with N
    local workers (``REPRO_FABRIC_QUEUE`` points its lease queue at a
    shared path for multi-host runs).
    """
    global _default_runner
    if _default_runner is None:
        _default_runner = ExperimentRunner(
            jobs=env_int("REPRO_JOBS", 1, minimum=1),
            cache_dir=env_str("REPRO_CACHE_DIR") or None,
            warm_start=not env_flag("REPRO_NO_WARM_START"),
            fabric=env_int("REPRO_FABRIC", 0, minimum=0),
            fabric_queue=env_str("REPRO_FABRIC_QUEUE") or None,
        )
    return _default_runner


def set_default_runner(
    runner: Optional[ExperimentRunner],
) -> Optional[ExperimentRunner]:
    """Install *runner* as the default; returns the previous one.

    Pass ``None`` to reset to lazy environment-driven creation.
    """
    global _default_runner
    previous = _default_runner
    _default_runner = runner
    return previous
