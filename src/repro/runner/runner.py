"""The process-pool executor with layered memo + disk caching.

:class:`ExperimentRunner` takes batches of independent
:class:`~repro.runner.cells.Cell` measurements and resolves each from,
in order: an in-process memo (covers e.g. the shared no-attack baseline
of a multi-curve figure), the on-disk :class:`ResultCache`, and finally
execution -- inline, or fanned out across worker processes when
``jobs > 1``.  Identical cells inside one batch are deduplicated before
dispatch, so a figure whose curves share a baseline measures it once.

Determinism: cells carry their own seeds and are rebuilt from scratch
per execution, so worker placement and completion order cannot change
any result -- only wall-clock time.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import logging
import multiprocessing
import os
import time
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.obs import metrics as _obs_metrics
from repro.obs.instrument import publish_runner
from repro.runner.cache import ResultCache, cell_key, code_version
from repro.runner.cells import Cell, CellResult, execute_cell
from repro.util.errors import ValidationError

__all__ = ["CellTiming", "RunnerStats", "ExperimentRunner",
           "get_default_runner", "set_default_runner"]

_log = logging.getLogger("repro.runner")


@dataclasses.dataclass(frozen=True)
class CellTiming:
    """How one cell was resolved and how long it took."""

    key: str
    source: str  #: "executed", "cache", or "memo"
    elapsed: float


@dataclasses.dataclass
class RunnerStats:
    """Cumulative per-runner accounting (memo/cache hits, sim time).

    Beyond the hit counters this tracks the telemetry the observability
    layer reports: distinct scenario seeds fanned out, and -- for
    parallel batches -- busy worker-seconds against available
    worker-seconds (:attr:`worker_utilization`).
    """

    executed: int = 0
    cache_hits: int = 0
    memo_hits: int = 0
    executed_seconds: float = 0.0
    timings: List[CellTiming] = dataclasses.field(default_factory=list)
    #: distinct platform seeds seen across all measured cells.
    seeds: Set[int] = dataclasses.field(default_factory=set)
    parallel_batches: int = 0
    #: wall-clock seconds spent inside parallel batches.
    parallel_wall_seconds: float = 0.0
    #: sum of per-cell execution seconds inside parallel batches.
    parallel_busy_seconds: float = 0.0
    #: workers x wall for each parallel batch (the available capacity).
    parallel_worker_seconds: float = 0.0

    def record(self, key: str, source: str, elapsed: float = 0.0) -> None:
        self.timings.append(CellTiming(key=key, source=source, elapsed=elapsed))
        if source == "executed":
            self.executed += 1
            self.executed_seconds += elapsed
        elif source == "cache":
            self.cache_hits += 1
        else:
            self.memo_hits += 1

    @property
    def cells(self) -> int:
        return self.executed + self.cache_hits + self.memo_hits

    @property
    def hit_ratio(self) -> float:
        """Fraction of cells answered without execution (cache + memo)."""
        total = self.cells
        if total == 0:
            return 0.0
        return (self.cache_hits + self.memo_hits) / total

    @property
    def worker_utilization(self) -> Optional[float]:
        """Busy / available worker time over parallel batches, or None.

        ``None`` until at least one multi-cell batch has fanned out --
        serial execution has no idle workers to account for.
        """
        if self.parallel_worker_seconds <= 0.0:
            return None
        return self.parallel_busy_seconds / self.parallel_worker_seconds

    def checkpoint(self) -> Tuple[int, int, int, float]:
        """An opaque marker for :meth:`since` / :meth:`delta_snapshot`."""
        return (self.executed, self.cache_hits, self.memo_hits,
                self.executed_seconds)

    def delta_snapshot(self, mark: Tuple[int, int, int, float]) -> dict:
        """JSON-ready accounting of the work done since *mark*."""
        executed = self.executed - mark[0]
        cached = self.cache_hits - mark[1]
        memo = self.memo_hits - mark[2]
        total = executed + cached + memo
        return {
            "cells": total,
            "executed": executed,
            "cache_hits": cached,
            "memo_hits": memo,
            "hit_ratio": ((cached + memo) / total) if total else 0.0,
            "executed_seconds": self.executed_seconds - mark[3],
        }

    def snapshot(self) -> dict:
        """JSON-ready cumulative accounting (feeds run logs / metrics)."""
        snap = self.delta_snapshot((0, 0, 0, 0.0))
        snap.update({
            "seed_fanout": len(self.seeds),
            "parallel_batches": self.parallel_batches,
            "parallel_wall_seconds": self.parallel_wall_seconds,
            "parallel_busy_seconds": self.parallel_busy_seconds,
            "worker_utilization": self.worker_utilization,
        })
        return snap

    def since(self, mark: Tuple[int, int, int, float]) -> str:
        """Human-readable delta summary since *mark*."""
        delta = self.delta_snapshot(mark)
        return (
            f"cells: {delta['cells']} ({delta['executed']} executed in "
            f"{delta['executed_seconds']:.1f}s sim, "
            f"{delta['cache_hits']} cache hits, "
            f"{delta['memo_hits']} memo hits; "
            f"{100.0 * delta['hit_ratio']:.0f}% hit ratio)"
        )

    def summary(self) -> str:
        return self.since((0, 0, 0, 0.0))


def _timed_execute(cell: Cell) -> Tuple[CellResult, float]:
    started = time.perf_counter()
    result = execute_cell(cell)
    return result, time.perf_counter() - started


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


class ExperimentRunner:
    """Parallel, cached execution of measurement cells.

    Args:
        jobs: worker processes for cache-missing cells; 1 runs inline.
        cache_dir: directory for the persistent result cache, or
            ``None`` to disable disk caching (the in-process memo is
            always on).
    """

    def __init__(self, *, jobs: int = 1, cache_dir=None) -> None:
        if jobs < 1:
            raise ValidationError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache = ResultCache(cache_dir) if cache_dir is not None else None
        self.stats = RunnerStats()
        self._memo: Dict[str, CellResult] = {}

    # ------------------------------------------------------------------
    def measure(self, cell: Cell) -> CellResult:
        """Resolve one cell (memo -> disk cache -> execute)."""
        return self.measure_many([cell])[0]

    def measure_goodput(self, cell: Cell) -> float:
        """Convenience: :meth:`measure` and return the goodput bytes."""
        return self.measure(cell).goodput_bytes

    def measure_many(self, cells: Sequence[Cell]) -> List[CellResult]:
        """Resolve a batch, fanning cache misses out across workers.

        Results come back in input order.  Duplicate cells (same content
        key) are measured once.
        """
        version = code_version()
        keys = [cell_key(cell, version) for cell in cells]
        results: Dict[str, CellResult] = {}
        pending: Dict[str, Cell] = {}
        for key, cell in zip(keys, cells):
            self.stats.seeds.add(cell.platform.seed)
            if key in results or key in pending:
                continue
            memo = self._memo.get(key)
            if memo is not None:
                results[key] = memo
                self.stats.record(key, "memo")
                _log.debug("cell %s: memo hit", key[:12])
                continue
            if self.cache is not None:
                hit = self.cache.get(key)
                if hit is not None:
                    results[key] = self._memo[key] = hit
                    self.stats.record(key, "cache")
                    _log.debug("cell %s: cache hit", key[:12])
                    continue
            pending[key] = cell

        if pending:
            if self.jobs > 1 and len(pending) > 1:
                self._execute_parallel(pending, results)
            else:
                for key, cell in pending.items():
                    result, elapsed = _timed_execute(cell)
                    self._finish(key, cell, result, elapsed)
                    results[key] = result
        # Per-batch (never per-cell) telemetry refresh; a no-op without
        # an active registry.
        publish_runner(_obs_metrics.active(), self.stats.snapshot())
        return [results[key] for key in keys]

    # ------------------------------------------------------------------
    def _execute_parallel(self, pending: Dict[str, Cell],
                          results: Dict[str, CellResult]) -> None:
        workers = min(self.jobs, len(pending))
        _log.debug("fanning %d cells over %d workers", len(pending), workers)
        batch_started = time.perf_counter()
        busy = 0.0
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=workers, mp_context=_mp_context(),
        ) as pool:
            futures = {
                pool.submit(_timed_execute, cell): key
                for key, cell in pending.items()
            }
            for future in concurrent.futures.as_completed(futures):
                key = futures[future]
                result, elapsed = future.result()
                busy += elapsed
                self._finish(key, pending[key], result, elapsed)
                results[key] = result
        wall = time.perf_counter() - batch_started
        stats = self.stats
        stats.parallel_batches += 1
        stats.parallel_wall_seconds += wall
        stats.parallel_busy_seconds += busy
        stats.parallel_worker_seconds += workers * wall

    def _finish(self, key: str, cell: Cell, result: CellResult,
                elapsed: float) -> None:
        self._memo[key] = result
        if self.cache is not None:
            self.cache.put(key, result, meta={
                "cell": cell.describe(), "elapsed": elapsed,
            })
        self.stats.record(key, "executed", elapsed)
        _log.debug("cell %s: executed in %.2fs", key[:12], elapsed)


# ----------------------------------------------------------------------
# the process-wide default runner
# ----------------------------------------------------------------------
_default_runner: Optional[ExperimentRunner] = None


def get_default_runner() -> ExperimentRunner:
    """The runner measurements use when no explicit one is passed.

    Created lazily from the environment: ``REPRO_JOBS`` sets the worker
    count (default 1) and ``REPRO_CACHE_DIR`` enables the disk cache at
    that location (default: memo only, no disk cache).
    """
    global _default_runner
    if _default_runner is None:
        jobs = int(os.environ.get("REPRO_JOBS", "1") or 1)
        cache_dir = os.environ.get("REPRO_CACHE_DIR") or None
        _default_runner = ExperimentRunner(jobs=jobs, cache_dir=cache_dir)
    return _default_runner


def set_default_runner(
    runner: Optional[ExperimentRunner],
) -> Optional[ExperimentRunner]:
    """Install *runner* as the default; returns the previous one.

    Pass ``None`` to reset to lazy environment-driven creation.
    """
    global _default_runner
    previous = _default_runner
    _default_runner = runner
    return previous
