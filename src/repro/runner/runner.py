"""The process-pool executor with layered memo + disk caching.

:class:`ExperimentRunner` takes batches of independent
:class:`~repro.runner.cells.Cell` measurements and resolves each from,
in order: an in-process memo (covers e.g. the shared no-attack baseline
of a multi-curve figure), the on-disk :class:`ResultCache`, and finally
execution -- inline, or fanned out across worker processes when
``jobs > 1``.  Identical cells inside one batch are deduplicated before
dispatch, so a figure whose curves share a baseline measures it once.

Determinism: cells carry their own seeds and are rebuilt from scratch
per execution, so worker placement and completion order cannot change
any result -- only wall-clock time.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import multiprocessing
import os
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.runner.cache import ResultCache, cell_key, code_version
from repro.runner.cells import Cell, CellResult, execute_cell
from repro.util.errors import ValidationError

__all__ = ["CellTiming", "RunnerStats", "ExperimentRunner",
           "get_default_runner", "set_default_runner"]


@dataclasses.dataclass(frozen=True)
class CellTiming:
    """How one cell was resolved and how long it took."""

    key: str
    source: str  #: "executed", "cache", or "memo"
    elapsed: float


@dataclasses.dataclass
class RunnerStats:
    """Cumulative per-runner accounting (memo/cache hits, sim time)."""

    executed: int = 0
    cache_hits: int = 0
    memo_hits: int = 0
    executed_seconds: float = 0.0
    timings: List[CellTiming] = dataclasses.field(default_factory=list)

    def record(self, key: str, source: str, elapsed: float = 0.0) -> None:
        self.timings.append(CellTiming(key=key, source=source, elapsed=elapsed))
        if source == "executed":
            self.executed += 1
            self.executed_seconds += elapsed
        elif source == "cache":
            self.cache_hits += 1
        else:
            self.memo_hits += 1

    @property
    def cells(self) -> int:
        return self.executed + self.cache_hits + self.memo_hits

    def checkpoint(self) -> Tuple[int, int, int, float]:
        """An opaque marker for :meth:`since`."""
        return (self.executed, self.cache_hits, self.memo_hits,
                self.executed_seconds)

    def since(self, mark: Tuple[int, int, int, float]) -> str:
        """Human-readable delta summary since *mark*."""
        executed = self.executed - mark[0]
        cached = self.cache_hits - mark[1]
        memo = self.memo_hits - mark[2]
        seconds = self.executed_seconds - mark[3]
        total = executed + cached + memo
        return (
            f"cells: {total} ({executed} executed in {seconds:.1f}s sim, "
            f"{cached} cache hits, {memo} memo hits)"
        )

    def summary(self) -> str:
        return self.since((0, 0, 0, 0.0))


def _timed_execute(cell: Cell) -> Tuple[CellResult, float]:
    started = time.perf_counter()
    result = execute_cell(cell)
    return result, time.perf_counter() - started


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


class ExperimentRunner:
    """Parallel, cached execution of measurement cells.

    Args:
        jobs: worker processes for cache-missing cells; 1 runs inline.
        cache_dir: directory for the persistent result cache, or
            ``None`` to disable disk caching (the in-process memo is
            always on).
    """

    def __init__(self, *, jobs: int = 1, cache_dir=None) -> None:
        if jobs < 1:
            raise ValidationError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache = ResultCache(cache_dir) if cache_dir is not None else None
        self.stats = RunnerStats()
        self._memo: Dict[str, CellResult] = {}

    # ------------------------------------------------------------------
    def measure(self, cell: Cell) -> CellResult:
        """Resolve one cell (memo -> disk cache -> execute)."""
        return self.measure_many([cell])[0]

    def measure_goodput(self, cell: Cell) -> float:
        """Convenience: :meth:`measure` and return the goodput bytes."""
        return self.measure(cell).goodput_bytes

    def measure_many(self, cells: Sequence[Cell]) -> List[CellResult]:
        """Resolve a batch, fanning cache misses out across workers.

        Results come back in input order.  Duplicate cells (same content
        key) are measured once.
        """
        version = code_version()
        keys = [cell_key(cell, version) for cell in cells]
        results: Dict[str, CellResult] = {}
        pending: Dict[str, Cell] = {}
        for key, cell in zip(keys, cells):
            if key in results or key in pending:
                continue
            memo = self._memo.get(key)
            if memo is not None:
                results[key] = memo
                self.stats.record(key, "memo")
                continue
            if self.cache is not None:
                hit = self.cache.get(key)
                if hit is not None:
                    results[key] = self._memo[key] = hit
                    self.stats.record(key, "cache")
                    continue
            pending[key] = cell

        if pending:
            if self.jobs > 1 and len(pending) > 1:
                self._execute_parallel(pending, results)
            else:
                for key, cell in pending.items():
                    result, elapsed = _timed_execute(cell)
                    self._finish(key, cell, result, elapsed)
                    results[key] = result
        return [results[key] for key in keys]

    # ------------------------------------------------------------------
    def _execute_parallel(self, pending: Dict[str, Cell],
                          results: Dict[str, CellResult]) -> None:
        workers = min(self.jobs, len(pending))
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=workers, mp_context=_mp_context(),
        ) as pool:
            futures = {
                pool.submit(_timed_execute, cell): key
                for key, cell in pending.items()
            }
            for future in concurrent.futures.as_completed(futures):
                key = futures[future]
                result, elapsed = future.result()
                self._finish(key, pending[key], result, elapsed)
                results[key] = result

    def _finish(self, key: str, cell: Cell, result: CellResult,
                elapsed: float) -> None:
        self._memo[key] = result
        if self.cache is not None:
            self.cache.put(key, result, meta={
                "cell": cell.describe(), "elapsed": elapsed,
            })
        self.stats.record(key, "executed", elapsed)


# ----------------------------------------------------------------------
# the process-wide default runner
# ----------------------------------------------------------------------
_default_runner: Optional[ExperimentRunner] = None


def get_default_runner() -> ExperimentRunner:
    """The runner measurements use when no explicit one is passed.

    Created lazily from the environment: ``REPRO_JOBS`` sets the worker
    count (default 1) and ``REPRO_CACHE_DIR`` enables the disk cache at
    that location (default: memo only, no disk cache).
    """
    global _default_runner
    if _default_runner is None:
        jobs = int(os.environ.get("REPRO_JOBS", "1") or 1)
        cache_dir = os.environ.get("REPRO_CACHE_DIR") or None
        _default_runner = ExperimentRunner(jobs=jobs, cache_dir=cache_dir)
    return _default_runner


def set_default_runner(
    runner: Optional[ExperimentRunner],
) -> Optional[ExperimentRunner]:
    """Install *runner* as the default; returns the previous one.

    Pass ``None`` to reset to lazy environment-driven creation.
    """
    global _default_runner
    previous = _default_runner
    _default_runner = runner
    return previous
