"""Persistent on-disk result cache keyed by scenario content hashes.

A cache key is the SHA-256 of the cell's full serialized identity --
platform config (topology kind, flow count, queue discipline, TCP
stack), pulse train or deployment, warmup, window, seed, and detector
settings -- combined with a *code-version fingerprint*: a hash over the
source of every module the measurement depends on (``repro.sim``,
``repro.testbed``, ``repro.core``, ``repro.detection``, and the cell
executor itself).  Editing any simulation code therefore invalidates
prior entries automatically; there is no manual versioning to forget.

Entries are one small JSON file each, sharded two levels deep by key
prefix, written atomically (temp file + rename) so concurrent workers
and concurrent sweep invocations can share one cache directory.
Floats survive the JSON round trip bit-exactly (``repr``-based shortest
round-trip encoding), so replayed results equal executed ones.
"""

from __future__ import annotations

import functools
import hashlib
import json
import os
import pathlib
import tempfile
from typing import Optional

from repro.runner.cells import Cell, CellResult
from repro.util.env import env_str

__all__ = ["ResultCache", "cell_key", "code_version", "default_cache_dir"]

#: Packages/modules whose source participates in the version fingerprint.
_VERSIONED = (
    "sim",
    "testbed",
    "core",
    "detection",
    "runner/cells.py",
)

#: The fluid (ODE) backend lives in one module the packet executor
#: never imports (``execute_cell`` loads it lazily).  Packet cells
#: exclude it from their fingerprint, so recalibrating the fluid model
#: cannot invalidate expensive packet-level results; fluid cells
#: include it, so a calibration edit re-runs exactly the fluid entries.
_FLUID_MODULE = "sim/fluid.py"


@functools.lru_cache(maxsize=None)
def code_version(backend: str = "packet") -> str:
    """Fingerprint of the source tree *backend* measurements depend on."""
    import repro

    base = pathlib.Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for entry in _VERSIONED:
        target = base / entry
        if target.is_dir():
            files = sorted(target.rglob("*.py"))
        else:
            files = [target]
        for path in files:
            relative = str(path.relative_to(base))
            if backend == "packet" and relative == _FLUID_MODULE:
                continue
            digest.update(relative.encode())
            digest.update(path.read_bytes())
    return digest.hexdigest()[:16]


def cell_key(cell: Cell, version: Optional[str] = None) -> str:
    """The cache key of *cell*: content hash of scenario + code version."""
    payload = {
        "cell": cell.describe(),
        "code": version if version is not None else code_version(cell.backend),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def default_cache_dir() -> pathlib.Path:
    """``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro-pdos``."""
    env = env_str("REPRO_CACHE_DIR")
    if env:
        return pathlib.Path(env)
    xdg = env_str("XDG_CACHE_HOME")
    root = pathlib.Path(xdg) if xdg else pathlib.Path.home() / ".cache"
    return root / "repro-pdos"


class ResultCache:
    """A directory of cached :class:`CellResult` entries."""

    def __init__(self, directory) -> None:
        self.directory = pathlib.Path(directory)

    def _path(self, key: str) -> pathlib.Path:
        return self.directory / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[CellResult]:
        """The cached result, or ``None`` on miss (or a corrupt entry)."""
        try:
            payload = json.loads(self._path(key).read_text())
            flagged = payload["flagged_sources"]
            converged = payload.get("converged_at")
            return CellResult(
                goodput_bytes=float(payload["goodput_bytes"]),
                flagged_sources=None if flagged is None else int(flagged),
                converged_at=None if converged is None else float(converged),
            )
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def put(self, key: str, result: CellResult,
            meta: Optional[dict] = None) -> None:
        """Store *result* atomically; *meta* rides along for inspection."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "goodput_bytes": result.goodput_bytes,
            "flagged_sources": result.flagged_sources,
            "converged_at": result.converged_at,
        }
        if meta:
            payload["meta"] = meta
        handle = tempfile.NamedTemporaryFile(
            "w", dir=path.parent, suffix=".tmp", delete=False,
        )
        try:
            with handle:
                handle.write(json.dumps(payload, sort_keys=True))
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("??/*.json"))
