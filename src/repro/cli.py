"""Command-line experiment runner: ``python -m repro.cli <experiment>``.

Runs any of the reproduction's experiments from the shell and prints
the rendered series -- the same output the benchmark harness archives.

Examples::

    python -m repro.cli list
    python -m repro.cli fig03a
    python -m repro.cli fig06 --full
    python -m repro.cli all -o results/

``--full`` sets ``REPRO_FULL=1`` for the invocation (paper-scale
sweeps); ``--fast`` sets ``REPRO_FAST=1``, routing gain sweeps through
the adaptive experiment planner (a fluid-model pre-pass that localizes
γ* in milliseconds before any packet cell runs, coarse-to-fine γ
refinement, CI-driven seed allocation, convergence early-exit --
approximate but several times faster, under distinct cache keys);
``--no-fluid`` keeps the planner but skips its fluid pre-pass;
``-o DIR`` additionally writes each rendering to ``DIR/<name>.txt``.

``--jobs N`` fans independent measurement cells out over N worker
processes (one persistent pool per invocation); ``--cache-dir DIR`` /
``--no-cache`` control the on-disk result cache (default:
``$XDG_CACHE_HOME/repro-pdos``).  Cells sharing an attack-free warm-up
prefix simulate it once and fork from a frozen snapshot;
``--no-warm-start`` re-simulates every warm-up instead.  Results are
bit-identical regardless of job count, cache state, or warm-start mode.

``--scheduler {auto,heap,calendar}`` selects the engine's event-scheduler
backend for the invocation (sets ``REPRO_SCHEDULER``); dispatch is
bit-identical across backends, so this is purely a performance knob.

``--profile`` wraps each experiment in :func:`repro.sim.profile.profile_run`
and prints wall time, simulator events/sec, and the hottest functions
after the rendering.  Profile the default serial mode (``--jobs 1``,
ideally ``--no-cache``): cells executed by worker processes or answered
from the cache dispatch no simulator events in this process.

Observability: diagnostics go through the ``repro`` logger (``-v`` for
per-cell debug lines, ``-q`` for renderings only), and
``repro <experiment> --metrics [PATH]`` additionally enables the metrics
registry and appends one JSON-lines record per experiment -- engine,
link, TCP, and runner telemetry plus timings and the git SHA -- to
*PATH* (default ``runlog.jsonl``).  ``repro obs report LOG [LOG...]``
renders a summary table from such logs.  Note: cells answered from the
cache or executed in worker processes contribute runner metrics but no
in-process engine/link/TCP metrics; run with ``--no-cache`` serially
for a full simulation snapshot.
"""

from __future__ import annotations

import argparse
import logging
import os
import pathlib
import sys
import time
from typing import Callable, Dict

__all__ = ["main", "EXPERIMENTS"]

_log = logging.getLogger("repro.cli")

#: where ``--metrics`` writes when no path is given.
DEFAULT_RUNLOG = pathlib.Path("runlog.jsonl")


def _fig06():  # deferred imports keep `--help` fast
    from repro.experiments import run_gain_figure
    return run_gain_figure(6).render()


def _fig07():
    from repro.experiments import run_gain_figure
    return run_gain_figure(7).render()


def _fig08():
    from repro.experiments import run_gain_figure
    return run_gain_figure(8).render()


def _fig09():
    from repro.experiments import run_gain_figure
    return run_gain_figure(9).render()


def _fig01():
    from repro.experiments import run_fig01
    return run_fig01().render()


def _fig02():
    from repro.experiments import run_fig02
    return run_fig02().render()


def _fig03a():
    from repro.experiments import run_fig03_ns2
    return run_fig03_ns2().render()


def _fig03b():
    from repro.experiments import run_fig03_testbed
    return run_fig03_testbed().render()


def _fig04():
    from repro.experiments import run_fig04
    return run_fig04().render()


def _fig10():
    from repro.experiments import run_fig10
    return run_fig10().render()


def _fig12():
    from repro.experiments import run_fig12
    return run_fig12().render()


def _ablation_queues():
    from repro.experiments import run_queue_ablation
    return run_queue_ablation().render()


def _ablation_model():
    from repro.experiments import run_model_ablation
    return run_model_ablation().render()


def _detection():
    from repro.experiments import run_detection_evasion
    return run_detection_evasion().render()


def _defense_rto():
    from repro.experiments import run_rto_randomization
    return run_rto_randomization().render()


def _defense_choke():
    from repro.experiments import run_aqm_hardening
    return run_aqm_hardening().render()


def _ablation_victim():
    from repro.experiments import run_victim_ablation
    return run_victim_ablation().render()


def _flow_damage():
    from repro.experiments import run_flow_damage
    return run_flow_damage().render()


def _distributed():
    from repro.experiments import run_distributed_attack
    return run_distributed_attack().render()


def _mice_elephants():
    from repro.experiments import run_mice_elephants
    return run_mice_elephants().render()


def _replication():
    from repro.experiments.replication import replicate_gain_sweep
    return replicate_gain_sweep().render()


#: experiment name -> zero-argument runner returning rendered text.
EXPERIMENTS: Dict[str, Callable[[], str]] = {
    "fig01": _fig01,
    "fig02": _fig02,
    "fig03a": _fig03a,
    "fig03b": _fig03b,
    "fig04": _fig04,
    "fig06": _fig06,
    "fig07": _fig07,
    "fig08": _fig08,
    "fig09": _fig09,
    "fig10": _fig10,
    "fig12": _fig12,
    "ablation-queues": _ablation_queues,
    "ablation-model": _ablation_model,
    "ablation-victim": _ablation_victim,
    "flow-damage": _flow_damage,
    "distributed": _distributed,
    "mice-elephants": _mice_elephants,
    "detection": _detection,
    "defense-rto": _defense_rto,
    "defense-choke": _defense_choke,
    "replication": _replication,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce the figures of 'Optimizing the Pulsing "
            "Denial-of-Service Attacks' (Luo & Chang, DSN 2005)."
        ),
        epilog=(
            "Run-log tooling: 'repro obs report LOG [LOG...]' renders a "
            "summary table from JSON-lines run logs written by --metrics."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all", "list"],
        help="experiment to run ('list' prints the catalogue, 'all' runs "
             "everything)",
    )
    parser.add_argument(
        "--full", action="store_true",
        help="paper-scale sweeps (sets REPRO_FULL=1; much slower)",
    )
    parser.add_argument(
        "--fast", action="store_true",
        help="adaptive experiment planner for gain sweeps (sets "
             "REPRO_FAST=1): a fluid-model pre-pass localizes gamma* in "
             "milliseconds, then packet-level cells confirm only the "
             "peak neighborhood, with coarse-to-fine gamma refinement, "
             "CI-driven seed allocation, and in-sim convergence "
             "early-exit; approximate results under distinct cache keys",
    )
    parser.add_argument(
        "--no-fluid", action="store_true",
        help="with --fast, skip the fluid-model pre-pass (sets "
             "REPRO_NO_FLUID=1): the planner explores the full "
             "packet-level coarse grid instead",
    )
    parser.add_argument(
        "--scheduler", choices=["auto", "heap", "calendar"], default=None,
        help="event-scheduler backend for every simulator built during "
             "the invocation (sets REPRO_SCHEDULER): 'heap' is the "
             "binary-heap baseline, 'calendar' the calendar queue for "
             "very deep pending sets, 'auto' (engine default) starts on "
             "the heap and migrates past the measured crossover; "
             "results are bit-identical across backends",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="run each experiment under cProfile and print wall time, "
             "simulator events/sec, and the hottest functions (results "
             "are unchanged; profiling is observation only)",
    )
    parser.add_argument(
        "-o", "--output-dir", type=pathlib.Path, default=None,
        help="also write each rendering to DIR/<name>.txt",
    )
    parser.add_argument(
        "-j", "--jobs", type=int, default=1, metavar="N",
        help="run independent measurement cells on N worker processes "
             "(default: 1, serial)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the on-disk result cache for this invocation",
    )
    parser.add_argument(
        "--no-warm-start", action="store_true",
        help="disable warm-start checkpointing (simulate every cell's "
             "warm-up from scratch instead of forking a shared snapshot; "
             "results are bit-identical either way)",
    )
    parser.add_argument(
        "--cache-dir", type=pathlib.Path, default=None, metavar="DIR",
        help="result-cache directory (default: $REPRO_CACHE_DIR, else "
             "$XDG_CACHE_HOME/repro-pdos)",
    )
    parser.add_argument(
        "--metrics", type=pathlib.Path, nargs="?", const=DEFAULT_RUNLOG,
        default=None, metavar="PATH",
        help="enable the metrics registry and append one JSON-lines "
             "run-log record per experiment to PATH (default: "
             f"{DEFAULT_RUNLOG}); place the flag after the experiment "
             "name when omitting PATH",
    )
    verbosity = parser.add_mutually_exclusive_group()
    verbosity.add_argument(
        "-v", "--verbose", action="store_true",
        help="debug logging (per-cell cache/execution lines)",
    )
    verbosity.add_argument(
        "-q", "--quiet", action="store_true",
        help="suppress progress/timing lines (renderings only)",
    )
    return parser


def _configure_logging(*, verbose: bool = False, quiet: bool = False) -> None:
    """Point the ``repro`` logger at the current stdout.

    Recreated on every :func:`main` call so repeated in-process
    invocations (tests, notebooks) follow stream redirection; renderings
    stay on plain ``print`` -- they are the program's output, while log
    lines are its diagnostics.
    """
    level = logging.DEBUG if verbose else (
        logging.WARNING if quiet else logging.INFO)
    logger = logging.getLogger("repro")
    logger.handlers.clear()
    handler = logging.StreamHandler(sys.stdout)
    handler.setFormatter(logging.Formatter("%(message)s"))
    logger.addHandler(handler)
    logger.setLevel(level)
    logger.propagate = False


def _make_runner(args):  # deferred import keeps `--help` fast
    from repro.runner import ExperimentRunner, check_jobs, default_cache_dir
    # Validated here rather than via an argparse type callable:
    # ValidationError is a ValueError, which argparse would swallow into
    # a bare exit-2 usage message instead of naming flag and value.
    check_jobs(args.jobs, source="--jobs")
    if args.no_cache:
        cache_dir = None
    elif args.cache_dir is not None:
        cache_dir = args.cache_dir
    else:
        cache_dir = default_cache_dir()
    return ExperimentRunner(jobs=args.jobs, cache_dir=cache_dir,
                            warm_start=not args.no_warm_start)


def _run_one(name: str, output_dir, runner=None, profile=False,
             writer=None) -> None:
    from repro.obs import metrics as obs_metrics

    started = time.time()
    mark = runner.stats.checkpoint() if runner is not None else None
    # A fresh registry per experiment: each run-log record then snapshots
    # exactly one experiment's telemetry, not the whole invocation's.
    registry = obs_metrics.enable() if writer is not None else None
    try:
        if profile:
            from repro.sim.profile import profile_run
            text, report = profile_run(EXPERIMENTS[name], label=name)
        else:
            text = EXPERIMENTS[name]()
            report = None
    finally:
        if registry is not None:
            obs_metrics.disable()
    elapsed = time.time() - started
    print(text)
    if report is not None:
        print(report.render())
    if mark is not None:
        _log.info("[%s: %.1fs; %s]\n", name, elapsed,
                  runner.stats.since(mark))
    else:
        _log.info("[%s: %.1fs]\n", name, elapsed)
    if writer is not None:
        from repro.obs.runlog import base_record

        record = base_record("experiment", name)
        record["elapsed_seconds"] = elapsed
        if mark is not None:
            record["runner"] = runner.stats.delta_snapshot(mark)
        record["metrics"] = registry.snapshot()
        writer.write(record)
    if output_dir is not None:
        output_dir.mkdir(parents=True, exist_ok=True)
        (output_dir / f"{name}.txt").write_text(text + "\n")


def _obs_main(argv) -> int:
    """The ``repro obs ...`` tooling subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro obs",
        description="Inspect JSON-lines run logs written by --metrics.",
    )
    commands = parser.add_subparsers(dest="command", required=True)
    report = commands.add_parser(
        "report", help="render a summary table from one or more run logs",
    )
    report.add_argument(
        "logs", nargs="+", type=pathlib.Path,
        help="run-log files (JSON lines, appended across invocations)",
    )
    args = parser.parse_args(argv)
    from repro.obs.report import render_report

    missing = [path for path in args.logs if not path.is_file()]
    if missing:
        print("no such run log: " + ", ".join(str(p) for p in missing),
              file=sys.stderr)
        return 1
    print(render_report(args.logs))
    return 0


def main(argv=None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "obs":
        return _obs_main(argv[1:])
    args = build_parser().parse_args(argv)
    _configure_logging(verbose=args.verbose, quiet=args.quiet)
    if args.experiment == "list":
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0
    if args.full:
        os.environ["REPRO_FULL"] = "1"
    if args.fast:
        os.environ["REPRO_FAST"] = "1"
    if args.no_fluid:
        os.environ["REPRO_NO_FLUID"] = "1"
    if args.scheduler is not None:
        os.environ["REPRO_SCHEDULER"] = args.scheduler
    from repro.runner import set_default_runner
    runner = _make_runner(args)
    set_default_runner(runner)
    writer = None
    if args.metrics is not None:
        from repro.obs.runlog import RunLogWriter
        writer = RunLogWriter(args.metrics)
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    try:
        for name in names:
            _run_one(name, args.output_dir, runner, profile=args.profile,
                     writer=writer)
    finally:
        # Tear down the persistent worker pool once all experiments in
        # this invocation have drained it.
        runner.close()
    _log.info("[total: %s]", runner.stats.summary())
    if writer is not None:
        from repro.obs.runlog import base_record

        record = base_record("run", args.experiment)
        record["experiments"] = names
        record["runner"] = runner.stats.snapshot()
        writer.write(record)
        _log.info("[run log: %d records -> %s]",
                  writer.records_written, writer.path)
    return 0


if __name__ == "__main__":
    sys.exit(main())
