"""Command-line experiment runner: ``python -m repro.cli <experiment>``.

Runs any of the reproduction's experiments from the shell and prints
the rendered series -- the same output the benchmark harness archives.

Examples::

    python -m repro.cli list
    python -m repro.cli fig03a
    python -m repro.cli fig06 --full
    python -m repro.cli all -o results/

``--full`` sets ``REPRO_FULL=1`` for the invocation (paper-scale
sweeps); ``-o DIR`` additionally writes each rendering to
``DIR/<name>.txt``.

``--jobs N`` fans independent measurement cells out over N worker
processes; ``--cache-dir DIR`` / ``--no-cache`` control the on-disk
result cache (default: ``$XDG_CACHE_HOME/repro-pdos``).  Results are
bit-identical regardless of job count or cache state.

``--profile`` wraps each experiment in :func:`repro.sim.profile.profile_run`
and prints wall time, simulator events/sec, and the hottest functions
after the rendering.  Profile the default serial mode (``--jobs 1``,
ideally ``--no-cache``): cells executed by worker processes or answered
from the cache dispatch no simulator events in this process.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import sys
import time
from typing import Callable, Dict

__all__ = ["main", "EXPERIMENTS"]


def _fig06():  # deferred imports keep `--help` fast
    from repro.experiments import run_gain_figure
    return run_gain_figure(6).render()


def _fig07():
    from repro.experiments import run_gain_figure
    return run_gain_figure(7).render()


def _fig08():
    from repro.experiments import run_gain_figure
    return run_gain_figure(8).render()


def _fig09():
    from repro.experiments import run_gain_figure
    return run_gain_figure(9).render()


def _fig01():
    from repro.experiments import run_fig01
    return run_fig01().render()


def _fig02():
    from repro.experiments import run_fig02
    return run_fig02().render()


def _fig03a():
    from repro.experiments import run_fig03_ns2
    return run_fig03_ns2().render()


def _fig03b():
    from repro.experiments import run_fig03_testbed
    return run_fig03_testbed().render()


def _fig04():
    from repro.experiments import run_fig04
    return run_fig04().render()


def _fig10():
    from repro.experiments import run_fig10
    return run_fig10().render()


def _fig12():
    from repro.experiments import run_fig12
    return run_fig12().render()


def _ablation_queues():
    from repro.experiments import run_queue_ablation
    return run_queue_ablation().render()


def _ablation_model():
    from repro.experiments import run_model_ablation
    return run_model_ablation().render()


def _detection():
    from repro.experiments import run_detection_evasion
    return run_detection_evasion().render()


def _defense_rto():
    from repro.experiments import run_rto_randomization
    return run_rto_randomization().render()


def _defense_choke():
    from repro.experiments import run_aqm_hardening
    return run_aqm_hardening().render()


def _ablation_victim():
    from repro.experiments import run_victim_ablation
    return run_victim_ablation().render()


def _flow_damage():
    from repro.experiments import run_flow_damage
    return run_flow_damage().render()


def _distributed():
    from repro.experiments import run_distributed_attack
    return run_distributed_attack().render()


def _mice_elephants():
    from repro.experiments import run_mice_elephants
    return run_mice_elephants().render()


def _replication():
    from repro.experiments.replication import replicate_gain_sweep
    return replicate_gain_sweep().render()


#: experiment name -> zero-argument runner returning rendered text.
EXPERIMENTS: Dict[str, Callable[[], str]] = {
    "fig01": _fig01,
    "fig02": _fig02,
    "fig03a": _fig03a,
    "fig03b": _fig03b,
    "fig04": _fig04,
    "fig06": _fig06,
    "fig07": _fig07,
    "fig08": _fig08,
    "fig09": _fig09,
    "fig10": _fig10,
    "fig12": _fig12,
    "ablation-queues": _ablation_queues,
    "ablation-model": _ablation_model,
    "ablation-victim": _ablation_victim,
    "flow-damage": _flow_damage,
    "distributed": _distributed,
    "mice-elephants": _mice_elephants,
    "detection": _detection,
    "defense-rto": _defense_rto,
    "defense-choke": _defense_choke,
    "replication": _replication,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce the figures of 'Optimizing the Pulsing "
            "Denial-of-Service Attacks' (Luo & Chang, DSN 2005)."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all", "list"],
        help="experiment to run ('list' prints the catalogue, 'all' runs "
             "everything)",
    )
    parser.add_argument(
        "--full", action="store_true",
        help="paper-scale sweeps (sets REPRO_FULL=1; much slower)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="run each experiment under cProfile and print wall time, "
             "simulator events/sec, and the hottest functions (results "
             "are unchanged; profiling is observation only)",
    )
    parser.add_argument(
        "-o", "--output-dir", type=pathlib.Path, default=None,
        help="also write each rendering to DIR/<name>.txt",
    )
    parser.add_argument(
        "-j", "--jobs", type=int, default=1, metavar="N",
        help="run independent measurement cells on N worker processes "
             "(default: 1, serial)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the on-disk result cache for this invocation",
    )
    parser.add_argument(
        "--cache-dir", type=pathlib.Path, default=None, metavar="DIR",
        help="result-cache directory (default: $REPRO_CACHE_DIR, else "
             "$XDG_CACHE_HOME/repro-pdos)",
    )
    return parser


def _make_runner(args):  # deferred import keeps `--help` fast
    from repro.runner import ExperimentRunner, default_cache_dir
    if args.no_cache:
        cache_dir = None
    elif args.cache_dir is not None:
        cache_dir = args.cache_dir
    else:
        cache_dir = default_cache_dir()
    return ExperimentRunner(jobs=args.jobs, cache_dir=cache_dir)


def _run_one(name: str, output_dir, runner=None, profile=False) -> None:
    started = time.time()
    mark = runner.stats.checkpoint() if runner is not None else None
    if profile:
        from repro.sim.profile import profile_run
        text, report = profile_run(EXPERIMENTS[name], label=name)
    else:
        text = EXPERIMENTS[name]()
        report = None
    elapsed = time.time() - started
    print(text)
    if report is not None:
        print(report.render())
    if mark is not None:
        print(f"[{name}: {elapsed:.1f}s; {runner.stats.since(mark)}]\n")
    else:
        print(f"[{name}: {elapsed:.1f}s]\n")
    if output_dir is not None:
        output_dir.mkdir(parents=True, exist_ok=True)
        (output_dir / f"{name}.txt").write_text(text + "\n")


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0
    if args.full:
        os.environ["REPRO_FULL"] = "1"
    from repro.runner import set_default_runner
    runner = _make_runner(args)
    set_default_runner(runner)
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        _run_one(name, args.output_dir, runner, profile=args.profile)
    print(f"[total: {runner.stats.summary()}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
