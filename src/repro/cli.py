"""Command-line experiment runner: ``python -m repro.cli <experiment>``.

Runs any of the reproduction's experiments from the shell and prints
the rendered series -- the same output the benchmark harness archives.

Examples::

    python -m repro.cli list
    python -m repro.cli fig03a
    python -m repro.cli fig06 --full
    python -m repro.cli all -o results/

``--full`` sets ``REPRO_FULL=1`` for the invocation (paper-scale
sweeps); ``--fast`` sets ``REPRO_FAST=1``, routing gain sweeps through
the adaptive experiment planner (a fluid-model pre-pass that localizes
γ* in milliseconds before any packet cell runs, coarse-to-fine γ
refinement, CI-driven seed allocation, convergence early-exit --
approximate but several times faster, under distinct cache keys);
``--no-fluid`` keeps the planner but skips its fluid pre-pass;
``-o DIR`` additionally writes each rendering to ``DIR/<name>.txt``.

``--jobs N`` fans independent measurement cells out over N worker
processes (one persistent pool per invocation); ``--cache-dir DIR`` /
``--no-cache`` control the on-disk result cache (default:
``$XDG_CACHE_HOME/repro-pdos``).  Cells sharing an attack-free warm-up
prefix simulate it once and fork from a frozen snapshot;
``--no-warm-start`` re-simulates every warm-up instead.  Results are
bit-identical regardless of job count, cache state, or warm-start mode.

``--fabric N`` (or ``REPRO_FABRIC=N``) replaces the static pool with
the work-stealing execution fabric (:mod:`repro.runner.fabric`): the
batch is materialized into a durable sqlite lease queue, N local
workers lease whole warm-start groups with heartbeats, and crashed
workers' leases expire and are stolen.  ``--fabric-queue PATH`` puts
the queue at a shared path so additional ``repro worker --queue PATH``
processes -- including ones on other hosts with access to the same
file -- join the same batch.  Results stay bit-identical to serial
execution regardless of placement or steal order.

``--dry-run`` plans instead of executing: each experiment prints the
cells it would resolve -- executions, cache hits, memo hits -- and the
warm-up prefixes it would simulate, then exits without running any
simulation (cells that would execute resolve to placeholders).

``--scheduler {auto,heap,calendar}`` selects the engine's event-scheduler
backend for the invocation (sets ``REPRO_SCHEDULER``); dispatch is
bit-identical across backends, so this is purely a performance knob.

``--profile`` wraps each experiment in :func:`repro.sim.profile.profile_run`
and prints wall time, simulator events/sec, and the hottest functions
after the rendering.  Profile the default serial mode (``--jobs 1``,
ideally ``--no-cache``): cells executed by worker processes or answered
from the cache dispatch no simulator events in this process.

Observability: diagnostics go through the ``repro`` logger (``-v`` for
per-cell debug lines, ``-q`` for renderings only), and
``repro <experiment> --metrics [PATH]`` additionally enables the metrics
registry and appends one JSON-lines record per experiment -- engine,
link, TCP, and runner telemetry plus timings and the git SHA -- to
*PATH* (default ``runlog.jsonl``).  ``repro obs report LOG [LOG...]``
renders a summary table from such logs (or from stores; ``--sort``/
``--last`` order and trim the rows).  Note: cells answered from the
cache or executed in worker processes contribute runner metrics but no
in-process engine/link/TCP metrics; run with ``--no-cache`` serially
for a full simulation snapshot.

``--store [PATH]`` additionally dual-writes an sqlite experiment store
(default ``runlog.sqlite``): runs, experiments, per-cell rows keyed by
the result cache's content-hash key, and scalar metrics --
queryable afterwards with ``repro obs query`` (raw SQL or the canned
``gamma-star``/``slowest-cells``/``workers``/``cache-hits``/
``drop-sync`` queries).  ``--record`` also attaches the in-sim flight recorder
(:mod:`repro.obs.recorder`) to every executed packet cell and stores
its time series -- arrival rates, drops, queue depth, cwnd, recovery
events -- for ``repro obs trace <cell> --export csv|npz``.  Both are
passive: results stay bit-identical.
"""

from __future__ import annotations

import argparse
import logging
import os
import pathlib
import sys
import time
from typing import Callable, Dict

__all__ = ["main", "EXPERIMENTS"]

_log = logging.getLogger("repro.cli")

#: where ``--metrics`` writes when no path is given.
DEFAULT_RUNLOG = pathlib.Path("runlog.jsonl")

#: where ``--store`` writes when no path is given (keep in sync with
#: repro.obs.store.DEFAULT_STORE_NAME; not imported so ``--help`` stays
#: fast).
DEFAULT_STORE = pathlib.Path("runlog.sqlite")


def _fig06():  # deferred imports keep `--help` fast
    from repro.experiments import run_gain_figure
    return run_gain_figure(6).render()


def _fig07():
    from repro.experiments import run_gain_figure
    return run_gain_figure(7).render()


def _fig08():
    from repro.experiments import run_gain_figure
    return run_gain_figure(8).render()


def _fig09():
    from repro.experiments import run_gain_figure
    return run_gain_figure(9).render()


def _fig01():
    from repro.experiments import run_fig01
    return run_fig01().render()


def _fig02():
    from repro.experiments import run_fig02
    return run_fig02().render()


def _fig03a():
    from repro.experiments import run_fig03_ns2
    return run_fig03_ns2().render()


def _fig03b():
    from repro.experiments import run_fig03_testbed
    return run_fig03_testbed().render()


def _fig04():
    from repro.experiments import run_fig04
    return run_fig04().render()


def _fig10():
    from repro.experiments import run_fig10
    return run_fig10().render()


def _fig12():
    from repro.experiments import run_fig12
    return run_fig12().render()


def _ablation_queues():
    from repro.experiments import run_queue_ablation
    return run_queue_ablation().render()


def _ablation_model():
    from repro.experiments import run_model_ablation
    return run_model_ablation().render()


def _detection():
    from repro.experiments import run_detection_evasion
    return run_detection_evasion().render()


def _defense_rto():
    from repro.experiments import run_rto_randomization
    return run_rto_randomization().render()


def _defense_choke():
    from repro.experiments import run_aqm_hardening
    return run_aqm_hardening().render()


def _ablation_victim():
    from repro.experiments import run_victim_ablation
    return run_victim_ablation().render()


def _flow_damage():
    from repro.experiments import run_flow_damage
    return run_flow_damage().render()


def _distributed():
    from repro.experiments import run_distributed_attack
    return run_distributed_attack().render()


def _mice_elephants():
    from repro.experiments import run_mice_elephants
    return run_mice_elephants().render()


def _multi_bottleneck():
    from repro.experiments import run_multi_bottleneck
    return run_multi_bottleneck().render()


def _replication():
    from repro.experiments.replication import replicate_gain_sweep
    return replicate_gain_sweep().render()


#: experiment name -> zero-argument runner returning rendered text.
EXPERIMENTS: Dict[str, Callable[[], str]] = {
    "fig01": _fig01,
    "fig02": _fig02,
    "fig03a": _fig03a,
    "fig03b": _fig03b,
    "fig04": _fig04,
    "fig06": _fig06,
    "fig07": _fig07,
    "fig08": _fig08,
    "fig09": _fig09,
    "fig10": _fig10,
    "fig12": _fig12,
    "ablation-queues": _ablation_queues,
    "ablation-model": _ablation_model,
    "ablation-victim": _ablation_victim,
    "flow-damage": _flow_damage,
    "distributed": _distributed,
    "mice-elephants": _mice_elephants,
    "multi-bottleneck": _multi_bottleneck,
    "detection": _detection,
    "defense-rto": _defense_rto,
    "defense-choke": _defense_choke,
    "replication": _replication,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce the figures of 'Optimizing the Pulsing "
            "Denial-of-Service Attacks' (Luo & Chang, DSN 2005)."
        ),
        epilog=(
            "Run-log tooling: 'repro obs report SRC [SRC...]' renders a "
            "summary table from run logs (--metrics) or experiment "
            "stores (--store); 'repro obs query' runs canned or raw SQL "
            "queries against a store; 'repro obs trace' exports a "
            "cell's recorded time series."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all", "list"],
        help="experiment to run ('list' prints the catalogue, 'all' runs "
             "everything)",
    )
    parser.add_argument(
        "--full", action="store_true",
        help="paper-scale sweeps (sets REPRO_FULL=1; much slower)",
    )
    parser.add_argument(
        "--fast", action="store_true",
        help="adaptive experiment planner for gain sweeps (sets "
             "REPRO_FAST=1): a fluid-model pre-pass localizes gamma* in "
             "milliseconds, then packet-level cells confirm only the "
             "peak neighborhood, with coarse-to-fine gamma refinement, "
             "CI-driven seed allocation, and in-sim convergence "
             "early-exit; approximate results under distinct cache keys",
    )
    parser.add_argument(
        "--no-fluid", action="store_true",
        help="with --fast, skip the fluid-model pre-pass (sets "
             "REPRO_NO_FLUID=1): the planner explores the full "
             "packet-level coarse grid instead",
    )
    parser.add_argument(
        "--scheduler", choices=["auto", "heap", "calendar"], default=None,
        help="event-scheduler backend for every simulator built during "
             "the invocation (sets REPRO_SCHEDULER): 'heap' is the "
             "binary-heap baseline, 'calendar' the calendar queue for "
             "very deep pending sets, 'auto' (engine default) starts on "
             "the heap and migrates past the measured crossover; "
             "results are bit-identical across backends",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="run each experiment under cProfile and print wall time, "
             "simulator events/sec, and the hottest functions (results "
             "are unchanged; profiling is observation only)",
    )
    parser.add_argument(
        "-o", "--output-dir", type=pathlib.Path, default=None,
        help="also write each rendering to DIR/<name>.txt",
    )
    parser.add_argument(
        "-j", "--jobs", type=int, default=1, metavar="N",
        help="run independent measurement cells on N worker processes "
             "(default: 1, serial)",
    )
    parser.add_argument(
        "--fabric", type=int, default=None, metavar="N",
        help="dispatch cache-missing cells through the work-stealing "
             "fabric with N broker-spawned local workers (default: "
             "REPRO_FABRIC, else off); whole warm-start groups are "
             "leased from a durable sqlite queue, and a crashed "
             "worker's lease expires and is stolen -- results stay "
             "bit-identical to serial execution",
    )
    parser.add_argument(
        "--fabric-queue", type=pathlib.Path, default=None, metavar="PATH",
        help="lease-queue path for --fabric (default: REPRO_FABRIC_QUEUE, "
             "else a private temporary file); point it at a shared "
             "location and start 'repro worker --queue PATH' elsewhere "
             "to add stealing workers, even on other hosts",
    )
    parser.add_argument(
        "--dry-run", action="store_true",
        help="plan instead of executing: print each experiment's cells "
             "(to execute / cache hits / memo hits) and the warm-up "
             "prefixes it would simulate, then exit without simulating",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the on-disk result cache for this invocation",
    )
    parser.add_argument(
        "--no-warm-start", action="store_true",
        help="disable warm-start checkpointing (simulate every cell's "
             "warm-up from scratch instead of forking a shared snapshot; "
             "results are bit-identical either way)",
    )
    parser.add_argument(
        "--cache-dir", type=pathlib.Path, default=None, metavar="DIR",
        help="result-cache directory (default: $REPRO_CACHE_DIR, else "
             "$XDG_CACHE_HOME/repro-pdos)",
    )
    parser.add_argument(
        "--metrics", type=pathlib.Path, nargs="?", const=DEFAULT_RUNLOG,
        default=None, metavar="PATH",
        help="enable the metrics registry and append one JSON-lines "
             "run-log record per experiment to PATH (default: "
             f"{DEFAULT_RUNLOG}); place the flag after the experiment "
             "name when omitting PATH",
    )
    parser.add_argument(
        "--store", type=pathlib.Path, nargs="?", const=DEFAULT_STORE,
        default=None, metavar="PATH",
        help="dual-write an sqlite experiment store to PATH (default: "
             f"{DEFAULT_STORE}): runs, experiments, per-cell rows keyed "
             "by the result-cache content hash, and metrics; query with "
             "'repro obs query'",
    )
    parser.add_argument(
        "--record", action="store_true",
        help="with --store, attach the in-sim flight recorder to every "
             "executed packet cell and store its time series (arrival "
             "rate, drops, queue depth, cwnd, recovery) for "
             "'repro obs trace'; passive, results are bit-identical",
    )
    verbosity = parser.add_mutually_exclusive_group()
    verbosity.add_argument(
        "-v", "--verbose", action="store_true",
        help="debug logging (per-cell cache/execution lines)",
    )
    verbosity.add_argument(
        "-q", "--quiet", action="store_true",
        help="suppress progress/timing lines (renderings only)",
    )
    return parser


def _configure_logging(*, verbose: bool = False, quiet: bool = False) -> None:
    """Point the ``repro`` logger at the current stdout.

    Recreated on every :func:`main` call so repeated in-process
    invocations (tests, notebooks) follow stream redirection; renderings
    stay on plain ``print`` -- they are the program's output, while log
    lines are its diagnostics.
    """
    level = logging.DEBUG if verbose else (
        logging.WARNING if quiet else logging.INFO)
    logger = logging.getLogger("repro")
    logger.handlers.clear()
    handler = logging.StreamHandler(sys.stdout)
    handler.setFormatter(logging.Formatter("%(message)s"))
    logger.addHandler(handler)
    logger.setLevel(level)
    logger.propagate = False


def _make_runner(args):  # deferred import keeps `--help` fast
    from repro.runner import ExperimentRunner, check_jobs, default_cache_dir
    from repro.util.env import env_int, env_str
    # Validated here rather than via an argparse type callable:
    # ValidationError is a ValueError, which argparse would swallow into
    # a bare exit-2 usage message instead of naming flag and value.
    check_jobs(args.jobs, source="--jobs")
    if args.no_cache:
        cache_dir = None
    elif args.cache_dir is not None:
        cache_dir = args.cache_dir
    else:
        cache_dir = default_cache_dir()
    fabric = args.fabric
    if fabric is None:
        fabric = env_int("REPRO_FABRIC", 0, minimum=0)
    fabric_queue = args.fabric_queue
    if fabric_queue is None:
        fabric_queue = env_str("REPRO_FABRIC_QUEUE") or None
    return ExperimentRunner(jobs=args.jobs, cache_dir=cache_dir,
                            warm_start=not args.no_warm_start,
                            fabric=fabric, fabric_queue=fabric_queue,
                            dry_run=args.dry_run)


def _run_one(name: str, output_dir, runner=None, profile=False,
             writer=None, store=None) -> None:
    from repro.obs import metrics as obs_metrics

    if runner is not None and runner.dry_run:
        # Plan only: run the experiment driver (it plans its batches
        # through the dry-run runner) and print the plan, not the
        # placeholder-derived rendering.
        plan = runner.dry_run_plan
        plan_mark, dup_mark = len(plan.entries), plan.duplicates
        started = time.time()
        EXPERIMENTS[name]()
        print(f"{name}:")
        print(plan.render(plan_mark, duplicates=plan.duplicates - dup_mark))
        _log.info("[%s: planned in %.1fs]\n", name, time.time() - started)
        return

    started = time.time()
    mark = runner.stats.checkpoint() if runner is not None else None
    # A fresh registry per experiment: each run-log record then snapshots
    # exactly one experiment's telemetry, not the whole invocation's.
    telemetry = writer is not None or store is not None
    registry = obs_metrics.enable() if telemetry else None
    if store is not None:
        # The store's experiment row opens before any cell runs (cell
        # rows attach to it) with the same timestamp the run-log record
        # carries, keeping the two sources byte-equivalent.
        store.begin_experiment(name, timestamp=started)
    try:
        if profile:
            from repro.sim.profile import profile_run
            text, report = profile_run(EXPERIMENTS[name], label=name)
        else:
            text = EXPERIMENTS[name]()
            report = None
    finally:
        if registry is not None:
            obs_metrics.disable()
    elapsed = time.time() - started
    print(text)
    if report is not None:
        print(report.render())
    if mark is not None:
        _log.info("[%s: %.1fs; %s]\n", name, elapsed,
                  runner.stats.since(mark))
    else:
        _log.info("[%s: %.1fs]\n", name, elapsed)
    delta = runner.stats.delta_snapshot(mark) if mark is not None else None
    snapshot = registry.snapshot() if registry is not None else None
    if store is not None:
        store.finish_experiment(elapsed_seconds=elapsed, runner=delta,
                                metrics=snapshot)
    if writer is not None:
        from repro.obs.runlog import base_record

        record = base_record("experiment", name)
        record["timestamp"] = started  # start of the record, per schema
        record["elapsed_seconds"] = elapsed
        if delta is not None:
            record["runner"] = delta
        record["metrics"] = snapshot
        if store is not None:
            record["store"] = str(store.path)
        writer.write(record)
    if output_dir is not None:
        output_dir.mkdir(parents=True, exist_ok=True)
        (output_dir / f"{name}.txt").write_text(text + "\n")


def _render_table(names, rows) -> str:
    """Fixed-width text table for query results (``None`` prints ``-``)."""
    if not names:
        return "(no results)"
    text = [[("-" if v is None else str(v)) for v in row] for row in rows]
    widths = [max([len(n)] + [len(row[i]) for row in text])
              for i, n in enumerate(names)]
    lines = ["  ".join(n.ljust(w) for n, w in zip(names, widths)).rstrip(),
             "  ".join("-" * w for w in widths)]
    for row in text:
        lines.append("  ".join(v.ljust(w)
                               for v, w in zip(row, widths)).rstrip())
    lines.append(f"({len(rows)} row{'' if len(rows) == 1 else 's'})")
    return "\n".join(lines)


def _obs_query(args) -> int:
    import sqlite3

    from repro.obs.store import CANNED_QUERIES, open_readonly

    try:
        store = open_readonly(args.store)
    except FileNotFoundError as exc:
        print(exc, file=sys.stderr)
        return 1
    with store:
        canned = CANNED_QUERIES.get(args.sql)
        try:
            if canned is not None:
                names, rows = getattr(store, canned[0])()
            else:
                names, rows = store.query(args.sql)
        except sqlite3.Error as exc:
            print(f"query failed: {exc}", file=sys.stderr)
            return 1
        if args.limit is not None:
            rows = rows[:args.limit]
        print(_render_table(names, rows))
    return 0


def _resolve_cell(store, token: str):
    """A ``cell_id`` from a numeric id or an unambiguous key prefix."""
    if token.isdigit():
        rows = store.query(
            "SELECT cell_id FROM cells WHERE cell_id = ?", (int(token),))[1]
        if rows:
            return int(token), None
        return None, f"no such cell_id: {token}"
    matches = store.find_cells(token)
    if not matches:
        return None, f"no cell matches key prefix {token!r}"
    if len(matches) > 1:
        listing = "\n".join(
            f"  {cid}  {key[:16]}...  {name} ({source})"
            for cid, key, name, source in matches[:10])
        return None, (f"key prefix {token!r} is ambiguous "
                      f"({len(matches)} cells):\n{listing}")
    return int(matches[0][0]), None


def _obs_trace(args) -> int:
    import numpy as np

    from repro.obs.store import open_readonly

    try:
        store = open_readonly(args.store)
    except FileNotFoundError as exc:
        print(exc, file=sys.stderr)
        return 1
    with store:
        cell_id, error = _resolve_cell(store, args.cell)
        if error:
            print(error, file=sys.stderr)
            return 1
        series = store.fetch_series(cell_id, args.series)
        if not series:
            what = (f"series {args.series!r}" if args.series
                    else "recorded series")
            print(f"cell {cell_id} has no {what} "
                  "(was the run made with --store --record?)",
                  file=sys.stderr)
            return 1
        if args.export is None:
            print(_render_table(
                ["name", "rows", "evicted", "columns"],
                [(s.name, s.n_rows, s.evicted, ",".join(s.columns))
                 for s in series]))
            return 0
        path = args.output
        if path is None:
            path = pathlib.Path(f"cell-{cell_id}.{args.export}")
        if args.export == "csv":
            if len(series) > 1:
                print("csv export needs exactly one series; pick one with "
                      "--series from: "
                      + ", ".join(s.name for s in series), file=sys.stderr)
                return 1
            item = series[0]
            # %.17g round-trips float64 exactly, so an exported series
            # re-parses bit-identical to the in-memory samples.
            np.savetxt(path, item.data, delimiter=",", fmt="%.17g",
                       header=",".join(item.columns), comments="")
        else:
            arrays = {}
            for item in series:
                arrays[item.name] = item.data
                arrays[item.name + ".columns"] = np.array(item.columns)
            np.savez(path, **arrays)
        print(f"wrote {len(series)} series "
              f"({sum(s.n_rows for s in series)} rows) -> {path}")
    return 0


def _obs_main(argv) -> int:
    """The ``repro obs ...`` tooling subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro obs",
        description="Inspect run logs (--metrics) and experiment stores "
                    "(--store).",
    )
    commands = parser.add_subparsers(dest="command", required=True)
    report = commands.add_parser(
        "report",
        help="render a summary table from run logs and/or stores",
    )
    report.add_argument(
        "logs", nargs="+", type=pathlib.Path, metavar="SRC",
        help="JSON-lines run logs or sqlite experiment stores; a log "
             "whose records point at an existing store is upgraded to "
             "the store",
    )
    report.add_argument(
        "--sort", choices=("time", "name", "elapsed"), default="time",
        help="row order: arrival time (default), name, or wall time "
             "(most expensive first)",
    )
    report.add_argument(
        "--last", type=int, default=None, metavar="N",
        help="keep only the N most recent records",
    )
    query = commands.add_parser(
        "query", help="run a canned or raw SQL query against a store",
    )
    query.add_argument(
        "sql",
        help="canned query name (gamma-star, slowest-cells, workers, "
             "cache-hits, drop-sync) or a raw SQL statement",
    )
    query.add_argument(
        "--store", type=pathlib.Path, default=DEFAULT_STORE, metavar="PATH",
        help=f"experiment store to query (default: {DEFAULT_STORE})",
    )
    query.add_argument(
        "--limit", type=int, default=None, metavar="N",
        help="print at most N result rows",
    )
    trace = commands.add_parser(
        "trace", help="list or export a cell's recorded time series",
    )
    trace.add_argument(
        "cell", help="cell_id or content-hash key prefix (see "
                     "'repro obs query slowest-cells')",
    )
    trace.add_argument(
        "--series", default=None, metavar="NAME",
        help="series name (e.g. link.bottleneck.queue); default: all",
    )
    trace.add_argument(
        "--export", choices=("csv", "npz"), default=None,
        help="write the series to a file instead of listing them "
             "(csv needs exactly one series)",
    )
    trace.add_argument(
        "-o", "--output", type=pathlib.Path, default=None, metavar="PATH",
        help="export path (default: cell-<id>.<ext>)",
    )
    trace.add_argument(
        "--store", type=pathlib.Path, default=DEFAULT_STORE, metavar="PATH",
        help=f"experiment store to read (default: {DEFAULT_STORE})",
    )
    args = parser.parse_args(argv)
    if args.command == "query":
        return _obs_query(args)
    if args.command == "trace":
        return _obs_trace(args)
    from repro.obs.report import render_report

    missing = [path for path in args.logs if not path.is_file()]
    if missing:
        print("no such run log: " + ", ".join(str(p) for p in missing),
              file=sys.stderr)
        return 1
    print(render_report(args.logs, sort=args.sort, last=args.last))
    return 0


def _worker_cli(argv) -> int:
    """The ``repro worker`` subcommand: one external fabric worker.

    Attaches to a lease queue (``--queue``), leases whole warm-start
    groups, heartbeats them while executing, and exits when the broker
    closes the queue.  Run it anywhere that can open the queue file --
    extra cores on the same host, or another host sharing the path --
    and it steals work from the same batches as the broker's own
    workers.
    """
    parser = argparse.ArgumentParser(
        prog="repro worker",
        description="Serve an execution-fabric lease queue "
                    "(see 'repro <experiment> --fabric').",
    )
    parser.add_argument(
        "--queue", type=pathlib.Path, required=True, metavar="PATH",
        help="the lease-queue sqlite file (the broker's --fabric-queue)",
    )
    parser.add_argument(
        "--id", default=None, metavar="NAME",
        help="worker identity recorded with each result "
             "(default: hostname:pid)",
    )
    parser.add_argument(
        "--ttl", type=float, default=None, metavar="SECONDS",
        help="lease time-to-live; must match the broker's expectations "
             "loosely (default: the fabric default)",
    )
    parser.add_argument(
        "--once", action="store_true",
        help="drain currently leasable work and exit instead of waiting "
             "for the queue to close",
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true",
        help="debug logging",
    )
    args = parser.parse_args(argv)
    _configure_logging(verbose=args.verbose)
    from repro.runner.fabric import DEFAULT_LEASE_TTL, worker_main

    ttl = DEFAULT_LEASE_TTL if args.ttl is None else args.ttl
    _log.info("[worker %s serving %s]",
              args.id or "(hostname:pid)", args.queue)
    served = worker_main(args.queue, worker_id=args.id, ttl=ttl,
                         once=args.once)
    _log.info("[worker done: served %d groups]", served)
    return 0


def main(argv=None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "obs":
        return _obs_main(argv[1:])
    if argv and argv[0] == "worker":
        return _worker_cli(argv[1:])
    args = build_parser().parse_args(argv)
    _configure_logging(verbose=args.verbose, quiet=args.quiet)
    if args.experiment == "list":
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0
    if args.full:
        os.environ["REPRO_FULL"] = "1"
    if args.fast:
        os.environ["REPRO_FAST"] = "1"
    if args.no_fluid:
        os.environ["REPRO_NO_FLUID"] = "1"
    if args.scheduler is not None:
        os.environ["REPRO_SCHEDULER"] = args.scheduler
    if args.record and args.store is None:
        print("--record requires --store (it records into the store)",
              file=sys.stderr)
        return 2
    if args.dry_run and (args.store is not None or args.metrics is not None
                         or args.record):
        print("--dry-run plans only; it cannot be combined with --store, "
              "--metrics, or --record", file=sys.stderr)
        return 2
    from repro.runner import set_default_runner
    runner = _make_runner(args)
    set_default_runner(runner)
    writer = None
    if args.metrics is not None:
        from repro.obs.runlog import RunLogWriter
        writer = RunLogWriter(args.metrics)
    store = None
    if args.store is not None:
        from repro.obs.runlog import git_sha
        from repro.obs.store import ExperimentStore
        from repro.util.env import env_flag

        store = ExperimentStore(args.store)
        store.begin_run(
            args.experiment, argv=argv, git_sha=git_sha(),
            full=env_flag("REPRO_FULL"),
        )
        runner.attach_store(store, record_series=args.record)
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    run_started = time.time()
    try:
        for name in names:
            _run_one(name, args.output_dir, runner, profile=args.profile,
                     writer=writer, store=store)
    finally:
        # Tear down the persistent worker pool once all experiments in
        # this invocation have drained it.
        runner.close()
        if store is not None:
            store.finish_run(elapsed_seconds=time.time() - run_started,
                             runner=runner.stats.snapshot())
            store.close()
            _log.info("[experiment store -> %s]", store.path)
    _log.info("[total: %s]", runner.stats.summary())
    if writer is not None:
        from repro.obs.runlog import base_record

        record = base_record("run", args.experiment)
        record["experiments"] = names
        record["runner"] = runner.stats.snapshot()
        if store is not None:
            record["store"] = str(store.path)
        writer.write(record)
        _log.info("[run log: %d records -> %s]",
                  writer.records_written, writer.path)
    return 0


if __name__ == "__main__":
    sys.exit(main())
