"""repro -- a reproduction of *Optimizing the Pulsing Denial-of-Service
Attacks* (Xiapu Luo and Rocky K. C. Chang, DSN 2005).

The package contains everything the paper builds on:

* :mod:`repro.core` -- the paper's contribution: the pulse-train attack
  model, the TCP-throughput analysis under attack (Propositions 1-2),
  the attack-gain objective ``G = Γ(1−γ)^κ``, and its closed-form
  optimizer (Propositions 3-4 and the four corollaries);
* :mod:`repro.sim` -- a packet-level discrete-event network simulator
  (the ns-2 substrate): links, DropTail/RED queues, general-AIMD TCP
  (Tahoe/Reno/NewReno), pulse attackers, and the dumbbell topology;
* :mod:`repro.testbed` -- a Dummynet-style pipe emulation with an
  Iperf-like workload (the test-bed substrate);
* :mod:`repro.analysis` -- normalization, Piecewise Aggregate
  Approximation, and period estimators for the quasi-global
  synchronization phenomenon;
* :mod:`repro.detection` -- the detector families the attack evades;
* :mod:`repro.baselines` -- flooding, shrew, and RoQ baseline attacks;
* :mod:`repro.experiments` -- drivers reproducing every figure.

Quickstart::

    import numpy as np
    from repro.core import VictimPopulation, optimal_attack
    from repro.util.units import mbps, ms

    victims = VictimPopulation(rtts=np.linspace(0.02, 0.46, 15),
                               delayed_ack=2)
    plan = optimal_attack(victims, rate_bps=mbps(30), extent=ms(100),
                          bottleneck_bps=mbps(15), kappa=1.0)
    print(plan.gamma_star, plan.period_star, plan.train)
"""

from repro.core import (
    OptimalAttack,
    PulseTrain,
    VictimPopulation,
    attack_gain,
    c_psi,
    optimal_attack,
    optimal_gamma,
)

__version__ = "1.0.0"

__all__ = [
    "OptimalAttack",
    "PulseTrain",
    "VictimPopulation",
    "__version__",
    "attack_gain",
    "c_psi",
    "optimal_attack",
    "optimal_gamma",
]
