"""Time-series analysis for the quasi-global-synchronization phenomenon.

The paper visualizes the router's incoming traffic by (1) normalizing
the series to zero mean and (2) applying a Piecewise Aggregate
Approximation (Keogh et al., SIGMOD 2001).  The pinnacle count over the
observation window then reveals the attack period (Fig. 3).

* :mod:`repro.analysis.paa` -- normalization + PAA;
* :mod:`repro.analysis.sync` -- pinnacle counting, autocorrelation and
  FFT period estimators, and the end-to-end
  :func:`~repro.analysis.sync.analyze_synchronization` summary.
"""

from repro.analysis.paa import normalize, paa, paa_series, znormalize
from repro.analysis.plot import scatter_grid, sparkline
from repro.analysis.stats import FlowDamage, jain_fairness_index, per_flow_damage
from repro.analysis.sync import (
    PeriodEstimate,
    SynchronizationReport,
    analyze_synchronization,
    autocorrelation_period,
    count_pinnacles,
    fft_period,
)

__all__ = [
    "FlowDamage",
    "PeriodEstimate",
    "SynchronizationReport",
    "analyze_synchronization",
    "autocorrelation_period",
    "count_pinnacles",
    "fft_period",
    "jain_fairness_index",
    "normalize",
    "paa",
    "paa_series",
    "per_flow_damage",
    "scatter_grid",
    "sparkline",
    "znormalize",
]
