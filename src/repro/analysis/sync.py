"""Quasi-global-synchronization detection (Section 2.3, Figs. 2-3).

A PDoS attack imprints its period on the router's incoming traffic: the
pulses (plus the synchronized TCP recovery of the victims) produce
evenly spaced pinnacles whose spacing equals T_AIMD.  The paper counts
pinnacles over a one-minute snapshot (30 pinnacles / 60 s → period 2 s
in Fig. 3(a)); this module implements that count plus two independent
period estimators (autocorrelation peak and FFT fundamental), so the
claim "traffic period == attack period" can be checked three ways.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from repro.analysis.paa import znormalize
from repro.util.errors import ValidationError
from repro.util.validate import check_positive

__all__ = [
    "count_pinnacles",
    "autocorrelation_period",
    "fft_period",
    "PeriodEstimate",
    "SynchronizationReport",
    "analyze_synchronization",
]


def count_pinnacles(series: np.ndarray, *, threshold_sigma: float = 1.0,
                    min_separation: int = 2) -> int:
    """Count prominent peaks ("pinnacles") in a traffic series.

    A pinnacle is a local maximum exceeding ``mean + threshold_sigma·std``
    and separated from the previous one by at least *min_separation*
    samples (so a flat-topped pulse counts once).
    """
    series = np.asarray(series, dtype=float)
    if series.size < 3:
        raise ValidationError("need at least 3 samples to find peaks")
    if min_separation < 1:
        raise ValidationError(
            f"min_separation must be >= 1, got {min_separation}"
        )
    scale = series.std()
    if scale == 0.0:
        return 0  # a constant series has no peaks
    threshold = series.mean() + threshold_sigma * scale
    count = 0
    last_peak = -min_separation - 1
    for i in range(1, series.size - 1):
        if series[i] < threshold:
            continue
        if series[i] >= series[i - 1] and series[i] >= series[i + 1]:
            if i - last_peak >= min_separation:
                count += 1
            last_peak = i
    return count


def autocorrelation_period(series: np.ndarray, bin_width: float,
                           *, min_lag: int = 2) -> Optional[float]:
    """Dominant period via the first major autocorrelation peak, seconds.

    Returns ``None`` when no peak rises meaningfully above the noise
    floor (an aperiodic series).
    """
    check_positive("bin_width", bin_width)
    series = znormalize(np.asarray(series, dtype=float))
    n = series.size
    if n < 2 * min_lag + 1:
        raise ValidationError("series too short for autocorrelation")
    # Full autocorrelation via FFT, normalized to rho(0) == 1.
    fft = np.fft.rfft(series, n=2 * n)
    acf = np.fft.irfft(fft * np.conj(fft))[:n]
    if acf[0] <= 0:
        return None
    acf = acf / acf[0]
    # First local maximum past min_lag that exceeds a noise threshold.
    best_lag, best_value = None, 0.2
    for lag in range(min_lag, n // 2):
        if acf[lag] > acf[lag - 1] and acf[lag] >= acf[lag + 1]:
            if acf[lag] > best_value:
                best_lag, best_value = lag, acf[lag]
                break  # the first such peak is the fundamental
    if best_lag is None:
        return None
    return best_lag * bin_width


def fft_period(series: np.ndarray, bin_width: float) -> Optional[float]:
    """Dominant period via the FFT fundamental, seconds.

    A sharp pulse train spreads its energy across many harmonics of
    nearly equal magnitude, so a plain arg-max can land on the 10th
    harmonic.  Instead, among all bins within a factor of two of the
    spectral peak, the *lowest* frequency is taken -- the fundamental.
    """
    check_positive("bin_width", bin_width)
    series = znormalize(np.asarray(series, dtype=float))
    n = series.size
    if n < 4:
        raise ValidationError("series too short for an FFT period estimate")
    spectrum = np.abs(np.fft.rfft(series))
    spectrum[0] = 0.0
    peak_magnitude = spectrum.max()
    if peak_magnitude == 0.0:
        return None
    candidates = np.nonzero(spectrum >= 0.5 * peak_magnitude)[0]
    fundamental = int(candidates[0])
    frequency = fundamental / (n * bin_width)
    return 1.0 / frequency


@dataclasses.dataclass(frozen=True)
class PeriodEstimate:
    """One period estimate with its method label."""

    method: str
    period: Optional[float]


@dataclasses.dataclass(frozen=True)
class SynchronizationReport:
    """Output of :func:`analyze_synchronization`.

    Attributes:
        pinnacles: number of prominent peaks in the window.
        window: observation window length, seconds.
        pinnacle_period: ``window / pinnacles`` (the paper's Fig.-3
            calculation), or None without peaks.
        acf_period / fft_period: independent estimates.
        attack_period: the ground-truth T_AIMD if supplied.
    """

    pinnacles: int
    window: float
    pinnacle_period: Optional[float]
    acf_period: Optional[float]
    fft_period: Optional[float]

    def consistent_with(self, attack_period: float, *,
                        rtol: float = 0.15) -> bool:
        """True when the pinnacle-derived period matches *attack_period*."""
        check_positive("attack_period", attack_period)
        if self.pinnacle_period is None:
            return False
        return abs(self.pinnacle_period - attack_period) <= rtol * attack_period


def analyze_synchronization(series: np.ndarray, bin_width: float,
                            *, threshold_sigma: float = 1.0) -> SynchronizationReport:
    """Full Fig.-3 style analysis of a binned incoming-traffic series."""
    check_positive("bin_width", bin_width)
    series = np.asarray(series, dtype=float)
    window = series.size * bin_width
    pinnacles = count_pinnacles(series, threshold_sigma=threshold_sigma)
    return SynchronizationReport(
        pinnacles=pinnacles,
        window=window,
        pinnacle_period=window / pinnacles if pinnacles > 0 else None,
        acf_period=autocorrelation_period(series, bin_width),
        fft_period=fft_period(series, bin_width),
    )
