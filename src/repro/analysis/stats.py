"""Throughput statistics: fairness and per-flow damage summaries.

Support for the per-flow analyses around Section 4.1.3 ("some TCP flows
may survive these timeout-based attacks because of their large RTTs"):
Jain's fairness index over per-flow goodputs, and per-flow degradation
summaries keyed by RTT.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence

import numpy as np

from repro.util.errors import ValidationError

__all__ = ["jain_fairness_index", "FlowDamage", "per_flow_damage"]


def jain_fairness_index(allocations: Sequence[float]) -> float:
    """Jain, Chiu & Hawe's fairness index ``(Σx)² / (n·Σx²)``.

    1.0 for perfectly equal shares, ``1/n`` when one flow takes all.
    All-zero allocations count as (vacuously) fair.
    """
    values = np.asarray(allocations, dtype=float)
    if values.size == 0:
        raise ValidationError("need at least one allocation")
    if np.any(values < 0):
        raise ValidationError("allocations must be non-negative")
    total_sq = values.sum() ** 2
    denom = values.size * (values ** 2).sum()
    if denom == 0.0:
        return 1.0
    return float(total_sq / denom)


@dataclasses.dataclass(frozen=True)
class FlowDamage:
    """One flow's before/after comparison.

    Attributes:
        rtt: the flow's round-trip time, seconds.
        baseline_bytes / attacked_bytes: delivered payload in the
            measurement window without / with the attack.
        degradation: ``1 − attacked/baseline`` (0 when the baseline is 0).
    """

    rtt: float
    baseline_bytes: float
    attacked_bytes: float

    @property
    def degradation(self) -> float:
        if self.baseline_bytes <= 0:
            return 0.0
        return 1.0 - self.attacked_bytes / self.baseline_bytes


def per_flow_damage(rtts: Sequence[float], baseline: Sequence[float],
                    attacked: Sequence[float]) -> List[FlowDamage]:
    """Pair up per-flow measurements into :class:`FlowDamage` records."""
    if not len(rtts) == len(baseline) == len(attacked):
        raise ValidationError(
            f"length mismatch: {len(rtts)} rtts, {len(baseline)} baseline, "
            f"{len(attacked)} attacked"
        )
    return [
        FlowDamage(rtt=float(rtt), baseline_bytes=float(b),
                   attacked_bytes=float(a))
        for rtt, b, a in zip(rtts, baseline, attacked)
    ]
