"""Throughput statistics: fairness, damage summaries, and CI stopping.

Support for the per-flow analyses around Section 4.1.3 ("some TCP flows
may survive these timeout-based attacks because of their large RTTs"):
Jain's fairness index over per-flow goodputs, and per-flow degradation
summaries keyed by RTT.

Also home to the confidence-interval helpers the adaptive experiment
planner (:mod:`repro.runner.planner`) uses for sequential seed
allocation: :func:`mean_ci_halfwidth` for a t-based CI over replicate
measurements, and :func:`ci_stable` as the stop-adding-seeds predicate.
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Sequence

import numpy as np

from repro.util.errors import ValidationError

__all__ = ["jain_fairness_index", "FlowDamage", "per_flow_damage",
           "mean_ci_halfwidth", "ci_stable"]


def jain_fairness_index(allocations: Sequence[float]) -> float:
    """Jain, Chiu & Hawe's fairness index ``(Σx)² / (n·Σx²)``.

    1.0 for perfectly equal shares, ``1/n`` when one flow takes all.
    All-zero allocations count as (vacuously) fair.
    """
    values = np.asarray(allocations, dtype=float)
    if values.size == 0:
        raise ValidationError("need at least one allocation")
    if np.any(values < 0):
        raise ValidationError("allocations must be non-negative")
    peak = values.max()
    if peak == 0.0:
        return 1.0
    # Scale-invariant index: normalize by the peak so squaring tiny
    # allocations cannot underflow into denormals and push the ratio
    # past its [1/n, 1] bounds.
    values = values / peak
    total_sq = values.sum() ** 2
    denom = values.size * (values ** 2).sum()
    return float(total_sq / denom)


@dataclasses.dataclass(frozen=True)
class FlowDamage:
    """One flow's before/after comparison.

    Attributes:
        rtt: the flow's round-trip time, seconds.
        baseline_bytes / attacked_bytes: delivered payload in the
            measurement window without / with the attack.
        degradation: ``1 − attacked/baseline`` (0 when the baseline is 0).
    """

    rtt: float
    baseline_bytes: float
    attacked_bytes: float

    @property
    def degradation(self) -> float:
        if self.baseline_bytes <= 0:
            return 0.0
        return 1.0 - self.attacked_bytes / self.baseline_bytes


def per_flow_damage(rtts: Sequence[float], baseline: Sequence[float],
                    attacked: Sequence[float]) -> List[FlowDamage]:
    """Pair up per-flow measurements into :class:`FlowDamage` records."""
    if not len(rtts) == len(baseline) == len(attacked):
        raise ValidationError(
            f"length mismatch: {len(rtts)} rtts, {len(baseline)} baseline, "
            f"{len(attacked)} attacked"
        )
    return [
        FlowDamage(rtt=float(rtt), baseline_bytes=float(b),
                   attacked_bytes=float(a))
        for rtt, b, a in zip(rtts, baseline, attacked)
    ]


# ----------------------------------------------------------------------
# sequential-replication confidence intervals
# ----------------------------------------------------------------------
def mean_ci_halfwidth(samples: Sequence[float],
                      confidence: float = 0.95) -> float:
    """Half-width of the t-based CI for the mean of *samples*.

    A single sample has no variance estimate, so its half-width is
    ``inf`` -- a sequential scheme can never stop on one replicate by
    accident.  Identical samples give 0.
    """
    if not 0.0 < confidence < 1.0:
        raise ValidationError(
            f"confidence must be in (0, 1), got {confidence}"
        )
    values = np.asarray(samples, dtype=float)
    if values.size == 0:
        raise ValidationError("need at least one sample")
    if values.size < 2:
        return math.inf
    from scipy import stats

    critical = stats.t.ppf(0.5 + confidence / 2.0, df=values.size - 1)
    return float(critical * values.std(ddof=1) / math.sqrt(values.size))


def ci_stable(samples: Sequence[float], *, rel_tol: float,
              confidence: float = 0.95, scale_floor: float = 0.0) -> bool:
    """Is the mean estimate precise enough to stop adding replicates?

    Stable when the CI half-width is at most ``rel_tol`` times the
    estimate's scale, ``max(|mean|, scale_floor)``.  The floor keeps the
    criterion meaningful for near-zero means (e.g. the gain of a weak
    attack), where a purely relative tolerance would demand absurd
    precision.
    """
    if rel_tol <= 0.0:
        raise ValidationError(f"rel_tol must be > 0, got {rel_tol}")
    halfwidth = mean_ci_halfwidth(samples, confidence)
    if math.isinf(halfwidth):
        return False
    scale = max(abs(float(np.mean(np.asarray(samples, dtype=float)))),
                scale_floor)
    return halfwidth <= rel_tol * scale
