"""Terminal plotting: sparklines and scatter grids for experiment output.

Experiment renderers are plain text so they survive logs, CI, and the
benchmark archive; these helpers make the text *legible* -- a unicode
sparkline for time series (the Fig.-3 traffic trace) and a fixed-grid
scatter for gain-vs-γ curves (the Figs. 6-9 shape at a glance).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.analysis.paa import paa_series
from repro.util.errors import ValidationError

__all__ = ["sparkline", "scatter_grid"]

_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(series: Sequence[float], width: int = 72) -> str:
    """Render *series* as a one-line unicode sparkline.

    Longer series are PAA-reduced to at most *width* characters, so the
    line faithfully shows segment means rather than arbitrary samples.
    """
    values = np.asarray(series, dtype=float)
    if values.size == 0:
        raise ValidationError("cannot sparkline an empty series")
    if width < 1:
        raise ValidationError(f"width must be >= 1, got {width}")
    if values.size > width:
        values = paa_series(values, max(1, values.size // width))
    lo, hi = float(values.min()), float(values.max())
    if hi == lo:
        return _BLOCKS[1] * values.size
    scaled = (values - lo) / (hi - lo) * (len(_BLOCKS) - 1)
    return "".join(_BLOCKS[int(round(v))] for v in scaled)


def scatter_grid(
    x: Sequence[float],
    series: Sequence[Sequence[float]],
    *,
    labels: Optional[Sequence[str]] = None,
    markers: str = "ox+*#@",
    height: int = 12,
    width: int = 60,
    y_min: Optional[float] = None,
    y_max: Optional[float] = None,
) -> str:
    """Plot one or more y-series against shared x values as ASCII art.

    Args:
        x: shared x coordinates (need not be evenly spaced).
        series: one sequence of y values per curve (same length as *x*).
        labels: legend labels, one per curve.
        markers: characters used per curve, cycled.
        height / width: character-grid size.
        y_min / y_max: fixed y range; defaults to the data range.

    Returns:
        A multi-line string: the grid, an x-axis line, and a legend.
    """
    x_arr = np.asarray(x, dtype=float)
    if x_arr.size == 0:
        raise ValidationError("need at least one x value")
    if height < 2 or width < 2:
        raise ValidationError("grid must be at least 2x2")
    ys = [np.asarray(s, dtype=float) for s in series]
    if not ys:
        raise ValidationError("need at least one series")
    for y in ys:
        if y.shape != x_arr.shape:
            raise ValidationError(
                f"series length {y.size} != x length {x_arr.size}"
            )

    all_y = np.concatenate(ys)
    lo = float(all_y.min()) if y_min is None else y_min
    hi = float(all_y.max()) if y_max is None else y_max
    if hi <= lo:
        hi = lo + 1.0
    x_lo, x_hi = float(x_arr.min()), float(x_arr.max())
    x_span = (x_hi - x_lo) or 1.0

    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    for index, y in enumerate(ys):
        marker = markers[index % len(markers)]
        for xi, yi in zip(x_arr, y):
            col = int(round((xi - x_lo) / x_span * (width - 1)))
            row = int(round((yi - lo) / (hi - lo) * (height - 1)))
            row = min(max(row, 0), height - 1)
            grid[height - 1 - row][col] = marker

    lines = []
    for row_index, row in enumerate(grid):
        y_value = hi - (hi - lo) * row_index / (height - 1)
        lines.append(f"{y_value:8.3f} |" + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(f"{'':9}{x_lo:<10.3f}{'':{max(0, width - 20)}}{x_hi:>10.3f}")
    if labels:
        legend = "   ".join(
            f"{markers[i % len(markers)]} = {label}"
            for i, label in enumerate(labels)
        )
        lines.append(" " * 9 + legend)
    return "\n".join(lines)
