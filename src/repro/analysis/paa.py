"""Normalization and Piecewise Aggregate Approximation (PAA).

PAA (Keogh, Chakrabarti, Pazzani & Mehrotra, SIGMOD 2001 -- the paper's
reference [5]) reduces a length-``n`` series to ``m`` segments, each the
mean of ``n/m`` consecutive samples.  The paper uses mean-removal
followed by PAA to display the incoming-traffic fluctuation (Fig. 3).
"""

from __future__ import annotations

import numpy as np

from repro.util.errors import ValidationError

__all__ = ["normalize", "znormalize", "paa", "paa_series"]


def normalize(series: np.ndarray) -> np.ndarray:
    """Shift *series* to zero mean (the paper's first transform for Fig. 3)."""
    series = np.asarray(series, dtype=float)
    if series.size == 0:
        raise ValidationError("cannot normalize an empty series")
    return series - series.mean()


def znormalize(series: np.ndarray) -> np.ndarray:
    """Zero mean and unit variance (constant series map to all-zeros)."""
    series = np.asarray(series, dtype=float)
    if series.size == 0:
        raise ValidationError("cannot normalize an empty series")
    centred = series - series.mean()
    scale = centred.std()
    if scale == 0.0:
        return centred
    return centred / scale


def paa(series: np.ndarray, n_segments: int) -> np.ndarray:
    """Piecewise Aggregate Approximation to *n_segments* segment means.

    Handles lengths not divisible by ``n_segments`` by weighting boundary
    samples fractionally (the standard generalization), so the result is
    exact for any ``1 <= n_segments <= len(series)``.
    """
    series = np.asarray(series, dtype=float)
    n = series.size
    if n == 0:
        raise ValidationError("cannot apply PAA to an empty series")
    if not 1 <= n_segments <= n:
        raise ValidationError(
            f"n_segments must be in [1, {n}], got {n_segments}"
        )
    if n % n_segments == 0:
        return series.reshape(n_segments, n // n_segments).mean(axis=1)
    # Fractional segment boundaries: distribute each sample's mass across
    # the segments it overlaps.
    edges = np.linspace(0.0, n, n_segments + 1)
    output = np.zeros(n_segments)
    for seg in range(n_segments):
        lo, hi = edges[seg], edges[seg + 1]
        first, last = int(np.floor(lo)), int(np.ceil(hi))
        total = 0.0
        for i in range(first, min(last, n)):
            overlap = min(hi, i + 1.0) - max(lo, float(i))
            if overlap > 0:
                total += series[i] * overlap
        output[seg] = total / (hi - lo)
    return output


def paa_series(series: np.ndarray, segment_width: int) -> np.ndarray:
    """PAA with a fixed per-segment sample count instead of a segment total."""
    series = np.asarray(series, dtype=float)
    if segment_width < 1:
        raise ValidationError(
            f"segment_width must be >= 1, got {segment_width}"
        )
    n_segments = max(1, series.size // segment_width)
    return paa(series[: n_segments * segment_width], n_segments)
