"""Unit conversion helpers.

Internal convention (used by every module in :mod:`repro`):

========  ==============================
quantity  unit
========  ==============================
time      seconds (float)
rate      bits per second (float)
size      bytes (int or float)
========  ==============================

The paper mixes Mbps link rates, millisecond pulse widths, and byte packet
sizes; these helpers keep conversions out of the model code.
"""

from __future__ import annotations

BITS_PER_BYTE = 8

#: One megabit per second, in bits per second.
Mbps = 1_000_000.0

#: One gigabit per second, in bits per second.
Gbps = 1_000_000_000.0


def mbps(value: float) -> float:
    """Return *value* megabits-per-second expressed in bits per second."""
    return value * Mbps


def gbps(value: float) -> float:
    """Return *value* gigabits-per-second expressed in bits per second."""
    return value * Gbps


def kbps(value: float) -> float:
    """Return *value* kilobits-per-second expressed in bits per second."""
    return value * 1_000.0


def ms(value: float) -> float:
    """Return *value* milliseconds expressed in seconds."""
    return value / 1_000.0


def us(value: float) -> float:
    """Return *value* microseconds expressed in seconds."""
    return value / 1_000_000.0


def seconds_to_ms(value: float) -> float:
    """Return *value* seconds expressed in milliseconds."""
    return value * 1_000.0


def bytes_to_bits(nbytes: float) -> float:
    """Return the number of bits in *nbytes* bytes."""
    return nbytes * BITS_PER_BYTE


def bits_to_bytes(nbits: float) -> float:
    """Return the number of bytes in *nbits* bits."""
    return nbits / BITS_PER_BYTE


def transmission_delay(nbytes: float, rate_bps: float) -> float:
    """Time in seconds to serialize *nbytes* bytes onto a *rate_bps* link.

    >>> transmission_delay(1500, 15_000_000)  # 1500 B over 15 Mb/s
    0.0008
    """
    if rate_bps <= 0:
        raise ValueError(f"link rate must be positive, got {rate_bps}")
    return bytes_to_bits(nbytes) / rate_bps
