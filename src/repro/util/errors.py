"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so that
callers can catch everything from this package with a single ``except``
clause while still distinguishing configuration mistakes from runtime
simulation failures.
"""


class ReproError(Exception):
    """Base class for every exception raised by :mod:`repro`."""


class ValidationError(ReproError, ValueError):
    """A numeric argument is outside its documented domain.

    Also a :class:`ValueError` so that generic numeric code which catches
    ``ValueError`` keeps working.
    """


class ConfigurationError(ReproError):
    """A composite configuration (topology, scenario, ...) is inconsistent."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an impossible state.

    This always indicates a bug in the simulator (or memory corruption),
    never bad user input; user input problems raise
    :class:`ValidationError` / :class:`ConfigurationError` up front.
    """
