"""Small argument-validation helpers used across the package.

Each helper returns the validated value so call sites can validate and
assign in one expression::

    self.rate_bps = check_positive("rate_bps", rate_bps)
"""

from __future__ import annotations

import math

from repro.util.errors import ValidationError


def _check_finite_number(name: str, value: float) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValidationError(f"{name} must be a number, got {value!r}")
    if not math.isfinite(value):
        raise ValidationError(f"{name} must be finite, got {value!r}")
    return float(value)


def check_positive(name: str, value: float) -> float:
    """Require ``value > 0``; return it as a float."""
    value = _check_finite_number(name, value)
    if value <= 0:
        raise ValidationError(f"{name} must be > 0, got {value}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Require ``value >= 0``; return it as a float."""
    value = _check_finite_number(name, value)
    if value < 0:
        raise ValidationError(f"{name} must be >= 0, got {value}")
    return value


def check_fraction(name: str, value: float) -> float:
    """Require ``0 < value < 1`` (an open-interval fraction); return it."""
    value = _check_finite_number(name, value)
    if not 0 < value < 1:
        raise ValidationError(f"{name} must be in (0, 1), got {value}")
    return value


def check_probability(name: str, value: float) -> float:
    """Require ``0 <= value <= 1``; return it as a float."""
    value = _check_finite_number(name, value)
    if not 0 <= value <= 1:
        raise ValidationError(f"{name} must be in [0, 1], got {value}")
    return value


def check_range(name: str, value: float, low: float, high: float,
                *, inclusive: bool = True) -> float:
    """Require *value* to lie in ``[low, high]`` (or ``(low, high)``)."""
    value = _check_finite_number(name, value)
    if inclusive:
        if not low <= value <= high:
            raise ValidationError(f"{name} must be in [{low}, {high}], got {value}")
    else:
        if not low < value < high:
            raise ValidationError(f"{name} must be in ({low}, {high}), got {value}")
    return value
