"""Shared utilities: unit helpers, error types, and validation helpers.

Everything in :mod:`repro` works in SI base units internally -- seconds for
time, bits per second for rates, and bytes for packet/queue sizes.  The
helpers here make the unit conventions explicit at API boundaries, so a
caller can write ``mbps(15)`` instead of ``15_000_000`` and ``ms(50)``
instead of ``0.05``.
"""

from repro.util.env import (
    env_choice,
    env_flag,
    env_float,
    env_int,
    env_str,
)
from repro.util.errors import (
    ConfigurationError,
    ReproError,
    SimulationError,
    ValidationError,
)
from repro.util.units import (
    BITS_PER_BYTE,
    Gbps,
    Mbps,
    bits_to_bytes,
    bytes_to_bits,
    gbps,
    kbps,
    mbps,
    ms,
    seconds_to_ms,
    transmission_delay,
    us,
)
from repro.util.validate import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_probability,
    check_range,
)

__all__ = [
    "BITS_PER_BYTE",
    "ConfigurationError",
    "Gbps",
    "Mbps",
    "ReproError",
    "SimulationError",
    "ValidationError",
    "bits_to_bytes",
    "bytes_to_bits",
    "check_fraction",
    "check_non_negative",
    "check_positive",
    "check_probability",
    "check_range",
    "env_choice",
    "env_flag",
    "env_float",
    "env_int",
    "env_str",
    "gbps",
    "kbps",
    "mbps",
    "ms",
    "seconds_to_ms",
    "transmission_delay",
    "us",
]
