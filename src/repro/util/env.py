"""Uniform parsing of the ``REPRO_*`` environment variables.

Every knob the package reads from the environment goes through one of
these helpers, so the failure mode is uniform: a
:class:`~repro.util.errors.ValidationError` that names the variable and
the offending value, never a bare ``ValueError`` or a silently-ignored
typo.  The full catalogue of recognized variables is tabulated in the
README ("Environment variables").

Conventions:

* Unset variables -- and variables set to whitespace only -- mean "use
  the default"; values are stripped before parsing.
* Boolean flags accept ``1/true/yes/on`` and ``0/false/no/off``
  (case-insensitive).  Anything else is an error: ``REPRO_FULL=ture``
  should fail loudly, not silently run the scaled-down sweeps.
* Choice variables are matched case-insensitively against the
  documented alternatives.
"""

from __future__ import annotations

import os
from typing import Optional, Sequence, Tuple

from repro.util.errors import ValidationError

__all__ = ["env_raw", "env_flag", "env_int", "env_float", "env_choice",
           "env_str", "TRUTHY", "FALSY"]

#: Accepted spellings for boolean environment flags.
TRUTHY: Tuple[str, ...] = ("1", "true", "yes", "on")
FALSY: Tuple[str, ...] = ("0", "false", "no", "off")


def env_raw(name: str) -> Optional[str]:
    """The stripped value of *name*, or ``None`` when unset/blank."""
    value = os.environ.get(name)
    if value is None:
        return None
    value = value.strip()
    return value or None


def env_str(name: str, default: Optional[str] = None) -> Optional[str]:
    """A free-form string variable (paths, labels); blank means default."""
    value = env_raw(name)
    return default if value is None else value


def env_flag(name: str, default: bool = False) -> bool:
    """A boolean flag variable (see :data:`TRUTHY` / :data:`FALSY`)."""
    raw = env_raw(name)
    if raw is None:
        return default
    value = raw.lower()
    if value in TRUTHY:
        return True
    if value in FALSY:
        return False
    raise ValidationError(
        f"environment variable {name} must be a boolean flag "
        f"({'/'.join(TRUTHY)} or {'/'.join(FALSY)}), got {raw!r}"
    )


def env_int(name: str, default: int,
            minimum: Optional[int] = None) -> int:
    """An integer variable, optionally bounded below by *minimum*."""
    raw = env_raw(name)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        bound = f" >= {minimum}" if minimum is not None else ""
        raise ValidationError(
            f"environment variable {name} must be an integer{bound}, "
            f"got {raw!r}"
        ) from None
    if minimum is not None and value < minimum:
        raise ValidationError(
            f"environment variable {name} must be >= {minimum}, got {value}"
        )
    return value


def env_float(name: str, default: float,
              minimum: Optional[float] = None) -> float:
    """A float variable, optionally bounded below by *minimum*."""
    raw = env_raw(name)
    if raw is None:
        return default
    try:
        value = float(raw)
    except ValueError:
        raise ValidationError(
            f"environment variable {name} must be a number, got {raw!r}"
        ) from None
    if minimum is not None and value < minimum:
        raise ValidationError(
            f"environment variable {name} must be >= {minimum}, got {value}"
        )
    return value


def env_choice(name: str, choices: Sequence[str],
               default: Optional[str] = None) -> Optional[str]:
    """One of *choices* (case-insensitive), or *default* when unset."""
    raw = env_raw(name)
    if raw is None:
        return default
    value = raw.lower()
    if value not in choices:
        raise ValidationError(
            f"environment variable {name} must be one of "
            f"{tuple(choices)}, got {raw!r}"
        )
    return value
