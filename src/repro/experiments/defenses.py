"""Defense evaluations: randomized RTO and CHOKe RED-hardening.

Two defense claims from the paper are made quantitative here:

* **Randomized RTO** (Yang, Gerla & Sanadidi, the paper's reference
  [7]).  Section 1.1: "it is proposed to randomize the timeout value...
  However, this method cannot defend the AIMD-based attack, because the
  attack's timing does not rely on the TCP timeout values."
  :func:`run_rto_randomization` attacks the same victims with a
  timeout-based shrew train and with an AIMD-based train, with and
  without RTO jitter, and compares the recovered goodput.

* **RED hardening** (the conclusion's future-work direction: "propose
  enhancement to the RED algorithms").  :func:`run_aqm_hardening`
  replaces the bottleneck's RED with CHOKe
  (:class:`~repro.sim.queues.CHOKeQueue`) and measures how much of the
  attacker's gain the matched-drop discipline takes back.
"""

from __future__ import annotations

import dataclasses
import numpy as np

from repro.baselines.shrew import ShrewAttack
from repro.core.attack import PulseTrain
from repro.experiments.base import (
    DumbbellPlatform,
    GainCurve,
    default_gammas,
    plan_gain_sweep,
    render_curve_table,
    run_gain_sweeps,
)
from repro.runner import Cell, PlatformSpec, get_default_runner
from repro.sim.tcp import TCPConfig, TCPVariant
from repro.util.units import mbps, ms

__all__ = ["RTODefenseResult", "run_rto_randomization",
           "AQMHardeningResult", "run_aqm_hardening"]


# ----------------------------------------------------------------------
# randomized RTO
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class RTODefenseResult:
    """Goodput (bits/s) per (attack, jitter) condition.

    Attributes:
        shrew_plain / shrew_jittered: timeout-based attack, without /
            with randomized RTO.
        aimd_plain / aimd_jittered: AIMD-based attack, likewise.
    """

    shrew_plain: float
    shrew_jittered: float
    aimd_plain: float
    aimd_jittered: float

    def shrew_recovery(self) -> float:
        """Relative goodput recovered against the timeout-based attack."""
        return self.shrew_jittered / self.shrew_plain - 1.0

    def aimd_recovery(self) -> float:
        """Relative goodput recovered against the AIMD-based attack."""
        return self.aimd_jittered / self.aimd_plain - 1.0

    def render(self) -> str:
        return "\n".join([
            "Defense: randomized RTO (reference [7]) vs the two attack classes",
            f"{'attack':<22} {'plain':>10} {'jittered':>10} {'recovered':>10}",
            f"{'timeout-based (shrew)':<22} "
            f"{self.shrew_plain / 1e6:8.2f}Mb {self.shrew_jittered / 1e6:8.2f}Mb "
            f"{self.shrew_recovery():+9.0%}",
            f"{'AIMD-based (PDoS)':<22} "
            f"{self.aimd_plain / 1e6:8.2f}Mb {self.aimd_jittered / 1e6:8.2f}Mb "
            f"{self.aimd_recovery():+9.0%}",
            "paper (Section 1.1): randomization defends the timeout-based "
            "attack, not the AIMD-based one",
        ])


def _attack_cell(train: PulseTrain, *, jitter: float, n_flows: int,
                 warmup: float, window: float, seed: int) -> Cell:
    tcp = TCPConfig(variant=TCPVariant.NEWRENO, delayed_ack=2, min_rto=1.0,
                    rto_jitter=jitter)
    return Cell(
        platform=PlatformSpec(
            kind="dumbbell", n_flows=n_flows, seed=seed, tcp=tcp,
        ),
        train=train, warmup=warmup, window=window,
    )


def run_rto_randomization(
    *,
    jitter: float = 0.5,
    n_flows: int = 15,
    warmup: float = 6.0,
    window: float = 25.0,
    seed: int = 5,
    n_seeds: int = 3,
) -> RTODefenseResult:
    """Evaluate randomized RTO against both PDoS attack classes.

    The timeout-based attack pulses at the victims' minRTO (1 s, the
    ns-2 default); the AIMD-based attack uses a fast FR-driven period
    far from any RTO harmonic.  Both carry comparable average rates.

    Each condition is averaged over ``n_seeds`` scenario seeds
    (``seed .. seed + n_seeds - 1``): whether a given pulse catches a
    victim inside its jittered timeout is sensitive to the exact RTO
    draws, so a single seed is noisy.  All conditions x seeds form one
    independent cell batch -- parallel under ``--jobs``, cached across
    re-runs.
    """
    n_pulses = int(np.ceil(window)) + 2
    shrew = ShrewAttack(min_rto=1.0, rate_bps=mbps(40),
                        extent=ms(150)).train(n_pulses)
    aimd = PulseTrain.from_gamma(
        gamma=0.6, rate_bps=mbps(30), extent=ms(100),
        bottleneck_bps=mbps(15), n_pulses=3 * n_pulses + 2,
    )
    seeds = range(seed, seed + n_seeds)
    conditions = [(shrew, 0.0), (shrew, jitter), (aimd, 0.0), (aimd, jitter)]
    results = get_default_runner().measure_many([
        _attack_cell(train, jitter=j, n_flows=n_flows, warmup=warmup,
                     window=window, seed=s)
        for train, j in conditions
        for s in seeds
    ])
    goodputs = [r.goodput_bytes for r in results]
    to_bps = [
        sum(goodputs[i * n_seeds:(i + 1) * n_seeds]) / (n_seeds * window) * 8.0
        for i in range(len(conditions))
    ]
    return RTODefenseResult(
        shrew_plain=to_bps[0],
        shrew_jittered=to_bps[1],
        aimd_plain=to_bps[2],
        aimd_jittered=to_bps[3],
    )


# ----------------------------------------------------------------------
# CHOKe hardening
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class AQMHardeningResult:
    """Paired RED / CHOKe sweeps of the same attack."""

    red: GainCurve
    choke: GainCurve

    def mean_gain_reduction(self) -> float:
        """Mean (RED − CHOKe) measured attack gain across the sweep."""
        return float(np.mean(self.red.measured() - self.choke.measured()))

    def render(self) -> str:
        parts = [render_curve_table(
            [self.red, self.choke],
            title="Defense: CHOKe (matched-drop) vs plain RED",
        )]
        reduction = self.mean_gain_reduction()
        verdict = (
            "CHOKe takes back attacker gain (the RED-hardening direction "
            "the paper's conclusion motivates)" if reduction > 0
            else "CHOKe did not reduce the attacker's gain here"
        )
        parts.append(
            f"  mean attacker-gain reduction under CHOKe: {reduction:+.3f}"
            f" -- {verdict}"
        )
        return "\n".join(parts)


def run_aqm_hardening(
    *,
    rate_bps: float = mbps(30),
    extent: float = ms(100),
    n_flows: int = 15,
    gammas=None,
    planner=None,
) -> AQMHardeningResult:
    """Sweep the same attack against RED and CHOKe bottlenecks.

    With *planner* set (or ``REPRO_FAST=1``) the two sweeps run through
    the adaptive planner -- convergence early-exit plus CI-driven seed
    allocation -- but on a *fixed shared grid* (refinement disabled):
    :meth:`AQMHardeningResult.mean_gain_reduction` differences the RED
    and CHOKe curves pointwise, which requires matched γ arrays.
    """
    from repro.runner.planner import active_policy, run_planned_sweep

    if gammas is None:
        gammas = default_gammas()
    if planner is None:
        planner = active_policy()
    red_platform = DumbbellPlatform(n_flows=n_flows, queue="red", seed=600)
    choke_platform = DumbbellPlatform(n_flows=n_flows, queue="choke", seed=600)
    if planner is not None:
        fixed = dataclasses.replace(planner, max_rounds=0)
        red_sweep = run_planned_sweep(
            red_platform, rate_bps=rate_bps, extent=extent, gammas=gammas,
            label="RED [fast]", policy=fixed,
        )
        choke_sweep = run_planned_sweep(
            choke_platform, rate_bps=rate_bps, extent=extent, gammas=gammas,
            label="CHOKe [fast]", policy=fixed,
        )
        return AQMHardeningResult(red=red_sweep.curve, choke=choke_sweep.curve)
    red, choke = run_gain_sweeps([
        plan_gain_sweep(
            red_platform,
            rate_bps=rate_bps, extent=extent, gammas=gammas, label="RED",
        ),
        plan_gain_sweep(
            choke_platform,
            rate_bps=rate_bps, extent=extent, gammas=gammas, label="CHOKe",
        ),
    ])
    return AQMHardeningResult(red=red, choke=choke)
