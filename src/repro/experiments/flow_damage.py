"""Per-flow damage distribution: who suffers, by RTT.

Section 2.3 observes that "some TCP flows may survive the attack without
experiencing any packet loss", and §4.1.3 that large-RTT flows can
survive timeout-based attacks.  This experiment measures the per-flow
degradation across the RTT spread, computes Jain's fairness index before
and during the attack, and annotates each flow with the timeout-aware
model's regime classification.

Note that per-flow *relative* degradation does not sort neatly by
regime: short-RTT flows start from the largest baseline share, so even
in the fast-recovery regime they lose the most in relative terms once
the attack squeezes every flow toward a similar floor.  The report
therefore presents both the absolute before/after volumes and the
relative degradation.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

import numpy as np

from repro.analysis.stats import FlowDamage, jain_fairness_index, per_flow_damage
from repro.core.attack import PulseTrain
from repro.core.timeout_model import FlowRegime, per_flow_predictions
from repro.core.throughput import VictimPopulation
from repro.sim.tcp import TCPConfig, TCPVariant
from repro.sim.topology import DumbbellConfig, build_dumbbell
from repro.util.units import mbps, ms

__all__ = ["FlowDamageReport", "run_flow_damage"]


@dataclasses.dataclass(frozen=True)
class FlowDamageReport:
    """Per-flow outcome of one attack run.

    Attributes:
        damages: per-flow before/after records, ordered by RTT.
        regimes: the timeout-aware model's per-flow classification.
        fairness_before / fairness_during: Jain indices of the per-flow
            goodputs.
    """

    damages: List[FlowDamage]
    regimes: List[FlowRegime]
    fairness_before: float
    fairness_during: float

    def mean_degradation(self, regime: Optional[FlowRegime] = None) -> float:
        """Mean per-flow degradation, optionally for one predicted regime."""
        values = [
            d.degradation for d, r in zip(self.damages, self.regimes)
            if regime is None or r is regime
        ]
        return float(np.mean(values)) if values else float("nan")

    def render(self) -> str:
        lines = [
            "Per-flow damage distribution under a PDoS attack",
            f"{'RTT(ms)':>8} {'baseline(Mb)':>13} {'attacked(Mb)':>13} "
            f"{'degradation':>12} {'model regime':>13}",
        ]
        for damage, regime in zip(self.damages, self.regimes):
            lines.append(
                f"{damage.rtt * 1e3:8.0f} {damage.baseline_bytes * 8 / 1e6:13.2f} "
                f"{damage.attacked_bytes * 8 / 1e6:13.2f} "
                f"{damage.degradation:12.3f} {regime.value:>13}"
            )
        lines.append(
            f"Jain fairness: {self.fairness_before:.3f} before -> "
            f"{self.fairness_during:.3f} during the attack"
        )
        for regime in FlowRegime:
            mean = self.mean_degradation(regime)
            if not np.isnan(mean):
                lines.append(
                    f"mean degradation of {regime.value}-classified flows: "
                    f"{mean:.3f}"
                )
        return "\n".join(lines)


def run_flow_damage(
    *,
    n_flows: int = 15,
    rate_bps: float = mbps(30),
    extent: float = ms(100),
    gamma: float = 0.4,
    warmup: float = 6.0,
    window: float = 25.0,
    seed: int = 31,
) -> FlowDamageReport:
    """Measure per-flow damage and cross-validate the regime model."""
    tcp = TCPConfig(variant=TCPVariant.NEWRENO, delayed_ack=2, min_rto=1.0)
    train = PulseTrain.from_gamma(
        gamma=gamma, rate_bps=rate_bps, extent=extent,
        bottleneck_bps=mbps(15),
        n_pulses=int(np.ceil(window / 0.2)) + 2,
    )

    def measure(attacked: bool) -> np.ndarray:
        net = build_dumbbell(DumbbellConfig(n_flows=n_flows, tcp=tcp,
                                            seed=seed))
        net.start_flows()
        net.run(until=warmup)
        before = net.goodput_snapshot()
        if attacked:
            net.add_attack(train, start_time=warmup).start()
        net.run(until=warmup + window)
        return net.goodput_snapshot() - before

    rtts = DumbbellConfig(n_flows=n_flows).flow_rtts()
    baseline = measure(False)
    attacked = measure(True)

    victims = VictimPopulation(rtts=rtts, delayed_ack=2)
    predictions = per_flow_predictions(
        victims, period=train.period, min_rto=tcp.min_rto,
        bottleneck_bps=mbps(15),
    )
    return FlowDamageReport(
        damages=per_flow_damage(rtts, baseline, attacked),
        regimes=[p.regime for p in predictions],
        fairness_before=jain_fairness_index(baseline),
        fairness_during=jain_fairness_index(np.clip(attacked, 0, None)),
    )
