"""Ablation: RED vs drop-tail at the bottleneck.

The paper's conclusion previews a follow-up result: "a PDoS attacker can
achieve a higher attack gain by attacking a RED router than attacking a
drop-tail router".  This ablation quantifies that claim on the dumbbell:
the same attack sweep is run against both queue disciplines and the
measured gains are compared point-wise.
"""

from __future__ import annotations

import dataclasses
import numpy as np

from repro.experiments.base import (
    DumbbellPlatform,
    GainCurve,
    default_gammas,
    plan_gain_sweep,
    render_curve_table,
    run_gain_sweeps,
)
from repro.util.units import mbps, ms

__all__ = ["QueueAblation", "run_queue_ablation"]


@dataclasses.dataclass(frozen=True)
class QueueAblation:
    """Paired RED / drop-tail sweeps of the same attack."""

    red: GainCurve
    droptail: GainCurve

    def mean_gain_advantage(self) -> float:
        """Mean (RED − drop-tail) measured gain across the sweep."""
        return float(np.mean(self.red.measured() - self.droptail.measured()))

    def render(self) -> str:
        parts = [render_curve_table(
            [self.red, self.droptail],
            title="Ablation -- RED vs drop-tail bottleneck",
        )]
        advantage = self.mean_gain_advantage()
        verdict = (
            "RED grants the attacker a higher gain (matches the paper's "
            "conclusion)" if advantage > 0
            else "drop-tail granted the higher gain in this configuration"
        )
        parts.append(f"  mean measured-gain advantage of RED: {advantage:+.3f}"
                     f" -- {verdict}")
        return "\n".join(parts)


def run_queue_ablation(
    *,
    rate_bps: float = mbps(30),
    extent: float = ms(100),
    n_flows: int = 15,
    gammas=None,
) -> QueueAblation:
    """Run the paired sweep (same seed, same attack, both disciplines)."""
    if gammas is None:
        gammas = default_gammas()
    red, droptail = run_gain_sweeps([
        plan_gain_sweep(
            DumbbellPlatform(n_flows=n_flows, queue="red", seed=500),
            rate_bps=rate_bps, extent=extent, gammas=gammas, label="RED",
        ),
        plan_gain_sweep(
            DumbbellPlatform(n_flows=n_flows, queue="droptail", seed=500),
            rate_bps=rate_bps, extent=extent, gammas=gammas, label="DropTail",
        ),
    ])
    return QueueAblation(red=red, droptail=droptail)
