"""Distributed pulsing: same damage, per-source stealth.

Evaluates the DDoS framing of the paper's introduction: one logical
pulse train split across ``k`` sources (synchronized rate-split or
interleaved time-split) must inflict the same victim damage -- the
bottleneck sees the identical byte schedule -- while each individual
source's average rate drops by ``k``, sliding under per-source
detectors like the conformance filter's rate floor.

The experiment runs all three deployments on the same seeded dumbbell
and reports (a) the measured degradation of each, (b) how many attack
sources the conformance filter flags.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

import numpy as np

from repro.core.attack import PulseTrain
from repro.core.distributed import split_interleaved, split_synchronized
from repro.runner import Cell, DeploymentSpec, PlatformSpec, get_default_runner
from repro.runner.cells import goodput_rate
from repro.runner.planner import FAST_POLICY, fast_mode
from repro.sim.tcp import TCPConfig, TCPVariant
from repro.util.units import mbps, ms

__all__ = ["DistributedResult", "run_distributed_attack"]


@dataclasses.dataclass(frozen=True)
class DeploymentOutcome:
    """One deployment's measurement.

    Attributes:
        degradation: measured Γ over the window.
        n_sources: attack sources used.
        flagged_sources: attack flows the conformance filter flagged.
        per_source_gamma: each source's normalized average rate.
    """

    degradation: float
    n_sources: int
    flagged_sources: int
    per_source_gamma: float


@dataclasses.dataclass(frozen=True)
class DistributedResult:
    """Outcomes keyed by deployment name."""

    outcomes: Dict[str, DeploymentOutcome]
    aggregate_gamma: float

    def render(self) -> str:
        lines = [
            "Distributed pulsing -- one logical attack, three deployments",
            f"aggregate gamma = {self.aggregate_gamma:.2f}",
            f"{'deployment':<16} {'sources':>8} {'Gamma_meas':>11} "
            f"{'gamma/source':>13} {'flagged':>8}",
        ]
        for name, outcome in self.outcomes.items():
            lines.append(
                f"{name:<16} {outcome.n_sources:>8} "
                f"{outcome.degradation:>11.3f} "
                f"{outcome.per_source_gamma:>13.3f} "
                f"{outcome.flagged_sources:>8}"
            )
        lines.append(
            "same bottleneck schedule -> same damage; per-source rate "
            "divided by k -> per-source detection starved"
        )
        return "\n".join(lines)


def run_distributed_attack(
    *,
    n_sources: int = 5,
    gamma: float = 0.5,
    rate_bps: float = mbps(30),
    extent: float = ms(100),
    n_flows: int = 15,
    warmup: float = 6.0,
    window: float = 20.0,
    seed: int = 17,
    fast: Optional[bool] = None,
) -> DistributedResult:
    """Compare single-source vs synchronized vs interleaved deployments.

    *fast* (default: follow ``REPRO_FAST``) stamps the fast policy's
    convergence early-exit on every cell and compares degradations as
    goodput *rates* over each cell's measured span.  The exact path is
    byte-based over the full window, unchanged.
    """
    if fast is None:
        fast = fast_mode()
    early_exit = FAST_POLICY.early_exit if fast else None
    bottleneck = mbps(15)
    period = PulseTrain.period_from_gamma(
        gamma=gamma, rate_bps=rate_bps, extent=extent,
        bottleneck_bps=bottleneck,
    )
    n_pulses_raw = int(np.ceil(window / period)) + 2
    # Interleaving needs a pulse count divisible by the source count.
    n_pulses = ((n_pulses_raw + n_sources - 1) // n_sources) * n_sources
    train = PulseTrain.from_gamma(
        gamma=gamma, rate_bps=rate_bps, extent=extent,
        bottleneck_bps=bottleneck, n_pulses=n_pulses,
    )
    # Flag any source whose average rate tops 30% of the single-source
    # average -- a floor the single attacker trips and a k>=4 split ducks.
    rate_floor = 0.3 * train.mean_rate_bps()

    platform = PlatformSpec(
        kind="dumbbell", n_flows=n_flows, seed=seed,
        tcp=TCPConfig(variant=TCPVariant.NEWRENO, delayed_ack=2, min_rto=1.0),
    )
    synchronized = split_synchronized(train, n_sources)
    interleaved = split_interleaved(train, n_sources)

    def _cell(single=None, deployment=None, floor=None) -> Cell:
        return Cell(
            platform=platform, warmup=warmup, window=window, train=single,
            deployment=(
                None if deployment is None
                else DeploymentSpec.from_attack(deployment)
            ),
            rate_floor_bps=floor,
            early_exit=early_exit,
        )

    # All four measurements are independent: one runner batch.
    cells = [
        _cell(),
        _cell(single=train, floor=rate_floor),
        _cell(deployment=synchronized, floor=rate_floor),
        _cell(deployment=interleaved, floor=rate_floor),
    ]
    results = get_default_runner().measure_many(cells)

    if fast:
        # Early exits truncate different cells at different times, so
        # compare time-normalized rates.
        def _degradation(index: int) -> float:
            baseline_rate = goodput_rate(cells[0], results[0])
            return 1.0 - goodput_rate(cells[index], results[index]) / baseline_rate
    else:
        # Byte-based, as the exact path has always computed it (kept
        # bit-identical; rate-normalizing would perturb the last ulp).
        def _degradation(index: int) -> float:
            return 1.0 - results[index].goodput_bytes / results[0].goodput_bytes

    outcomes: Dict[str, DeploymentOutcome] = {}
    outcomes["single"] = DeploymentOutcome(
        degradation=_degradation(1),
        n_sources=1,
        flagged_sources=results[1].flagged_sources,
        per_source_gamma=train.gamma(bottleneck),
    )
    for name, split, index in (
        ("synchronized", synchronized, 2),
        ("interleaved", interleaved, 3),
    ):
        outcomes[name] = DeploymentOutcome(
            degradation=_degradation(index),
            n_sources=n_sources,
            flagged_sources=results[index].flagged_sources,
            per_source_gamma=split.per_source_gamma(bottleneck),
        )
    return DistributedResult(
        outcomes=outcomes, aggregate_gamma=train.gamma(bottleneck),
    )
