"""Multi-seed replication: mean gains with confidence intervals.

Single simulation runs are deterministic but seed-dependent (RED's
coin-flips, flow start jitter).  For publication-grade numbers the
sweep is replicated across seeds and each γ sample is reported as
``mean ± t-based 95% CI`` -- the experimental rigor a reviewer would ask
of the paper's Figs. 6-9 symbols.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional, Sequence

import numpy as np
from scipy import stats

from repro.experiments.base import (
    DumbbellPlatform,
    GainCurve,
    default_gammas,
    run_gain_sweep,
)
from repro.util.errors import ValidationError
from repro.util.units import mbps, ms

__all__ = ["ReplicatedPoint", "ReplicatedCurve", "replicate_gain_sweep"]


@dataclasses.dataclass(frozen=True)
class ReplicatedPoint:
    """One γ sample aggregated across seeds.

    Attributes:
        gamma: the swept normalized rate.
        analytic_gain: the (seed-independent) model prediction.
        mean_gain / std_gain: measured-gain statistics across seeds.
        ci_low / ci_high: t-based 95% confidence interval of the mean.
        n_seeds: replication count.
    """

    gamma: float
    analytic_gain: float
    mean_gain: float
    std_gain: float
    ci_low: float
    ci_high: float
    n_seeds: int

    def ci_contains(self, value: float) -> bool:
        """Whether *value* falls inside the 95% CI."""
        return self.ci_low <= value <= self.ci_high


@dataclasses.dataclass(frozen=True)
class ReplicatedCurve:
    """A gain curve replicated across seeds."""

    label: str
    points: List[ReplicatedPoint]
    curves: List[GainCurve]   #: the per-seed raw curves

    def render(self) -> str:
        lines = [
            f"Replicated sweep: {self.label} "
            f"({self.points[0].n_seeds} seeds, 95% CI)",
            f"{'gamma':>7} {'analytic':>9} {'mean':>8} {'std':>7} "
            f"{'95% CI':>19}",
        ]
        for p in self.points:
            lines.append(
                f"{p.gamma:7.2f} {p.analytic_gain:9.3f} {p.mean_gain:8.3f} "
                f"{p.std_gain:7.3f} [{p.ci_low:8.3f},{p.ci_high:8.3f}]"
            )
        return "\n".join(lines)

    def max_ci_width(self) -> float:
        """The widest confidence interval across the sweep."""
        return max(p.ci_high - p.ci_low for p in self.points)


def replicate_gain_sweep(
    *,
    seeds: Sequence[int] = (11, 23, 47),
    platform_factory: Optional[Callable[[int], DumbbellPlatform]] = None,
    rate_bps: float = mbps(30),
    extent: float = ms(100),
    gammas=None,
    kappa: float = 1.0,
    confidence: float = 0.95,
    **sweep_kwargs,
) -> ReplicatedCurve:
    """Run :func:`~repro.experiments.base.run_gain_sweep` across seeds.

    Args:
        seeds: the replication seeds; at least two.
        platform_factory: ``seed -> platform``; defaults to a 15-flow
            dumbbell.
        confidence: CI level for the t-interval.
        Remaining arguments are forwarded to ``run_gain_sweep``.
    """
    if len(seeds) < 2:
        raise ValidationError("replication needs at least two seeds")
    if not 0 < confidence < 1:
        raise ValidationError(f"confidence must be in (0, 1), got {confidence}")
    if platform_factory is None:
        platform_factory = lambda seed: DumbbellPlatform(n_flows=15, seed=seed)
    if gammas is None:
        gammas = default_gammas()

    curves = [
        run_gain_sweep(
            platform_factory(seed),
            rate_bps=rate_bps, extent=extent, gammas=gammas, kappa=kappa,
            label=f"seed={seed}", **sweep_kwargs,
        )
        for seed in seeds
    ]

    points: List[ReplicatedPoint] = []
    n = len(seeds)
    t_value = stats.t.ppf(0.5 + confidence / 2.0, df=n - 1)
    for index, gamma in enumerate(gammas):
        samples = np.array([c.points[index].measured_gain for c in curves])
        mean = float(samples.mean())
        std = float(samples.std(ddof=1))
        half_width = t_value * std / np.sqrt(n)
        points.append(ReplicatedPoint(
            gamma=float(gamma),
            analytic_gain=curves[0].points[index].analytic_gain,
            mean_gain=mean,
            std_gain=std,
            ci_low=mean - half_width,
            ci_high=mean + half_width,
            n_seeds=n,
        ))
    label = (f"R={rate_bps / 1e6:.0f}M T_extent={extent * 1e3:.0f}ms "
             f"kappa={kappa:g}")
    return ReplicatedCurve(label=label, points=points, curves=curves)
