"""Figure 1: the cwnd trajectory under a fixed-period AIMD attack.

Reproduces the schematic of Fig. 1 with real dynamics: a single TCP flow
whose window is sampled just before each attack epoch, compared against
the analytical trajectory ``W_{n+1} = b^n W_1 + (1 − b^n) W_c`` and the
converged window ``W_c`` of Eq. (1).  The transient/steady split
(N_attack) is also reported.
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Tuple

from repro.core.attack import PulseTrain
from repro.core.throughput import (
    converged_window,
    pulses_to_converge,
    window_after_pulses,
)
from repro.sim.packet import FULL_PACKET_BYTES
from repro.sim.tcp import AIMDParams, TCPConfig, TCPVariant
from repro.sim.topology import DumbbellConfig, build_dumbbell
from repro.util.units import mbps, ms

__all__ = ["CwndExperiment", "run_fig01"]


@dataclasses.dataclass(frozen=True)
class CwndExperiment:
    """Result of the Fig.-1 experiment.

    Attributes:
        epochs: list of (epoch time, measured W_n, analytic W_n).
        w_converged: the Eq.-1 converged window, packets.
        n_attack_analytic: the analytic transient length N_attack.
        measured_steady_mean: mean measured pre-epoch window in the
            steady phase.
    """

    epochs: List[Tuple[float, float, float]]
    w_converged: float
    n_attack_analytic: int
    measured_steady_mean: float

    def render(self) -> str:
        lines = [
            "Fig. 1 -- cwnd under a fixed-period AIMD attack",
            f"W_c (Eq. 1) = {self.w_converged:.2f} pkts, "
            f"N_attack = {self.n_attack_analytic} pulses",
            f"{'epoch t(s)':>10} {'W_n measured':>13} {'W_n analytic':>13}",
        ]
        for t, measured, analytic in self.epochs:
            lines.append(f"{t:10.2f} {measured:13.2f} {analytic:13.2f}")
        lines.append(
            f"steady-phase measured mean = {self.measured_steady_mean:.2f} pkts"
        )
        return "\n".join(lines)


def run_fig01(
    *,
    rtt: float = ms(200),
    period: float = 2.0,
    extent: float = ms(150),
    rate_bps: float = mbps(20),
    n_pulses: int = 12,
    delayed_ack: int = 2,
) -> CwndExperiment:
    """Run the single-flow cwnd experiment.

    A lone flow on the dumbbell is given time to open its window, then
    attacked with *n_pulses* identical pulses of period T_AIMD.  The
    window is sampled from the cwnd trace just before each epoch.
    """
    tcp = TCPConfig(
        variant=TCPVariant.NEWRENO,
        delayed_ack=delayed_ack,
        aimd=AIMDParams.standard_tcp(),
        min_rto=1.0,
        initial_ssthresh=40.0,
    )
    # A small bottleneck buffer (60 full packets) so every pulse reliably
    # overflows it and induces the per-epoch loss the schematic assumes.
    config = DumbbellConfig(
        n_flows=1, rtt_min=rtt, rtt_max=rtt, tcp=tcp, seed=3,
        buffer_bytes=60 * FULL_PACKET_BYTES,
    )
    net = build_dumbbell(config)
    sender = net.senders[0]
    sender.trace_cwnd = True
    net.start_flows(stagger=0.0)

    attack_start = 8.0
    net.run(until=attack_start)
    w_initial = sender.cwnd

    train = PulseTrain.uniform(extent, rate_bps, period - extent, n_pulses)
    source = net.add_attack(train, start_time=attack_start)
    source.start()
    net.run(until=attack_start + n_pulses * period + 1.0)

    aimd = tcp.aimd
    w_c = converged_window(aimd, delayed_ack, period, rtt)
    n_attack = pulses_to_converge(aimd, delayed_ack, period, rtt, w_initial)

    # Sample the trace just before each pulse start.
    trace = sender.cwnd_trace
    epochs: List[Tuple[float, float, float]] = []
    for n, (begin, _end) in enumerate(train.pulse_intervals(attack_start)):
        before = [w for (t, w) in trace if t < begin]
        measured = before[-1] if before else w_initial
        analytic = window_after_pulses(aimd, delayed_ack, period, rtt,
                                       w_initial, n)
        epochs.append((begin, measured, analytic))

    steady = [m for (_t, m, _a) in epochs[max(n_attack, 1):]]
    steady_mean = sum(steady) / len(steady) if steady else math.nan
    return CwndExperiment(
        epochs=epochs,
        w_converged=w_c,
        n_attack_analytic=n_attack,
        measured_steady_mean=steady_mean,
    )
