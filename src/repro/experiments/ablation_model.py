"""Ablation: base (FR-only) model vs the timeout-aware extension.

The paper's Section-5 future work, evaluated: for a γ sweep on the
dumbbell, compare the prediction error of Proposition 2's FR-only gain
against the timeout-aware :mod:`repro.core.timeout_model`, relative to
the simulated gain.  The extension should cut the error precisely where
the base model under-estimates (over-gain and shrew regions).
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

import numpy as np

from repro.core.timeout_model import extended_gain
from repro.experiments.base import (
    DumbbellPlatform,
    GainCurve,
    default_gammas,
    run_gain_sweep,
)
from repro.util.units import mbps, ms

__all__ = ["ModelAblation", "run_model_ablation"]


@dataclasses.dataclass(frozen=True)
class ModelAblation:
    """Prediction-error comparison of the two analytical models.

    Attributes:
        curve: the measured sweep (with base-model analytic gains).
        extended_gains: the timeout-aware predictions, per swept γ.
        base_errors / extended_errors: |prediction − measured| per γ.
    """

    curve: GainCurve
    extended_gains: List[float]
    base_errors: List[float]
    extended_errors: List[float]

    def mean_base_error(self) -> float:
        return float(np.mean(self.base_errors))

    def mean_extended_error(self) -> float:
        return float(np.mean(self.extended_errors))

    def render(self) -> str:
        lines = [
            "Ablation -- FR-only model (Prop. 2) vs timeout-aware extension",
            f"{self.curve.label}  (C_psi={self.curve.c_psi:.3f})",
            f"{'gamma':>7} {'measured':>9} {'base':>8} {'extended':>9} "
            f"{'|err_b|':>8} {'|err_e|':>8} {'shrew':>6}",
        ]
        for point, ext, err_b, err_e in zip(
            self.curve.points, self.extended_gains,
            self.base_errors, self.extended_errors,
        ):
            lines.append(
                f"{point.gamma:7.2f} {point.measured_gain:9.3f} "
                f"{point.analytic_gain:8.3f} {ext:9.3f} {err_b:8.3f} "
                f"{err_e:8.3f} {'*' if point.is_shrew else '':>6}"
            )
        lines.append(
            f"mean |error|: base {self.mean_base_error():.3f}, "
            f"timeout-aware {self.mean_extended_error():.3f}"
        )
        return "\n".join(lines)


def run_model_ablation(
    *,
    rate_bps: float = mbps(30),
    extent: float = ms(100),
    n_flows: int = 15,
    kappa: float = 1.0,
    gammas=None,
) -> ModelAblation:
    """Sweep once, then score both models against the measurement."""
    if gammas is None:
        gammas = default_gammas()
    platform = DumbbellPlatform(n_flows=n_flows, seed=801)
    curve = run_gain_sweep(
        platform, rate_bps=rate_bps, extent=extent, gammas=gammas,
        kappa=kappa, label=f"R={rate_bps / 1e6:.0f}M "
        f"T_extent={extent * 1e3:.0f}ms, {n_flows} flows",
    )
    victims = platform.victim_population()
    extended = [
        extended_gain(
            victims,
            gamma=point.gamma,
            period=point.period,
            bottleneck_bps=platform.bottleneck_bps,
            min_rto=platform.min_rto,
            kappa=kappa,
        )
        for point in curve.points
    ]
    base_errors = [
        abs(max(point.analytic_gain, 0.0) - point.measured_gain)
        for point in curve.points
    ]
    extended_errors = [
        abs(ext - point.measured_gain)
        for ext, point in zip(extended, curve.points)
    ]
    return ModelAblation(
        curve=curve,
        extended_gains=extended,
        base_errors=base_errors,
        extended_errors=extended_errors,
    )
