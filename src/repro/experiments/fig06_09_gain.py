"""Figures 6-9: attack gain vs γ, analytical lines vs simulation symbols.

The paper's main validation: for each attack pulse rate
(Fig. 6: 25 Mb/s, Fig. 7: 30 Mb/s, Fig. 8: 35 Mb/s, Fig. 9: 40 Mb/s),
four panels (15 / 25 / 35 / 45 victim flows), each carrying three
series (T_extent = 50 / 75 / 100 ms) of attack gain against the
normalized average rate γ ∈ (0, 1).

Each (figure, panel, series) is a :func:`~repro.experiments.base.run_gain_sweep`
on the dumbbell platform; the driver also classifies every series into
the §4.1.1 normal/under/over-gain regimes and reports the maximization
points (§4.1.2): the γ at which the measured and the analytical gain
peak.

Fast mode: with an active :class:`~repro.runner.planner.PlannerPolicy`
(``--fast`` / ``REPRO_FAST=1`` / the ``planner=`` argument) every series
resolves through the adaptive planner instead of the dense grid --
coarse-to-fine γ refinement around the peak, CI-driven seed allocation,
and convergence early-exit.  The rendered figure then carries a
per-series planner report alongside the usual maximization points.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.base import (
    DumbbellPlatform,
    GainCurve,
    default_gammas,
    full_scale,
    plan_gain_sweep,
    render_curve_table,
    run_gain_sweeps,
)
from repro.runner.planner import active_policy, run_planned_sweep
from repro.util.units import mbps, ms
from repro.util.errors import ValidationError

__all__ = ["GainFigure", "FIGURE_RATES", "run_gain_figure", "panel_flow_counts"]

#: Fig. number -> the attack pulse rate it sweeps.
FIGURE_RATES: Dict[int, float] = {
    6: mbps(25),
    7: mbps(30),
    8: mbps(35),
    9: mbps(40),
}

#: The three T_extent series of every panel, seconds.
EXTENTS: Sequence[float] = (ms(50), ms(75), ms(100))


def panel_flow_counts() -> List[int]:
    """The panels' victim-flow counts: all four at full scale, two scaled."""
    return [15, 25, 35, 45] if full_scale() else [15, 25]


@dataclasses.dataclass(frozen=True)
class GainFigure:
    """One reproduced figure: panels keyed by flow count.

    ``planner_reports`` is empty for exact (dense-grid) runs; in fast
    mode it carries one :class:`~repro.runner.planner.PlannedSweep` per
    series, in panel order.
    """

    figure: int
    rate_bps: float
    panels: Dict[int, List[GainCurve]]
    planner_reports: Tuple = ()

    def render(self) -> str:
        parts = []
        for n_flows, curves in self.panels.items():
            parts.append(render_curve_table(
                curves,
                title=(
                    f"Fig. {self.figure} -- R_attack="
                    f"{self.rate_bps / 1e6:.0f} Mb/s, {n_flows} TCP flows"
                ),
            ))
            for curve in curves:
                peak_m = curve.peak_measured()
                peak_a = curve.peak_analytic()
                parts.append(
                    f"  maximization point [{curve.label}]: measured "
                    f"gamma*={peak_m.gamma:.2f} (G={peak_m.measured_gain:.3f}),"
                    f" analytic gamma*={peak_a.gamma:.2f} "
                    f"(G={peak_a.analytic_gain:.3f})"
                )
        if self.planner_reports:
            parts.append("\n".join(
                ["fast mode (adaptive planner):"]
                + [f"  {report.summary()}"
                   for report in self.planner_reports]
            ))
        return "\n\n".join(parts)

    def all_curves(self) -> List[GainCurve]:
        return [curve for curves in self.panels.values() for curve in curves]


def run_gain_figure(
    figure: int,
    *,
    flow_counts: Optional[Sequence[int]] = None,
    extents: Optional[Sequence[float]] = None,
    gammas=None,
    kappa: float = 1.0,
    planner=None,
) -> GainFigure:
    """Reproduce one of Figs. 6-9.

    Args:
        figure: 6, 7, 8 or 9 (selects R_attack per :data:`FIGURE_RATES`).
        flow_counts: panel list; defaults to :func:`panel_flow_counts`.
        extents: T_extent series; defaults to the paper's 50/75/100 ms.
        gammas: swept γ grid; defaults per scale.
        kappa: risk exponent of the plotted gain (risk-neutral 1.0).
        planner: a :class:`~repro.runner.planner.PlannerPolicy` to
            resolve every series adaptively; defaults to
            :func:`~repro.runner.planner.active_policy` (``None``
            unless ``REPRO_FAST=1``), so exact runs are untouched.
    """
    if figure not in FIGURE_RATES:
        raise ValidationError(
            f"figure must be one of {sorted(FIGURE_RATES)}, got {figure}"
        )
    rate = FIGURE_RATES[figure]
    if flow_counts is None:
        flow_counts = panel_flow_counts()
    if extents is None:
        extents = EXTENTS
    if planner is None:
        planner = active_policy()
    if planner is not None:
        return _run_gain_figure_planned(
            figure, rate, flow_counts, extents, gammas, kappa, planner,
        )
    if gammas is None:
        gammas = default_gammas()

    # Plan every (panel, series) sweep up front and measure the union of
    # their cells in a single runner batch, so parallel workers overlap
    # across panels and series -- not just within one curve.
    plans = []
    plan_panels: List[int] = []
    for n_flows in flow_counts:
        platform = DumbbellPlatform(n_flows=n_flows, seed=figure * 100 + n_flows)
        for extent in extents:
            plans.append(plan_gain_sweep(
                platform,
                rate_bps=rate,
                extent=extent,
                gammas=gammas,
                kappa=kappa,
                label=(
                    f"T_extent={extent * 1e3:.0f}ms, {n_flows} flows, "
                    f"R={rate / 1e6:.0f}M"
                ),
            ))
            plan_panels.append(n_flows)

    panels: Dict[int, List[GainCurve]] = {n: [] for n in flow_counts}
    for n_flows, curve in zip(plan_panels, run_gain_sweeps(plans)):
        panels[n_flows].append(curve)
    return GainFigure(figure=figure, rate_bps=rate, panels=panels)


def _run_gain_figure_planned(
    figure: int,
    rate: float,
    flow_counts: Sequence[int],
    extents: Sequence[float],
    gammas,
    kappa: float,
    planner,
) -> GainFigure:
    """Fast-mode figure: one adaptive sweep per (panel, series)."""
    panels: Dict[int, List[GainCurve]] = {n: [] for n in flow_counts}
    reports = []
    for n_flows in flow_counts:
        platform = DumbbellPlatform(
            n_flows=n_flows, seed=figure * 100 + n_flows,
        )
        for extent in extents:
            sweep = run_planned_sweep(
                platform,
                rate_bps=rate,
                extent=extent,
                gammas=gammas,
                kappa=kappa,
                policy=planner,
                label=(
                    f"T_extent={extent * 1e3:.0f}ms, {n_flows} flows, "
                    f"R={rate / 1e6:.0f}M [fast]"
                ),
            )
            panels[n_flows].append(sweep.curve)
            reports.append(sweep)
    return GainFigure(
        figure=figure, rate_bps=rate, panels=panels,
        planner_reports=tuple(reports),
    )
