"""Figure 12: test-bed gain curves.

Section 4.2: 10 victim Iperf flows through a 10 Mb/s, 150 ms Dummynet
pipe with the rule-of-thumb RED buffer; three attacks share
``T_extent = 150 ms`` but differ in rate, R_attack ∈ {15, 20, 30} Mb/s.
The paper reports a normal-gain outcome at 20 Mb/s, over-gain (analysis
under-estimates) at 30 Mb/s, and under-gain (analysis over-estimates)
at 15 Mb/s.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

from repro.experiments.base import (
    GainCurve,
    TestbedPlatform,
    default_gammas,
    plan_gain_sweep,
    render_curve_table,
    run_gain_sweeps,
)
from repro.util.units import mbps, ms

__all__ = ["TestbedFigure", "TESTBED_RATES", "run_fig12"]

#: The paper's three test-bed pulse rates, bits/s.
TESTBED_RATES: Sequence[float] = (mbps(15), mbps(20), mbps(30))

#: The common pulse width, seconds.
TESTBED_EXTENT: float = ms(150)


@dataclasses.dataclass(frozen=True)
class TestbedFigure:
    """The three test-bed curves of Fig. 12."""

    __test__ = False  # not a pytest class, despite the name

    curves: List[GainCurve]

    def render(self) -> str:
        parts = [render_curve_table(
            self.curves,
            title="Fig. 12 -- test-bed: 10 flows, T_extent=150 ms",
        )]
        for curve in self.curves:
            peak = curve.peak_measured()
            parts.append(
                f"  [{curve.label}] peak measured gain {peak.measured_gain:.3f}"
                f" at gamma={peak.gamma:.2f}; regime "
                f"{curve.comparison.regime.value}"
            )
        return "\n".join(parts)


def run_fig12(*, gammas=None, n_flows: int = 10,
              use_red: bool = True) -> TestbedFigure:
    """Reproduce Fig. 12 on the Dummynet test-bed emulation."""
    if gammas is None:
        gammas = default_gammas()
    # One batch across the three rates: curves parallelize together and
    # share the single no-attack baseline cell.
    plans = [
        plan_gain_sweep(
            TestbedPlatform(n_flows=n_flows, use_red=use_red, seed=42),
            rate_bps=rate,
            extent=TESTBED_EXTENT,
            gammas=gammas,
            label=f"R_attack={rate / 1e6:.0f}M",
        )
        for rate in TESTBED_RATES
    ]
    return TestbedFigure(curves=run_gain_sweeps(plans))
