"""Extension experiment: detection evasion of the optimized PDoS attack.

Quantifies the paper's motivating claim (Section 1): a PDoS attack tuned
to the optimal γ* slips past detectors tuned for flooding attacks, while
an equal-pulse-rate flooding attack is caught immediately.

Three detectors from :mod:`repro.detection` inspect the bottleneck's
offered load (and per-flow profiles) under (a) no attack, (b) the
optimized PDoS attack, and (c) a flooding attack of the same pulse rate:

* the volume threshold detector should flag only the flood;
* the DTW pulse detector *can* see the PDoS pulses -- unless T_extent is
  below its sampling period (the paper's criticism of reference [8]),
  which the experiment demonstrates by running it at two sampling rates;
* the conformance filter flags the flood's one-way bulk but scores the
  low-average-rate PDoS flow under its rate floor.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from repro.core.attack import PulseTrain
from repro.core.optimizer import optimal_attack
from repro.detection.dtw import DTWPulseDetector, DTWVerdict
from repro.detection.feature import ConformanceDetector
from repro.detection.flood import FloodDetector, FloodVerdict
from repro.experiments.base import full_scale
from repro.sim.topology import DumbbellConfig, build_dumbbell
from repro.sim.tcp import TCPConfig, TCPVariant
from repro.sim.trace import RateMonitor
from repro.util.units import mbps, ms

__all__ = ["EvasionScenario", "EvasionReport", "run_detection_evasion"]

_BIN_WIDTH = 0.02


@dataclasses.dataclass(frozen=True)
class EvasionScenario:
    """Detector verdicts for one traffic condition."""

    name: str
    flood_verdict: FloodVerdict
    dtw_fast: DTWVerdict          #: DTW sampling at 0.1 s (< T_extent)
    dtw_slow: DTWVerdict          #: DTW sampling at 1.0 s (> T_extent)
    conformance_flagged: bool     #: attack flow flagged by the filter
    mean_rate_fraction: float     #: offered load / capacity over the window


@dataclasses.dataclass(frozen=True)
class EvasionReport:
    """The four-condition comparison."""

    scenarios: Dict[str, EvasionScenario]
    gamma_star: float
    gamma_star_averse: float = float("nan")

    def render(self) -> str:
        lines = [
            "Detection evasion -- optimized PDoS vs flooding",
            f"gamma* (risk-neutral) = {self.gamma_star:.3f}, "
            f"gamma* (risk-averse) = {self.gamma_star_averse:.3f}",
            f"{'condition':<12} {'volume':>8} {'dtw@0.1s':>9} "
            f"{'dtw@1s':>7} {'conformance':>12} {'load':>6}",
        ]
        for name, s in self.scenarios.items():
            lines.append(
                f"{name:<12} {str(s.flood_verdict.detected):>8} "
                f"{str(s.dtw_fast.detected):>9} {str(s.dtw_slow.detected):>7} "
                f"{str(s.conformance_flagged):>12} "
                f"{s.mean_rate_fraction:6.2f}"
            )
        return "\n".join(lines)


def _run_condition(name: str, train: Optional[PulseTrain],
                   horizon: float) -> EvasionScenario:
    config = DumbbellConfig(
        n_flows=15,
        tcp=TCPConfig(variant=TCPVariant.NEWRENO, delayed_ack=2, min_rto=1.0),
        seed=77,
    )
    net = build_dumbbell(config)
    monitor = RateMonitor(_BIN_WIDTH, horizon)
    conformance = ConformanceDetector(min_rate_bps=0.5 * config.bottleneck_rate_bps)

    warmup = 5.0
    net.start_flows()
    net.run(until=warmup)
    offset = net.sim.now

    def observe(packet, now, accepted):
        monitor.observe(packet, now - offset, accepted)
        conformance.observe_forward(packet, now, accepted)

    net.bottleneck.monitors.append(observe)
    net.reverse_bottleneck.monitors.append(conformance.observe_reverse)

    attack_flow_id = None
    if train is not None:
        source = net.add_attack(train, start_time=warmup)
        source.start()
        attack_flow_id = source.flow_id
    net.run(until=warmup + horizon)

    capacity = config.bottleneck_rate_bps
    volume = FloodDetector(capacity, threshold_fraction=1.2, window=5.0)
    flood_verdict = volume.inspect(monitor.bytes_per_bin, _BIN_WIDTH)
    # The DTW detector, like its reference, examines a window of traffic
    # in progress -- skip the attack-onset transient (the TCP collapse
    # step would otherwise dominate the shape).
    steady = monitor.bytes_per_bin[int(5.0 / _BIN_WIDTH):]
    dtw_fast = DTWPulseDetector(sample_period=0.1).detect(steady, _BIN_WIDTH)
    dtw_slow = DTWPulseDetector(sample_period=1.0).detect(steady, _BIN_WIDTH)
    flagged = (
        conformance.is_flagged(attack_flow_id)
        if attack_flow_id is not None else False
    )
    mean_rate = float(monitor.bytes_per_bin.sum()) * 8.0 / horizon / capacity
    return EvasionScenario(
        name=name,
        flood_verdict=flood_verdict,
        dtw_fast=dtw_fast,
        dtw_slow=dtw_slow,
        conformance_flagged=flagged,
        mean_rate_fraction=mean_rate,
    )


def run_detection_evasion(*, kappa_neutral: float = 1.0,
                          kappa_averse: float = 8.0,
                          horizon: Optional[float] = None) -> EvasionReport:
    """Run the four-condition detection comparison.

    Conditions: no attack; the risk-neutral optimum (κ = 1); a
    risk-averse optimum (κ = 8, whose lower γ* drops the average rate
    under the conformance filter's floor); and an equal-pulse-rate
    flood.  The κ knob is exactly the paper's stealth/damage trade-off
    made operational.
    """
    if horizon is None:
        horizon = 60.0 if full_scale() else 25.0
    config = DumbbellConfig(n_flows=15)
    from repro.core.throughput import VictimPopulation

    victims = VictimPopulation(rtts=config.flow_rtts(), delayed_ack=2)
    rate = mbps(30)
    extent = ms(100)

    def plan_for(kappa: float):
        return optimal_attack(
            victims, rate_bps=rate, extent=extent,
            bottleneck_bps=config.bottleneck_rate_bps, kappa=kappa,
            n_pulses=int(horizon / 0.2) + 2,
        )

    neutral = plan_for(kappa_neutral)
    averse = plan_for(kappa_averse)
    flood = PulseTrain.flooding(rate, horizon)

    scenarios = {
        "baseline": _run_condition("baseline", None, horizon),
        "pdos-k1": _run_condition("pdos-k1", neutral.train, horizon),
        "pdos-k8": _run_condition("pdos-k8", averse.train, horizon),
        "flooding": _run_condition("flooding", flood, horizon),
    }
    return EvasionReport(scenarios=scenarios, gamma_star=neutral.gamma_star,
                         gamma_star_averse=averse.gamma_star)
