"""Per-figure experiment drivers.

One module per paper figure plus the two extension experiments:

========================  =====================================================
module                    reproduces
========================  =====================================================
fig01_cwnd                Fig. 1 -- cwnd trajectory under a fixed-period attack
fig02_pattern             Fig. 2 -- periodic incoming-traffic pattern (model)
fig03_sync                Fig. 3 -- quasi-global synchronization (both platforms)
fig04_risk                Fig. 4 -- risk-preference curves
fig06_09_gain             Figs. 6-9 -- gain vs γ sweeps (dumbbell)
fig10_shrew               Fig. 10 -- PDoS vs shrew-attack points
fig12_testbed             Fig. 12 -- test-bed gain curves
ablation_red_droptail     conclusion's RED-vs-drop-tail claim
ablation_model            Prop.-2 vs timeout-aware model accuracy (Section-5 future work)
ablation_victim           victim TCP variant (Tahoe/Reno/NewReno/SACK) resilience
flow_damage               per-flow damage distribution + Jain fairness
distributed_attack        single vs multi-source (DDoS) deployments of one attack
mice_elephants            short-flow (mice) FCT damage vs elephant goodput
multi_bottleneck          gamma* on parking-lot / N-bottleneck chain topologies
detection_evasion         Section-1 evasion claims, quantified
defenses                  randomized-RTO [7] and CHOKe RED-hardening evaluations
replication               multi-seed sweeps with confidence intervals
========================  =====================================================

All drivers honour ``REPRO_FULL=1`` for paper-scale runs; the defaults
are scaled down to keep the benchmark suite fast.
"""

from repro.experiments.ablation_model import ModelAblation, run_model_ablation
from repro.experiments.ablation_red_droptail import QueueAblation, run_queue_ablation
from repro.experiments.ablation_victim import VictimAblation, run_victim_ablation
from repro.experiments.flow_damage import FlowDamageReport, run_flow_damage
from repro.experiments.mice_elephants import (
    MiceElephantsResult,
    run_mice_elephants,
)
from repro.experiments.multi_bottleneck import (
    MultiBottleneckResult,
    ParkingLotPlatform,
    run_multi_bottleneck,
)
from repro.experiments.base import (
    DumbbellPlatform,
    GainCurve,
    GainPoint,
    TestbedPlatform,
    default_gammas,
    full_scale,
    render_curve_table,
    run_gain_sweep,
)
from repro.experiments.defenses import (
    AQMHardeningResult,
    RTODefenseResult,
    run_aqm_hardening,
    run_rto_randomization,
)
from repro.experiments.detection_evasion import EvasionReport, run_detection_evasion
from repro.experiments.distributed_attack import (
    DistributedResult,
    run_distributed_attack,
)
from repro.experiments.fig01_cwnd import CwndExperiment, run_fig01
from repro.experiments.replication import (
    ReplicatedCurve,
    ReplicatedPoint,
    replicate_gain_sweep,
)
from repro.experiments.fig02_pattern import PatternResult, run_fig02
from repro.experiments.fig03_sync import SyncResult, run_fig03_ns2, run_fig03_testbed
from repro.experiments.fig04_risk import RiskCurves, run_fig04
from repro.experiments.fig06_09_gain import FIGURE_RATES, GainFigure, run_gain_figure
from repro.experiments.fig10_shrew import SHREW_CASES, ShrewFigure, run_fig10
from repro.experiments.fig12_testbed import TESTBED_RATES, TestbedFigure, run_fig12

__all__ = [
    "AQMHardeningResult",
    "CwndExperiment",
    "DistributedResult",
    "DumbbellPlatform",
    "EvasionReport",
    "FIGURE_RATES",
    "FlowDamageReport",
    "GainCurve",
    "GainFigure",
    "GainPoint",
    "MiceElephantsResult",
    "ModelAblation",
    "MultiBottleneckResult",
    "ParkingLotPlatform",
    "PatternResult",
    "QueueAblation",
    "RTODefenseResult",
    "ReplicatedCurve",
    "ReplicatedPoint",
    "RiskCurves",
    "SHREW_CASES",
    "ShrewFigure",
    "SyncResult",
    "TESTBED_RATES",
    "TestbedFigure",
    "TestbedPlatform",
    "VictimAblation",
    "default_gammas",
    "full_scale",
    "render_curve_table",
    "replicate_gain_sweep",
    "run_aqm_hardening",
    "run_detection_evasion",
    "run_distributed_attack",
    "run_fig01",
    "run_fig02",
    "run_fig03_ns2",
    "run_fig03_testbed",
    "run_fig04",
    "run_fig10",
    "run_fig12",
    "run_flow_damage",
    "run_gain_figure",
    "run_gain_sweep",
    "run_mice_elephants",
    "run_model_ablation",
    "run_multi_bottleneck",
    "run_queue_ablation",
    "run_rto_randomization",
    "run_victim_ablation",
]
