"""Mice vs elephants: who does the pulsing attack hurt more?

Kuzmanovic & Knightly titled the shrew paper "the shrew vs. the mice and
elephants"; the PDoS paper's victims are all elephants (long-lived bulk
flows).  This experiment adds a churn of short transfers (mice) to the
dumbbell and measures both populations with and without the attack:

* elephants report aggregate goodput (the paper's Γ);
* mice report flow-completion-time percentiles and the fraction of
  transfers that never finish within the window.

Expectation: the mice's tail FCT inflates by multiples of the RTO --
a short flow that loses its initial window has no duplicate-ACK budget
and must wait a full timeout -- so the attack's damage to interactive
traffic far exceeds what the aggregate throughput number suggests.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

import numpy as np

from repro.core.attack import PulseTrain
from repro.sim.tcp import TCPConfig, TCPVariant
from repro.sim.topology import DumbbellConfig, build_dumbbell
from repro.sim.workload import ShortFlowWorkload
from repro.util.units import mbps, ms

__all__ = ["MiceElephantsResult", "run_mice_elephants"]


@dataclasses.dataclass(frozen=True)
class PopulationOutcome:
    """Measurements for one condition (baseline or attacked)."""

    elephant_goodput_bps: float
    mice_completed: int
    mice_launched: int
    fct_p50: float
    fct_p90: float
    fct_p99: float
    unfinished_fraction: float


@dataclasses.dataclass(frozen=True)
class MiceElephantsResult:
    """Baseline vs attacked outcomes."""

    baseline: PopulationOutcome
    attacked: PopulationOutcome

    def elephant_degradation(self) -> float:
        return 1.0 - (self.attacked.elephant_goodput_bps
                      / self.baseline.elephant_goodput_bps)

    def mice_p90_inflation(self) -> float:
        """How many times the mice's 90th-percentile FCT grew."""
        if self.baseline.fct_p90 == 0:
            return float("inf")
        return self.attacked.fct_p90 / self.baseline.fct_p90

    def render(self) -> str:
        rows = [
            ("elephant goodput (Mb/s)",
             f"{self.baseline.elephant_goodput_bps / 1e6:.2f}",
             f"{self.attacked.elephant_goodput_bps / 1e6:.2f}"),
            ("mice completed / launched",
             f"{self.baseline.mice_completed}/{self.baseline.mice_launched}",
             f"{self.attacked.mice_completed}/{self.attacked.mice_launched}"),
            ("mice FCT p50 (s)",
             f"{self.baseline.fct_p50:.3f}", f"{self.attacked.fct_p50:.3f}"),
            ("mice FCT p90 (s)",
             f"{self.baseline.fct_p90:.3f}", f"{self.attacked.fct_p90:.3f}"),
            ("mice FCT p99 (s)",
             f"{self.baseline.fct_p99:.3f}", f"{self.attacked.fct_p99:.3f}"),
            ("mice unfinished fraction",
             f"{self.baseline.unfinished_fraction:.2f}",
             f"{self.attacked.unfinished_fraction:.2f}"),
        ]
        lines = [
            "Mice vs elephants under a PDoS attack",
            f"{'metric':<28} {'baseline':>12} {'attacked':>12}",
        ]
        lines += [f"{name:<28} {b:>12} {a:>12}" for name, b, a in rows]
        lines.append(
            f"elephant degradation {self.elephant_degradation():.2f}; "
            f"mice p90 FCT inflated {self.mice_p90_inflation():.1f}x"
        )
        return "\n".join(lines)


def _run_condition(train: Optional[PulseTrain], *, n_elephants: int,
                   warmup: float, window: float,
                   seed: int) -> PopulationOutcome:
    tcp = TCPConfig(variant=TCPVariant.NEWRENO, delayed_ack=2, min_rto=1.0)
    net = build_dumbbell(DumbbellConfig(n_flows=n_elephants, tcp=tcp,
                                        seed=seed))
    mice_src, mice_dst = net.add_host_pair(rtt=ms(100))
    workload = ShortFlowWorkload(
        net.sim, mice_src, mice_dst, tcp=tcp,
        mean_size_segments=15.0, mean_interarrival=0.4, seed=seed + 1,
    )
    net.start_flows()
    net.run(until=warmup)
    elephants_before = net.aggregate_goodput_bytes()
    workload.start()
    if train is not None:
        net.add_attack(train, start_time=warmup).start()
    net.run(until=warmup + window)
    workload.finalize()

    goodput = (net.aggregate_goodput_bytes() - elephants_before) * 8 / window
    percentiles = workload.fct_percentiles((50, 90, 99))
    return PopulationOutcome(
        elephant_goodput_bps=goodput,
        mice_completed=len(workload.completed_records()),
        mice_launched=workload.launched,
        fct_p50=percentiles[50],
        fct_p90=percentiles[90],
        fct_p99=percentiles[99],
        unfinished_fraction=workload.unfinished_fraction(),
    )


def run_mice_elephants(
    *,
    gamma: float = 0.5,
    rate_bps: float = mbps(30),
    extent: float = ms(100),
    n_elephants: int = 10,
    warmup: float = 6.0,
    window: float = 30.0,
    seed: int = 41,
) -> MiceElephantsResult:
    """Measure both populations with and without the attack."""
    train = PulseTrain.from_gamma(
        gamma=gamma, rate_bps=rate_bps, extent=extent,
        bottleneck_bps=mbps(15),
        n_pulses=int(np.ceil(window / 0.2)) + 2,
    )
    kwargs = dict(n_elephants=n_elephants, warmup=warmup, window=window,
                  seed=seed)
    return MiceElephantsResult(
        baseline=_run_condition(None, **kwargs),
        attacked=_run_condition(train, **kwargs),
    )
