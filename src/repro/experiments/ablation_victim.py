"""Ablation: victim TCP variant under the same PDoS attack.

The paper's analysis is variant-agnostic AIMD; its experiments use
NewReno.  This ablation asks the defender-relevant question the paper
leaves open: does a better loss-recovery stack (SACK) blunt the attack,
and how much worse off are older stacks (Reno, Tahoe)?

Each variant's victims face the identical attack sweep; the per-variant
measured degradation is compared.  Expectation: Tahoe ≥ Reno ≥ NewReno ≥
SACK in damage -- SACK repairs a pulse's scattered losses in about one
RTT, while Tahoe pays a full slow-start restart per pulse.  The AIMD
analysis applies to all of them (same a, b), which is exactly why the
attack remains effective even against SACK.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

import numpy as np

from repro.experiments.base import (
    DumbbellPlatform,
    GainCurve,
    default_gammas,
    plan_gain_sweep,
    render_curve_table,
    run_gain_sweeps,
)
from repro.sim.tcp import TCPConfig, TCPVariant
from repro.util.units import mbps, ms

__all__ = ["VictimAblation", "run_victim_ablation"]


@dataclasses.dataclass(frozen=True)
class VictimAblation:
    """Per-variant sweeps of the same attack."""

    curves: Dict[TCPVariant, GainCurve]

    def mean_degradation(self, variant: TCPVariant) -> float:
        curve = self.curves[variant]
        return float(np.mean([p.measured_degradation for p in curve.points]))

    def render(self) -> str:
        parts = [render_curve_table(
            list(self.curves.values()),
            title="Ablation -- victim TCP variant under the same attack",
        )]
        ordering = sorted(
            self.curves,
            key=self.mean_degradation,
            reverse=True,
        )
        summary = " > ".join(
            f"{variant.value} ({self.mean_degradation(variant):.3f})"
            for variant in ordering
        )
        parts.append(f"  mean degradation by variant: {summary}")
        parts.append(
            "  (the attack stays effective against every variant -- its "
            "leverage is the shared AIMD law, not any recovery detail)"
        )
        return "\n".join(parts)


def run_victim_ablation(
    *,
    rate_bps: float = mbps(30),
    extent: float = ms(100),
    n_flows: int = 15,
    gammas=None,
    variants=(TCPVariant.TAHOE, TCPVariant.RENO, TCPVariant.NEWRENO,
              TCPVariant.SACK),
) -> VictimAblation:
    """Sweep the same attack against each victim variant (same seed)."""
    if gammas is None:
        gammas = default_gammas()
    plans = [
        plan_gain_sweep(
            DumbbellPlatform(
                n_flows=n_flows, seed=700,
                tcp=TCPConfig(variant=variant, delayed_ack=2, min_rto=1.0),
            ),
            rate_bps=rate_bps, extent=extent, gammas=gammas,
            label=variant.value,
        )
        for variant in variants
    ]
    return VictimAblation(curves=dict(zip(variants, run_gain_sweeps(plans))))
