"""Shared experiment machinery: platforms, gain sweeps, and renderers.

Every gain figure in the paper (Figs. 6-9, 10, 12) is the same
measurement repeated on different scenarios: sweep the normalized attack
rate γ (by varying T_space at fixed R_attack and T_extent), measure the
TCP throughput with and without the attack, and compare the measured
attack gain ``G = Γ_measured · (1 − γ)^κ`` against the analytical curve
``(1 − C_ψ/γ)(1 − γ)^κ``.

:class:`DumbbellPlatform` and :class:`TestbedPlatform` adapt the two
validation environments to one interface; :func:`run_gain_sweep` does
the paired baseline/attack measurement per γ.

Experiment scale: by default sweeps run at a reduced horizon so the
whole benchmark suite completes in minutes; set the environment variable
``REPRO_FULL=1`` for paper-scale runs (longer windows, more γ samples,
all flow-count panels).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.core.attack import PulseTrain
from repro.core.classify import GainComparison, classify_gain
from repro.core.gain import attack_gain
from repro.core.shrew import flag_shrew_points, ShrewPoint
from repro.core.throughput import VictimPopulation, c_psi
from repro.runner import Cell, ExperimentRunner, PlatformSpec, get_default_runner
from repro.sim.packet import FULL_PACKET_BYTES
from repro.sim.tcp import TCPConfig, TCPVariant
from repro.sim.topology import QUEUE_FACTORIES, DumbbellConfig
from repro.testbed.dummynet import TestbedConfig
from repro.util.env import env_flag
from repro.util.errors import ValidationError
from repro.util.validate import check_positive

__all__ = [
    "full_scale",
    "DumbbellPlatform",
    "TestbedPlatform",
    "GainPoint",
    "GainCurve",
    "GainSweepPlan",
    "build_classified_curve",
    "plan_gain_sweep",
    "run_gain_sweep",
    "run_gain_sweeps",
    "render_curve_table",
    "default_gammas",
]


def full_scale() -> bool:
    """True when ``REPRO_FULL=1``: run paper-scale sweeps."""
    return env_flag("REPRO_FULL")


def default_gammas(n: Optional[int] = None) -> np.ndarray:
    """The swept γ grid: 9 points at full scale, 5 when scaled down."""
    if n is None:
        n = 9 if full_scale() else 5
    return np.linspace(0.1, 0.9, n)


def _dumbbell_tcp_config() -> TCPConfig:
    """The ns-2-style stack used in the dumbbell experiments.

    NewReno (as the paper states), delayed ACKs d = 2 (the value the
    paper's analysis plugs in), and ns-2's 1 s minimum RTO -- the value
    that places the Fig.-10 shrew points at 1000/n ms.
    """
    return TCPConfig(variant=TCPVariant.NEWRENO, delayed_ack=2, min_rto=1.0)


class _SweepPlatform:
    """Shared measurement front-end over the experiment runner.

    Both validation environments measure through one implementation:
    the platform reduces itself to a serializable
    :class:`~repro.runner.PlatformSpec` and each measurement becomes a
    runner :class:`~repro.runner.Cell`.  The runner memoizes (and
    optionally disk-caches) results under a key covering the *full*
    scenario -- platform kind, flow count, queue discipline, TCP stack,
    seed, pulse train, and measurement window -- so the shared no-attack
    baseline of a multi-curve sweep is measured once, and two platforms
    that differ only in seed or config can never collide.
    """

    def spec(self) -> PlatformSpec:
        """The serializable identity measurements are keyed/built by."""
        raise NotImplementedError

    def measure_goodput(self, train: Optional[PulseTrain], *, warmup: float,
                        window: float,
                        runner: Optional[ExperimentRunner] = None) -> float:
        """Payload bytes delivered in [warmup, warmup+window], attack optional."""
        runner = runner if runner is not None else get_default_runner()
        cell = Cell(
            platform=self.spec(), train=train, warmup=warmup, window=window,
        )
        return runner.measure(cell).goodput_bytes


class DumbbellPlatform(_SweepPlatform):
    """The ns-2-style dumbbell environment (Figs. 6-10)."""

    def __init__(self, *, n_flows: int = 15, queue: str = "red",
                 seed: int = 1, tcp: Optional[TCPConfig] = None) -> None:
        if queue not in QUEUE_FACTORIES:
            raise ValidationError(
                f"queue must be one of {sorted(QUEUE_FACTORIES)}, "
                f"got {queue!r}"
            )
        self.n_flows = n_flows
        self.queue = queue
        self.seed = seed
        self.tcp = tcp if tcp is not None else _dumbbell_tcp_config()
        self._config = DumbbellConfig(
            n_flows=n_flows,
            queue_factory=QUEUE_FACTORIES[queue],
            tcp=self.tcp,
            seed=seed,
        )

    def spec(self) -> PlatformSpec:
        return PlatformSpec(
            kind="dumbbell", n_flows=self.n_flows, seed=self.seed,
            queue=self.queue, tcp=self.tcp,
        )

    @property
    def bottleneck_bps(self) -> float:
        return self._config.bottleneck_rate_bps

    @property
    def min_rto(self) -> float:
        return self.tcp.min_rto

    def victim_population(self) -> VictimPopulation:
        return VictimPopulation(
            rtts=self._config.flow_rtts(),
            delayed_ack=self.tcp.delayed_ack,
            s_packet=FULL_PACKET_BYTES,
        )


class TestbedPlatform(_SweepPlatform):
    """The Dummynet test-bed environment (Fig. 12)."""

    __test__ = False  # not a pytest class, despite the name

    def __init__(self, *, n_flows: int = 10, use_red: bool = True,
                 seed: int = 7) -> None:
        self.n_flows = n_flows
        self.use_red = use_red
        self.seed = seed
        self._config = TestbedConfig(n_flows=n_flows, use_red=use_red, seed=seed)

    def spec(self) -> PlatformSpec:
        return PlatformSpec(
            kind="testbed", n_flows=self.n_flows, seed=self.seed,
            use_red=self.use_red,
        )

    @property
    def bottleneck_bps(self) -> float:
        return self._config.pipe.bandwidth_bps

    @property
    def min_rto(self) -> float:
        return self._config.tcp.min_rto

    def victim_population(self) -> VictimPopulation:
        return VictimPopulation(
            rtts=self._config.rtt() * np.ones(self.n_flows),
            delayed_ack=self._config.tcp.delayed_ack,
            s_packet=FULL_PACKET_BYTES,
        )


# ----------------------------------------------------------------------
# gain sweeps
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class GainPoint:
    """One swept γ sample.

    Attributes:
        gamma: the normalized average attack rate.
        period: the realized attack period T_AIMD, seconds.
        analytic_gain: the model's G_attack at this γ.
        measured_gain: Γ_measured · (1 − γ)^κ from the paired runs.
        measured_degradation: Γ_measured = 1 − Ψ_attack/Ψ_normal.
        is_shrew: whether T_AIMD sits on a minRTO harmonic (§4.1.3).
    """

    gamma: float
    period: float
    analytic_gain: float
    measured_gain: float
    measured_degradation: float
    is_shrew: bool


@dataclasses.dataclass(frozen=True)
class GainCurve:
    """A full swept curve plus its §4.1.1 classification."""

    label: str
    rate_bps: float
    extent: float
    kappa: float
    c_psi: float
    points: List[GainPoint]
    comparison: GainComparison

    def gammas(self) -> np.ndarray:
        return np.array([p.gamma for p in self.points])

    def analytic(self) -> np.ndarray:
        return np.array([p.analytic_gain for p in self.points])

    def measured(self) -> np.ndarray:
        return np.array([p.measured_gain for p in self.points])

    def peak_measured(self) -> GainPoint:
        """The sample with the largest measured gain."""
        return max(self.points, key=lambda p: p.measured_gain)

    def peak_analytic(self) -> GainPoint:
        """The sample with the largest analytical gain."""
        return max(self.points, key=lambda p: p.analytic_gain)

    def plot(self, *, height: int = 12, width: int = 56) -> str:
        """An ASCII scatter of measured vs analytic gain over γ.

        Analytic values are clamped at 0 for display (the model's domain
        is γ > C_ψ), matching how the paper's figures draw the lines.
        """
        from repro.analysis.plot import scatter_grid

        return scatter_grid(
            self.gammas(),
            [self.measured(), np.clip(self.analytic(), 0.0, None)],
            labels=["measured", "analytic"],
            height=height,
            width=width,
            y_min=0.0,
        )


@dataclasses.dataclass(frozen=True)
class GainSweepPlan:
    """A fully resolved sweep: the cells to measure and how to read them.

    Produced by :func:`plan_gain_sweep`; consumed (possibly many at a
    time) by :func:`run_gain_sweeps`, which fans every plan's cells out
    through the experiment runner in one batch.
    """

    platform_spec: PlatformSpec
    rate_bps: float
    extent: float
    gammas: tuple
    trains: tuple  #: one PulseTrain per γ, sized to cover the window
    kappa: float
    warmup: float
    window: float
    label: str
    exclude_shrew: bool
    c_psi: float
    min_rto: float

    def cells(self) -> List[Cell]:
        """The baseline cell followed by one attack cell per γ."""
        baseline = Cell(
            platform=self.platform_spec, train=None,
            warmup=self.warmup, window=self.window,
        )
        return [baseline] + [
            Cell(platform=self.platform_spec, train=train,
                 warmup=self.warmup, window=self.window)
            for train in self.trains
        ]

    def assemble(self, baseline: float,
                 attacked: Sequence[float]) -> GainCurve:
        """Turn measured goodputs back into a classified curve."""
        if baseline <= 0:
            raise ValidationError(
                "baseline goodput is zero; the measurement window is too short"
            )
        points: List[GainPoint] = []
        for gamma, train, goodput in zip(self.gammas, self.trains, attacked):
            degradation_measured = 1.0 - goodput / baseline
            points.append(GainPoint(
                gamma=gamma,
                period=train.period,
                analytic_gain=attack_gain(gamma, self.c_psi, self.kappa),
                measured_gain=(
                    degradation_measured * (1.0 - gamma) ** self.kappa
                ),
                measured_degradation=degradation_measured,
                is_shrew=False,  # filled in by build_classified_curve
            ))
        return build_classified_curve(
            points,
            label=self.label,
            rate_bps=self.rate_bps,
            extent=self.extent,
            kappa=self.kappa,
            c_psi=self.c_psi,
            min_rto=self.min_rto,
            exclude_shrew=self.exclude_shrew,
        )


def build_classified_curve(
    points: Sequence[GainPoint],
    *,
    label: str,
    rate_bps: float,
    extent: float,
    kappa: float,
    c_psi: float,
    min_rto: float,
    exclude_shrew: bool = True,
) -> GainCurve:
    """Flag shrew points and classify a swept curve (§4.1.1-4.1.3).

    The shared back half of every sweep: exact dense sweeps
    (:meth:`GainSweepPlan.assemble`) and adaptive planner sweeps
    (:func:`repro.runner.planner.run_planned_sweep`) both feed their
    measured points through this, so classification and shrew handling
    can never drift between the two paths.
    """
    shrew: List[ShrewPoint] = flag_shrew_points(
        [p.period for p in points], min_rto,
    )
    shrew_indices = {sp.index for sp in shrew}
    points = [
        dataclasses.replace(point, is_shrew=(index in shrew_indices))
        for index, point in enumerate(points)
    ]

    valid = [p for p in points if p.gamma > c_psi]
    if exclude_shrew:
        kept = [p for p in valid if not p.is_shrew] or valid or points
    else:
        kept = valid or points
    comparison = classify_gain(
        [p.measured_gain for p in kept],
        [p.analytic_gain for p in kept],
    )
    return GainCurve(
        label=label,
        rate_bps=rate_bps,
        extent=extent,
        kappa=kappa,
        c_psi=c_psi,
        points=points,
        comparison=comparison,
    )


def plan_gain_sweep(
    platform,
    *,
    rate_bps: float,
    extent: float,
    gammas: Optional[Sequence[float]] = None,
    kappa: float = 1.0,
    warmup: Optional[float] = None,
    window: Optional[float] = None,
    label: str = "",
    exclude_shrew_from_classification: bool = True,
) -> GainSweepPlan:
    """Resolve a sweep's defaults and pre-build its per-γ pulse trains.

    The attack period of each γ comes from
    :meth:`PulseTrain.period_from_gamma` -- the same (space-clamped)
    inversion :meth:`PulseTrain.from_gamma` applies -- so the pulse
    count sized to cover the window can never drift from the train
    actually built.
    """
    check_positive("rate_bps", rate_bps)
    check_positive("extent", extent)
    if gammas is None:
        gammas = default_gammas()
    if warmup is None:
        warmup = 10.0 if full_scale() else 6.0
    if window is None:
        window = 50.0 if full_scale() else 20.0

    victims = platform.victim_population()
    bottleneck = platform.bottleneck_bps
    c_psi_value = c_psi(
        victims, extent=extent, rate_bps=rate_bps, bottleneck_bps=bottleneck
    )

    trains: List[PulseTrain] = []
    for gamma in gammas:
        period = PulseTrain.period_from_gamma(
            gamma=float(gamma), rate_bps=rate_bps, extent=extent,
            bottleneck_bps=bottleneck,
        )
        trains.append(PulseTrain.from_gamma(
            gamma=float(gamma), rate_bps=rate_bps, extent=extent,
            bottleneck_bps=bottleneck,
            n_pulses=int(math.ceil(window / period)) + 2,
        ))

    return GainSweepPlan(
        platform_spec=platform.spec(),
        rate_bps=rate_bps,
        extent=extent,
        gammas=tuple(float(g) for g in gammas),
        trains=tuple(trains),
        kappa=kappa,
        warmup=warmup,
        window=window,
        label=label or f"R={rate_bps / 1e6:.0f}M T_extent={extent * 1e3:.0f}ms",
        exclude_shrew=exclude_shrew_from_classification,
        c_psi=c_psi_value,
        min_rto=platform.min_rto,
    )


def run_gain_sweeps(
    plans: Sequence[GainSweepPlan],
    *,
    runner: Optional[ExperimentRunner] = None,
) -> List[GainCurve]:
    """Measure many sweeps' cells in one runner batch.

    This is how multi-curve figures parallelize: the union of every
    plan's (baseline + per-γ) cells is handed to the runner at once, so
    with ``jobs > 1`` the cells of *different* curves overlap too, and
    cells shared between plans (e.g. a common baseline) are measured
    exactly once.
    """
    runner = runner if runner is not None else get_default_runner()
    cells: List[Cell] = []
    bounds: List[tuple] = []
    for plan in plans:
        start = len(cells)
        cells.extend(plan.cells())
        bounds.append((start, len(cells)))
    results = runner.measure_many(cells)
    return [
        plan.assemble(
            results[start].goodput_bytes,
            [r.goodput_bytes for r in results[start + 1:end]],
        )
        for plan, (start, end) in zip(plans, bounds)
    ]


def run_gain_sweep(
    platform,
    *,
    rate_bps: float,
    extent: float,
    gammas: Optional[Sequence[float]] = None,
    kappa: float = 1.0,
    warmup: Optional[float] = None,
    window: Optional[float] = None,
    label: str = "",
    exclude_shrew_from_classification: bool = True,
    runner: Optional[ExperimentRunner] = None,
) -> GainCurve:
    """Sweep γ on *platform* and compare measured vs analytical gain.

    For each γ the attack period follows from Eq. (4); the measured gain
    uses a paired (same-seed) no-attack baseline.  Shrew points
    (T_AIMD ≈ minRTO/n) are flagged, and -- following the paper's own
    practice in §4.1.2 -- excluded from the normal/under/over-gain
    classification unless *exclude_shrew_from_classification* is False.
    Samples with γ ≤ C_ψ are likewise excluded from classification: the
    model's Γ ∈ (0, 1) domain (Eq. 12) requires C_ψ < γ, so the analytic
    prediction is undefined (negative) there.

    Measurements route through *runner* (default: the process-wide
    runner), which parallelizes across γ when configured with
    ``jobs > 1`` and reuses memoized/cached cells.
    """
    plan = plan_gain_sweep(
        platform,
        rate_bps=rate_bps,
        extent=extent,
        gammas=gammas,
        kappa=kappa,
        warmup=warmup,
        window=window,
        label=label,
        exclude_shrew_from_classification=exclude_shrew_from_classification,
    )
    return run_gain_sweeps([plan], runner=runner)[0]


def render_curve_table(curves: Sequence[GainCurve], title: str = "") -> str:
    """Render swept curves as the rows the paper's figures plot."""
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    for curve in curves:
        lines.append(
            f"\n{curve.label}  (C_psi={curve.c_psi:.3f}, kappa={curve.kappa:g}, "
            f"classified: {curve.comparison.regime.value}, "
            f"mean discrepancy {curve.comparison.mean_discrepancy:+.3f})"
        )
        lines.append(
            f"{'gamma':>7} {'T_AIMD(ms)':>11} {'G_analytic':>11} "
            f"{'G_measured':>11} {'Gamma_meas':>11} {'shrew':>6}"
        )
        for p in curve.points:
            lines.append(
                f"{p.gamma:7.2f} {p.period * 1e3:11.0f} {p.analytic_gain:11.3f} "
                f"{p.measured_gain:11.3f} {p.measured_degradation:11.3f} "
                f"{'*' if p.is_shrew else '':>6}"
            )
    return "\n".join(lines)
