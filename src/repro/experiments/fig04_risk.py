"""Figure 4: the risk-preference curves ``(1 − γ)^κ``.

A purely analytical figure: one curve per attacker type (risk-loving
κ < 1, risk-neutral κ = 1, risk-averse κ > 1), plus the two limits the
paper discusses (κ → 0: the flooding attacker; κ → ∞: never attacks).

Fast mode: with an active planner policy the figure additionally
*measures* the maximization point γ*(κ) for each plotted κ -- the
quantity Proposition 3 derives in closed form -- by running one
adaptive gain sweep per κ and comparing the empirical peak against
:func:`repro.core.optimizer.optimal_gamma`.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.gain import RiskPreference, classify_kappa, risk_curve
from repro.util.units import mbps, ms

__all__ = ["RiskCurves", "run_fig04"]


@dataclasses.dataclass(frozen=True)
class RiskCurves:
    """The Fig.-4 curve family.

    Attributes:
        gammas: the γ grid in [0, 1].
        curves: κ -> the sampled ``(1 − γ)^κ`` values.
        measured_peaks: κ -> the adaptive sweep that localized the
            measured γ*(κ); ``None`` outside fast mode.
    """

    gammas: np.ndarray
    curves: Dict[float, np.ndarray]
    measured_peaks: Optional[Dict[float, object]] = None

    def render(self) -> str:
        header = ["gamma".rjust(7)] + [
            f"k={kappa:g} ({classify_kappa(kappa).value})".rjust(22)
            for kappa in self.curves
        ]
        lines = ["Fig. 4 -- attacker risk preferences (1-gamma)^kappa",
                 " ".join(header)]
        for i, gamma in enumerate(self.gammas):
            row = [f"{gamma:7.2f}"] + [
                f"{values[i]:22.4f}" for values in self.curves.values()
            ]
            lines.append(" ".join(row))
        if self.measured_peaks:
            from repro.core.optimizer import optimal_gamma

            lines.append(
                "measured maximization points gamma*(kappa) "
                "(fast mode, adaptive planner):"
            )
            for kappa, sweep in self.measured_peaks.items():
                analytic = optimal_gamma(sweep.curve.c_psi, kappa)
                lines.append(
                    f"  kappa={kappa:g}: measured gamma*="
                    f"{sweep.gamma_star:.3f} (G={sweep.gain_at_peak:.3f}), "
                    f"Prop. 3 gamma*={analytic:.3f}"
                )
        return "\n".join(lines)

    def classes(self) -> Dict[float, RiskPreference]:
        """The behavioural class of every plotted κ."""
        return {kappa: classify_kappa(kappa) for kappa in self.curves}


def run_fig04(
    kappas: Sequence[float] = (0.5, 1.0, 3.0),
    n_points: int = 11,
    *,
    planner=None,
    rate_bps: float = mbps(30),
    extent: float = ms(100),
    n_flows: int = 15,
    seed: int = 404,
) -> RiskCurves:
    """Sample the Fig.-4 curves (defaults: one per attacker type).

    With *planner* set (or ``REPRO_FAST=1``), also measure γ*(κ) per
    plotted κ via one adaptive sweep each -- the empirical counterpart
    of Proposition 3's closed form.  The analytical curves themselves
    are identical either way.
    """
    from repro.runner.planner import active_policy, run_planned_sweep

    gammas = np.linspace(0.0, 1.0, n_points)
    curves = {float(kappa): risk_curve(gammas, kappa) for kappa in kappas}
    if planner is None:
        planner = active_policy()
    peaks = None
    if planner is not None:
        from repro.experiments.base import DumbbellPlatform

        platform = DumbbellPlatform(n_flows=n_flows, seed=seed)
        peaks = {}
        for kappa in curves:
            peaks[kappa] = run_planned_sweep(
                platform, rate_bps=rate_bps, extent=extent, kappa=kappa,
                policy=planner, label=f"kappa={kappa:g} [fast]",
            )
    return RiskCurves(gammas=gammas, curves=curves, measured_peaks=peaks)
