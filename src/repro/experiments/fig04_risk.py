"""Figure 4: the risk-preference curves ``(1 − γ)^κ``.

A purely analytical figure: one curve per attacker type (risk-loving
κ < 1, risk-neutral κ = 1, risk-averse κ > 1), plus the two limits the
paper discusses (κ → 0: the flooding attacker; κ → ∞: never attacks).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence

import numpy as np

from repro.core.gain import RiskPreference, classify_kappa, risk_curve

__all__ = ["RiskCurves", "run_fig04"]


@dataclasses.dataclass(frozen=True)
class RiskCurves:
    """The Fig.-4 curve family.

    Attributes:
        gammas: the γ grid in [0, 1].
        curves: κ -> the sampled ``(1 − γ)^κ`` values.
    """

    gammas: np.ndarray
    curves: Dict[float, np.ndarray]

    def render(self) -> str:
        header = ["gamma".rjust(7)] + [
            f"k={kappa:g} ({classify_kappa(kappa).value})".rjust(22)
            for kappa in self.curves
        ]
        lines = ["Fig. 4 -- attacker risk preferences (1-gamma)^kappa",
                 " ".join(header)]
        for i, gamma in enumerate(self.gammas):
            row = [f"{gamma:7.2f}"] + [
                f"{values[i]:22.4f}" for values in self.curves.values()
            ]
            lines.append(" ".join(row))
        return "\n".join(lines)

    def classes(self) -> Dict[float, RiskPreference]:
        """The behavioural class of every plotted κ."""
        return {kappa: classify_kappa(kappa) for kappa in self.curves}


def run_fig04(
    kappas: Sequence[float] = (0.5, 1.0, 3.0),
    n_points: int = 11,
) -> RiskCurves:
    """Sample the Fig.-4 curves (defaults: one per attacker type)."""
    gammas = np.linspace(0.0, 1.0, n_points)
    curves = {float(kappa): risk_curve(gammas, kappa) for kappa in kappas}
    return RiskCurves(gammas=gammas, curves=curves)
