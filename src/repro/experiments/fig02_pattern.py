"""Figure 2: the periodic incoming-traffic pattern (model schematic).

Fig. 2 is the paper's schematic: during each pulse the router's incoming
rate spikes to the attack rate plus residual TCP traffic; between pulses
the victims' synchronized recovery produces a rising ramp.  This module
generates that idealized series directly from the model -- the aggregate
AIMD recovery rate between epochs plus the pulse overlay -- and checks
that the analysis tools recover T_AIMD from it.

Serving as both a documentation artifact and a calibration input for the
synchronization analysis, it needs no simulation.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.analysis.sync import SynchronizationReport, analyze_synchronization
from repro.core.attack import PulseTrain
from repro.core.throughput import VictimPopulation, converged_window
from repro.util.validate import check_positive

__all__ = ["PatternResult", "ideal_incoming_traffic", "run_fig02"]


def ideal_incoming_traffic(
    train: PulseTrain,
    victims: VictimPopulation,
    *,
    bin_width: float = 0.01,
    horizon: float = None,
) -> np.ndarray:
    """The model's incoming byte-rate series at the router, bytes per bin.

    Victim flow *i* contributes a sawtooth: right after an epoch its rate
    restarts from ``b·W_c·S/RTT`` and climbs by ``(a/d)·S/RTT`` per RTT;
    the attack contributes ``R_attack`` during each pulse.
    """
    check_positive("bin_width", bin_width)
    if horizon is None:
        horizon = train.total_duration()
    n_bins = int(np.ceil(horizon / bin_width))
    times = (np.arange(n_bins) + 0.5) * bin_width
    series = np.zeros(n_bins)

    period = train.period
    a, b = victims.aimd.increase, victims.aimd.decrease
    d = victims.delayed_ack
    phase = times % period

    for rtt in victims.rtts:
        w_c = converged_window(victims.aimd, d, period, rtt)
        # packets per RTT ramps from b*W_c back up to W_c over the period.
        window = b * w_c + (a / d) * (phase / rtt)
        series += window * victims.s_packet / rtt * bin_width

    in_pulse = phase < train.extent
    series += np.where(in_pulse, train.rate_bps / 8.0 * bin_width, 0.0)
    return series


@dataclasses.dataclass(frozen=True)
class PatternResult:
    """The generated series plus its synchronization analysis."""

    series: np.ndarray
    bin_width: float
    attack_period: float
    report: SynchronizationReport

    def render(self) -> str:
        r = self.report
        return "\n".join([
            "Fig. 2 -- periodic incoming-traffic pattern (model)",
            f"attack period T_AIMD = {self.attack_period:.3f} s",
            f"pinnacles = {r.pinnacles} over {r.window:.1f} s "
            f"=> period {r.pinnacle_period:.3f} s"
            if r.pinnacle_period else "no pinnacles found",
            f"ACF period = {r.acf_period and round(r.acf_period, 3)} s, "
            f"FFT period = {r.fft_period and round(r.fft_period, 3)} s",
            f"consistent with attack period: "
            f"{r.consistent_with(self.attack_period)}",
        ])


def run_fig02(
    *,
    extent: float = 0.05,
    space: float = 1.95,
    rate_bps: float = 100e6,
    n_pulses: int = 30,
    n_flows: int = 24,
) -> PatternResult:
    """Generate the Fig.-2 schematic with the Fig.-3(a) parameters."""
    train = PulseTrain.uniform(extent, rate_bps, space, n_pulses)
    victims = VictimPopulation(
        rtts=np.linspace(0.02, 0.46, n_flows), delayed_ack=2,
    )
    bin_width = 0.01
    series = ideal_incoming_traffic(train, victims, bin_width=bin_width)
    report = analyze_synchronization(series, bin_width)
    return PatternResult(
        series=series,
        bin_width=bin_width,
        attack_period=train.period,
        report=report,
    )
