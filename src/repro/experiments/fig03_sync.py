"""Figure 3: the quasi-global synchronization phenomenon, measured.

Fig. 3(a): ns-2 dumbbell, 24 victim flows, attack
``T_extent = 50 ms, T_space = 1950 ms, R_attack = 100 Mb/s`` -- a
one-minute snapshot shows 30 evenly spaced pinnacles, i.e. a 2 s period
equal to T_AIMD.

Fig. 3(b): test-bed, 15 victim flows, attack ``T_extent = 100 ms,
T_space = 2400 ms, R_attack = 50 Mb/s`` -- 24 pinnacles in a minute,
period 2.5 s = T_AIMD.

This driver runs both platforms, bins the bottleneck's offered load,
applies the paper's normalize-then-PAA transform, and reports the
pinnacle count and three period estimates.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from repro.analysis.paa import normalize, paa_series
from repro.analysis.sync import SynchronizationReport, analyze_synchronization
from repro.core.attack import PulseTrain
from repro.experiments.base import full_scale
from repro.sim.topology import DumbbellConfig, build_dumbbell
from repro.sim.trace import RateMonitor
from repro.testbed.dummynet import TestbedConfig, build_testbed
from repro.util.units import mbps, ms

__all__ = ["SyncResult", "run_fig03_ns2", "run_fig03_testbed"]

#: fine bin used for the raw traffic series, seconds.
_BIN_WIDTH = 0.02
#: PAA segment width in bins (0.1 s segments, resolving >= 0.5 s periods).
_PAA_WIDTH = 5


@dataclasses.dataclass(frozen=True)
class SyncResult:
    """Result of one Fig.-3 panel.

    Attributes:
        platform: "ns-2" or "test-bed".
        attack_period: ground-truth T_AIMD, seconds.
        horizon: observation window, seconds.
        expected_pinnacles: horizon / T_AIMD (the paper's count).
        report: the measured synchronization analysis.
        series: the normalized, PAA-reduced display series.
    """

    platform: str
    attack_period: float
    horizon: float
    expected_pinnacles: int
    report: SynchronizationReport
    series: np.ndarray

    def render(self) -> str:
        r = self.report
        period = (
            f"{r.pinnacle_period:.2f} s" if r.pinnacle_period else "n/a"
        )
        return "\n".join([
            f"Fig. 3 ({self.platform}) -- quasi-global synchronization",
            f"attack period T_AIMD = {self.attack_period:.2f} s, "
            f"window = {self.horizon:.0f} s",
            f"pinnacles: measured {r.pinnacles}, expected "
            f"{self.expected_pinnacles}",
            f"period from pinnacles = {period}; ACF = "
            f"{r.acf_period and round(r.acf_period, 2)} s; FFT = "
            f"{r.fft_period and round(r.fft_period, 2)} s",
            f"consistent with T_AIMD: {r.consistent_with(self.attack_period)}",
        ])


def _analyze(monitor: RateMonitor, attack_period: float, horizon: float,
             platform: str) -> SyncResult:
    raw = monitor.bytes_per_bin
    display = paa_series(normalize(raw), _PAA_WIDTH)
    paa_bin = _BIN_WIDTH * _PAA_WIDTH
    report = analyze_synchronization(display, paa_bin)
    return SyncResult(
        platform=platform,
        attack_period=attack_period,
        horizon=horizon,
        expected_pinnacles=int(round(horizon / attack_period)),
        report=report,
        series=display,
    )


def run_fig03_ns2(*, horizon: Optional[float] = None) -> SyncResult:
    """Fig. 3(a): the dumbbell run with the paper's exact attack."""
    if horizon is None:
        horizon = 60.0 if full_scale() else 24.0
    train = PulseTrain.uniform(
        ms(50), mbps(100), ms(1950),
        n_pulses=int(np.ceil(horizon / 2.0)) + 2,
    )
    config = DumbbellConfig(n_flows=24, seed=11)
    net = build_dumbbell(config)

    warmup = 5.0
    monitor = RateMonitor(_BIN_WIDTH, horizon)
    net.start_flows()
    net.run(until=warmup)
    # Observe the bottleneck's offered load from t = warmup.
    offset = net.sim.now

    def observe(packet, now, accepted, _monitor=monitor, _offset=offset):
        _monitor.observe(packet, now - _offset, accepted)

    net.bottleneck.monitors.append(observe)
    source = net.add_attack(train, start_time=warmup)
    source.start()
    net.run(until=warmup + horizon)
    return _analyze(monitor, train.period, horizon, "ns-2")


def run_fig03_testbed(*, horizon: Optional[float] = None) -> SyncResult:
    """Fig. 3(b): the test-bed run with the paper's exact attack.

    The paper runs 15 victim flows here (vs the 10 of Fig. 12).
    """
    if horizon is None:
        horizon = 60.0 if full_scale() else 25.0
    train = PulseTrain.uniform(
        ms(100), mbps(50), ms(2400),
        n_pulses=int(np.ceil(horizon / 2.5)) + 2,
    )
    config = TestbedConfig(n_flows=15, seed=13)
    net = build_testbed(config)

    warmup = 5.0
    monitor = RateMonitor(_BIN_WIDTH, horizon)
    net.start_flows()
    net.run(until=warmup)
    offset = net.sim.now

    def observe(packet, now, accepted, _monitor=monitor, _offset=offset):
        _monitor.observe(packet, now - _offset, accepted)

    net.pipe_link.monitors.append(observe)
    source = net.add_attack(train, start_time=warmup)
    source.start()
    net.run(until=warmup + horizon)
    return _analyze(monitor, train.period, horizon, "test-bed")
