"""Extension experiment: does γ* survive on multi-bottleneck topologies?

The paper's analysis (and Figs. 6-9) normalizes the attack by a single
dumbbell bottleneck.  Real attack paths cross chains of constrained
links carrying unrelated cross traffic -- the parking-lot topology of
the buffer-sizing literature (arXiv cs/0703063).  This experiment
sweeps the same normalized attack rate γ on a panel of parking-lot
scenarios (:class:`~repro.sim.topology.ParkingLotConfig`) and asks
whether the maximization point γ* -- the heart of the paper's
optimization claim -- survives when the attacked link is *not* the only
constraint:

* ``single`` -- a one-segment chain with no cross traffic: the
  dumbbell question re-asked on the graph-topology machinery.  Its γ*
  must agree with the Fig.-6 dumbbell reference (same R_attack,
  T_extent, and victim count) to within one γ grid step.
* ``cross`` -- two equal-rate segments with per-segment cross
  traffic; the pulses hit segment 0 only, so the victims' damage mixes
  the attacked queue's losses with ambient congestion behind it.
* ``span`` -- the same chain, but the attack path crosses *both*
  segments, loading two AQMs with every pulse.

γ is always normalized by the tightest *attacked* segment
(:meth:`~repro.sim.topology.ParkingLotConfig.attacked_rate_bps`), so
the sweeps stay comparable across panels.

Scale: honours ``REPRO_FULL=1`` like every driver; additionally
``REPRO_SMOKE=1`` shrinks flows, windows, and the γ grid to CI-smoke
size (seconds, not minutes).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.throughput import VictimPopulation
from repro.experiments.base import (
    DumbbellPlatform,
    GainCurve,
    _SweepPlatform,
    _dumbbell_tcp_config,
    default_gammas,
    full_scale,
    plan_gain_sweep,
    render_curve_table,
    run_gain_sweeps,
)
from repro.runner import PlatformSpec
from repro.sim.packet import FULL_PACKET_BYTES
from repro.sim.tcp import TCPConfig
from repro.sim.topology import QUEUE_FACTORIES, ParkingLotConfig
from repro.util.env import env_flag
from repro.util.errors import ValidationError
from repro.util.units import mbps, ms

__all__ = [
    "ParkingLotPlatform",
    "MultiBottleneckResult",
    "run_multi_bottleneck",
    "smoke_scale",
]


def smoke_scale() -> bool:
    """True when ``REPRO_SMOKE=1``: CI-smoke parameters (seconds)."""
    return env_flag("REPRO_SMOKE")


class ParkingLotPlatform(_SweepPlatform):
    """The N-bottleneck parking-lot environment, sweep-ready.

    Adapts :class:`~repro.sim.topology.ParkingLotConfig` to the gain
    sweep's platform interface: γ normalizes by the tightest attacked
    segment, and the victim population is the *long* flows (the ones
    crossing every segment), whose numpy-drawn RTTs feed C_ψ exactly as
    the dumbbell's even spread does.
    """

    def __init__(self, *, n_flows: int = 8, queue: str = "red",
                 seed: int = 1, tcp: Optional[TCPConfig] = None,
                 **config_fields) -> None:
        if queue not in QUEUE_FACTORIES:
            raise ValidationError(
                f"queue must be one of {sorted(QUEUE_FACTORIES)}, "
                f"got {queue!r}"
            )
        self.n_flows = n_flows
        self.queue = queue
        self.seed = seed
        self.tcp = tcp if tcp is not None else _dumbbell_tcp_config()
        # Validates eagerly (segment counts, attack span, RTT bounds).
        self._config = ParkingLotConfig(
            long_flows=n_flows,
            queue_factory=QUEUE_FACTORIES[queue],
            tcp=self.tcp,
            seed=seed,
            **config_fields,
        )
        self._extra = tuple(sorted(config_fields.items()))

    def spec(self) -> PlatformSpec:
        return PlatformSpec(
            kind="parking_lot", n_flows=self.n_flows, seed=self.seed,
            queue=self.queue, tcp=self.tcp,
            extra=self._extra or None,
        )

    @property
    def bottleneck_bps(self) -> float:
        """γ's normalizer: the tightest attacked segment's rate."""
        return self._config.attacked_rate_bps()

    @property
    def min_rto(self) -> float:
        return self.tcp.min_rto

    def victim_population(self) -> VictimPopulation:
        long_rtts, _ = self._config.draw_rtts()
        return VictimPopulation(
            rtts=long_rtts,
            delayed_ack=self.tcp.delayed_ack,
            s_packet=FULL_PACKET_BYTES,
        )


@dataclasses.dataclass(frozen=True)
class MultiBottleneckResult:
    """The experiment's panel of classified curves plus the γ* check.

    Attributes:
        curves: one classified gain curve per topology key.
        reference: the Fig.-6-style dumbbell sweep the ``single``
            panel's γ* is checked against.
        gamma_step: the swept grid's spacing (the agreement tolerance).
        rate_bps / extent: the attack parameters shared by all panels.
    """

    curves: Dict[str, GainCurve]
    reference: GainCurve
    gamma_step: float
    rate_bps: float
    extent: float

    def gamma_star(self, key: str) -> float:
        """The measured maximization point of one topology panel."""
        return self.curves[key].peak_measured().gamma

    def reference_gamma_star(self) -> float:
        return self.reference.peak_measured().gamma

    def single_matches_reference(self) -> bool:
        """Whether the single-bottleneck γ* reproduces the dumbbell's.

        Agreement within one grid step: both sweeps sample the same γ
        grid, so the tightest claim a discrete sweep supports is that
        the peaks land on the same or adjacent samples.
        """
        delta = abs(self.gamma_star("single") - self.reference_gamma_star())
        return delta <= self.gamma_step + 1e-9

    def render(self) -> str:
        parts = [render_curve_table(
            list(self.curves.values()),
            title=(
                f"Multi-bottleneck gain panel -- R_attack="
                f"{self.rate_bps / 1e6:.0f} Mb/s, T_extent="
                f"{self.extent * 1e3:.0f} ms "
                f"(gamma normalized by the tightest attacked segment)"
            ),
        )]
        lines = ["maximization points (gamma*):"]
        for key, curve in self.curves.items():
            peak = curve.peak_measured()
            lines.append(
                f"  {key:>8}: gamma*={peak.gamma:.2f} "
                f"(G={peak.measured_gain:.3f}, "
                f"{curve.comparison.regime.value})"
            )
        ref_peak = self.reference.peak_measured()
        lines.append(
            f"  dumbbell reference: gamma*={ref_peak.gamma:.2f} "
            f"(G={ref_peak.measured_gain:.3f})"
        )
        verdict = "agrees" if self.single_matches_reference() else "DIVERGES"
        lines.append(
            f"  single-bottleneck gamma* {verdict} with the dumbbell "
            f"reference (tolerance: one grid step = {self.gamma_step:.2f})"
        )
        parts.append("\n".join(lines))
        return "\n\n".join(parts)


def _scale() -> dict:
    """Resolved per-scale parameters (smoke < default < full)."""
    if smoke_scale():
        return dict(long_flows=4, cross_flows=2, warmup=3.0, window=8.0,
                    gammas=np.linspace(0.2, 0.8, 3))
    if full_scale():
        return dict(long_flows=15, cross_flows=8, warmup=10.0, window=50.0,
                    gammas=default_gammas())
    return dict(long_flows=8, cross_flows=4, warmup=6.0, window=20.0,
                gammas=default_gammas())


def run_multi_bottleneck(
    *,
    rate_bps: float = mbps(25),
    extent: float = ms(75),
    gammas: Optional[Sequence[float]] = None,
    seed: int = 11,
) -> MultiBottleneckResult:
    """Sweep γ on the parking-lot panel and check γ* against Fig. 6.

    All panels share R_attack = 25 Mb/s and T_extent = 75 ms (the
    middle series of Fig. 6) and a 15 Mb/s tightest-segment rate, so
    every curve is normalized identically and the ``single`` panel is
    directly comparable to the dumbbell reference.
    """
    scale = _scale()
    if gammas is None:
        gammas = scale["gammas"]
    gammas = np.asarray(list(gammas), dtype=float)
    if len(gammas) < 2:
        raise ValidationError("the sweep needs at least 2 gamma samples")
    long_flows = scale["long_flows"]
    cross = scale["cross_flows"]
    warmup, window = scale["warmup"], scale["window"]

    panels: List[Tuple[str, str, _SweepPlatform]] = [
        # The dumbbell question re-asked on the chain machinery.
        ("single", "1 segment, no cross traffic", ParkingLotPlatform(
            n_flows=long_flows, seed=seed,
            n_segments=1, cross_flows=0,
        )),
        # Cross traffic behind the attacked segment.
        ("cross", "2 segments, attack on segment 0", ParkingLotPlatform(
            n_flows=long_flows, seed=seed,
            n_segments=2, cross_flows=cross, attack_segments=(0,),
        )),
        # The attack path loads both AQMs.
        ("span", "2 segments, attack spans both", ParkingLotPlatform(
            n_flows=long_flows, seed=seed,
            n_segments=2, cross_flows=cross, attack_segments=(0, 1),
        )),
    ]
    reference = DumbbellPlatform(n_flows=long_flows, seed=seed)

    plans = [
        plan_gain_sweep(
            platform,
            rate_bps=rate_bps,
            extent=extent,
            gammas=gammas,
            warmup=warmup,
            window=window,
            label=f"{key}: {detail}",
        )
        for key, detail, platform in panels
    ]
    plans.append(plan_gain_sweep(
        reference,
        rate_bps=rate_bps,
        extent=extent,
        gammas=gammas,
        warmup=warmup,
        window=window,
        label="dumbbell reference (Fig. 6 scenario)",
    ))
    curves = run_gain_sweeps(plans)

    return MultiBottleneckResult(
        curves={key: curve for (key, _, _), curve in zip(panels, curves)},
        reference=curves[-1],
        gamma_step=float(gammas[1] - gammas[0]),
        rate_bps=rate_bps,
        extent=extent,
    )
