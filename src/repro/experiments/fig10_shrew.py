"""Figure 10: the PDoS / shrew-attack relationship.

Three attack settings are swept over γ:

* a normal-gain case  -- R_attack = 30 Mb/s, T_extent = 100 ms;
* an over-gain case   -- R_attack = 40 Mb/s, T_extent =  75 ms;
* an under-gain case  -- R_attack = 50 Mb/s, T_extent =  50 ms.

At γ values whose attack period T_AIMD lands on a minRTO harmonic
(1000/n ms for ns-2's 1 s minRTO) the attack degenerates into the
timeout-based shrew attack and the measured gain jumps far above the
analytical line -- the circled outliers of Fig. 10.  The driver flags
those points and quantifies the excess.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.experiments.base import (
    DumbbellPlatform,
    GainCurve,
    default_gammas,
    full_scale,
    plan_gain_sweep,
    render_curve_table,
    run_gain_sweeps,
)
from repro.util.units import mbps, ms

__all__ = ["ShrewFigure", "SHREW_CASES", "run_fig10"]

#: The paper's three Fig.-10 settings: (label, R_attack, T_extent).
SHREW_CASES: Sequence[Tuple[str, float, float]] = (
    ("normal-gain R=30M T_extent=100ms", mbps(30), ms(100)),
    ("over-gain   R=40M T_extent=75ms", mbps(40), ms(75)),
    ("under-gain  R=50M T_extent=50ms", mbps(50), ms(50)),
)


@dataclasses.dataclass(frozen=True)
class ShrewFigure:
    """The three swept curves with their shrew-point excess statistics."""

    curves: List[GainCurve]
    #: mean (measured − analytic) over shrew points, per curve.
    shrew_excess: List[float]
    #: mean (measured − analytic) over non-shrew points, per curve.
    nonshrew_excess: List[float]

    def render(self) -> str:
        parts = [render_curve_table(
            self.curves, title="Fig. 10 -- PDoS attacks vs shrew attacks"
        )]
        for curve, shrew, nonshrew in zip(
            self.curves, self.shrew_excess, self.nonshrew_excess
        ):
            parts.append(
                f"  [{curve.label}] shrew-point excess {shrew:+.3f} vs "
                f"non-shrew {nonshrew:+.3f} (measured - analytic)"
            )
        return "\n".join(parts)


def _excess(curve: GainCurve, shrew: bool) -> float:
    """Mean (measured − analytic) over model-valid points (γ > C_ψ)."""
    values = [
        p.measured_gain - p.analytic_gain
        for p in curve.points
        if p.is_shrew == shrew and p.gamma > curve.c_psi
    ]
    return float(np.mean(values)) if values else float("nan")


def _shrew_gammas(rate_bps: float, extent: float, *, bottleneck_bps: float,
                  min_rto: float) -> List[float]:
    """The exact γ values that place T_AIMD on a minRTO harmonic.

    From Eq. (4): T_AIMD = minRTO/n  ⇔  γ = n · R_attack·T_extent /
    (R_bottle·minRTO); only harmonics with γ < 1 are realizable.
    """
    base = rate_bps * extent / (bottleneck_bps * min_rto)
    return [n * base for n in range(1, 6) if n * base < 0.95]


def run_fig10(*, gammas=None, n_flows: int = 15) -> ShrewFigure:
    """Reproduce Fig. 10 on the dumbbell platform.

    Each case's γ grid is the default sweep *plus* the exact shrew
    harmonics (for R=30M/100ms those fall at γ = 0.2·n, i.e.
    T_AIMD = 1000, 500, 1000/3 ms -- the periods the paper circles).
    """
    base_gammas = (
        list(gammas) if gammas is not None
        else list(default_gammas(9 if full_scale() else 5))
    )
    plans = []
    for label, rate, extent in SHREW_CASES:
        platform = DumbbellPlatform(n_flows=n_flows, seed=1000)
        case_gammas = sorted(set(
            round(g, 4) for g in base_gammas + _shrew_gammas(
                rate, extent,
                bottleneck_bps=platform.bottleneck_bps,
                min_rto=platform.min_rto,
            )
        ))
        plans.append(plan_gain_sweep(
            platform,
            rate_bps=rate,
            extent=extent,
            gammas=case_gammas,
            label=label,
        ))
    # One batch: the three cases share the same platform scenario, so
    # their identical baseline cell is measured once for all of them.
    curves = run_gain_sweeps(plans)
    return ShrewFigure(
        curves=curves,
        shrew_excess=[_excess(c, True) for c in curves],
        nonshrew_excess=[_excess(c, False) for c in curves],
    )
