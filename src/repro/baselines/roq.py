"""The Reduction-of-Quality (RoQ) attack (Guirguis, Bestavros & Matta).

The paper's reference [15]: instead of timing pulses to TCP's recovery
dynamics, the RoQ attacker repeatedly knocks the router's AQM out of its
steady state -- each pulse drives RED's averaged queue through its
transient, inflating the loss rate while the average recovers.  The
attack is evaluated by its *potency*

    Π = damage / cost^Ω

where damage is the victims' throughput loss, cost is the attack volume,
and Ω ≥ 1 weights the attacker's sensitivity to exposure (Ω plays the
same role as the paper's κ).  This module provides the attack's pulse
train plus the potency metric so the experiment harness can compare RoQ
and PDoS tunings on the same scenarios.
"""

from __future__ import annotations

import dataclasses

from repro.core.attack import PulseTrain
from repro.sim.packet import FULL_PACKET_BYTES
from repro.util.errors import ValidationError
from repro.util.validate import check_positive

__all__ = ["RoQAttack", "roq_potency"]


def roq_potency(damage_bytes: float, cost_bytes: float,
                omega: float = 1.0) -> float:
    """The RoQ potency Π = damage / cost^Ω.

    Args:
        damage_bytes: victim throughput lost to the attack, bytes.
        cost_bytes: attack traffic volume, bytes.
        omega: exposure-aversion exponent (Ω ≥ 1 in [15]).
    """
    if damage_bytes < 0:
        raise ValidationError(f"damage must be >= 0, got {damage_bytes}")
    check_positive("cost_bytes", cost_bytes)
    check_positive("omega", omega)
    return damage_bytes / cost_bytes**omega


@dataclasses.dataclass(frozen=True)
class RoQAttack:
    """A RED-transient-targeting pulse attack.

    Attributes:
        rate_bps: pulse magnitude; must comfortably exceed the bottleneck
            so the instantaneous queue shoots past RED's max threshold.
        extent: pulse width; tuned to RED's averaging time constant --
            long enough to drag the EWMA into the dropping region
            (roughly ``1 / w_q`` packet times), not longer.
        period: inter-pulse period; chosen to be at least RED's recovery
            (transient-decay) time so each pulse hits a re-stabilized AQM.
    """

    rate_bps: float
    extent: float
    period: float

    def __post_init__(self) -> None:
        check_positive("rate_bps", self.rate_bps)
        check_positive("extent", self.extent)
        check_positive("period", self.period)
        if self.extent >= self.period:
            raise ValidationError(
                f"extent {self.extent}s must be shorter than the period "
                f"{self.period}s"
            )

    @classmethod
    def tuned_for_red(cls, *, rate_bps: float, bottleneck_bps: float,
                      w_q: float = 0.002,
                      mean_pkt_bytes: float = FULL_PACKET_BYTES) -> "RoQAttack":
        """Tune the pulse to RED's EWMA time constant.

        The averaged queue's step response has time constant
        ``1 / w_q`` packet arrivals; at the bottleneck's service rate
        that is ``mean_pkt_bytes * 8 / (w_q * bottleneck_bps)`` seconds.
        The pulse covers roughly half a time constant (enough to lift
        the average into the dropping region) and repeats after three
        time constants (letting the transient fully decay, which is what
        distinguishes RoQ from a sustained flood).
        """
        check_positive("rate_bps", rate_bps)
        check_positive("bottleneck_bps", bottleneck_bps)
        check_positive("w_q", w_q)
        packet_time = mean_pkt_bytes * 8.0 / bottleneck_bps
        time_constant = packet_time / w_q
        return cls(
            rate_bps=rate_bps,
            extent=0.5 * time_constant,
            period=3.0 * time_constant,
        )

    def train(self, n_pulses: int) -> PulseTrain:
        """The realizable pulse train for *n_pulses* pulses."""
        return PulseTrain.uniform(
            self.extent, self.rate_bps, self.period - self.extent, n_pulses
        )

    def gamma(self, bottleneck_bps: float) -> float:
        """Normalized average rate (Eq. 4) for cross-attack comparison."""
        check_positive("bottleneck_bps", bottleneck_bps)
        return self.rate_bps * self.extent / (bottleneck_bps * self.period)

    def cost_bytes(self, n_pulses: int) -> float:
        """Attack volume over *n_pulses* pulses, bytes."""
        if n_pulses < 1:
            raise ValidationError(f"n_pulses must be >= 1, got {n_pulses}")
        return self.rate_bps * self.extent * n_pulses / 8.0
