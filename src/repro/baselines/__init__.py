"""Baseline attacks the paper compares against or builds upon.

* :mod:`repro.baselines.flooding` -- the conventional flooding DoS
  (the γ ≥ 1 degenerate case; trivially detectable);
* :mod:`repro.baselines.shrew` -- the timeout-based shrew attack of
  Kuzmanovic & Knightly (SIGCOMM 2003, reference [10]), whose periods
  are the minRTO harmonics of Section 4.1.3;
* :mod:`repro.baselines.roq` -- the Reduction-of-Quality attack of
  Guirguis, Bestavros & Matta (ICNP 2004, reference [15]) targeting AQM
  transients, with its potency metric.
"""

from repro.baselines.flooding import FloodingAttack
from repro.baselines.roq import RoQAttack, roq_potency
from repro.baselines.shrew import ShrewAttack

__all__ = ["FloodingAttack", "RoQAttack", "ShrewAttack", "roq_potency"]
