"""The conventional flooding DoS baseline.

A flooding attack is the ``T_space = 0`` degenerate case of the pulse
train (Section 2.1): a single continuous burst.  Its normalized rate γ
is at least 1 whenever the flood rate meets the bottleneck capacity, so
it maximizes damage but -- per the Fig. 4 limits -- corresponds to an
attacker with κ → 0 who ignores detection risk entirely.
"""

from __future__ import annotations

import dataclasses

from repro.core.attack import PulseTrain
from repro.util.validate import check_positive

__all__ = ["FloodingAttack"]


@dataclasses.dataclass(frozen=True)
class FloodingAttack:
    """A continuous flood of *rate_bps* for *duration* seconds."""

    rate_bps: float
    duration: float

    def __post_init__(self) -> None:
        check_positive("rate_bps", self.rate_bps)
        check_positive("duration", self.duration)

    def train(self) -> PulseTrain:
        """The equivalent (single-pulse, zero-spacing) pulse train."""
        return PulseTrain.flooding(self.rate_bps, self.duration)

    def gamma(self, bottleneck_bps: float) -> float:
        """Normalized average rate; ≥ 1 when the flood saturates the link."""
        check_positive("bottleneck_bps", bottleneck_bps)
        return self.rate_bps / bottleneck_bps

    def total_bytes(self) -> float:
        """Attack volume -- the quantity volume detectors alarm on."""
        return self.rate_bps * self.duration / 8.0

    def evades_volume_detection(self, bottleneck_bps: float,
                                threshold_fraction: float = 0.9) -> bool:
        """Always False once the flood rate exceeds θ·R_bottle.

        Provided for symmetry with the PDoS planner: the flooding
        baseline cannot trade damage for stealth.
        """
        return self.gamma(bottleneck_bps) < threshold_fraction
