"""The timeout-based shrew attack (Kuzmanovic & Knightly, SIGCOMM 2003).

The shrew attacker times its pulses to the victims' retransmission
timeout: with period ``minRTO / n`` every retransmission after a timeout
collides with the next pulse, so the victims never leave the timeout
state.  Section 4.1.3 of the paper shows these periods as outliers of
the AIMD-based analysis (Fig. 10); this module constructs the baseline
attack directly.
"""

from __future__ import annotations

import dataclasses

from repro.core.attack import PulseTrain
from repro.util.errors import ValidationError
from repro.util.validate import check_positive

__all__ = ["ShrewAttack"]


@dataclasses.dataclass(frozen=True)
class ShrewAttack:
    """A minRTO-synchronized pulse attack.

    Attributes:
        min_rto: the victims' minimum retransmission timeout, seconds
            (1 s for ns-2's defaults, 200 ms for the paper's Linux hosts).
        rate_bps: pulse rate; must exceed the bottleneck capacity so a
            pulse reliably fills the queue within its width.
        extent: pulse width; Kuzmanovic & Knightly recommend covering
            slightly more than the victims' round-trip times so one pulse
            catches every flow's window.
        harmonic: n in the period ``minRTO / n`` (1 = the null frequency).
    """

    min_rto: float
    rate_bps: float
    extent: float
    harmonic: int = 1

    def __post_init__(self) -> None:
        check_positive("min_rto", self.min_rto)
        check_positive("rate_bps", self.rate_bps)
        check_positive("extent", self.extent)
        if self.harmonic < 1:
            raise ValidationError(
                f"harmonic must be >= 1, got {self.harmonic}"
            )
        if self.extent >= self.period:
            raise ValidationError(
                f"extent {self.extent}s must be shorter than the period "
                f"{self.period}s (= minRTO / harmonic)"
            )

    @property
    def period(self) -> float:
        """The attack period ``minRTO / n``, seconds."""
        return self.min_rto / self.harmonic

    def train(self, n_pulses: int) -> PulseTrain:
        """The realizable pulse train for *n_pulses* pulses."""
        return PulseTrain.uniform(
            self.extent, self.rate_bps, self.period - self.extent, n_pulses
        )

    def gamma(self, bottleneck_bps: float) -> float:
        """Normalized average rate of the shrew train (Eq. 4)."""
        check_positive("bottleneck_bps", bottleneck_bps)
        return self.rate_bps * self.extent / (bottleneck_bps * self.period)
