"""The attack gain ``G_attack = Γ · (1 − γ)^κ`` and risk preferences (Section 3).

The attacker trades throughput damage Γ against exposure: the factor
``(1 − γ)^κ`` discounts the gain by the normalized average attack rate
γ, with the exponent κ encoding the attacker's risk preference
(Fig. 4):

* κ > 1 -- *risk-averse*: increasingly unwilling to raise the rate;
* κ = 1 -- *risk-neutral*;
* 0 < κ < 1 -- *risk-loving*: damage outweighs concealment;
* κ → 0 recovers the flooding attacker (risk ignored), κ → ∞ an
  attacker who never attacks.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.util.validate import check_fraction, check_positive

__all__ = ["RiskPreference", "risk_weight", "attack_gain", "attack_gain_curve",
           "risk_curve", "classify_kappa"]


class RiskPreference(enum.Enum):
    """The three attacker behaviours of Fig. 4."""

    RISK_AVERSE = "risk-averse"    #: κ > 1
    RISK_NEUTRAL = "risk-neutral"  #: κ = 1
    RISK_LOVING = "risk-loving"    #: κ < 1


def classify_kappa(kappa: float) -> RiskPreference:
    """Map a risk exponent κ to its behavioural class."""
    check_positive("kappa", kappa)
    if kappa > 1.0:
        return RiskPreference.RISK_AVERSE
    if kappa < 1.0:
        return RiskPreference.RISK_LOVING
    return RiskPreference.RISK_NEUTRAL


def risk_weight(gamma: float, kappa: float) -> float:
    """``(1 − γ)^κ`` -- the attacker's detection-risk discount."""
    check_fraction("gamma", gamma)
    check_positive("kappa", kappa)
    return (1.0 - gamma) ** kappa


def attack_gain(gamma: float, c_psi_value: float, kappa: float) -> float:
    """Eq. (5)/(12): ``G_attack = (1 − C_ψ/γ)(1 − γ)^κ``.

    Negative values (γ ≤ C_ψ, i.e. an attack too weak to degrade
    anything under the model) are returned as-is so optimizers see the
    true objective; display code may clamp at zero.
    """
    check_fraction("gamma", gamma)
    check_positive("c_psi_value", c_psi_value)
    check_positive("kappa", kappa)
    return (1.0 - c_psi_value / gamma) * (1.0 - gamma) ** kappa


def attack_gain_curve(gammas: np.ndarray, c_psi_value: float,
                      kappa: float) -> np.ndarray:
    """Vectorized :func:`attack_gain` over an array of γ values in (0, 1)."""
    check_positive("c_psi_value", c_psi_value)
    check_positive("kappa", kappa)
    gammas = np.asarray(gammas, dtype=float)
    if np.any(gammas <= 0.0) or np.any(gammas >= 1.0):
        raise ValueError("all gamma values must lie in (0, 1)")
    return (1.0 - c_psi_value / gammas) * (1.0 - gammas) ** kappa


def risk_curve(gammas: np.ndarray, kappa: float) -> np.ndarray:
    """The Fig. 4 curve ``(1 − γ)^κ`` over an array of γ values in [0, 1]."""
    check_positive("kappa", kappa)
    gammas = np.asarray(gammas, dtype=float)
    if np.any(gammas < 0.0) or np.any(gammas > 1.0):
        raise ValueError("all gamma values must lie in [0, 1]")
    return (1.0 - gammas) ** kappa
