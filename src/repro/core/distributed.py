"""Distributed (multi-source) pulsing attacks.

The paper's introduction frames PDoS within DDoS practice; this module
provides the two canonical ways to split one logical pulse train
``A(T_extent, R_attack, T_space, N)`` across ``k`` attack sources:

* **synchronized** -- every source fires at the same instants at
  ``R_attack / k``.  The aggregate at the bottleneck is *identical* to
  the single-source attack, but each source's pulse rate (and average
  rate) is divided by ``k``, sliding it under per-source rate floors.
* **interleaved** -- each source keeps the full pulse rate but fires
  every ``k``-th pulse, phase-shifted by ``T_AIMD``.  The aggregate is
  again the original train, while each source's *period* stretches to
  ``k·T_AIMD``; per-source average rate drops by ``k`` and the
  per-source traffic no longer shows the victim-facing period at all
  (a per-source DTW detector sees period ``k·T_AIMD``).

Both splits preserve the victim-side attack exactly (same bytes at the
same times), so the paper's Γ and gain analysis applies unchanged to
the aggregate -- the split is purely a stealth transformation, and the
detection experiments quantify how much it buys.
"""

from __future__ import annotations

import dataclasses
from typing import List

from repro.core.attack import PulseTrain
from repro.util.errors import ValidationError

__all__ = ["DistributedAttack", "split_synchronized", "split_interleaved"]


@dataclasses.dataclass(frozen=True)
class DistributedAttack:
    """A pulse train split across multiple sources.

    Attributes:
        trains: one per source.
        offsets: each source's start-time offset, seconds.
        strategy: "synchronized" or "interleaved".
        original: the logical single-source train.
    """

    trains: List[PulseTrain]
    offsets: List[float]
    strategy: str
    original: PulseTrain

    @property
    def n_sources(self) -> int:
        return len(self.trains)

    def per_source_gamma(self, bottleneck_bps: float) -> float:
        """Each source's normalized average rate (uniform by symmetry).

        Both strategies divide the per-source γ by the source count --
        synchronized via the rate, interleaved via the period.
        """
        return self.trains[0].gamma(bottleneck_bps)

    def aggregate_bits(self) -> float:
        """Total bits across sources (must equal the original train's)."""
        return sum(train.total_attack_bits() for train in self.trains)


def _require_uniform(train: PulseTrain) -> None:
    if not train.is_uniform:
        raise ValidationError("only uniform trains can be split")


def split_synchronized(train: PulseTrain, n_sources: int) -> DistributedAttack:
    """Split by rate: every source pulses together at R/k."""
    _require_uniform(train)
    if n_sources < 1:
        raise ValidationError(f"n_sources must be >= 1, got {n_sources}")
    per_source = PulseTrain.uniform(
        train.extent,
        train.rate_bps / n_sources,
        train.space,
        train.n_pulses,
    )
    return DistributedAttack(
        trains=[per_source] * n_sources,
        offsets=[0.0] * n_sources,
        strategy="synchronized",
        original=train,
    )


def split_interleaved(train: PulseTrain, n_sources: int) -> DistributedAttack:
    """Split by time: source i fires pulses i, i+k, i+2k, ...

    Requires the pulse count to be divisible by ``n_sources`` so every
    source carries the same load (pad the original train if needed).
    """
    _require_uniform(train)
    if n_sources < 1:
        raise ValidationError(f"n_sources must be >= 1, got {n_sources}")
    if train.n_pulses % n_sources != 0:
        raise ValidationError(
            f"n_pulses ({train.n_pulses}) must be divisible by n_sources "
            f"({n_sources}); pad the train"
        )
    pulses_each = train.n_pulses // n_sources
    period = train.period
    stretched_space = n_sources * period - train.extent
    per_source = PulseTrain.uniform(
        train.extent, train.rate_bps, stretched_space, pulses_each,
    )
    return DistributedAttack(
        trains=[per_source] * n_sources,
        offsets=[i * period for i in range(n_sources)],
        strategy="interleaved",
        original=train,
    )
