"""Timeout-aware throughput model (the paper's stated future work).

Section 5 lists the base model's limitation: it assumes every pulse puts
every victim into fast recovery, so it "does not capture the impact of
possible timeouts", which is exactly why high-intensity attacks land in
the *over-gain* regime and why shrew periods produce outliers (Fig. 10).

This module extends Proposition 2 with per-flow timeout effects:

* **Regime test.**  After a pulse the window drops to ``b·W_c``; if that
  leaves fewer than ``dupack_threshold + 1`` segments in flight, the
  receiver cannot generate the three duplicate ACKs fast retransmit
  needs, so the flow times out instead (RFC 2581's well-known small-
  window failure mode).
* **Timeout period model.**  A timed-out flow idles for
  ``RTO = max(minRTO, RTT)``, retransmits, then slow-starts for the rest
  of the attack period, delivering ``(g^k − 1)/(g − 1)`` segments over
  ``k`` RTTs with per-RTT growth ``g = 1 + 1/d``.
* **Shrew lock-in.**  When the attack period sits on a minRTO harmonic
  (:func:`repro.core.shrew.is_shrew_point`), each retransmission collides
  with the next pulse, so the flow delivers essentially nothing -- the
  paper's Fig.-10 outliers.

The resulting :func:`extended_degradation` reduces to Proposition 2 when
every flow stays in the FR regime, and otherwise predicts the larger
damage the simulations measure.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import List

from repro.core.shrew import is_shrew_point
from repro.core.throughput import (
    VictimPopulation,
    converged_window,
    normal_throughput,
)
from repro.util.validate import check_positive

__all__ = [
    "FlowRegime",
    "flow_regime",
    "fr_packets_per_period",
    "to_packets_per_period",
    "extended_attack_throughput",
    "extended_degradation",
    "extended_gain",
    "FlowPrediction",
    "per_flow_predictions",
]

#: Duplicate-ACK threshold of fast retransmit (RFC 2581).
_DUPACK_THRESHOLD = 3


class FlowRegime(enum.Enum):
    """How a victim flow responds to each attack pulse."""

    FAST_RECOVERY = "fr"   #: the base model's assumption (Prop. 1/2)
    TIMEOUT = "to"         #: window too small for 3 dup ACKs
    LOCKED = "locked"      #: shrew lock-in: retransmissions hit pulses


def flow_regime(*, w_converged: float, decrease: float, period: float,
                min_rto: float, dupack_threshold: int = _DUPACK_THRESHOLD,
                shrew_rtol: float = 0.08) -> FlowRegime:
    """Classify one flow's per-pulse response.

    Args:
        w_converged: the flow's Eq.-1 converged window W_c, packets.
        decrease: the AIMD multiplicative factor b.
        period: the attack period T_AIMD, seconds.
        min_rto: the victim stack's minimum RTO, seconds.
        dupack_threshold: duplicate ACKs needed for fast retransmit.
        shrew_rtol: tolerance for the minRTO-harmonic match.
    """
    check_positive("w_converged", w_converged)
    check_positive("period", period)
    check_positive("min_rto", min_rto)
    if decrease * w_converged >= dupack_threshold + 1:
        return FlowRegime.FAST_RECOVERY
    if is_shrew_point(period, min_rto, rtol=shrew_rtol):
        return FlowRegime.LOCKED
    return FlowRegime.TIMEOUT


def fr_packets_per_period(victims: VictimPopulation, period: float,
                          rtt: float) -> float:
    """The base model's per-period packet count (the Lemma-2 sawtooth)."""
    a, b = victims.aimd.increase, victims.aimd.decrease
    d = victims.delayed_ack
    rounds = period / rtt
    return a * (1.0 + b) / (2.0 * d * (1.0 - b)) * rounds * rounds


def to_packets_per_period(victims: VictimPopulation, period: float,
                          rtt: float, min_rto: float) -> float:
    """Packets a timed-out flow delivers per attack period.

    One retransmission after ``RTO = max(minRTO, RTT)``, then slow start
    with growth ``g = 1 + 1/d`` per RTT for the time remaining until the
    next pulse.  The slow-start window is capped at the flow's converged
    window W_c (beyond that the next pulse would have hit anyway).
    """
    check_positive("min_rto", min_rto)
    d = victims.delayed_ack
    rto = max(min_rto, rtt)
    remaining = period - rto
    if remaining <= 0:
        return 1.0  # only the (eventually successful) retransmission
    growth = 1.0 + 1.0 / d
    rounds = remaining / rtt
    w_cap = converged_window(victims.aimd, d, period, rtt)
    packets = 0.0
    window = 1.0
    while rounds > 0:
        step = min(rounds, 1.0)
        packets += window * step
        window = min(window * growth, max(w_cap, 1.0))
        rounds -= 1.0
    return packets


@dataclasses.dataclass(frozen=True)
class FlowPrediction:
    """The extended model's view of one victim flow.

    Attributes:
        rtt: the flow's round-trip time.
        w_converged: Eq.-1 converged window, packets.
        regime: the per-pulse response class.
        packets_per_period: predicted segments delivered per T_AIMD.
    """

    rtt: float
    w_converged: float
    regime: FlowRegime
    packets_per_period: float


def per_flow_predictions(victims: VictimPopulation, *, period: float,
                         min_rto: float,
                         bottleneck_bps: float) -> List[FlowPrediction]:
    """Classify every victim flow and predict its per-period delivery.

    Unlike Lemma 2, the prediction is *capacity-coupled*: each flow's
    per-period delivery is capped at its fair share of the bottleneck
    (``period·R_bottle / (8·S_packet·N_flow)`` segments).  Without the
    cap, short-RTT flows' uncapped sawtooths (``(T_AIMD/RTT)²`` grows
    without bound) dominate the aggregate and mask the long-RTT flows'
    timeout losses -- the very effect this extension models.
    """
    check_positive("period", period)
    check_positive("bottleneck_bps", bottleneck_bps)
    fair_share = (
        period * bottleneck_bps / (8.0 * victims.s_packet * victims.n_flows)
    )
    predictions = []
    for rtt in victims.rtts:
        w_c = converged_window(victims.aimd, victims.delayed_ack, period, rtt)
        regime = flow_regime(
            w_converged=w_c,
            decrease=victims.aimd.decrease,
            period=period,
            min_rto=min_rto,
        )
        if regime is FlowRegime.FAST_RECOVERY:
            packets = fr_packets_per_period(victims, period, rtt)
        elif regime is FlowRegime.TIMEOUT:
            packets = to_packets_per_period(victims, period, rtt, min_rto)
        else:  # LOCKED: only doomed retransmissions leave the host
            packets = 1.0
        predictions.append(FlowPrediction(
            rtt=rtt, w_converged=w_c, regime=regime,
            packets_per_period=min(packets, fair_share),
        ))
    return predictions


def extended_attack_throughput(victims: VictimPopulation, *, period: float,
                               n_pulses: int, min_rto: float,
                               bottleneck_bps: float) -> float:
    """Aggregate Ψ_attack in bytes under the timeout-aware model."""
    if n_pulses < 2:
        raise ValueError(f"n_pulses must be >= 2, got {n_pulses}")
    predictions = per_flow_predictions(
        victims, period=period, min_rto=min_rto,
        bottleneck_bps=bottleneck_bps,
    )
    per_period = sum(p.packets_per_period for p in predictions)
    return per_period * (n_pulses - 1) * victims.s_packet


def extended_degradation(victims: VictimPopulation, *, period: float,
                         bottleneck_bps: float, min_rto: float) -> float:
    """Timeout-aware Γ: like Prop. 2, but per-flow regimes considered.

    The per-flow fair-share caps guarantee Ψ ≤ Ψ_normal, so the result
    is always in [0, 1).
    """
    check_positive("bottleneck_bps", bottleneck_bps)
    n_pulses = 10  # (N-1) cancels in the ratio; any N >= 2 works
    attack = extended_attack_throughput(
        victims, period=period, n_pulses=n_pulses, min_rto=min_rto,
        bottleneck_bps=bottleneck_bps,
    )
    normal = normal_throughput(bottleneck_bps, period, n_pulses)
    return 1.0 - min(attack, normal) / normal


def extended_gain(victims: VictimPopulation, *, gamma: float, period: float,
                  bottleneck_bps: float, min_rto: float,
                  kappa: float = 1.0) -> float:
    """Timeout-aware attack gain ``Γ_ext · (1 − γ)^κ``."""
    check_positive("kappa", kappa)
    if not 0 < gamma < 1:
        raise ValueError(f"gamma must be in (0, 1), got {gamma}")
    degradation = extended_degradation(
        victims, period=period, bottleneck_bps=bottleneck_bps,
        min_rto=min_rto,
    )
    return degradation * (1.0 - gamma) ** kappa
