"""TCP throughput analysis under an AIMD-based PDoS attack (Section 2).

Implements, in order:

* Eq. (1)  -- the converged congestion window ``W_c``;
* Prop. 1 / Eq. (2) -- the exact per-flow throughput, transient phase
  included;
* Lemma 1 / Eq. (8) -- the aggregate no-attack throughput Ψ_normal;
* Lemma 2 / Eq. (9) -- the aggregate under-attack throughput Ψ_attack
  (steady-state approximation, ``W_n ≈ W_c``);
* Prop. 2 / Eq. (10)-(11) -- the normalized degradation
  ``Γ = 1 − C_ψ / γ`` and the constant ``C_ψ``;
* Corollary 4 / Eq. (18) -- the victim constant ``C_victim`` with
  ``C_ψ = C_victim · T_extent · C_attack``.

Unit conventions: times in seconds, rates in bits/s, packet size
``s_packet`` in bytes, windows in packets.  Throughputs Ψ are in bytes,
matching the paper (Lemma 1 divides the bit rate by 8).
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Sequence

from repro.core.attack import PulseTrain
from repro.sim.packet import FULL_PACKET_BYTES
from repro.sim.tcp.params import AIMDParams
from repro.util.errors import ValidationError
from repro.util.validate import check_positive

__all__ = [
    "converged_window",
    "window_after_pulses",
    "pulses_to_converge",
    "per_flow_attack_throughput_exact",
    "aggregate_attack_throughput",
    "normal_throughput",
    "c_psi",
    "c_victim",
    "degradation",
    "VictimPopulation",
]

#: Relative tolerance used to declare the window converged to W_c.
_CONVERGENCE_RTOL = 0.05


@dataclasses.dataclass(frozen=True)
class VictimPopulation:
    """The victim TCP flows sharing the bottleneck.

    Attributes:
        rtts: per-flow round-trip times, seconds.
        aimd: AIMD(a, b) parameters of the flows.
        delayed_ack: the receiver delayed-ACK factor ``d``.
        s_packet: packet size in bytes (the paper's ``S_packet``).
    """

    rtts: Sequence[float]
    aimd: AIMDParams = dataclasses.field(default_factory=AIMDParams.standard_tcp)
    delayed_ack: int = 1
    s_packet: float = FULL_PACKET_BYTES

    def __post_init__(self) -> None:
        if len(self.rtts) == 0:
            raise ValidationError("need at least one victim flow")
        for i, rtt in enumerate(self.rtts):
            check_positive(f"rtts[{i}]", rtt)
        if self.delayed_ack < 1:
            raise ValidationError(
                f"delayed_ack must be >= 1, got {self.delayed_ack}"
            )
        check_positive("s_packet", self.s_packet)

    @property
    def n_flows(self) -> int:
        return len(self.rtts)

    def inverse_rtt_square_sum(self) -> float:
        """``Σ 1 / RTT_i²`` -- the victim-population factor in Eq. (9)/(11)."""
        return sum(1.0 / (rtt * rtt) for rtt in self.rtts)


# ----------------------------------------------------------------------
# Eq. (1): the converged window
# ----------------------------------------------------------------------
def converged_window(aimd: AIMDParams, delayed_ack: int, period: float,
                     rtt: float) -> float:
    """``W_c = a/(1-b) · T_AIMD / (d · RTT)`` (Eq. 1), in packets.

    The fixed point of the per-period map ``W ← b·W + (a/d)·T_AIMD/RTT``:
    each pulse multiplies the window by ``b`` and the free-of-attack
    interval restores ``a/d`` packets per RTT.
    """
    check_positive("period", period)
    check_positive("rtt", rtt)
    a, b = aimd.increase, aimd.decrease
    return (a / (1.0 - b)) * period / (delayed_ack * rtt)


def window_after_pulses(aimd: AIMDParams, delayed_ack: int, period: float,
                        rtt: float, w_initial: float, n: int) -> float:
    """Window just before the ``(n+1)``-th attack epoch, starting from W_1.

    Closed form of n applications of ``W ← b·W + (a/d)·T_AIMD/RTT``::

        W_{n+1} = b^n · W_1 + (1 - b^n) · W_c
    """
    if n < 0:
        raise ValidationError(f"n must be >= 0, got {n}")
    w_c = converged_window(aimd, delayed_ack, period, rtt)
    decay = aimd.decrease ** n
    return decay * w_initial + (1.0 - decay) * w_c


def pulses_to_converge(aimd: AIMDParams, delayed_ack: int, period: float,
                       rtt: float, w_initial: float,
                       rtol: float = _CONVERGENCE_RTOL) -> int:
    """``N_attack``: pulses needed to bring the window within *rtol* of W_c.

    The paper reports fewer than 10 pulses suffice for standard TCP
    (Section 3.1, proof of Lemma 2); this computes the exact count for
    any AIMD pair by solving ``b^n |W_1 - W_c| <= rtol · W_c``.
    """
    check_positive("rtol", rtol)
    w_c = converged_window(aimd, delayed_ack, period, rtt)
    gap = abs(w_initial - w_c)
    if gap <= rtol * w_c:
        return 1
    n = math.log(rtol * w_c / gap) / math.log(aimd.decrease)
    return max(1, int(math.ceil(n)))


# ----------------------------------------------------------------------
# Proposition 1 (Eq. 2): exact per-flow throughput
# ----------------------------------------------------------------------
def per_flow_attack_throughput_exact(
    *,
    aimd: AIMDParams,
    delayed_ack: int,
    period: float,
    rtt: float,
    n_pulses: int,
    w_initial: float,
    s_packet: float = FULL_PACKET_BYTES,
) -> float:
    """Proposition 1: one victim flow's throughput in bytes over N pulses.

    The transient phase sums the actual window trajectory ``W_i``; the
    steady phase uses the sawtooth around ``W_c``.  This is the exact
    Eq. (2); :func:`aggregate_attack_throughput` is the Lemma-2
    approximation of its sum over flows.
    """
    check_positive("period", period)
    check_positive("rtt", rtt)
    check_positive("s_packet", s_packet)
    if n_pulses < 1:
        raise ValidationError(f"n_pulses must be >= 1, got {n_pulses}")
    a, b = aimd.increase, aimd.decrease
    d = delayed_ack
    rounds = period / rtt  # RTTs per attack period

    n_attack = pulses_to_converge(aimd, d, period, rtt, w_initial)
    n_attack = min(n_attack, n_pulses)

    # Transient phase: N_attack - 1 free-of-attack intervals.
    packets = 0.0
    w_i = w_initial
    for _ in range(n_attack - 1):
        packets += (b * w_i + (a / (2.0 * d)) * rounds) * rounds
        w_i = b * w_i + (a / d) * rounds

    # Steady phase: N - N_attack sawtooth periods around W_c.
    steady_per_period = (
        a * (1.0 + b) / (2.0 * d * (1.0 - b)) * rounds * rounds
    )
    packets += steady_per_period * (n_pulses - n_attack)
    return packets * s_packet


# ----------------------------------------------------------------------
# Lemmas 1 and 2 (Eqs. 8, 9)
# ----------------------------------------------------------------------
def normal_throughput(bottleneck_bps: float, period: float,
                      n_pulses: int) -> float:
    """Lemma 1 (Eq. 8): Ψ_normal = R_bottle · (N−1) · T_AIMD / 8 bytes.

    Absent attack, the aggregated TCP flows saturate the bottleneck, so
    over the attack's (N−1) full periods the delivered volume is the
    bottleneck capacity times the duration.
    """
    check_positive("bottleneck_bps", bottleneck_bps)
    check_positive("period", period)
    if n_pulses < 2:
        raise ValidationError(f"n_pulses must be >= 2, got {n_pulses}")
    return bottleneck_bps * (n_pulses - 1) * period / 8.0


def aggregate_attack_throughput(victims: VictimPopulation, period: float,
                                n_pulses: int) -> float:
    """Lemma 2 (Eq. 9): aggregate Ψ_attack in bytes.

    Approximates every flow as already converged (``W_n ≈ W_c``), valid
    because standard TCP converges in under 10 pulses::

        Ψ_attack = a(1+b) T_AIMD² S_packet / (2d(1−b)) · (N−1) · Σ 1/RTT_i²
    """
    check_positive("period", period)
    if n_pulses < 2:
        raise ValidationError(f"n_pulses must be >= 2, got {n_pulses}")
    a, b = victims.aimd.increase, victims.aimd.decrease
    d = victims.delayed_ack
    return (
        a * (1.0 + b) * period * period * victims.s_packet
        / (2.0 * d * (1.0 - b))
        * (n_pulses - 1)
        * victims.inverse_rtt_square_sum()
    )


# ----------------------------------------------------------------------
# Proposition 2 (Eqs. 10, 11) and Corollary 4 (Eq. 18)
# ----------------------------------------------------------------------
def c_victim(victims: VictimPopulation, bottleneck_bps: float) -> float:
    """Eq. (18): C_victim = 4a(1+b) S_packet / ((1−b) d R_bottle) · Σ 1/RTT_i²."""
    check_positive("bottleneck_bps", bottleneck_bps)
    a, b = victims.aimd.increase, victims.aimd.decrease
    d = victims.delayed_ack
    return (
        4.0 * a * (1.0 + b) * victims.s_packet
        / ((1.0 - b) * d * bottleneck_bps)
        * victims.inverse_rtt_square_sum()
    )


def c_psi(victims: VictimPopulation, *, extent: float, rate_bps: float,
          bottleneck_bps: float) -> float:
    """Eq. (11): C_ψ = C_victim · T_extent · C_attack.

    The single constant through which the victim population, the pulse
    width, and the pulse-rate ratio enter the degradation Γ = 1 − C_ψ/γ.
    """
    check_positive("extent", extent)
    check_positive("rate_bps", rate_bps)
    check_positive("bottleneck_bps", bottleneck_bps)
    c_attack = rate_bps / bottleneck_bps
    return c_victim(victims, bottleneck_bps) * extent * c_attack


def degradation(gamma: float, c_psi_value: float) -> float:
    """Proposition 2 (Eq. 10): Γ = 1 − C_ψ / γ.

    Γ ∈ (0, 1) requires C_ψ < γ; for weaker attacks (γ ≤ C_ψ) the model
    predicts no degradation and this returns a non-positive value, which
    callers may clamp for display.
    """
    check_positive("gamma", gamma)
    check_positive("c_psi_value", c_psi_value)
    return 1.0 - c_psi_value / gamma


def degradation_from_train(victims: VictimPopulation, train: PulseTrain,
                           bottleneck_bps: float) -> float:
    """Γ for a concrete uniform pulse train (convenience wrapper)."""
    value = c_psi(
        victims,
        extent=train.extent,
        rate_bps=train.rate_bps,
        bottleneck_bps=bottleneck_bps,
    )
    return degradation(train.gamma(bottleneck_bps), value)
