"""The PDoS attack optimization problem and its solution (Section 3.1-3.2).

The attacker maximizes ``G(γ) = (1 − C_ψ/γ)(1 − γ)^κ`` subject to
``0 < C_ψ < γ < 1`` (Eq. 12).  Proposition 3 gives the unique interior
maximizer in closed form:

    γ* = [C_ψ(1−κ) − sqrt(C_ψ²(1−κ)² + 4κC_ψ)] / (−2κ)        (Eq. 13)

with the limiting corollaries γ*→C_ψ as κ→∞ (risk-averse), γ*→1 as κ→0
(risk-loving), and γ* = sqrt(C_ψ) at κ=1 (risk-neutral).  Proposition 4
converts γ* into the pulse-spacing parameter via Eq. (7),
``γ = C_attack / (1 + μ)``:

    1 + μ_optimal = C_attack / γ*                               (Eq. 16)

Note on Eq. (16)/(17) as printed: the paper's right-hand sides equal
``C_attack / γ*``, i.e. ``1 + μ`` rather than μ; this module returns the
Eq.-(7)-consistent ``μ = C_attack/γ* − 1`` and exposes the raw ratio as
:func:`optimal_period_ratio`.  EXPERIMENTS.md discusses the discrepancy.

:func:`optimal_gamma_numerical` cross-checks the closed form with a
bounded scalar minimizer (scipy), and :func:`gain_derivative_sign`
implements the sign structure of Eq. (15) used in the uniqueness proof.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional

from scipy import optimize

from repro.core.attack import PulseTrain
from repro.core.gain import attack_gain, classify_kappa, RiskPreference
from repro.core.throughput import VictimPopulation, c_psi
from repro.util.errors import ValidationError
from repro.util.validate import check_fraction, check_positive

__all__ = [
    "optimal_gamma",
    "optimal_gamma_numerical",
    "optimal_period_ratio",
    "optimal_mu",
    "optimal_period",
    "optimal_attack",
    "gain_derivative_sign",
    "OptimalAttack",
]


def optimal_gamma(c_psi_value: float, kappa: float) -> float:
    """Proposition 3 (Eq. 13): the unique maximizer γ* of the attack gain.

    Requires ``0 < C_ψ < 1``; the result is guaranteed to satisfy
    ``C_ψ < γ* < 1`` (the proposition's feasibility argument).

    The κ = 1 case is the closed-form Corollary 3, ``γ* = sqrt(C_ψ)``;
    it also avoids the 0/0 ambiguity of Eq. (13) at κ exactly 1 caused by
    floating-point cancellation.
    """
    check_fraction("c_psi_value", c_psi_value)
    check_positive("kappa", kappa)
    if kappa == 1.0:
        return math.sqrt(c_psi_value)
    c = c_psi_value
    discriminant = c * c * (1.0 - kappa) ** 2 + 4.0 * kappa * c
    gamma_star = (c * (1.0 - kappa) - math.sqrt(discriminant)) / (-2.0 * kappa)
    return gamma_star


def optimal_gamma_numerical(c_psi_value: float, kappa: float,
                            tolerance: float = 1e-10) -> float:
    """Maximize G(γ) numerically on (C_ψ, 1): a cross-check of Eq. (13)."""
    check_fraction("c_psi_value", c_psi_value)
    check_positive("kappa", kappa)
    result = optimize.minimize_scalar(
        lambda gamma: -attack_gain(gamma, c_psi_value, kappa),
        bounds=(c_psi_value + 1e-12, 1.0 - 1e-12),
        method="bounded",
        options={"xatol": tolerance},
    )
    return float(result.x)


def gain_derivative_sign(gamma: float, c_psi_value: float, kappa: float) -> int:
    """Sign of ∂G_attack/∂γ (Eq. 15): +1 below γ*, 0 at γ*, −1 above.

    Derived from ``∂G/∂γ ∝ −κγ² + C_ψ(κ−1)γ + C_ψ`` (the positive
    factors ``(1−γ)^{κ−1} γ^{−2}`` dropped).
    """
    check_fraction("gamma", gamma)
    check_fraction("c_psi_value", c_psi_value)
    check_positive("kappa", kappa)
    value = -kappa * gamma * gamma + c_psi_value * (kappa - 1.0) * gamma + c_psi_value
    if abs(value) < 1e-12:
        return 0
    return 1 if value > 0 else -1


# ----------------------------------------------------------------------
# Proposition 4 (Eq. 16) and Corollary 4 (Eq. 17)
# ----------------------------------------------------------------------
def optimal_period_ratio(c_psi_value: float, kappa: float,
                         c_attack: float) -> float:
    """``C_attack / γ* = T_AIMD / T_extent = 1 + μ_optimal``.

    This is the quantity the paper's Eq. (16) prints (see module note).
    """
    check_positive("c_attack", c_attack)
    gamma_star = optimal_gamma(c_psi_value, kappa)
    return c_attack / gamma_star


def optimal_mu(c_psi_value: float, kappa: float, c_attack: float) -> float:
    """Proposition 4: μ_optimal = C_attack / γ* − 1 (from Eq. 7).

    μ is the reciprocal duty cycle minus one (``T_space / T_extent``);
    it must be ≥ 0, which holds whenever γ* ≤ C_attack -- i.e. the
    optimal average rate is actually reachable with the given pulse
    rate.  Raises :class:`ValidationError` otherwise (the attacker must
    raise R_attack).
    """
    ratio = optimal_period_ratio(c_psi_value, kappa, c_attack)
    if ratio < 1.0:
        raise ValidationError(
            f"optimal gamma {c_attack / ratio:.4f} exceeds C_attack="
            f"{c_attack:.4f}: the pulse rate is too low to realize it"
        )
    return ratio - 1.0


def optimal_period(c_psi_value: float, kappa: float, c_attack: float,
                   extent: float) -> float:
    """The optimal attack period T_AIMD = (1 + μ*) · T_extent, seconds."""
    check_positive("extent", extent)
    return optimal_period_ratio(c_psi_value, kappa, c_attack) * extent


# ----------------------------------------------------------------------
# end-to-end planner
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class OptimalAttack:
    """A fully solved optimal attack configuration.

    Produced by :func:`optimal_attack`; bundles the analytic optimum with
    a realizable :class:`~repro.core.attack.PulseTrain`.
    """

    gamma_star: float          #: optimal normalized average rate (Eq. 13)
    gain_star: float           #: G_attack at the optimum
    degradation_star: float    #: Γ at the optimum
    mu_star: float             #: optimal T_space / T_extent
    period_star: float         #: optimal T_AIMD, seconds
    c_psi: float               #: the scenario constant C_ψ (Eq. 11)
    c_attack: float            #: pulse-rate ratio R_attack / R_bottle
    kappa: float               #: the attacker's risk exponent
    risk: RiskPreference       #: behavioural class of κ
    train: PulseTrain          #: a uniform train realizing the optimum


def optimal_attack(
    victims: VictimPopulation,
    *,
    rate_bps: float,
    extent: float,
    bottleneck_bps: float,
    kappa: float = 1.0,
    n_pulses: int = 100,
) -> OptimalAttack:
    """Solve the full Section-3 problem for a concrete scenario.

    Given the victim population, the pulse rate/width, and the attacker's
    risk preference, compute C_ψ (Eq. 11), γ* (Eq. 13), μ* and T_AIMD*
    (Eq. 16), and return them with a ready-to-launch pulse train.
    """
    check_positive("n_pulses", n_pulses)
    value = c_psi(
        victims, extent=extent, rate_bps=rate_bps, bottleneck_bps=bottleneck_bps
    )
    if not 0.0 < value < 1.0:
        raise ValidationError(
            f"C_psi={value:.4f} outside (0, 1): the model has no feasible "
            f"optimum for this scenario (weaken T_extent/R_attack or reduce "
            f"the victim count)"
        )
    gamma_star = optimal_gamma(value, kappa)
    c_attack = rate_bps / bottleneck_bps
    mu_star = optimal_mu(value, kappa, c_attack)
    period_star = (1.0 + mu_star) * extent
    train = PulseTrain.from_gamma(
        gamma=gamma_star,
        rate_bps=rate_bps,
        extent=extent,
        bottleneck_bps=bottleneck_bps,
        n_pulses=n_pulses,
    )
    return OptimalAttack(
        gamma_star=gamma_star,
        gain_star=attack_gain(gamma_star, value, kappa),
        degradation_star=1.0 - value / gamma_star,
        mu_star=mu_star,
        period_star=period_star,
        c_psi=value,
        c_attack=c_attack,
        kappa=kappa,
        risk=classify_kappa(kappa),
        train=train,
    )
