"""Attack-outcome classification: normal-, under-, and over-gain (§4.1.1).

The paper sorts experimental outcomes by the discrepancy between the
measured attack gain and the analytical prediction:

* **normal-gain** -- simulation and analysis agree closely (the pulses
  reliably drive flows into fast recovery, as the model assumes);
* **under-gain** -- the analysis *over-estimates* the measured gain
  (the pulse rate is too low to hit every flow);
* **over-gain** -- the analysis *under-estimates* the measured gain
  (pulses force timeouts rather than fast recovery, degrading
  throughput beyond the FR-only model).

The classifier compares curves point-wise over the overlapping γ range
and aggregates the signed relative discrepancy.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Sequence

import numpy as np

from repro.util.errors import ValidationError
from repro.util.validate import check_positive

__all__ = ["GainRegime", "GainComparison", "classify_gain"]


class GainRegime(enum.Enum):
    """The three §4.1.1 outcome classes."""

    NORMAL = "normal-gain"
    UNDER = "under-gain"
    OVER = "over-gain"


@dataclasses.dataclass(frozen=True)
class GainComparison:
    """Result of comparing measured and analytical gain curves.

    Attributes:
        regime: the §4.1.1 class.
        mean_discrepancy: mean of (measured − analytical), gain units.
        mean_abs_discrepancy: mean |measured − analytical|.
        n_points: samples compared.
    """

    regime: GainRegime
    mean_discrepancy: float
    mean_abs_discrepancy: float
    n_points: int


def classify_gain(
    measured: Sequence[float],
    analytical: Sequence[float],
    *,
    tolerance: float = 0.1,
) -> GainComparison:
    """Classify an experiment by gain discrepancy.

    Args:
        measured: experimental attack gains (per γ sample).
        analytical: model-predicted gains at the same γ samples.
        tolerance: absolute mean-discrepancy band treated as agreement
            (gain is dimensionless in [0, 1], so 0.1 ≈ "within a tenth
            of full scale", matching the visual closeness in Figs. 6-9).

    Returns:
        A :class:`GainComparison`; ``UNDER`` when the analysis
        systematically over-estimates, ``OVER`` when it under-estimates.
    """
    check_positive("tolerance", tolerance)
    measured_arr = np.asarray(measured, dtype=float)
    analytical_arr = np.asarray(analytical, dtype=float)
    if measured_arr.shape != analytical_arr.shape:
        raise ValidationError(
            f"shape mismatch: measured {measured_arr.shape} vs analytical "
            f"{analytical_arr.shape}"
        )
    if measured_arr.size == 0:
        raise ValidationError("need at least one sample to classify")

    signed = measured_arr - analytical_arr
    mean_signed = float(np.mean(signed))
    mean_abs = float(np.mean(np.abs(signed)))

    if abs(mean_signed) <= tolerance:
        regime = GainRegime.NORMAL
    elif mean_signed < 0:
        regime = GainRegime.UNDER   # analysis over-estimated the damage
    else:
        regime = GainRegime.OVER    # analysis under-estimated the damage
    return GainComparison(
        regime=regime,
        mean_discrepancy=mean_signed,
        mean_abs_discrepancy=mean_abs,
        n_points=int(measured_arr.size),
    )
