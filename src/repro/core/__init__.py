"""The paper's primary contribution: the PDoS attack model and optimizer.

Modules:

* :mod:`repro.core.attack` -- the pulse-train model
  ``A(T_extent, R_attack, T_space, N)`` and its derived quantities
  (γ, μ, duty cycle, C_attack);
* :mod:`repro.core.throughput` -- Eq. (1) converged window, Prop. 1
  exact throughput, Lemmas 1-2, Prop. 2 degradation Γ and C_ψ;
* :mod:`repro.core.gain` -- the attack gain G = Γ(1−γ)^κ and risk
  preferences (Fig. 4);
* :mod:`repro.core.optimizer` -- Prop. 3 closed-form γ*, Prop. 4 μ*,
  Corollaries 1-4, and the end-to-end :func:`optimal_attack` planner;
* :mod:`repro.core.classify` -- normal/under/over-gain outcome
  classification (§4.1.1);
* :mod:`repro.core.shrew` -- shrew-point prediction (§4.1.3, Fig. 10);
* :mod:`repro.core.timeout_model` -- the timeout-aware throughput
  extension (the paper's Section-5 future work, implemented).
"""

from repro.core.attack import PulseTrain
from repro.core.classify import GainComparison, GainRegime, classify_gain
from repro.core.distributed import (
    DistributedAttack,
    split_interleaved,
    split_synchronized,
)
from repro.core.gain import (
    RiskPreference,
    attack_gain,
    attack_gain_curve,
    classify_kappa,
    risk_curve,
    risk_weight,
)
from repro.core.optimizer import (
    OptimalAttack,
    gain_derivative_sign,
    optimal_attack,
    optimal_gamma,
    optimal_gamma_numerical,
    optimal_mu,
    optimal_period,
    optimal_period_ratio,
)
from repro.core.shrew import (
    ShrewPoint,
    flag_shrew_points,
    is_shrew_point,
    nearest_shrew_harmonic,
    shrew_periods,
)
from repro.core.timeout_attack import TimeoutAttackPlan, plan_timeout_attack
from repro.core.timeout_model import (
    FlowPrediction,
    FlowRegime,
    extended_attack_throughput,
    extended_degradation,
    extended_gain,
    flow_regime,
    per_flow_predictions,
)
from repro.core.throughput import (
    VictimPopulation,
    aggregate_attack_throughput,
    c_psi,
    c_victim,
    converged_window,
    degradation,
    normal_throughput,
    per_flow_attack_throughput_exact,
    pulses_to_converge,
    window_after_pulses,
)

__all__ = [
    "DistributedAttack",
    "GainComparison",
    "GainRegime",
    "OptimalAttack",
    "PulseTrain",
    "RiskPreference",
    "FlowPrediction",
    "FlowRegime",
    "ShrewPoint",
    "TimeoutAttackPlan",
    "VictimPopulation",
    "aggregate_attack_throughput",
    "attack_gain",
    "attack_gain_curve",
    "c_psi",
    "c_victim",
    "classify_gain",
    "classify_kappa",
    "converged_window",
    "degradation",
    "extended_attack_throughput",
    "extended_degradation",
    "extended_gain",
    "flag_shrew_points",
    "flow_regime",
    "gain_derivative_sign",
    "is_shrew_point",
    "nearest_shrew_harmonic",
    "normal_throughput",
    "optimal_attack",
    "optimal_gamma",
    "optimal_gamma_numerical",
    "optimal_mu",
    "optimal_period",
    "optimal_period_ratio",
    "per_flow_attack_throughput_exact",
    "per_flow_predictions",
    "plan_timeout_attack",
    "pulses_to_converge",
    "risk_curve",
    "risk_weight",
    "shrew_periods",
    "split_interleaved",
    "split_synchronized",
    "window_after_pulses",
]
