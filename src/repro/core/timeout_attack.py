"""Timeout-based PDoS attack planning (the paper's *other* attack class).

The paper analyses the AIMD-based attack and cites its companion (NDSS
2005, reference [13]) for the *timeout-based* class: pulses timed to the
victims' retransmission timeout so that every retransmission collides
with a pulse (the shrew mechanism of reference [10]).  This module plans
such an attack from first principles:

* **Period** -- a minRTO harmonic ``minRTO / n`` (Section 4.1.3), so the
  backed-off retransmission timer (1x, 2x, 4x, ... minRTO) always lands
  inside a pulse.
* **Extent** -- at least the victims' largest RTT: the pulse must outlive
  one round trip so that no victim can sneak a full window through
  between the pulse's head reaching the queue and its own packets
  arriving (Kuzmanovic & Knightly's design rule).
* **Rate** -- enough to fill the bottleneck buffer within the pulse and
  hold it full: the queue gains ``(R_attack − R_bottle)`` bits/s, so
  filling ``B`` bytes within the extent needs
  ``R_attack ≥ R_bottle + 8·B / T_extent`` (a head-room factor covers
  RED's early-drop region starting below the physical limit).

The planner reports the resulting γ so the attacker can check the plan
against the same detection-risk budget as the AIMD-based optimizer.
"""

from __future__ import annotations

import dataclasses

from repro.core.attack import PulseTrain
from repro.core.shrew import is_shrew_point
from repro.util.errors import ValidationError
from repro.util.validate import check_positive

__all__ = ["TimeoutAttackPlan", "plan_timeout_attack"]


@dataclasses.dataclass(frozen=True)
class TimeoutAttackPlan:
    """A fully determined timeout-based attack.

    Attributes:
        period: the pulse period ``minRTO / harmonic``, seconds.
        extent: the pulse width, seconds.
        rate_bps: the pulse rate.
        harmonic: n in ``minRTO / n``.
        min_rto: the victims' minimum RTO the plan targets.
        buffer_bytes: the bottleneck buffer the rate was sized against.
        bottleneck_bps: the bottleneck capacity.
    """

    period: float
    extent: float
    rate_bps: float
    harmonic: int
    min_rto: float
    buffer_bytes: float
    bottleneck_bps: float

    @property
    def gamma(self) -> float:
        """Normalized average attack rate (Eq. 4) -- the exposure metric."""
        return self.rate_bps * self.extent / (self.bottleneck_bps * self.period)

    def train(self, n_pulses: int) -> PulseTrain:
        """The launchable pulse train."""
        return PulseTrain.uniform(
            self.extent, self.rate_bps, self.period - self.extent, n_pulses,
        )

    def time_to_fill_buffer(self) -> float:
        """Seconds for a pulse to fill the buffer from empty."""
        surplus = self.rate_bps - self.bottleneck_bps
        return 8.0 * self.buffer_bytes / surplus

    def outage_fraction(self) -> float:
        """Fraction of each pulse during which the buffer is full.

        The loss a victim's retransmission faces is roughly this
        fraction (plus RED early drops); near zero means the plan's rate
        or extent is too small for a reliable lock-in.
        """
        return max(0.0, 1.0 - self.time_to_fill_buffer() / self.extent)

    def render(self) -> str:
        return "\n".join([
            "Timeout-based PDoS plan (shrew mechanism)",
            f"period  T_AIMD  = {self.period * 1e3:7.1f} ms "
            f"(minRTO {self.min_rto * 1e3:.0f} ms / harmonic {self.harmonic})",
            f"extent  T_extent= {self.extent * 1e3:7.1f} ms",
            f"rate    R_attack= {self.rate_bps / 1e6:7.2f} Mb/s",
            f"gamma           = {self.gamma:7.3f}",
            f"buffer fill time= {self.time_to_fill_buffer() * 1e3:7.1f} ms "
            f"(outage {self.outage_fraction():.0%} of each pulse)",
        ])


def plan_timeout_attack(
    *,
    min_rto: float,
    bottleneck_bps: float,
    buffer_bytes: float,
    rtt_max: float,
    harmonic: int = 1,
    headroom: float = 1.5,
) -> TimeoutAttackPlan:
    """Plan a timeout-based attack against a known bottleneck.

    Args:
        min_rto: the victims' minimum retransmission timeout.
        bottleneck_bps: bottleneck capacity.
        buffer_bytes: bottleneck buffer size.
        rtt_max: the largest victim RTT (sets the pulse width).
        harmonic: which ``minRTO / n`` period to use; higher harmonics
            raise γ (more exposure) but survive RTO estimation noise
            better.
        headroom: multiplies the minimum buffer-filling rate so the
            queue saturates well before the pulse ends.

    Raises:
        ValidationError: when no valid pulse fits -- e.g. the victims'
            RTT exceeds the harmonic period, so a pulse long enough to
            cover one RTT could never stay silent between pulses.
    """
    check_positive("min_rto", min_rto)
    check_positive("bottleneck_bps", bottleneck_bps)
    check_positive("buffer_bytes", buffer_bytes)
    check_positive("rtt_max", rtt_max)
    check_positive("headroom", headroom)
    if harmonic < 1:
        raise ValidationError(f"harmonic must be >= 1, got {harmonic}")

    period = min_rto / harmonic
    extent = rtt_max
    if extent >= period:
        raise ValidationError(
            f"pulse width (rtt_max={rtt_max}s) must be below the period "
            f"{period}s; use a lower harmonic or accept partial coverage"
        )
    fill_rate = bottleneck_bps + 8.0 * buffer_bytes / extent
    rate = headroom * fill_rate
    plan = TimeoutAttackPlan(
        period=period,
        extent=extent,
        rate_bps=rate,
        harmonic=harmonic,
        min_rto=min_rto,
        buffer_bytes=buffer_bytes,
        bottleneck_bps=bottleneck_bps,
    )
    assert is_shrew_point(plan.period, min_rto)  # by construction
    return plan
