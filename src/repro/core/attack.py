"""The PDoS attack model ``A(T_extent(n), R_attack(n), T_space(n), N)``.

Section 2.1 of the paper models a pulsing DoS attack as a train of ``N``
pulses: pulse ``n`` has width ``T_extent(n)`` seconds and sending rate
``R_attack(n)`` bits/s, and is separated from the next pulse by
``T_space(n)`` seconds.  ``T_space = 0`` for every pulse degenerates to a
conventional flooding attack.

The analysis (and this module's derived quantities) assumes a *uniform*
train: all pulses identical and the spacing fixed, with attack period
``T_AIMD = T_extent + T_space``.  Key derived quantities:

* duty cycle ``T_extent / T_AIMD`` and its reciprocal-minus-one
  ``mu = T_space / T_extent`` (the paper's μ, Section 3.1);
* normalized average attack rate
  ``gamma = R_attack * T_extent / (R_bottle * T_AIMD)`` (Eq. 4);
* pulse-rate ratio ``C_attack = R_attack / R_bottle`` (Section 3.1), with
  ``gamma = C_attack / (1 + mu)`` (Eq. 7).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.util.errors import ValidationError
from repro.util.validate import check_non_negative, check_positive

__all__ = ["PulseTrain"]


class PulseTrain:
    """A PDoS pulse train ``A(T_extent(n), R_attack(n), T_space(n), N)``.

    Construct directly with per-pulse sequences for the general model, or
    with :meth:`uniform` for the identical-pulse trains the analysis
    assumes.  All uniform-only derived properties raise
    :class:`~repro.util.errors.ValidationError` on non-uniform trains.
    """

    def __init__(
        self,
        extents: Sequence[float],
        rates_bps: Sequence[float],
        spaces: Sequence[float],
    ) -> None:
        if len(extents) == 0:
            raise ValidationError("a pulse train needs at least one pulse")
        if len(rates_bps) != len(extents):
            raise ValidationError(
                f"got {len(extents)} extents but {len(rates_bps)} rates"
            )
        if len(spaces) != len(extents) - 1:
            raise ValidationError(
                f"need N-1 = {len(extents) - 1} spacings, got {len(spaces)}"
            )
        for i, extent in enumerate(extents):
            check_positive(f"extents[{i}]", extent)
        for i, rate in enumerate(rates_bps):
            check_positive(f"rates_bps[{i}]", rate)
        for i, space in enumerate(spaces):
            check_non_negative(f"spaces[{i}]", space)
        self.extents: Tuple[float, ...] = tuple(float(x) for x in extents)
        self.rates_bps: Tuple[float, ...] = tuple(float(x) for x in rates_bps)
        self.spaces: Tuple[float, ...] = tuple(float(x) for x in spaces)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def uniform(cls, extent: float, rate_bps: float, space: float,
                n_pulses: int) -> "PulseTrain":
        """Identical pulses: the train the paper's analysis assumes."""
        if n_pulses < 1:
            raise ValidationError(f"n_pulses must be >= 1, got {n_pulses}")
        return cls(
            [extent] * n_pulses,
            [rate_bps] * n_pulses,
            [space] * max(n_pulses - 1, 0),
        )

    @classmethod
    def flooding(cls, rate_bps: float, duration: float) -> "PulseTrain":
        """A conventional flooding attack: one continuous 'pulse'."""
        return cls.uniform(duration, rate_bps, 0.0, 1)

    @classmethod
    def period_from_gamma(cls, *, gamma: float, rate_bps: float, extent: float,
                          bottleneck_bps: float) -> float:
        """The realized T_AIMD of the Eq.-(4) inversion, seconds.

        ``T_AIMD = R_attack T_extent / (γ R_bottle)``, clamped below at
        ``T_extent`` (a pulse cannot overlap its successor; the clamp
        corresponds to ``T_space = 0``, i.e. γ = C_attack).  This is the
        single source of truth for the period of a :meth:`from_gamma`
        train -- callers sizing ``n_pulses`` to cover a measurement
        window must use it rather than re-deriving Eq. (4) inline.
        """
        check_positive("gamma", gamma)
        check_positive("rate_bps", rate_bps)
        check_positive("extent", extent)
        check_positive("bottleneck_bps", bottleneck_bps)
        return max(rate_bps * extent / (gamma * bottleneck_bps), extent)

    @classmethod
    def from_gamma(cls, *, gamma: float, rate_bps: float, extent: float,
                   bottleneck_bps: float, n_pulses: int) -> "PulseTrain":
        """Build the uniform train achieving a target normalized rate γ.

        Inverts Eq. (4): ``T_AIMD = R_attack T_extent / (γ R_bottle)``,
        so ``T_space = T_AIMD - T_extent`` -- which must be non-negative,
        i.e. γ cannot exceed ``C_attack = R_attack / R_bottle``.
        """
        check_positive("gamma", gamma)
        c_attack = rate_bps / check_positive("bottleneck_bps", bottleneck_bps)
        if gamma > c_attack + 1e-12:
            raise ValidationError(
                f"gamma={gamma} unreachable: exceeds C_attack="
                f"R_attack/R_bottle={c_attack:.4f} (need a lower duty cycle "
                f"than a continuous pulse)"
            )
        period = cls.period_from_gamma(
            gamma=gamma, rate_bps=rate_bps, extent=extent,
            bottleneck_bps=bottleneck_bps,
        )
        return cls.uniform(extent, rate_bps, period - extent, n_pulses)

    @classmethod
    def from_mu(cls, *, mu: float, rate_bps: float, extent: float,
                n_pulses: int) -> "PulseTrain":
        """Build the uniform train from the paper's μ = T_space / T_extent."""
        check_non_negative("mu", mu)
        return cls.uniform(extent, rate_bps, mu * extent, n_pulses)

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def n_pulses(self) -> int:
        """N, the total number of pulses."""
        return len(self.extents)

    @property
    def is_uniform(self) -> bool:
        """True when every pulse (and every spacing) is identical."""
        return (
            len(set(self.extents)) == 1
            and len(set(self.rates_bps)) == 1
            and len(set(self.spaces)) <= 1
        )

    @property
    def is_flooding(self) -> bool:
        """True when all spacings are zero (a conventional flooding attack)."""
        return all(space == 0.0 for space in self.spaces)

    def _require_uniform(self, what: str) -> None:
        if not self.is_uniform:
            raise ValidationError(f"{what} is only defined for uniform trains")

    # ------------------------------------------------------------------
    # uniform-train analytics (Section 2.1 / 3.1)
    # ------------------------------------------------------------------
    @property
    def extent(self) -> float:
        """T_extent of a uniform train, seconds."""
        self._require_uniform("extent")
        return self.extents[0]

    @property
    def rate_bps(self) -> float:
        """R_attack of a uniform train, bits per second."""
        self._require_uniform("rate_bps")
        return self.rates_bps[0]

    @property
    def space(self) -> float:
        """T_space of a uniform train, seconds (0.0 for a single pulse)."""
        self._require_uniform("space")
        return self.spaces[0] if self.spaces else 0.0

    @property
    def period(self) -> float:
        """The attack period T_AIMD = T_extent + T_space, seconds."""
        self._require_uniform("period")
        return self.extent + self.space

    @property
    def duty_cycle(self) -> float:
        """T_extent / T_AIMD ∈ (0, 1]."""
        return self.extent / self.period

    @property
    def mu(self) -> float:
        """μ = T_space / T_extent, the reciprocal duty cycle minus one."""
        return self.space / self.extent

    def mean_rate_bps(self) -> float:
        """Long-run average attack rate R_attack · duty-cycle, bits/s."""
        self._require_uniform("mean_rate_bps")
        return self.rate_bps * self.duty_cycle

    def gamma(self, bottleneck_bps: float) -> float:
        """Normalized average attack rate γ (Eq. 4)."""
        check_positive("bottleneck_bps", bottleneck_bps)
        return self.mean_rate_bps() / bottleneck_bps

    def c_attack(self, bottleneck_bps: float) -> float:
        """Pulse-rate ratio C_attack = R_attack / R_bottle (Section 3.1)."""
        check_positive("bottleneck_bps", bottleneck_bps)
        return self.rate_bps / bottleneck_bps

    # ------------------------------------------------------------------
    # timeline
    # ------------------------------------------------------------------
    def pulse_intervals(self, start: float = 0.0) -> List[Tuple[float, float]]:
        """``[(begin, end)]`` of every pulse, offset by *start* seconds."""
        intervals = []
        t = start
        for index, extent in enumerate(self.extents):
            intervals.append((t, t + extent))
            t += extent
            if index < len(self.spaces):
                t += self.spaces[index]
        return intervals

    def total_duration(self) -> float:
        """Time from the first pulse's start to the last pulse's end."""
        return sum(self.extents) + sum(self.spaces)

    def total_attack_bits(self) -> float:
        """Bits transmitted over the whole train."""
        return float(
            np.dot(np.asarray(self.extents), np.asarray(self.rates_bps))
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_uniform:
            return (
                f"<PulseTrain N={self.n_pulses} T_extent={self.extent * 1e3:.0f}ms "
                f"T_space={self.space * 1e3:.0f}ms R={self.rate_bps / 1e6:.0f}Mbps>"
            )
        return f"<PulseTrain N={self.n_pulses} (non-uniform)>"
