"""The PDoS / shrew-attack relationship (Section 4.1.3, Fig. 10).

An AIMD-based attack whose period lands near ``minRTO / n`` (for integer
``n``) degenerates into the timeout-based *shrew* attack of Kuzmanovic &
Knightly: each pulse arrives just as the victims' retransmission timers
expire, locking them in the timeout state.  At those periods the actual
damage greatly exceeds the FR-only analytical prediction -- the Fig. 10
outliers.

This module predicts and identifies such *shrew points* so experiment
harnesses can flag them, exactly as the paper circles them in Fig. 10.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

from repro.util.errors import ValidationError
from repro.util.validate import check_positive

__all__ = ["shrew_periods", "nearest_shrew_harmonic", "is_shrew_point",
           "flag_shrew_points", "ShrewPoint"]


def shrew_periods(min_rto: float, max_harmonic: int = 5) -> List[float]:
    """The attack periods ``minRTO / n`` for n = 1 .. max_harmonic, seconds.

    The paper's Fig. 10 marks shrew points at T_AIMD = 1000 ms, 500 ms and
    1000/3 ms for ns-2's minRTO of 1 s (harmonics n = 1, 2, 3).
    """
    check_positive("min_rto", min_rto)
    if max_harmonic < 1:
        raise ValidationError(f"max_harmonic must be >= 1, got {max_harmonic}")
    return [min_rto / n for n in range(1, max_harmonic + 1)]


def nearest_shrew_harmonic(period: float, min_rto: float,
                           max_harmonic: int = 5) -> int:
    """The harmonic n whose ``minRTO / n`` is closest to *period*."""
    check_positive("period", period)
    candidates = shrew_periods(min_rto, max_harmonic)
    return min(
        range(len(candidates)), key=lambda i: abs(candidates[i] - period)
    ) + 1


def is_shrew_point(period: float, min_rto: float, *,
                   rtol: float = 0.08, max_harmonic: int = 5) -> bool:
    """True when *period* is within *rtol* of some ``minRTO / n``.

    The tolerance reflects that the timeout lock-in needs only an
    approximate match (RTO estimation jitters around minRTO).
    """
    check_positive("period", period)
    check_positive("rtol", rtol)
    for candidate in shrew_periods(min_rto, max_harmonic):
        if abs(period - candidate) <= rtol * candidate:
            return True
    return False


@dataclasses.dataclass(frozen=True)
class ShrewPoint:
    """A sweep sample flagged as a shrew point.

    Attributes:
        index: position in the swept sequence.
        period: the attack period T_AIMD at that sample, seconds.
        harmonic: the matched n in ``minRTO / n``.
    """

    index: int
    period: float
    harmonic: int


def flag_shrew_points(periods: Sequence[float], min_rto: float, *,
                      rtol: float = 0.08,
                      max_harmonic: int = 5) -> List[ShrewPoint]:
    """Identify every shrew point in a swept list of attack periods."""
    flagged = []
    for index, period in enumerate(periods):
        if is_shrew_point(period, min_rto, rtol=rtol, max_harmonic=max_harmonic):
            flagged.append(ShrewPoint(
                index=index,
                period=period,
                harmonic=nearest_shrew_harmonic(period, min_rto, max_harmonic),
            ))
    return flagged
