"""Attack-detection substrates the paper argues PDoS evades.

Three detector families appear in the paper's threat analysis:

* volume detectors tuned for flooding attacks (reference [19] and the
  SYN-flood detectors of [9]) -- :mod:`repro.detection.flood`;
* the dynamic-time-warping pulse isolator of Sun, Lui & Yau (reference
  [8]) -- :mod:`repro.detection.dtw`; the paper notes it fails when the
  pulse is shorter than the sampling period;
* feature-based packet filters (references [3, 11, 17]) --
  :mod:`repro.detection.feature`.

They let the experiment harness quantify the paper's evasion claims:
an optimized PDoS attack slips under the flood threshold that instantly
flags the equivalent flooding attack.
"""

from repro.detection.dtw import DTWPulseDetector, dtw_distance, square_wave_template
from repro.detection.feature import ConformanceDetector, FlowProfile
from repro.detection.flood import FloodDetector, FloodVerdict

__all__ = [
    "ConformanceDetector",
    "DTWPulseDetector",
    "FloodDetector",
    "FloodVerdict",
    "FlowProfile",
    "dtw_distance",
    "square_wave_template",
]
