"""Volume-threshold flood detection.

Models the detection the paper says flooding attacks trip and PDoS
attacks evade: a sliding-window average of the arrival rate compared to
a fraction of the link capacity.  A flooding attack (γ ≥ 1) pushes the
window average past any reasonable threshold; a PDoS attack tuned to
γ* < θ keeps the average below it even though each individual pulse far
exceeds the line rate.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

import numpy as np

from repro.util.validate import check_positive

__all__ = ["FloodDetector", "FloodVerdict"]


@dataclasses.dataclass(frozen=True)
class FloodVerdict:
    """Outcome of a flood-detection pass.

    Attributes:
        detected: True when any window average crossed the threshold.
        max_window_rate: the worst (largest) windowed rate seen, bits/s.
        threshold_rate: the alarm threshold, bits/s.
        first_alarm_time: time of the first crossing, or None.
        alarm_fraction: fraction of windows in alarm.
    """

    detected: bool
    max_window_rate: float
    threshold_rate: float
    first_alarm_time: Optional[float]
    alarm_fraction: float


class FloodDetector:
    """Sliding-window average-rate detector.

    Args:
        capacity_bps: the protected link's capacity.
        threshold_fraction: alarm when the windowed average *offered*
            rate exceeds this fraction of capacity (θ).  Because healthy
            TCP saturates the link (offered ≈ capacity), flood detectors
            are tuned above 1.0 -- they alarm on sustained overload, the
            signature only a flood produces.  Values below 1 are allowed
            for links whose normal load is known to be lower.
        window: averaging window, seconds.
    """

    def __init__(self, capacity_bps: float, *, threshold_fraction: float = 1.2,
                 window: float = 5.0) -> None:
        self.capacity_bps = check_positive("capacity_bps", capacity_bps)
        self.threshold_fraction = check_positive(
            "threshold_fraction", threshold_fraction
        )
        self.window = check_positive("window", window)

    def inspect(self, bytes_per_bin: np.ndarray, bin_width: float) -> FloodVerdict:
        """Run detection over a binned byte-count series.

        The series is the offered load at the protected link (e.g. from
        :class:`~repro.sim.trace.RateMonitor`).
        """
        check_positive("bin_width", bin_width)
        series = np.asarray(bytes_per_bin, dtype=float)
        bins_per_window = max(1, int(round(self.window / bin_width)))
        if series.size == 0:
            return FloodVerdict(False, 0.0, self._threshold(), None, 0.0)

        # Sliding (trailing) window sums via a cumulative sum.
        cumulative = np.concatenate(([0.0], np.cumsum(series)))
        n_windows = series.size - bins_per_window + 1
        if n_windows <= 0:
            window_bytes = np.array([series.sum()])
            n_windows = 1
            effective_window = series.size * bin_width
        else:
            window_bytes = cumulative[bins_per_window:] - cumulative[:-bins_per_window]
            effective_window = bins_per_window * bin_width
        window_rates = window_bytes * 8.0 / effective_window

        threshold = self._threshold()
        alarms = window_rates > threshold
        first_alarm_time = None
        if alarms.any():
            first_index = int(np.argmax(alarms))
            # The window ending at bin (first_index + bins_per_window - 1).
            first_alarm_time = (first_index + bins_per_window) * bin_width
        return FloodVerdict(
            detected=bool(alarms.any()),
            max_window_rate=float(window_rates.max()),
            threshold_rate=threshold,
            first_alarm_time=first_alarm_time,
            alarm_fraction=float(alarms.mean()),
        )

    def _threshold(self) -> float:
        return self.threshold_fraction * self.capacity_bps
