"""Feature-based flow conformance filtering.

Stands in for the feature-based defenses the paper cites ([3] hop-count
filtering, [11] statistical header profiling, [17] route-based
filtering): mechanisms that flag traffic whose *per-packet features*
deviate from legitimate flows.  The paper's point is that a PDoS
attacker sends few enough packets to craft each one with fully
consistent features, so such filters score the attack flow as clean.

This module profiles flows from a link trace and scores each on two
behavioural features that survive header spoofing:

* **one-wayness** -- legitimate TCP has a reverse ACK stream; a pure
  datagram flood does not;
* **burst ratio** -- peak-to-mean rate of the flow's arrivals.

A flow is flagged when both features exceed their thresholds *and* the
flow's average rate is non-negligible -- modelling a conservative filter
tuned against false positives.  A PDoS attacker evades it by keeping the
average rate under the rate floor (the same γ knob as Section 3).
"""

from __future__ import annotations

import dataclasses
from collections import defaultdict
from typing import Dict, List, Tuple

import numpy as np

from repro.sim.packet import Packet, PacketKind
from repro.util.validate import check_positive

__all__ = ["FlowProfile", "ConformanceDetector"]


@dataclasses.dataclass
class FlowProfile:
    """Accumulated per-flow observations.

    Attributes:
        forward_packets / forward_bytes: data-direction arrivals.
        reverse_packets: ACK-direction arrivals.
        first_time / last_time: observation span.
        arrival_times: retained for burst-ratio computation.
    """

    forward_packets: int = 0
    forward_bytes: float = 0.0
    reverse_packets: int = 0
    first_time: float = float("inf")
    last_time: float = 0.0
    arrival_times: List[float] = dataclasses.field(default_factory=list)

    def mean_rate_bps(self) -> float:
        """Average forward rate over the flow's observed lifetime."""
        span = self.last_time - self.first_time
        if span <= 0:
            return 0.0
        return self.forward_bytes * 8.0 / span

    def burst_ratio(self, bin_width: float = 0.1) -> float:
        """Peak-bin rate divided by mean rate (1.0 for perfectly smooth)."""
        if len(self.arrival_times) < 2:
            return 1.0
        times = np.asarray(self.arrival_times)
        span = times[-1] - times[0]
        if span <= 0:
            return 1.0
        bins = max(1, int(np.ceil(span / bin_width)))
        counts, _ = np.histogram(times, bins=bins)
        mean = counts.mean()
        if mean == 0:
            return 1.0
        return float(counts.max() / mean)

    def one_way(self) -> bool:
        """True when the flow shows no reverse (ACK) traffic at all."""
        return self.reverse_packets == 0 and self.forward_packets > 0


class ConformanceDetector:
    """Flags flows that look like one-way bursty floods.

    Attach :meth:`observe_forward` to the protected (data-direction) link
    and :meth:`observe_reverse` to the return link, then call
    :meth:`flagged_flows`.
    """

    def __init__(self, *, min_rate_bps: float = 1_000_000.0,
                 min_burst_ratio: float = 3.0) -> None:
        self.min_rate_bps = check_positive("min_rate_bps", min_rate_bps)
        self.min_burst_ratio = check_positive(
            "min_burst_ratio", min_burst_ratio
        )
        self.profiles: Dict[int, FlowProfile] = defaultdict(FlowProfile)

    # ------------------------------------------------------------------
    def observe_forward(self, packet: Packet, now: float, accepted: bool) -> None:
        """Link-monitor callback for the data direction."""
        profile = self.profiles[packet.flow_id]
        profile.forward_packets += 1
        profile.forward_bytes += packet.size_bytes
        profile.first_time = min(profile.first_time, now)
        profile.last_time = max(profile.last_time, now)
        profile.arrival_times.append(now)

    def observe_reverse(self, packet: Packet, now: float, accepted: bool) -> None:
        """Link-monitor callback for the ACK direction."""
        if packet.kind is PacketKind.ACK:
            self.profiles[packet.flow_id].reverse_packets += 1

    # ------------------------------------------------------------------
    def flagged_flows(self) -> List[Tuple[int, FlowProfile]]:
        """One-way flows whose average rate exceeds the floor, worst first.

        Burstiness is *not* required: a smooth flood is just as one-way.
        The rate floor is what a stealthy attacker exploits -- a
        sufficiently risk-averse PDoS tuning pushes the average rate
        under it (see the detection-evasion experiment).
        """
        flagged = [
            (flow_id, profile)
            for flow_id, profile in self.profiles.items()
            if profile.one_way()
            and profile.mean_rate_bps() >= self.min_rate_bps
        ]
        flagged.sort(key=lambda item: item[1].mean_rate_bps(), reverse=True)
        return flagged

    def bursty_flows(self) -> List[Tuple[int, FlowProfile]]:
        """Flows whose burst ratio exceeds the threshold (any direction).

        A secondary signature: pulsing attacks are extremely bursty even
        when their average rate is low.  Reported separately because
        legitimate short TCP flows are bursty too, so operators treat
        this as corroboration, not as an alarm by itself.
        """
        bursty = [
            (flow_id, profile)
            for flow_id, profile in self.profiles.items()
            if profile.burst_ratio() >= self.min_burst_ratio
        ]
        bursty.sort(key=lambda item: item[1].burst_ratio(), reverse=True)
        return bursty

    def is_flagged(self, flow_id: int) -> bool:
        """Whether a specific flow is among the flagged set."""
        return any(fid == flow_id for fid, _ in self.flagged_flows())
