"""Dynamic-time-warping pulse detection (Sun, Lui & Yau, ICNP 2004 style).

The defense of the paper's reference [8]: sample the incoming traffic,
and measure its dynamic-time-warping distance to a rectangular-pulse
template; a small distance means the traffic contains the on/off attack
signature.  The paper points out the scheme's blind spot -- a pulse
shorter than the sampling period averages away -- which
:meth:`DTWPulseDetector.detect` reproduces (see the tests).
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from repro.analysis.paa import znormalize
from repro.util.errors import ValidationError
from repro.util.validate import check_fraction, check_positive

__all__ = ["dtw_distance", "square_wave_template", "DTWPulseDetector",
           "DTWVerdict"]


def dtw_distance(a: np.ndarray, b: np.ndarray,
                 window: Optional[int] = None) -> float:
    """Classic dynamic-time-warping distance between two 1-D series.

    Args:
        a, b: the two series (need not be the same length).
        window: optional Sakoe-Chiba band half-width restricting the
            alignment path (speeds up long series and regularizes the
            match); ``None`` means unconstrained.

    Returns:
        The accumulated absolute-difference cost along the optimal
        warping path, normalized by the path-free scale ``len(a)+len(b)``
        so distances are comparable across lengths.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    n, m = a.size, b.size
    if n == 0 or m == 0:
        raise ValidationError("DTW requires non-empty series")
    if window is not None and window < 1:
        raise ValidationError(f"window must be >= 1, got {window}")

    band = max(window, abs(n - m)) if window is not None else max(n, m)
    infinity = np.inf
    previous = np.full(m + 1, infinity)
    previous[0] = 0.0
    for i in range(1, n + 1):
        current = np.full(m + 1, infinity)
        j_lo = max(1, i - band)
        j_hi = min(m, i + band)
        ai = a[i - 1]
        for j in range(j_lo, j_hi + 1):
            cost = abs(ai - b[j - 1])
            current[j] = cost + min(
                previous[j],        # insertion
                current[j - 1],     # deletion
                previous[j - 1],    # match
            )
        previous = current
    return float(previous[m] / (n + m))


def square_wave_template(n_samples: int, period_samples: int,
                         duty_cycle: float) -> np.ndarray:
    """A unit-amplitude rectangular pulse train (the attack signature)."""
    if n_samples < 1:
        raise ValidationError(f"n_samples must be >= 1, got {n_samples}")
    if period_samples < 1:
        raise ValidationError(
            f"period_samples must be >= 1, got {period_samples}"
        )
    check_fraction("duty_cycle", duty_cycle)
    phase = np.arange(n_samples) % period_samples
    high = max(1, int(round(duty_cycle * period_samples)))
    return (phase < high).astype(float)


@dataclasses.dataclass(frozen=True)
class DTWVerdict:
    """Outcome of a DTW detection pass.

    Attributes:
        detected: True when the best template distance fell below the
            detector's threshold.
        best_distance: smallest normalized DTW distance over the swept
            template periods.
        best_period: the template period (seconds) achieving it.
        threshold: the decision threshold used.
    """

    detected: bool
    best_distance: float
    best_period: Optional[float]
    threshold: float


class DTWPulseDetector:
    """Detects rectangular attack pulses by DTW template matching.

    Args:
        sample_period: the detector's traffic sampling period, seconds.
            This is the operational parameter the paper attacks: pulses
            with ``T_extent < sample_period`` blur into the average and
            become invisible.
        threshold: normalized-distance decision threshold; series whose
            best match is below it are declared under attack.
        min_period / max_period: the template-period sweep range, seconds;
            every integer sample count in range is tried.
        band: Sakoe-Chiba half-width (samples) limiting DTW warping.
    """

    def __init__(self, sample_period: float, *, threshold: float = 0.22,
                 min_period: float = 0.2, max_period: float = 4.0,
                 band: int = 8) -> None:
        self.sample_period = check_positive("sample_period", sample_period)
        self.threshold = check_positive("threshold", threshold)
        self.min_period = check_positive("min_period", min_period)
        self.max_period = check_positive("max_period", max_period)
        if max_period < min_period:
            raise ValidationError("max_period must be >= min_period")
        if band < 1:
            raise ValidationError(f"band must be >= 1, got {band}")
        self.band = band

    #: Template duty cycles tried per period; attack trains range from
    #: the Fig.-3 2.5%-duty spikes to near-50% optimal tunings.
    _DUTY_CYCLES = (0.1, 0.3, 0.5)

    def resample(self, bytes_per_bin: np.ndarray, bin_width: float) -> np.ndarray:
        """Aggregate a fine-binned series to the detector's sampling period.

        This models the detector's own measurement process -- and its
        blind spot: aggregation is exactly where sub-sample pulses vanish.
        """
        check_positive("bin_width", bin_width)
        factor = max(1, int(round(self.sample_period / bin_width)))
        series = np.asarray(bytes_per_bin, dtype=float)
        usable = (series.size // factor) * factor
        if usable == 0:
            raise ValidationError("series shorter than one detector sample")
        return series[:usable].reshape(-1, factor).sum(axis=1)

    def _candidate_period_samples(self, n_samples: int) -> range:
        """Integer template periods (in samples) worth trying.

        Degenerate templates are excluded up front: a period of one
        sample cannot alternate (it z-normalizes to all-zeros and
        spuriously matches anything), and a period that does not repeat
        at least three times in the window cannot establish periodicity.
        """
        lo = max(2, int(round(self.min_period / self.sample_period)))
        hi = min(
            int(round(self.max_period / self.sample_period)),
            n_samples // 3,
        )
        return range(lo, hi + 1)

    #: Minimum resampled length for a statistically meaningful match;
    #: with fewer samples the warping path can fit noise almost as well
    #: as a genuine pulse train.
    _MIN_SAMPLES = 16

    def detect(self, bytes_per_bin: np.ndarray, bin_width: float) -> DTWVerdict:
        """Run template matching over a binned byte-count series."""
        samples = znormalize(self.resample(bytes_per_bin, bin_width))
        if samples.std() == 0.0 or samples.size < self._MIN_SAMPLES:
            # Flat traffic, or too little evidence to call it either way.
            return DTWVerdict(False, float("inf"), None, self.threshold)
        best_distance, best_period = float("inf"), None
        # On short series an absolute band would let DTW warp almost
        # freely and "match" noise; cap it at a sixth of the length.
        band = min(self.band, max(1, samples.size // 6))
        for period_samples in self._candidate_period_samples(samples.size):
            for duty_cycle in self._DUTY_CYCLES:
                template = square_wave_template(
                    samples.size, period_samples, duty_cycle=duty_cycle
                )
                if template.min() == template.max():
                    continue  # non-alternating (duty rounded away)
                template = znormalize(template)
                distance = dtw_distance(samples, template, window=band)
                if distance < best_distance:
                    best_distance = distance
                    best_period = period_samples * self.sample_period
        if best_period is None:
            return DTWVerdict(False, float("inf"), None, self.threshold)
        return DTWVerdict(
            detected=best_distance < self.threshold,
            best_distance=best_distance,
            best_period=best_period,
            threshold=self.threshold,
        )
