"""Publishers: turn component counters into registry metrics.

The simulator's components already keep cumulative statistics on their
hot paths (``Link.bytes_sent``, ``QueueDiscipline.drops``,
``TCPSender.timeouts``, ...).  The functions here *snapshot* those into
the active :class:`~repro.obs.metrics.MetricsRegistry` as gauges after a
run segment -- so enabling metrics adds zero per-packet work, and
publishing twice (warm-up then measurement window) simply refreshes the
gauges with the latest cumulative values.

Everything is duck-typed against the attribute names of
:class:`~repro.sim.link.Link` and :class:`~repro.sim.tcp.TCPSender`
rather than importing them, so this module stays import-light and the
engine can depend on :mod:`repro.obs.metrics` without cycles.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional

from repro.obs.metrics import MetricsRegistry

__all__ = ["publish_links", "publish_tcp", "publish_nodes",
           "publish_network", "publish_runner"]


def publish_links(registry: MetricsRegistry,
                  links: Mapping[str, object]) -> None:
    """Publish per-link counters as ``link.<label>.*`` gauges.

    *links* maps a stable label (``"bottleneck"``) to a
    :class:`~repro.sim.link.Link`; the link's own
    ``metrics_snapshot()`` provides the values (accepted/dropped
    bytes+packets, queue occupancy, discipline accept/drop/early-drop
    counts, RED's averaged queue, CHOKe match-drops).
    """
    for label, link in links.items():
        base = f"link.{label}."
        for key, value in link.metrics_snapshot().items():
            registry.gauge(base + key).set(value)


def publish_tcp(registry: MetricsRegistry, senders: Iterable) -> None:
    """Publish aggregate TCP-sender telemetry as ``tcp.*`` gauges.

    These are exactly the recovery quantities behind the paper's Eq. 1:
    fast-retransmit entries and timeouts drive the converged window
    ``W_c``, and the cwnd spread shows how tightly the pulses hold the
    flows there.
    """
    senders = list(senders)
    totals = {
        "segments_sent": 0.0, "retransmissions": 0.0,
        "fast_retransmits": 0.0, "timeouts": 0.0,
        "acked_segments": 0.0, "goodput_bytes": 0.0,
    }
    cwnds = []
    for sender in senders:
        snap = sender.metrics_snapshot()
        for key in totals:
            totals[key] += snap[key]
        cwnds.append(snap["cwnd"])
    registry.gauge("tcp.flows").set(float(len(senders)))
    for key, value in totals.items():
        registry.gauge("tcp." + key).set(value)
    if cwnds:
        registry.gauge("tcp.cwnd_min").set(min(cwnds))
        registry.gauge("tcp.cwnd_max").set(max(cwnds))
        registry.gauge("tcp.cwnd_mean").set(sum(cwnds) / len(cwnds))


def publish_nodes(registry: MetricsRegistry, nodes: Iterable) -> None:
    """Publish node-level drop telemetry as ``node.*`` gauges.

    ``undeliverable`` drops (packets that arrived with no route or no
    agent) used to be a silent per-node counter; here they surface in
    ``repro obs report`` as an aggregate plus one per-node gauge for
    each node that actually dropped something (per-node gauges for
    thousands of clean hosts would drown the report).
    """
    total = 0.0
    for node in nodes:
        dropped = float(node.undeliverable)
        total += dropped
        if dropped:
            registry.gauge(
                f"node.{node.name}.undeliverable_packets").set(dropped)
    registry.gauge("node.undeliverable_packets").set(total)


def publish_network(registry: MetricsRegistry, *,
                    links: Mapping[str, object],
                    senders: Iterable,
                    nodes: Iterable = ()) -> None:
    """Publish one network's link, TCP, and node telemetry in one call.

    The dumbbell and test-bed networks call this from ``run()`` whenever
    a registry is active -- once per run segment, never per event.
    """
    publish_links(registry, links)
    publish_tcp(registry, senders)
    publish_nodes(registry, nodes)


def publish_runner(registry: Optional[MetricsRegistry],
                   snapshot: Mapping[str, object]) -> None:
    """Publish an :class:`~repro.runner.runner.RunnerStats` snapshot.

    Accepts ``None`` for the registry so the runner can call it
    unconditionally with :func:`repro.obs.metrics.active`'s result.
    """
    if registry is None:
        return
    for key, value in snapshot.items():
        if isinstance(value, (int, float)):
            registry.gauge(f"runner.{key}").set(float(value))
