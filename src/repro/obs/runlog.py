"""Structured JSON-lines run logs.

One record per experiment (or bench, or whole invocation): a single JSON
object per line with the experiment name, wall-clock duration, runner
accounting, a metrics snapshot, and provenance (git SHA, timestamp,
``REPRO_FULL``).  JSON-lines keeps the format append-only -- concurrent
invocations and repeated runs extend one file, and
``repro obs report`` renders any number of such files.

Schema (all fields optional except ``record``/``name``)::

    {"record": "experiment",        # or "run" (invocation summary),
                                    # "bench"
     "name": "fig06",
     "timestamp": 1719830000.0,     # UNIX epoch, start of the record
     "elapsed_seconds": 12.5,
     "git_sha": "d66e654",          # null outside a git checkout
     "full": false,                 # REPRO_FULL paper-scale mode
     "runner": {...},               # RunnerStats snapshot (see
                                    #  RunnerStats.snapshot())
     "metrics": {...},              # MetricsRegistry.snapshot()
     "store": "runlog.sqlite"}      # sibling sqlite experiment store
                                    #  (when --store dual-writes one)

The log is observational: nothing in it feeds back into experiments, so
timestamps and durations do not perturb determinism.
"""

from __future__ import annotations

import functools
import json
import pathlib
import subprocess
import time
from typing import Iterator, List, Optional, Union

from repro.util.env import env_flag

__all__ = ["RunLogWriter", "read_run_log", "iter_records", "git_sha",
           "base_record"]


@functools.lru_cache(maxsize=1)
def git_sha() -> Optional[str]:
    """The current checkout's short commit SHA, or ``None``.

    Best-effort provenance: any failure (no git binary, not a checkout,
    timeout) degrades to ``None`` rather than raising.  Cached per
    process (``git_sha.cache_clear()`` resets): the SHA cannot change
    mid-run, and shelling out per record would perturb timing-sensitive
    bench logs on large batches.
    """
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=pathlib.Path(__file__).resolve().parent,
            capture_output=True, text=True, timeout=5.0,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def base_record(record: str, name: str) -> dict:
    """A record skeleton with provenance fields filled in."""
    return {
        "record": record,
        "name": name,
        "timestamp": time.time(),
        "git_sha": git_sha(),
        "full": env_flag("REPRO_FULL"),
    }


class RunLogWriter:
    """Appends JSON-lines records to a run-log file.

    The file (and parent directories) are created on first write; each
    record is one ``json.dumps`` line flushed per call, so a crashed run
    leaves every completed record intact.
    """

    def __init__(self, path: Union[str, pathlib.Path]) -> None:
        self.path = pathlib.Path(path)
        self.records_written = 0

    def write(self, record: dict) -> None:
        """Append one record (must be JSON-serializable)."""
        line = json.dumps(record, sort_keys=True, default=str)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a") as handle:
            handle.write(line + "\n")
        self.records_written += 1


def iter_records(path: Union[str, pathlib.Path]) -> Iterator[dict]:
    """Yield records from one run-log file, skipping corrupt lines.

    Tolerating a torn final line (a run killed mid-write) beats refusing
    to report on an otherwise healthy log.
    """
    with pathlib.Path(path).open() as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict):
                yield record


def read_run_log(path: Union[str, pathlib.Path]) -> List[dict]:
    """All records of one run-log file, in order."""
    return list(iter_records(path))
