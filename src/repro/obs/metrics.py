"""The metrics registry: counters, gauges, histograms, timers.

Observability is strictly opt-in.  A process-wide *active registry* is
installed with :func:`enable` (the CLI's ``--metrics`` flag, the obs
benchmarks, tests) and removed with :func:`disable`; instrumented code
asks :func:`active` for it.  When no registry is active the answer is
``None``, and every instrumentation site is written so that the disabled
path costs at most one ``is None`` check *per run or per batch* -- never
per event or per packet:

* the simulator's dispatch loop selects between its original
  uninstrumented loop and an instrumented twin once per
  :meth:`~repro.sim.engine.Simulator.run` call;
* links, queues, and TCP senders are not touched at all on the hot
  path -- they already keep cumulative counters, and the obs layer
  *snapshots* those counters after a run instead of observing every
  packet;
* the experiment runner publishes per-batch, not per-cell.

For call sites that want an unconditional instrument handle,
:func:`get_registry` returns a shared :data:`NULL_REGISTRY` whose
instruments are no-ops.

Determinism: instruments only record; they never draw randomness or
schedule events, so enabling metrics cannot change any simulation
result.
"""

from __future__ import annotations

from math import inf
from typing import Callable, Dict, Optional, Union

__all__ = [
    "Counter", "Gauge", "Histogram", "Timer", "MetricsRegistry",
    "NULL_REGISTRY", "active", "enabled", "enable", "disable",
    "get_registry", "collecting",
]


class Counter:
    """A monotonically increasing value (events, bytes, seconds)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A point-in-time value (queue depth, cwnd, utilization)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def track_max(self, value: float) -> None:
        """Keep the largest value seen (peak-depth style gauges)."""
        if value > self.value:
            self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Gauge {self.name}={self.value}>"


class Histogram:
    """Streaming count/sum/min/max/mean of observed samples.

    Deliberately bucket-free: the run log wants compact summaries, and
    the handful of consumers (cell wall times, cwnd spreads) only need
    the moments, not quantiles.
    """

    __slots__ = ("name", "count", "total", "minimum", "maximum")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.minimum = inf
        self.maximum = -inf

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        if not self.count:
            return {"count": 0, "sum": 0.0, "min": None, "max": None,
                    "mean": 0.0}
        return {"count": self.count, "sum": self.total, "min": self.minimum,
                "max": self.maximum, "mean": self.mean}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Histogram {self.name} n={self.count} mean={self.mean:.3g}>"


class Timer:
    """A histogram of wall-clock durations, usable as a context manager::

        with registry.timer("runner.batch_seconds").time():
            ...
    """

    __slots__ = ("histogram",)

    def __init__(self, name: str) -> None:
        self.histogram = Histogram(name)

    @property
    def name(self) -> str:
        return self.histogram.name

    def observe(self, seconds: float) -> None:
        self.histogram.observe(seconds)

    def time(self) -> "_TimerContext":
        return _TimerContext(self)

    def snapshot(self) -> dict:
        return self.histogram.snapshot()


class _TimerContext:
    __slots__ = ("_timer", "_started")

    def __init__(self, timer: Timer) -> None:
        self._timer = timer
        self._started = 0.0

    def __enter__(self) -> "_TimerContext":
        from time import perf_counter
        self._started = perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        from time import perf_counter
        self._timer.observe(perf_counter() - self._started)


Instrument = Union[Counter, Gauge, Histogram, Timer]


class MetricsRegistry:
    """A flat namespace of named instruments.

    Names are dotted paths (``engine.events_dispatched``,
    ``link.bottleneck.dropped_bytes``); the first lookup creates the
    instrument, later lookups return the same object.  Asking for an
    existing name as a different instrument kind raises ``TypeError`` --
    silent kind aliasing would corrupt snapshots.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, Instrument] = {}

    # ------------------------------------------------------------------
    def _get(self, name: str, kind: type, factory: Callable[[str], Instrument]):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = self._instruments[name] = factory(name)
        elif type(instrument) is not kind:
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, not {kind.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram, Histogram)

    def timer(self, name: str) -> Timer:
        return self._get(name, Timer, Timer)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def snapshot(self) -> dict:
        """A JSON-serializable view: name -> number (or histogram dict)."""
        out: dict = {}
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            if isinstance(instrument, (Histogram, Timer)):
                out[name] = instrument.snapshot()
            else:
                out[name] = instrument.value
        return out


class _NullInstrument:
    """Absorbs every instrument method; shared by the null registry."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def track_max(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def time(self) -> "_NullInstrument":
        return self

    def __enter__(self) -> "_NullInstrument":
        return self

    def __exit__(self, *exc_info) -> None:
        pass

    value = 0.0

    def snapshot(self) -> dict:
        return {}


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """The disabled-path registry: every lookup is the same no-op."""

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    gauge = counter
    histogram = counter
    timer = counter

    def __len__(self) -> int:
        return 0

    def __contains__(self, name: str) -> bool:
        return False

    def snapshot(self) -> dict:
        return {}


NULL_REGISTRY = NullRegistry()

# ----------------------------------------------------------------------
# the process-wide active registry
# ----------------------------------------------------------------------
_ACTIVE: Optional[MetricsRegistry] = None


def active() -> Optional[MetricsRegistry]:
    """The active registry, or ``None`` when metrics are off.

    Hot paths branch on this once per run/batch; ``None`` means "do
    exactly what the uninstrumented code did".
    """
    return _ACTIVE


def enabled() -> bool:
    """True while a registry is installed."""
    return _ACTIVE is not None


def get_registry() -> Union[MetricsRegistry, NullRegistry]:
    """The active registry, or the shared no-op one when disabled."""
    return _ACTIVE if _ACTIVE is not None else NULL_REGISTRY


def enable(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Install (and return) the process-wide registry.

    With no argument a fresh empty registry is installed -- the CLI does
    this per experiment so each run-log record snapshots one experiment,
    not the whole invocation.
    """
    global _ACTIVE
    _ACTIVE = registry if registry is not None else MetricsRegistry()
    return _ACTIVE


def disable() -> Optional[MetricsRegistry]:
    """Remove the active registry; returns it (for a final snapshot)."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = None
    return previous


class collecting:
    """Context manager: metrics on inside, previous state restored after::

        with metrics.collecting() as registry:
            net.run(until=30.0)
        snapshot = registry.snapshot()
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._previous: Optional[MetricsRegistry] = None

    def __enter__(self) -> MetricsRegistry:
        global _ACTIVE
        self._previous = _ACTIVE
        _ACTIVE = self.registry
        return self.registry

    def __exit__(self, *exc_info) -> None:
        global _ACTIVE
        _ACTIVE = self._previous
