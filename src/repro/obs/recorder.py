"""The in-sim flight recorder: bounded time-series capture per cell.

The metrics registry (:mod:`repro.obs.metrics`) answers "what were the
totals"; the flight recorder answers "what happened over time" -- the
binned arrival rate at the bottleneck, every loss event, the queue
depth seen by each arrival, and each TCP sender's cwnd/recovery
trajectory.  Those are exactly the paper's forensics: cwnd collapse
under pulses (Fig. 1), quasi-global synchronization of loss events
(Fig. 3).

Discipline (the same dual-dispatch contract as the registry):

* **Passive only.**  Taps ride a nullable ``arrival_tap`` pointer on
  :class:`~repro.sim.link.Link` and a nullable ``telemetry`` pointer
  on :class:`~repro.sim.tcp.TCPSender`; nothing is ever *scheduled*,
  so the engine dispatches the identical ``(time, seq)`` event stream
  and every ``state_digest()`` is bit-identical with the recorder on,
  off, or absent.  (:class:`~repro.sim.trace.QueueSampler` schedules
  its own ticks, so the recorder never attaches one inside a cell --
  it only *harvests* a scenario-owned sampler via
  :meth:`FlightRecorder.tap_queue_sampler`.)
* **One pointer check when disabled.**  An untapped link has an
  ``arrival_tap`` of ``None`` (one ``is None`` per arrival) and an
  untapped sender a ``telemetry`` of ``None`` (one ``is None`` per
  cwnd change / recovery event).
* **C-speed capture when enabled.**  A Python callback per arrival --
  even an empty one -- costs more than the recorder's whole overhead
  budget (the bench gates attached capture at 5%), so the taps are
  ``list.append`` itself: ``Link.send`` appends one ``(time,
  queue_bytes, queue_packets, signed_size)`` tuple per arrival (size
  negated for attack packets) and the sender one ``(time, flow_id,
  cwnd)`` tuple per cwnd change, with no Python frame anywhere.  The
  rows hold numbers only, never object references: CPython's cyclic
  collector untracks number-only tuples after one survived
  collection, where a row holding a packet would keep both on every
  later GC pass (measured at 2-3x the entire capture cost).  Binning
  and fan-out into series are deferred to
  :meth:`FlightRecorder.harvest` -- the rate series goes through
  :meth:`~repro.sim.trace.RateMonitor.ingest`, which accumulates in
  arrival order and is bit-identical to observing each packet live.
  Drops are the exception: they are rare, so a separate ``drop_tap``
  checked only on the drop branch keeps ``(time, packet)`` rows and
  defers flow-id extraction to harvest.
* **Bounded memory.**  Sparse event series (recovery episodes, engine
  progress) go through :class:`SeriesRecorder`, a fixed-capacity
  ring.  The per-arrival and per-ACK capture lists are capped to the
  same *capacity* at harvest but grow unchecked in-run (roughly 100
  bytes per arrival; a few tens of MB for the longest cells in this
  repo) -- any per-append bound check would reintroduce the Python
  frame the taps exist to avoid.

Series are harvested into :class:`Series` values -- plain
``(name, columns, float64 array)`` records that pickle efficiently, so
worker processes can ship them back to the parent for storage in the
sqlite experiment store (:mod:`repro.obs.store`).
"""

from __future__ import annotations

import dataclasses
import gc
from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["Series", "SeriesRecorder", "FlightRecorder",
           "DEFAULT_CAPACITY", "DEFAULT_BIN_WIDTH", "contested_links"]

#: ring capacity per event-driven series (samples, not bytes).
DEFAULT_CAPACITY = 65_536

#: bin width for the harvested arrival-rate series, seconds (fine
#: enough to resolve the paper's 50-150 ms pulses).
DEFAULT_BIN_WIDTH = 0.1

#: recovery-kind codes in the ``tcp.recovery`` series.
RECOVERY_KINDS = {"fr": 0.0, "to": 1.0}

#: gen-0 allocation threshold while a recorder is attached.  Capture
#: allocates one small tuple per arrival / cwnd change; those rows
#: survive, so they drag the collector in at the default threshold
#: (700) and every pass walks the young rows before untracking them
#: -- measured at roughly a third of total capture cost.  Sized so a
#: typical cell's whole capture (tens of thousands of surviving rows)
#: accumulates without a single mid-run collection; the deferred pass
#: runs after harvest restores the saved threshold.  GC timing never
#: changes simulation results.
_GC_GEN0_THRESHOLD = 1_000_000


@dataclasses.dataclass(frozen=True)
class Series:
    """One named, column-labelled time series.

    ``data`` is a ``(n_rows, len(columns))`` float64 array; the first
    column is simulation time by convention.  ``evicted`` counts rows a
    full ring dropped (0 for binned/harvested series).
    """

    name: str
    columns: Tuple[str, ...]
    data: np.ndarray
    evicted: int = 0

    def __post_init__(self) -> None:
        data = np.ascontiguousarray(self.data, dtype=np.float64)
        if data.ndim != 2 or data.shape[1] != len(self.columns):
            data = data.reshape(-1, len(self.columns))
        object.__setattr__(self, "data", data)

    @property
    def n_rows(self) -> int:
        return int(self.data.shape[0])

    def column(self, name: str) -> np.ndarray:
        """One column by label."""
        return self.data[:, self.columns.index(name)]


class SeriesRecorder:
    """A fixed-capacity ring buffer of numeric rows.

    Appending past *capacity* evicts the oldest row (and counts it in
    :attr:`evicted`): in-sim capture must stay bounded no matter how
    long a cell runs.
    """

    __slots__ = ("name", "columns", "capacity", "evicted", "_rows")

    def __init__(self, name: str, columns: Sequence[str],
                 capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.name = name
        self.columns = tuple(columns)
        self.capacity = capacity
        self.evicted = 0
        self._rows: deque = deque(maxlen=capacity)

    def append(self, *row: float) -> None:
        rows = self._rows
        if len(rows) == self.capacity:
            self.evicted += 1
        rows.append(row)

    def __len__(self) -> int:
        return len(self._rows)

    def as_series(self) -> Series:
        data = (np.array(self._rows, dtype=np.float64) if self._rows
                else np.empty((0, len(self.columns))))
        return Series(self.name, self.columns, data, evicted=self.evicted)


def contested_links(net) -> List[Tuple[str, object]]:
    """The network's contested links as ``(label, link)`` pairs.

    Duck-typed over the dumbbell (``bottleneck``/``reverse_bottleneck``)
    and the test-bed (``pipe_link``/``pipe_return_link``); labels match
    the ones :func:`repro.obs.instrument.publish_network` publishes
    under, so store queries and metric names agree.
    """
    if hasattr(net, "bottleneck"):
        return [("bottleneck", net.bottleneck),
                ("bottleneck_reverse", net.reverse_bottleneck)]
    return [("pipe", net.pipe_link), ("pipe_reverse", net.pipe_return_link)]


class _SenderTap:
    """The ``TCPSender.telemetry`` listener: cwnd + recovery capture.

    cwnd changes are the second-hottest capture path (one per ACK that
    grows the window), so the sender hot path bypasses any method of
    ours and calls :attr:`cwnd_append` -- the row list's own C-level
    append -- directly; recovery entries are rare and use a plain
    ring.
    """

    __slots__ = ("cwnd_rows", "cwnd_append", "recovery")

    def __init__(self, recovery: SeriesRecorder) -> None:
        #: ``(time, flow_id, cwnd)`` rows, appended by the sender.
        self.cwnd_rows: List[Tuple[float, int, float]] = []
        self.cwnd_append = self.cwnd_rows.append
        self.recovery = recovery

    def on_recovery(self, flow_id: int, now: float, kind: str, cwnd: float,
                    ssthresh: float, rto: float) -> None:
        # cwnd/ssthresh/rto are sampled at recovery *entry* -- before
        # the multiplicative decrease / RTO backoff of the episode.
        self.recovery.append(now, flow_id, RECOVERY_KINDS[kind], cwnd,
                             ssthresh, rto)


class FlightRecorder:
    """Captures one cell's (or scenario's) in-sim dynamics.

    Usage::

        recorder = FlightRecorder()
        recorder.attach(net, horizon=warmup + window)
        net.run(until=warmup + window)
        series = recorder.harvest()      # tuple of Series, by name

    ``attach`` may only be called on a network that will not be
    snapshot-forked afterwards (the runner attaches post-fork), and at
    most once per recorder.
    """

    def __init__(self, *, bin_width: float = DEFAULT_BIN_WIDTH,
                 capacity: int = DEFAULT_CAPACITY) -> None:
        self.bin_width = bin_width
        self.capacity = capacity
        self._rings: Dict[str, SeriesRecorder] = {}
        #: (label, arrival rows, drop rows) per tapped link; fanned
        #: out into the rate/drop/queue series at harvest.
        self._taps: List[Tuple[str, list, list]] = []
        self._samplers: List[Tuple[str, object]] = []
        self._sender_tap: Optional[_SenderTap] = None
        self._horizon = 0.0
        self._attached = False
        self._saved_gc_threshold: Optional[Tuple[int, int, int]] = None

    # ------------------------------------------------------------------
    def ring(self, name: str, columns: Sequence[str]) -> SeriesRecorder:
        """Get or create the named ring-buffer series."""
        ring = self._rings.get(name)
        if ring is None:
            ring = self._rings[name] = SeriesRecorder(
                name, columns, capacity=self.capacity)
        return ring

    # ------------------------------------------------------------------
    def attach(self, net, *, horizon: float) -> None:
        """Tap a built network's contested links, senders, and engine.

        Purely passive: sets each contested link's ``arrival_tap`` /
        ``drop_tap`` pointers (to a row list's C-level append -- see
        the module docstring), each sender's ``telemetry`` pointer,
        and registers an engine post-run hook.  No event is scheduled,
        so the simulation's state digests are unchanged.  Also raises
        the gen-0 GC threshold for the capture's duration (restored by
        :meth:`harvest`; see ``_GC_GEN0_THRESHOLD``).
        """
        if self._attached:
            raise RuntimeError("FlightRecorder.attach() may run only once")
        self._attached = True
        self._horizon = horizon

        for label, link in contested_links(net):
            arrivals: list = []
            drops: list = []
            self._taps.append((label, arrivals, drops))
            link.arrival_tap = arrivals.append
            link.drop_tap = drops.append

        recovery = self.ring(
            "tcp.recovery",
            ("time", "flow_id", "kind", "cwnd", "ssthresh", "rto"))
        tap = self._sender_tap = _SenderTap(recovery)
        for sender in net.senders:
            sender.telemetry = tap

        progress = self.ring("engine.progress", ("time", "events_executed"))

        def post_run(sim, executed, _append=progress.append):
            _append(sim.now, sim.events_executed)

        net.sim.post_run_hooks.append(post_run)

        # Start the run with empty young generations, then collect
        # rarely while the capture lists grow (see _GC_GEN0_THRESHOLD).
        self._saved_gc_threshold = gc.get_threshold()
        gc.collect()
        gc.set_threshold(_GC_GEN0_THRESHOLD,
                         *self._saved_gc_threshold[1:])

    def tap_queue_sampler(self, sampler, name: str) -> None:
        """Harvest a scenario-owned :class:`~repro.sim.trace.QueueSampler`.

        The sampler schedules its own tick events, so cells never attach
        one (that would change event numbering); scenarios that already
        carry a sampler register it here and its samples are copied --
        exactly, float for float -- into the harvested series *name*.
        """
        self._samplers.append((name, sampler))

    # ------------------------------------------------------------------
    def _ring_cap(self, name: str, columns: Tuple[str, ...],
                  rows: np.ndarray, evicted: int = 0) -> Series:
        """A Series keeping the last *capacity* rows (ring semantics)."""
        extra = max(0, len(rows) - self.capacity)
        return Series(name, columns, rows[extra:], evicted=evicted + extra)

    def harvest(self) -> Tuple[Series, ...]:
        """All captured series, sorted by name (deterministic order).

        The raw per-arrival link rows fan out here into the same three
        series the live instruments would produce: the binned arrival
        rate (via :meth:`~repro.sim.trace.RateMonitor.ingest`,
        bit-identical to per-arrival observation), the drop records
        (:class:`~repro.sim.trace.DropMonitor` column layout), and the
        ring-capped queue-depth-at-arrival samples.
        """
        from repro.sim.packet import PacketKind
        from repro.sim.trace import RateMonitor

        if self._saved_gc_threshold is not None:
            gc.set_threshold(*self._saved_gc_threshold)
            self._saved_gc_threshold = None

        attack_kind = PacketKind.ATTACK
        series: Dict[str, Series] = {}
        for label, arrivals, drops in self._taps:
            rows = (np.array(arrivals, dtype=np.float64) if arrivals
                    else np.empty((0, 4)))
            name = f"link.{label}.rate"
            rate = RateMonitor(self.bin_width, self._horizon)
            signed = rows[:, 3]
            rate.ingest(rows[:, 0], np.abs(signed), signed < 0.0)
            series[name] = Series(
                name, ("time", "total_bytes", "attack_bytes"),
                rate.as_columns())
            name = f"link.{label}.drops"
            series[name] = self._ring_cap(
                name, ("time", "flow_id", "is_attack"),
                np.array([(t, float(p.flow_id),
                           float(p.kind is attack_kind))
                          for t, p in drops], dtype=np.float64)
                if drops else np.empty((0, 3)))
            name = f"link.{label}.queue"
            series[name] = self._ring_cap(
                name, ("time", "queue_bytes", "queue_packets"),
                rows[:, :3])
        tap = self._sender_tap
        if tap is not None:
            rows = tap.cwnd_rows
            series["tcp.cwnd"] = self._ring_cap(
                "tcp.cwnd", ("time", "flow_id", "cwnd"),
                np.array(rows, dtype=np.float64) if rows
                else np.empty((0, 3)))
        for name, sampler in self._samplers:
            times, qbytes, qpkts = sampler.as_arrays()
            series[name] = Series(
                name, ("time", "queue_bytes", "queue_packets"),
                np.column_stack([times, qbytes, qpkts]) if len(times)
                else np.empty((0, 3)))
        for name, ring in self._rings.items():
            series[name] = ring.as_series()
        return tuple(series[name] for name in sorted(series))
