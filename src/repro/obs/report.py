"""``repro obs report``: summarize run logs and experiment stores.

Renders a fixed-width table with one row per ``experiment``/``bench``
record -- name, wall time, runner cell accounting (with the cache-hit
ratio), engine throughput, and the headline simulation outcomes
(delivered goodput, bottleneck drop rate) -- followed by a totals line.
Fields a record lacks render as ``-``; the report never fails on a
sparse log.

Sources: each path may be a JSON-lines run log or an sqlite experiment
store (:mod:`repro.obs.store`).  A log whose records point at a store
(the ``store`` field ``--store`` dual-writes) is upgraded to that store
when the file still exists -- the store holds the same records plus
the queryable cell/series tables, so it is preferred.

``sort`` orders rows by arrival time (default), name, or elapsed wall
time; ``last`` keeps only the N most recent records, so accumulated
logs stay readable.
"""

from __future__ import annotations

import pathlib
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.obs.runlog import read_run_log

__all__ = ["render_report", "summarize_records", "resolve_sources",
           "SORT_CHOICES"]

#: valid ``sort`` values (the CLI's ``--sort`` choices).
SORT_CHOICES = ("time", "name", "elapsed")

#: record kinds that get a table row (a "run" record is the CLI's own
#: invocation summary -- reported in the footer, not as a row).
_ROW_KINDS = ("experiment", "bench")


def _fmt(value: Optional[float], spec: str = ".1f") -> str:
    return "-" if value is None else format(value, spec)


def _metric(record: dict, name: str) -> Optional[float]:
    value = (record.get("metrics") or {}).get(name)
    return float(value) if isinstance(value, (int, float)) else None


def _runner_field(record: dict, name: str) -> Optional[float]:
    value = (record.get("runner") or {}).get(name)
    return float(value) if isinstance(value, (int, float)) else None


class _Row:
    """One reporting row, with every field optional."""

    def __init__(self, record: dict) -> None:
        self.name = str(record.get("name", "?"))
        self.elapsed = record.get("elapsed_seconds")
        if not isinstance(self.elapsed, (int, float)):
            self.elapsed = None
        self.timestamp = record.get("timestamp")
        if not isinstance(self.timestamp, (int, float)):
            self.timestamp = None
        self.cells = _runner_field(record, "cells")
        self.hit_ratio = _runner_field(record, "hit_ratio")
        self.warm_starts = _runner_field(record, "warm_starts")
        self.warmup_seconds_saved = _runner_field(
            record, "warmup_seconds_saved")
        self.planner_rounds = _runner_field(record, "planner_rounds")
        self.planner_cells_saved = _runner_field(
            record, "planner_cells_saved")
        self.planner_seeds_saved = _runner_field(
            record, "planner_seeds_saved")
        self.truncated_cells = _runner_field(record, "truncated_cells")
        self.truncated_sim_seconds = _runner_field(
            record, "truncated_sim_seconds")
        self.fluid_cells = _runner_field(record, "fluid_cells")
        self.events = _metric(record, "engine.events_dispatched")
        wall = _metric(record, "engine.wall_seconds")
        self.events_per_sec = (
            self.events / wall if self.events and wall else None
        )
        self.goodput = _metric(record, "tcp.goodput_bytes")
        self.drop_pct = self._bottleneck_drop_pct(record)

    @staticmethod
    def _bottleneck_drop_pct(record: dict) -> Optional[float]:
        metrics = record.get("metrics") or {}
        # The contested link is "bottleneck" on the dumbbell, "pipe" on
        # the test-bed; take whichever is present.
        for label in ("bottleneck", "pipe"):
            dropped = metrics.get(f"link.{label}.dropped_packets")
            accepted = metrics.get(f"link.{label}.accepted_packets")
            if isinstance(dropped, (int, float)) and isinstance(
                    accepted, (int, float)):
                offered = dropped + accepted
                if offered > 0:
                    return 100.0 * dropped / offered
        return None


_COLUMNS = (
    ("name", 18, "<"),
    ("wall s", 8, ">"),
    ("cells", 6, ">"),
    ("hit %", 6, ">"),
    ("events", 10, ">"),
    ("kev/s", 7, ">"),
    ("goodput MB", 11, ">"),
    ("drop %", 7, ">"),
)


def _format_row(values: Sequence[str]) -> str:
    parts = []
    for (_, width, align), value in zip(_COLUMNS, values):
        parts.append(format(value, f"{align}{width}"))
    return "  ".join(parts).rstrip()


def summarize_records(records: Iterable[dict], *, sort: str = "time",
                      last: Optional[int] = None) -> str:
    """The report body for an iterable of parsed records.

    *sort*: ``"time"`` keeps arrival order (logs append
    chronologically), ``"name"`` sorts alphabetically, ``"elapsed"``
    sorts by wall time, most expensive first.  *last* keeps only the N
    most recent records (applied before sorting).
    """
    if sort not in SORT_CHOICES:
        raise ValueError(f"sort must be one of {SORT_CHOICES}, got {sort!r}")
    rows = [_Row(r) for r in records if r.get("record") in _ROW_KINDS]
    if last is not None:
        if last < 0:
            raise ValueError(f"last must be >= 0, got {last}")
        rows = rows[len(rows) - last:] if last else []
    if sort == "name":
        rows.sort(key=lambda r: r.name)
    elif sort == "elapsed":
        rows.sort(key=lambda r: (r.elapsed is None, -(r.elapsed or 0.0)))
    lines = [
        _format_row([header for header, _, _ in _COLUMNS]),
        _format_row(["-" * width for _, width, _ in _COLUMNS]),
    ]
    for row in rows:
        lines.append(_format_row([
            row.name[:18],
            _fmt(row.elapsed),
            _fmt(row.cells, ".0f"),
            _fmt(None if row.hit_ratio is None else 100.0 * row.hit_ratio,
                 ".0f"),
            _fmt(row.events, ".0f"),
            _fmt(None if row.events_per_sec is None
                 else row.events_per_sec / 1e3, ".0f"),
            _fmt(None if row.goodput is None else row.goodput / 1e6, ".2f"),
            _fmt(row.drop_pct),
        ]))
    if not rows:
        lines.append("(no experiment records)")
        return "\n".join(lines)

    total_elapsed = sum(r.elapsed for r in rows if r.elapsed is not None)
    total_cells = sum(r.cells for r in rows if r.cells is not None)
    total_events = sum(r.events for r in rows if r.events is not None)
    footer = (
        f"\n{len(rows)} records; {total_elapsed:.1f}s wall, "
        f"{total_cells:.0f} cells, {total_events:.0f} engine events"
    )
    total_warm = sum(r.warm_starts for r in rows
                     if r.warm_starts is not None)
    if total_warm:
        total_saved = sum(r.warmup_seconds_saved for r in rows
                          if r.warmup_seconds_saved is not None)
        footer += (
            f"; {total_warm:.0f} warm starts saved {total_saved:.0f}s "
            "of simulated warm-up"
        )

    def _total(field: str) -> float:
        return sum(value for r in rows
                   if (value := getattr(r, field)) is not None)

    planner_cells = _total("planner_cells_saved")
    planner_seeds = _total("planner_seeds_saved")
    if planner_cells or planner_seeds or _total("planner_rounds"):
        footer += (
            f"; planner: {_total('planner_rounds'):.0f} refinement "
            f"rounds saved {planner_cells:.0f} grid cells + "
            f"{planner_seeds:.0f} seeds"
        )
    truncated = _total("truncated_cells")
    if truncated:
        footer += (
            f"; {truncated:.0f} early exits truncated "
            f"{_total('truncated_sim_seconds'):.0f}s of simulation"
        )
    fluid = _total("fluid_cells")
    if fluid:
        footer += f"; {fluid:.0f} cells on the fluid backend"
    lines.append(footer)
    return "\n".join(lines)


def _store_for_log(records: List[dict],
                   log_path: pathlib.Path) -> Optional[pathlib.Path]:
    """The store every row record of a log points at, if one exists.

    A log is upgraded only when *all* of its row records carry the same
    ``store`` pointer and that file is a real sqlite store -- a mixed
    log (some runs dual-written, some not) keeps its JSONL view so no
    record silently disappears.  Pointers are tried as written, then
    relative to the log's own directory (logs move with their results
    folder).
    """
    from repro.obs.store import is_store

    rows = [r for r in records if r.get("record") in _ROW_KINDS]
    pointers = {r.get("store") for r in rows}
    if not rows or len(pointers) != 1:
        return None
    pointer = pointers.pop()
    if not isinstance(pointer, str):
        return None
    for candidate in (pathlib.Path(pointer),
                      log_path.parent / pathlib.Path(pointer).name):
        if candidate.is_file() and is_store(candidate):
            return candidate
    return None


def resolve_sources(
        paths: Sequence[Union[str, pathlib.Path]],
) -> List[Tuple[str, pathlib.Path]]:
    """Classify report inputs into ``("log" | "store", path)`` pairs.

    Sqlite stores are recognized by content (not extension); JSONL logs
    whose records all point at one existing store are upgraded to it.
    Duplicate sources (two logs pointing at the same store) collapse to
    one entry.
    """
    from repro.obs.store import is_store

    sources: List[Tuple[str, pathlib.Path]] = []
    seen = set()

    def add(kind: str, path: pathlib.Path) -> None:
        key = (kind, str(path))
        if key not in seen:
            seen.add(key)
            sources.append((kind, path))

    for raw in paths:
        path = pathlib.Path(raw)
        if path.is_file() and is_store(path):
            add("store", path)
            continue
        store = _store_for_log(read_run_log(path), path)
        if store is not None:
            add("store", store)
        else:
            add("log", path)
    return sources


def _source_records(kind: str, path: pathlib.Path) -> List[dict]:
    if kind == "store":
        from repro.obs.store import ExperimentStore

        with ExperimentStore(path) as store:
            return store.experiment_records()
    return read_run_log(path)


def render_report(paths: Sequence[Union[str, pathlib.Path]], *,
                  sort: str = "time", last: Optional[int] = None) -> str:
    """Render a combined report over run-log files and/or stores."""
    sources = resolve_sources(paths)
    records: List[dict] = []
    for kind, path in sources:
        records.extend(_source_records(kind, path))
    header = "run-log report: " + ", ".join(
        f"{path} (store)" if kind == "store" else str(path)
        for kind, path in sources)
    return header + "\n" + summarize_records(records, sort=sort, last=last)
