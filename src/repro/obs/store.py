"""The queryable sqlite experiment store (``repro obs query``).

A content-addressed, append-only database of everything a run
measures: one ``runs`` row per CLI invocation (git SHA, timestamp,
argv), one ``experiments`` row per figure/experiment, one ``cells``
row per distinct measurement cell -- keyed by the same content-hash
key the result cache uses, so a cell's row, its cache file, and its
in-memory memo entry all share one identity -- plus scalar ``metrics``
and sampled time ``series`` (float64 blobs captured by the flight
recorder, :mod:`repro.obs.recorder`).

The JSON-lines run log (:mod:`repro.obs.runlog`) stays the wire
format: the CLI dual-writes both, and
:meth:`ExperimentStore.experiment_records` reconstructs runlog-shaped
records from the store so ``repro obs report`` can render either
source identically.

Concurrency: only the parent process ever holds the connection --
worker processes return series blobs by value -- so parallel runs
never contend on sqlite.  Everything is stdlib ``sqlite3``; there is
no new dependency.
"""

from __future__ import annotations

import json
import pathlib
import sqlite3
import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.obs.recorder import Series

__all__ = ["ExperimentStore", "CANNED_QUERIES", "DEFAULT_STORE_NAME",
           "open_readonly", "is_store"]

#: where ``--store`` writes when no path is given.
DEFAULT_STORE_NAME = "runlog.sqlite"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    run_id INTEGER PRIMARY KEY,
    name TEXT NOT NULL,
    timestamp REAL NOT NULL,
    git_sha TEXT,
    full INTEGER NOT NULL DEFAULT 0,
    argv TEXT,
    elapsed_seconds REAL,
    runner TEXT
);
CREATE TABLE IF NOT EXISTS experiments (
    experiment_id INTEGER PRIMARY KEY,
    run_id INTEGER REFERENCES runs(run_id),
    name TEXT NOT NULL,
    timestamp REAL NOT NULL,
    elapsed_seconds REAL,
    runner TEXT
);
CREATE TABLE IF NOT EXISTS cells (
    cell_id INTEGER PRIMARY KEY,
    experiment_id INTEGER REFERENCES experiments(experiment_id),
    key TEXT NOT NULL,
    source TEXT NOT NULL,
    elapsed REAL,
    spec TEXT NOT NULL,
    backend TEXT NOT NULL,
    kind TEXT NOT NULL,
    n_flows INTEGER NOT NULL,
    seed INTEGER NOT NULL,
    gamma REAL,
    extent REAL,
    rate_bps REAL,
    goodput_bytes REAL NOT NULL,
    goodput_rate REAL NOT NULL,
    converged_at REAL,
    flagged_sources INTEGER,
    worker TEXT
);
CREATE INDEX IF NOT EXISTS cells_by_key ON cells(key);
CREATE INDEX IF NOT EXISTS cells_by_experiment ON cells(experiment_id);
CREATE TABLE IF NOT EXISTS metrics (
    experiment_id INTEGER NOT NULL REFERENCES experiments(experiment_id),
    name TEXT NOT NULL,
    value REAL,
    payload TEXT
);
CREATE INDEX IF NOT EXISTS metrics_by_experiment ON metrics(experiment_id);
CREATE TABLE IF NOT EXISTS series (
    series_id INTEGER PRIMARY KEY,
    cell_id INTEGER NOT NULL REFERENCES cells(cell_id),
    name TEXT NOT NULL,
    columns TEXT NOT NULL,
    n_rows INTEGER NOT NULL,
    evicted INTEGER NOT NULL DEFAULT 0,
    rows BLOB NOT NULL
);
CREATE INDEX IF NOT EXISTS series_by_cell ON series(cell_id);
"""


def _cell_shape(spec: dict) -> dict:
    """Denormalized query columns from a cell's ``describe()`` payload.

    ``gamma``/``extent``/``rate_bps`` are derived for single-train
    attack cells (γ per the paper's Eq. 4: mean attack rate over the
    bottleneck capacity); baselines and deployments leave them NULL.
    """
    platform = spec.get("platform") or {}
    shape = {
        "backend": spec.get("backend", "packet"),
        "kind": platform.get("kind", "?"),
        "n_flows": int(platform.get("n_flows", 0)),
        "seed": int(platform.get("seed", 0)),
        "gamma": None,
        "extent": None,
        "rate_bps": None,
    }
    train = spec.get("train")
    if train and train.get("extents"):
        extents = train["extents"]
        rates = train["rates_bps"]
        spaces = train["spaces"]
        shape["extent"] = float(extents[0])
        shape["rate_bps"] = float(rates[0])
        bottleneck = _bottleneck_bps(platform)
        # The spec carries the n-1 *inter*-pulse gaps; the mean attack
        # rate over full periods needs the trailing gap too, which for
        # a (near-)uniform train is the mean space.  Single pulses have
        # no period, so their gamma stays NULL.
        if bottleneck and spaces:
            burst = sum(e * r for e, r in zip(extents, rates))
            period = (sum(extents) + sum(spaces)
                      + sum(spaces) / len(spaces))
            shape["gamma"] = burst / period / bottleneck
    return shape


def _bottleneck_bps(platform: dict) -> Optional[float]:
    """The platform's contested-link capacity, from its spec."""
    # Specs carry only identity, not derived config -- rebuild the
    # config dataclass to read the capacity the scenario would use.
    try:
        from repro.runner.cells import PlatformSpec
        from repro.sim.tcp import TCPConfig

        tcp = platform.get("tcp")
        spec = PlatformSpec(
            kind=platform["kind"], n_flows=platform["n_flows"],
            seed=platform["seed"], queue=platform.get("queue", "red"),
            use_red=platform.get("use_red", True),
            tcp=None if tcp is None else TCPConfig(),
        )
        config = spec.to_config()
    except Exception:
        return None
    for attr in ("bottleneck_rate_bps", "pipe_rate_bps", "bandwidth_bps"):
        value = getattr(config, attr, None)
        if value:
            return float(value)
    pipe = getattr(config, "pipe", None)
    if pipe is not None:
        value = getattr(pipe, "bandwidth_bps", None)
        if value:
            return float(value)
    return None


class ExperimentStore:
    """One sqlite experiment store (see the module docstring).

    Opening creates the file and schema if needed.  All writes happen
    in the opening process; reads (``query``, the canned queries,
    ``fetch_series``) are safe on any existing store file.
    """

    def __init__(self, path: Union[str, pathlib.Path]) -> None:
        self.path = pathlib.Path(path)
        if self.path.parent != pathlib.Path(""):
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._db = sqlite3.connect(str(self.path))
        self._db.executescript(_SCHEMA)
        self._migrate()
        self._db.commit()
        self._run_id: Optional[int] = None
        self._experiment_id: Optional[int] = None

    def _migrate(self) -> None:
        """Bring a pre-existing store file up to the current schema.

        Additive only: columns the schema grew later (``cells.worker``,
        the execution-placement attribution) are bolted onto old files
        with NULLs for historical rows, so stores from earlier runs
        stay queryable without a rebuild.
        """
        columns = {
            row[1] for row in self._db.execute("PRAGMA table_info(cells)")
        }
        if "worker" not in columns:
            self._db.execute("ALTER TABLE cells ADD COLUMN worker TEXT")

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        self._db.close()

    def __enter__(self) -> "ExperimentStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # writes (parent process only)
    # ------------------------------------------------------------------
    def begin_run(self, name: str, *, argv: Optional[Sequence[str]] = None,
                  git_sha: Optional[str] = None, full: bool = False,
                  timestamp: Optional[float] = None) -> int:
        """Open the invocation-level row; returns its ``run_id``."""
        cursor = self._db.execute(
            "INSERT INTO runs (name, timestamp, git_sha, full, argv)"
            " VALUES (?, ?, ?, ?, ?)",
            (name, time.time() if timestamp is None else timestamp,
             git_sha, int(full),
             None if argv is None else json.dumps(list(argv))),
        )
        self._db.commit()
        self._run_id = int(cursor.lastrowid)
        return self._run_id

    def finish_run(self, *, elapsed_seconds: Optional[float] = None,
                   runner: Optional[dict] = None) -> None:
        """Close the open run with its final accounting."""
        if self._run_id is None:
            return
        self._db.execute(
            "UPDATE runs SET elapsed_seconds = ?, runner = ?"
            " WHERE run_id = ?",
            (elapsed_seconds,
             None if runner is None else json.dumps(runner, sort_keys=True),
             self._run_id),
        )
        self._db.commit()

    def begin_experiment(self, name: str,
                         timestamp: Optional[float] = None) -> int:
        """Open an experiment row; subsequent cells attach to it."""
        cursor = self._db.execute(
            "INSERT INTO experiments (run_id, name, timestamp)"
            " VALUES (?, ?, ?)",
            (self._run_id, name,
             time.time() if timestamp is None else timestamp),
        )
        self._db.commit()
        self._experiment_id = int(cursor.lastrowid)
        return self._experiment_id

    def finish_experiment(self, *, elapsed_seconds: Optional[float] = None,
                          runner: Optional[dict] = None,
                          metrics: Optional[dict] = None) -> None:
        """Close the open experiment with its runner delta and metrics."""
        experiment_id = self._experiment_id
        if experiment_id is None:
            return
        self._db.execute(
            "UPDATE experiments SET elapsed_seconds = ?, runner = ?"
            " WHERE experiment_id = ?",
            (elapsed_seconds,
             None if runner is None else json.dumps(runner, sort_keys=True),
             experiment_id),
        )
        for name, value in (metrics or {}).items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                row = (experiment_id, name, float(value), None)
            else:
                row = (experiment_id, name, None,
                       json.dumps(value, sort_keys=True))
            self._db.execute(
                "INSERT INTO metrics (experiment_id, name, value, payload)"
                " VALUES (?, ?, ?, ?)", row)
        self._db.commit()
        self._experiment_id = None

    def record_cell(self, key: str, cell, result, *, source: str,
                    elapsed: Optional[float] = None,
                    series: Optional[Iterable[Series]] = None,
                    worker: Optional[str] = None) -> int:
        """Record one resolved cell (and its flight-recorder series).

        *cell*/*result* are the runner's
        :class:`~repro.runner.cells.Cell` /
        :class:`~repro.runner.cells.CellResult`; *source* says how the
        cell was resolved (``executed``/``cache``/``memo``), mirroring
        the runner's own accounting.  *worker* attributes executed
        cells to the process (``host:pid``) that measured them, so
        straggler skew can be traced to its placement.
        """
        from repro.runner.cells import goodput_rate

        spec = cell.describe()
        shape = _cell_shape(spec)
        cursor = self._db.execute(
            "INSERT INTO cells (experiment_id, key, source, elapsed, spec,"
            " backend, kind, n_flows, seed, gamma, extent, rate_bps,"
            " goodput_bytes, goodput_rate, converged_at, flagged_sources,"
            " worker)"
            " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (self._experiment_id, key, source, elapsed,
             json.dumps(spec, sort_keys=True), shape["backend"],
             shape["kind"], shape["n_flows"], shape["seed"],
             shape["gamma"], shape["extent"], shape["rate_bps"],
             float(result.goodput_bytes), goodput_rate(cell, result),
             result.converged_at, result.flagged_sources, worker),
        )
        cell_id = int(cursor.lastrowid)
        for item in series or ():
            self._db.execute(
                "INSERT INTO series (cell_id, name, columns, n_rows,"
                " evicted, rows) VALUES (?, ?, ?, ?, ?, ?)",
                (cell_id, item.name, json.dumps(list(item.columns)),
                 item.n_rows, item.evicted,
                 np.ascontiguousarray(item.data, dtype=np.float64)
                 .tobytes()),
            )
        self._db.commit()
        return cell_id

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def query(self, sql: str, params: Sequence = ()) -> Tuple[List[str],
                                                              List[tuple]]:
        """Run raw SQL; returns ``(column_names, rows)``."""
        cursor = self._db.execute(sql, tuple(params))
        names = [d[0] for d in cursor.description or ()]
        return names, cursor.fetchall()

    def fetch_series(self, cell_id: int,
                     name: Optional[str] = None) -> List[Series]:
        """Stored series of one cell, bit-exactly reconstructed."""
        sql = ("SELECT name, columns, n_rows, evicted, rows FROM series"
               " WHERE cell_id = ?")
        params: List = [cell_id]
        if name is not None:
            sql += " AND name = ?"
            params.append(name)
        out = []
        for row in self._db.execute(sql + " ORDER BY name", params):
            columns = tuple(json.loads(row[1]))
            data = np.frombuffer(row[4], dtype=np.float64).reshape(
                int(row[2]), len(columns))
            out.append(Series(row[0], columns, data.copy(),
                              evicted=int(row[3])))
        return out

    def find_cells(self, key_prefix: str) -> List[tuple]:
        """``(cell_id, key, experiment name, source)`` for matching cells.

        Matches full keys or any unambiguous prefix (like git).
        """
        return self._db.execute(
            "SELECT c.cell_id, c.key, COALESCE(e.name, '-'), c.source"
            " FROM cells c LEFT JOIN experiments e"
            " ON c.experiment_id = e.experiment_id"
            " WHERE c.key LIKE ? ORDER BY c.cell_id",
            (key_prefix + "%",),
        ).fetchall()

    # ------------------------------------------------------------------
    # runlog-record reconstruction (report compatibility)
    # ------------------------------------------------------------------
    def experiment_records(self) -> List[dict]:
        """Runlog-shaped ``experiment`` records, oldest first.

        Byte-compatible with what the CLI's ``--metrics`` writer logs
        for the same run (the store↔runlog equivalence contract), so
        ``repro obs report`` renders either source identically.
        """
        records = []
        rows = self._db.execute(
            "SELECT e.experiment_id, e.name, e.timestamp,"
            " e.elapsed_seconds, e.runner, r.git_sha, r.full"
            " FROM experiments e LEFT JOIN runs r ON e.run_id = r.run_id"
            " ORDER BY e.experiment_id").fetchall()
        for (experiment_id, name, timestamp, elapsed, runner, sha,
             full) in rows:
            record = {
                "record": "experiment",
                "name": name,
                "timestamp": timestamp,
                "git_sha": sha,
                "full": bool(full),
                "store": str(self.path),
            }
            if elapsed is not None:
                record["elapsed_seconds"] = elapsed
            if runner is not None:
                record["runner"] = json.loads(runner)
            metrics: Dict[str, object] = {}
            for metric_name, value, payload in self._db.execute(
                "SELECT name, value, payload FROM metrics"
                " WHERE experiment_id = ? ORDER BY rowid",
                (experiment_id,),
            ):
                metrics[metric_name] = (
                    value if payload is None else json.loads(payload))
            record["metrics"] = metrics
            records.append(record)
        return records

    # ------------------------------------------------------------------
    # canned queries
    # ------------------------------------------------------------------
    def gamma_star(self) -> Tuple[List[str], List[tuple]]:
        """Measured peak-γ per gain-sweep series (the fig06 question).

        Groups packet-backend attack cells by experiment and sweep
        series (n_flows, extent, rate), computes each cell's gain
        against the matching baseline (same experiment, n_flows, seed;
        Eq. 5 with κ=1: ``(1 - ρ/ρ₀)·(1 - γ)``), averages across
        seeds, and reports the γ with the largest mean gain.
        """
        rows = self._db.execute(
            "SELECT c.experiment_id, COALESCE(e.name, '-'), c.n_flows,"
            " c.seed, c.gamma, c.extent, c.rate_bps, c.goodput_rate"
            " FROM cells c LEFT JOIN experiments e"
            " ON c.experiment_id = e.experiment_id"
            " WHERE c.backend = 'packet' AND c.kind != '?'"
            " ORDER BY c.cell_id").fetchall()
        baselines: Dict[tuple, float] = {}
        for (exp_id, _name, n_flows, seed, gamma, _extent, _rate,
             rate_bytes) in rows:
            if gamma is None:
                baselines[(exp_id, n_flows, seed)] = rate_bytes
        gains: Dict[tuple, Dict[float, List[float]]] = {}
        for (exp_id, name, n_flows, seed, gamma, extent, rate_bps,
             rate_bytes) in rows:
            if gamma is None or extent is None:
                continue
            baseline = baselines.get((exp_id, n_flows, seed))
            if not baseline:
                continue
            degradation = 1.0 - rate_bytes / baseline
            series_key = (exp_id, name, n_flows, extent, rate_bps)
            gains.setdefault(series_key, {}).setdefault(gamma, []).append(
                degradation * (1.0 - gamma))
        names = ["experiment", "n_flows", "extent_ms", "rate_mbps",
                 "gamma_star", "gain", "gammas", "cells"]
        out = []
        for (exp_id, name, n_flows, extent, rate_bps), by_gamma in sorted(
                gains.items()):
            means = {g: sum(v) / len(v) for g, v in by_gamma.items()}
            star = max(means, key=lambda g: (means[g], -g))
            out.append((
                name, n_flows, round(extent * 1e3, 3),
                None if rate_bps is None else round(rate_bps / 1e6, 3),
                round(star, 6), round(means[star], 6), len(means),
                sum(len(v) for v in by_gamma.values()),
            ))
        return names, out

    def slowest_cells(self, limit: int = 10) -> Tuple[List[str],
                                                      List[tuple]]:
        """The most expensive executed cells, by wall-clock time.

        Includes the executing worker (``host:pid``), so straggler skew
        is attributable: a tail dominated by one worker id points at a
        slow host or an unlucky lease, not at the scenarios themselves.
        """
        return self.query(
            "SELECT substr(c.key, 1, 12) AS key, COALESCE(e.name, '-')"
            " AS experiment, c.backend, c.n_flows, c.seed,"
            " round(c.gamma, 4) AS gamma, round(c.elapsed, 3) AS elapsed_s,"
            " COALESCE(c.worker, '-') AS worker"
            " FROM cells c LEFT JOIN experiments e"
            " ON c.experiment_id = e.experiment_id"
            " WHERE c.source = 'executed'"
            " ORDER BY c.elapsed DESC LIMIT ?", (limit,))

    def workers(self) -> Tuple[List[str], List[tuple]]:
        """Per-worker execution rollup (straggler-skew attribution).

        One row per distinct worker id that executed cells: how many,
        how much wall time, and the mean/max per-cell cost.  A worker
        whose mean is far above the rest is the straggler; whether its
        cells are intrinsically heavier shows up in ``slowest-cells``.
        """
        return self.query(
            "SELECT COALESCE(c.worker, '-') AS worker,"
            " count(*) AS cells,"
            " round(sum(c.elapsed), 3) AS busy_s,"
            " round(avg(c.elapsed), 3) AS mean_s,"
            " round(max(c.elapsed), 3) AS max_s"
            " FROM cells c WHERE c.source = 'executed'"
            " GROUP BY c.worker ORDER BY busy_s DESC")

    def cache_hits(self) -> Tuple[List[str], List[tuple]]:
        """Per-experiment cell accounting by resolution source."""
        return self.query(
            "SELECT COALESCE(e.name, '-') AS experiment,"
            " count(*) AS cells,"
            " sum(c.source = 'executed') AS executed,"
            " sum(c.source = 'cache') AS cache_hits,"
            " sum(c.source = 'memo') AS memo_hits,"
            " round(avg(c.source != 'executed'), 3) AS hit_ratio"
            " FROM cells c LEFT JOIN experiments e"
            " ON c.experiment_id = e.experiment_id"
            " GROUP BY c.experiment_id ORDER BY min(c.cell_id)")

    def drop_sync(self, *, bin_width: float = 0.1,
                  cell_id: Optional[int] = None) -> Tuple[List[str],
                                                          List[tuple]]:
        """Loss-event synchronization from recorded drop series.

        For every cell with flight-recorder drop series (or just
        *cell_id*): per link, the legitimate-flow loss events are
        binned at *bin_width* and summarized as the fraction of
        loss-bearing bins in which at least half the victim flows lost
        a packet (the paper's quasi-global-synchronization signature,
        Fig. 3).  With two or more drop-carrying links the Pearson
        correlation of their binned drop counts is reported per pair
        (``link_b`` non-NULL) -- the cross-link question the
        multi-bottleneck roadmap item needs.
        """
        names = ["cell", "link_a", "link_b", "drops", "loss_bins",
                 "sync_ratio", "correlation"]
        sql = ("SELECT s.cell_id, s.name, s.columns, s.n_rows, s.rows"
               " FROM series s WHERE s.name LIKE 'link.%.drops'")
        params: List = []
        if cell_id is not None:
            sql += " AND s.cell_id = ?"
            params.append(cell_id)
        by_cell: Dict[int, List[Tuple[str, np.ndarray]]] = {}
        for cid, name, columns, n_rows, blob in self._db.execute(
                sql + " ORDER BY s.cell_id, s.name", params):
            cols = json.loads(columns)
            data = np.frombuffer(blob, dtype=np.float64).reshape(
                int(n_rows), len(cols))
            label = name[len("link."):-len(".drops")]
            by_cell.setdefault(int(cid), []).append((label, data))
        out: List[tuple] = []
        for cid, links in sorted(by_cell.items()):
            flows = self._db.execute(
                "SELECT n_flows FROM cells WHERE cell_id = ?",
                (cid,)).fetchone()
            n_flows = int(flows[0]) if flows else 0
            binned: Dict[str, np.ndarray] = {}
            for label, data in links:
                legit = data[data[:, 2] == 0.0]
                if not len(legit):
                    continue
                times, flow_ids = legit[:, 0], legit[:, 1]
                bins = np.floor(times / bin_width).astype(np.int64)
                edges = np.unique(bins)
                counts = np.zeros(int(bins.max()) + 1)
                np.add.at(counts, bins, 1.0)
                binned[label] = counts
                # Per-bin distinct legitimate flows hit: a bin is
                # "synchronized" when at least half the flock lost.
                hit = [len(set(flow_ids[bins == b])) for b in edges]
                sync_bins = sum(
                    1 for n in hit if n_flows and n >= 0.5 * n_flows)
                out.append((
                    cid, label, None, len(legit), len(edges),
                    round(sync_bins / len(edges), 3) if len(edges) else None,
                    None,
                ))
            labels = sorted(binned)
            for i, a in enumerate(labels):
                for b in labels[i + 1:]:
                    size = max(len(binned[a]), len(binned[b]))
                    series_a = np.zeros(size)
                    series_a[:len(binned[a])] = binned[a]
                    series_b = np.zeros(size)
                    series_b[:len(binned[b])] = binned[b]
                    if series_a.std() and series_b.std():
                        corr = float(np.corrcoef(series_a, series_b)[0, 1])
                    else:
                        corr = None
                    out.append((cid, a, b, None, None, None,
                                None if corr is None else round(corr, 3)))
        return names, out


#: canned-query name -> (method name, description) for the CLI.
CANNED_QUERIES = {
    "gamma-star": ("gamma_star",
                   "measured peak-γ per gain-sweep series"),
    "slowest-cells": ("slowest_cells",
                      "most expensive executed cells by wall time"),
    "workers": ("workers",
                "per-worker execution rollup (straggler attribution)"),
    "cache-hits": ("cache_hits",
                   "per-experiment cell accounting by source"),
    "drop-sync": ("drop_sync",
                  "loss-event synchronization from recorded drop series"),
}


def open_readonly(path: Union[str, pathlib.Path]) -> ExperimentStore:
    """Open an existing store (for querying; refuses to create one)."""
    path = pathlib.Path(path)
    if not path.is_file():
        raise FileNotFoundError(f"no such experiment store: {path}")
    return ExperimentStore(path)


def is_store(path: Union[str, pathlib.Path]) -> bool:
    """True when *path* is an sqlite database file."""
    path = pathlib.Path(path)
    if not path.is_file():
        return False
    with path.open("rb") as handle:
        return handle.read(16).startswith(b"SQLite format 3")
