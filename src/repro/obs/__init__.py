"""Observability: metrics, structured run logs, and reporting.

* :mod:`repro.obs.metrics` -- the registry (counters, gauges,
  histograms, timers) and the process-wide enable/disable switch with a
  no-op disabled path;
* :mod:`repro.obs.instrument` -- publishers that snapshot component
  counters (links, queues, TCP, runner) into the registry;
* :mod:`repro.obs.runlog` -- the JSON-lines run-log writer/reader;
* :mod:`repro.obs.store` -- the sqlite experiment store (queryable
  runs/experiments/cells/metrics/series; ``repro obs query``/``trace``);
* :mod:`repro.obs.recorder` -- the in-sim flight recorder (bounded
  ring-buffer time-series capture, bit-identical when enabled);
* :mod:`repro.obs.report` -- the ``repro obs report`` renderer.

This ``__init__`` re-exports only :mod:`repro.obs.metrics` names: the
engine imports the package on its hot path, so the heavier submodules
(subprocess-using runlog, the report renderer) load on demand.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    Timer,
    active,
    collecting,
    disable,
    enable,
    enabled,
    get_registry,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "Timer",
    "active",
    "collecting",
    "disable",
    "enable",
    "enabled",
    "get_registry",
]
