"""An Iperf-like measurement wrapper around a TCP flow.

The paper generates its test-bed workload with Iperf 1.7.0 (reference
[2]); this module reproduces Iperf's client-side reporting -- periodic
interval bandwidth lines plus a final summary -- over a
:class:`~repro.sim.tcp.sender.TCPSender`.
"""

from __future__ import annotations

import dataclasses
from typing import List, TYPE_CHECKING

from repro.util.validate import check_positive

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.tcp.sender import TCPSender

__all__ = ["IperfReport", "IperfClient"]


@dataclasses.dataclass(frozen=True)
class IperfReport:
    """One Iperf interval line.

    Attributes:
        start / end: the interval bounds, seconds.
        transferred_bytes: payload delivered during the interval.
        bandwidth_bps: the interval's average goodput.
    """

    start: float
    end: float
    transferred_bytes: float
    bandwidth_bps: float

    def format_line(self) -> str:
        """Render like an ``iperf -i`` interval line."""
        mbytes = self.transferred_bytes / 1e6
        mbits = self.bandwidth_bps / 1e6
        return (
            f"[{self.start:6.1f}-{self.end:6.1f} sec]  "
            f"{mbytes:8.2f} MBytes  {mbits:7.2f} Mbits/sec"
        )


class IperfClient:
    """Periodic goodput reporting for one sender.

    Call :meth:`start` after the network is built; interval reports
    accumulate in :attr:`reports` and :meth:`summary` gives the
    whole-run line.
    """

    def __init__(self, sender: "TCPSender", *, interval: float = 1.0) -> None:
        self.sender = sender
        self.interval = check_positive("interval", interval)
        self.reports: List[IperfReport] = []
        self._last_time = 0.0
        self._last_bytes = 0.0
        self._started = False

    def start(self) -> None:
        """Begin the flow and the interval reporting."""
        if self._started:
            return
        self._started = True
        sim = self.sender.sim
        self._last_time = sim.now
        self._last_bytes = self.sender.goodput_bytes()
        self.sender.start()
        sim.schedule(self.interval, self._tick)

    def _tick(self) -> None:
        sim = self.sender.sim
        now = sim.now
        total = self.sender.goodput_bytes()
        delta = total - self._last_bytes
        span = now - self._last_time
        if span > 0:
            self.reports.append(IperfReport(
                start=self._last_time,
                end=now,
                transferred_bytes=delta,
                bandwidth_bps=delta * 8.0 / span,
            ))
        self._last_time = now
        self._last_bytes = total
        sim.schedule(self.interval, self._tick)

    def summary(self) -> IperfReport:
        """The whole-run report (from start to the last interval tick)."""
        if not self.reports:
            return IperfReport(0.0, 0.0, 0.0, 0.0)
        start = self.reports[0].start
        end = self.reports[-1].end
        total = sum(report.transferred_bytes for report in self.reports)
        span = end - start
        return IperfReport(
            start=start,
            end=end,
            transferred_bytes=total,
            bandwidth_bps=total * 8.0 / span if span > 0 else 0.0,
        )
