"""Dummynet-style test-bed emulation (Section 4.2, Figs. 11-12).

The paper's second validation platform is a physical test-bed: Linux
hosts generating Iperf TCP flows through a FreeBSD Dummynet box that
emulates a 10 Mb/s, 150 ms pipe with a RED queue sized by the
rule-of-thumb ``B = RTT × R_bottle``.  Dummynet itself is a software
link emulator, so this package emulates the same abstraction over the
packet engine:

* :mod:`repro.testbed.dummynet` -- pipe configuration and the Fig. 11
  topology builder;
* :mod:`repro.testbed.iperf` -- an Iperf-like bulk-TCP workload with
  interval bandwidth reports.

Host parameters follow Section 4.2: TCP NewReno with delayed ACKs
(d = 2) and Linux's 200 ms minimum RTO.
"""

from repro.testbed.dummynet import DummynetPipe, TestbedConfig, TestbedNetwork, build_testbed
from repro.testbed.iperf import IperfClient, IperfReport

__all__ = [
    "DummynetPipe",
    "IperfClient",
    "IperfReport",
    "TestbedConfig",
    "TestbedNetwork",
    "build_testbed",
]
