"""Dummynet pipe emulation and the Fig. 11 test-bed topology.

Dummynet (Rizzo 1997, the paper's reference [20]) intercepts packets and
forces them through configurable *pipes*: a bandwidth limit, a
propagation delay, and a finite queue.  :class:`DummynetPipe` captures a
pipe configuration; :func:`build_testbed` assembles the paper's Fig. 11:

* legitimate user hosts and the attacker on 100 Mb/s links into the
  Dummynet box;
* a 10 Mb/s / 150 ms RTT pipe from the box to the victim, with a RED
  queue sized by the rule-of-thumb ``B = RTT × R_bottle`` and the
  Section-4.2 RED parameters (min_th = 0.2B, max_th = 0.8B, w_q = 0.002,
  max_p = 0.1, gentle);
* 10 victim TCP flows (Iperf) from the users to the victim host.

Node id layout (M flows)::

    0            Dummynet box (ingress router)
    1            victim-side of the pipe (egress router)
    2 .. M+1     user hosts
    M+2          victim host
    M+3          attacker host
"""

from __future__ import annotations

import dataclasses
import random
from typing import List, Optional

import numpy as np

from repro.core.attack import PulseTrain
from repro.obs import metrics as _obs_metrics
from repro.obs.instrument import publish_network
from repro.sim.attacker import PulseAttackSource
from repro.sim.engine import Simulator
from repro.sim.link import Link
from repro.sim.node import Node
from repro.sim.packet import FULL_PACKET_BYTES
from repro.sim.packet import Packet
from repro.sim.queues import DropTailQueue, QueueDiscipline, REDQueue
from repro.sim.tcp import TCPConfig, TCPReceiver, TCPSender, TCPVariant
from repro.util.errors import ConfigurationError
from repro.util.units import mbps, ms
from repro.util.validate import check_positive

__all__ = ["DummynetPipe", "TestbedConfig", "TestbedNetwork", "build_testbed"]


@dataclasses.dataclass(frozen=True)
class DummynetPipe:
    """One Dummynet pipe: ``ipfw pipe N config bw <bw> delay <delay> ...``.

    Attributes:
        bandwidth_bps: the pipe's rate limit.
        delay: one-way added delay, seconds.
        queue_bytes: the pipe's buffer; Dummynet accepts a byte size.
    """

    bandwidth_bps: float
    delay: float
    queue_bytes: float

    def __post_init__(self) -> None:
        check_positive("bandwidth_bps", self.bandwidth_bps)
        check_positive("delay", self.delay)
        check_positive("queue_bytes", self.queue_bytes)

    @classmethod
    def rule_of_thumb(cls, bandwidth_bps: float, rtt: float) -> "DummynetPipe":
        """Buffer by ``B = RTT × R_bottle`` (Appenzeller et al., cited §4.2)."""
        check_positive("rtt", rtt)
        return cls(
            bandwidth_bps=bandwidth_bps,
            delay=rtt / 2.0,
            queue_bytes=rtt * bandwidth_bps / 8.0,
        )

    def red_queue(self, rng: Optional[random.Random] = None) -> REDQueue:
        """The Section-4.2 RED configuration over this pipe's buffer."""
        return REDQueue(
            self.queue_bytes,
            min_th=0.2 * self.queue_bytes,
            max_th=0.8 * self.queue_bytes,
            max_p=0.1,
            w_q=0.002,
            gentle=True,
            byte_mode=True,
            mean_pkt_bytes=FULL_PACKET_BYTES,
            service_rate_bps=self.bandwidth_bps,
            rng=rng,
        )

    def droptail_queue(self) -> DropTailQueue:
        """A drop-tail queue of the same buffer (ablation baseline)."""
        return DropTailQueue(self.queue_bytes)


def _linux_tcp_config() -> TCPConfig:
    """The Section-4.2 host stack: NewReno, delayed ACKs, 200 ms min RTO."""
    return TCPConfig(
        variant=TCPVariant.NEWRENO,
        delayed_ack=2,
        min_rto=0.2,
    )


@dataclasses.dataclass(frozen=True)
class TestbedConfig:
    """Parameters of the Fig. 11 test-bed.

    Frozen (hashable and picklable) so a config can key the experiment
    runner's result cache and ship to worker processes unchanged.
    """

    __test__ = False  # not a pytest class, despite the name

    n_flows: int = 10
    pipe: DummynetPipe = dataclasses.field(
        default_factory=lambda: DummynetPipe.rule_of_thumb(mbps(10), 0.3)
    )
    lan_rate_bps: float = mbps(100)
    lan_delay: float = ms(0.5)
    tcp: TCPConfig = dataclasses.field(default_factory=_linux_tcp_config)
    use_red: bool = True
    seed: int = 7
    #: scheduler backend for the simulator ("heap", "calendar", "auto",
    #: or None for the engine default).  Excluded from equality/hash:
    #: backends dispatch bit-identically, so the choice must not split
    #: the runner's result-cache keys.
    scheduler: Optional[str] = dataclasses.field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.n_flows < 1:
            raise ConfigurationError(f"n_flows must be >= 1, got {self.n_flows}")
        check_positive("lan_rate_bps", self.lan_rate_bps)

    def rtt(self) -> float:
        """Nominal flow RTT: the pipe delay both ways plus LAN hops."""
        return 2.0 * (self.pipe.delay + 2.0 * self.lan_delay)


class TestbedNetwork:
    """The built Fig. 11 scenario."""

    __test__ = False  # not a pytest class, despite the name

    def __init__(self, config: TestbedConfig) -> None:
        self.config = config
        self.sim = Simulator(scheduler=config.scheduler)
        self.rng = random.Random(config.seed)
        # Fresh uid stream per scenario: identical reruns trace identically.
        Packet.reset_uids()

        m = config.n_flows
        self.dummynet = Node(self.sim, 0, "dummynet")
        self.pipe_egress = Node(self.sim, 1, "pipeEgress")
        self.user_nodes = [Node(self.sim, 2 + i, f"user{i}") for i in range(m)]
        self.victim_node = Node(self.sim, 2 + m, "victim")
        self.attacker_node = Node(self.sim, 3 + m, "attacker")

        self._build_links()
        self._build_routes()
        self._build_flows()
        self.attack_sources: List[PulseAttackSource] = []
        self._next_attack_flow_id = 10_000

    # ------------------------------------------------------------------
    def _build_links(self) -> None:
        cfg = self.config
        sim = self.sim
        lan_buffer = 4_000_000.0

        self.user_links = []
        self.user_return_links = []
        for i, user in enumerate(self.user_nodes):
            self.user_links.append(Link(
                sim, user, self.dummynet, cfg.lan_rate_bps, cfg.lan_delay,
                DropTailQueue(lan_buffer), name=f"user{i}->dummynet",
            ))
            self.user_return_links.append(Link(
                sim, self.dummynet, user, cfg.lan_rate_bps, cfg.lan_delay,
                DropTailQueue(lan_buffer), name=f"dummynet->user{i}",
            ))

        pipe = cfg.pipe
        self.pipe_queue: QueueDiscipline = (
            pipe.red_queue(self.rng) if cfg.use_red else pipe.droptail_queue()
        )
        self.pipe_link = Link(
            sim, self.dummynet, self.pipe_egress, pipe.bandwidth_bps,
            pipe.delay, self.pipe_queue, name="pipe",
        )
        self.pipe_return_link = Link(
            sim, self.pipe_egress, self.dummynet, pipe.bandwidth_bps,
            pipe.delay, DropTailQueue(lan_buffer), name="pipe-reverse",
        )
        # Victim attachment: the 10 Mb/s victim link of Fig. 11.
        self.victim_link = Link(
            sim, self.pipe_egress, self.victim_node, pipe.bandwidth_bps,
            cfg.lan_delay, DropTailQueue(lan_buffer), name="egress->victim",
        )
        self.victim_return_link = Link(
            sim, self.victim_node, self.pipe_egress, pipe.bandwidth_bps,
            cfg.lan_delay, DropTailQueue(lan_buffer), name="victim->egress",
        )
        self.attacker_link = Link(
            sim, self.attacker_node, self.dummynet, cfg.lan_rate_bps,
            cfg.lan_delay, DropTailQueue(16_000_000.0), name="attacker->dummynet",
        )

    def _build_routes(self) -> None:
        m = self.config.n_flows
        victim_id = self.victim_node.node_id
        for i in range(m):
            user_id = 2 + i
            self.user_nodes[i].add_route(victim_id, self.dummynet.node_id)
            self.victim_node.add_route(user_id, self.pipe_egress.node_id)
            self.dummynet.add_route(victim_id, self.pipe_egress.node_id)
            self.pipe_egress.add_route(user_id, self.dummynet.node_id)
        self.pipe_egress.add_route(victim_id, victim_id)
        self.attacker_node.add_route(victim_id, self.dummynet.node_id)

    def _build_flows(self) -> None:
        cfg = self.config
        m = cfg.n_flows
        self.senders: List[TCPSender] = []
        self.receivers: List[TCPReceiver] = []
        for i in range(m):
            flow_id = i
            self.senders.append(TCPSender(
                self.sim, self.user_nodes[i], flow_id,
                receiver_node_id=self.victim_node.node_id, config=cfg.tcp,
            ))
            self.receivers.append(TCPReceiver(
                self.sim, self.victim_node, flow_id,
                sender_node_id=2 + i, config=cfg.tcp,
            ))

    # ------------------------------------------------------------------
    def start_flows(self, *, stagger: float = 0.5) -> None:
        """Start all Iperf flows, staggered like manual test-bed launches."""
        for sender in self.senders:
            sender.start(at=self.sim.now + self.rng.uniform(0.0, stagger))

    def add_attack(self, train: PulseTrain, *,
                   packet_bytes: float = FULL_PACKET_BYTES,
                   start_time: float = 0.0) -> PulseAttackSource:
        """Attach (but do not start) a pulse-train attack toward the victim."""
        flow_id = self._next_attack_flow_id
        self._next_attack_flow_id += 1
        self.victim_node.register_agent(flow_id, _discard_packet)
        source = PulseAttackSource(
            self.sim, self.attacker_node, flow_id, self.victim_node.node_id,
            train, packet_bytes=packet_bytes, start_time=start_time,
        )
        self.attack_sources.append(source)
        return source

    def run(self, until: float) -> None:
        """Advance the emulation to absolute time *until*.

        As on the dumbbell, an active metrics registry receives a
        snapshot of the pipe and the TCP flows after each run segment.
        """
        self.sim.run(until=until)
        registry = _obs_metrics.active()
        if registry is not None:
            publish_network(registry, links={
                "pipe": self.pipe_link,
                "pipe_reverse": self.pipe_return_link,
                "attacker": self.attacker_link,
            }, senders=self.senders)

    def state_digest(self) -> tuple:
        """Fingerprint of the whole scenario's dynamic state.

        Same contract as ``DumbbellNetwork.state_digest``: equal digests
        mean two networks evolve identically from here on.
        """
        links = [*self.user_links, *self.user_return_links,
                 self.pipe_link, self.pipe_return_link,
                 self.victim_link, self.victim_return_link,
                 self.attacker_link]
        return (
            self.sim.state_digest(),
            self.rng.getstate(),
            Packet.peek_uid(),
            tuple(link.state_digest() for link in links),
            tuple(s.state_digest() for s in self.senders),
            tuple(r.state_digest() for r in self.receivers),
            self._next_attack_flow_id,
        )

    def flow_rtts(self) -> np.ndarray:
        """Nominal RTT of every flow (identical paths in the test-bed)."""
        return np.full(self.config.n_flows, self.config.rtt())

    def aggregate_goodput_bytes(self) -> float:
        """Total payload bytes delivered across all flows so far."""
        return float(sum(sender.goodput_bytes() for sender in self.senders))


def _discard_packet(_packet) -> None:
    """Victim agent for attack datagrams (they target a closed port)."""


def build_testbed(config: Optional[TestbedConfig] = None) -> TestbedNetwork:
    """Construct the Fig. 11 test-bed scenario."""
    return TestbedNetwork(config if config is not None else TestbedConfig())
