"""Fluid-model backend: coupled AIMD window / bottleneck-queue ODEs.

The packet engine resolves every segment, ACK, and RED coin flip, which
is exact but makes wall time scale with simulated packets.  The gain
framework (``G = Γ·(1−γ)^κ``, Propositions 2-4) only depends on the
AIMD window dynamics and the bottleneck backlog, and those admit the
classic fluid formulation (Avrachenkov-Ayesta-Piunovskiy; Misra-Gong-
Towsley): per-flow congestion windows evolve as ODEs, the bottleneck
queue integrates the rate imbalance, and congestion events apply
discrete jumps to the windows.

This module integrates that hybrid system directly:

* **Windows.**  Flow *i* sends at ``w_i · S_pkt / rtt_i`` bytes/s while
  unfrozen.  Below ``ssthresh`` the window grows geometrically per RTT
  (slow start, base ``1 + 1/d`` with delayed ACKs); above it grows
  additively by ``a/d`` packets per RTT (AIMD(a, b), the paper's
  Section 2.1 parameters).  The RTT used everywhere is the propagation
  RTT plus the current queueing delay ``q/S``.
* **Queue.**  A two-class fluid FIFO backlog: TCP bytes and attack
  bytes share one buffer, drain in proportion to their share of the
  backlog, and overflow once the backlog reaches the loss threshold
  (``max_th = 0.8·B`` for RED/CHOKe -- the deterministic edge of the
  paper's Section-4.2 RED configuration -- or the full buffer for
  drop-tail).
* **Attacker.**  The pulse train is a piecewise-constant forcing term:
  each pulse contributes ``R_attack`` bytes/s between its edges, and
  every edge is an integration breakpoint, so pulses are resolved
  exactly regardless of step size.
* **Loss events.**  An overflow signals every unfrozen flow at most
  once per RTT (the per-window loss response of real TCP).  During a
  pulse-driven overflow, flows whose RTT is short enough that the pulse
  wipes a substantial fraction of their in-flight window take an RTO
  freeze (``w → 1``, slow-start restart after ``max(minRTO, 2·rtt)``) --
  the paper's Section-2.2 timeout mechanism; all other signalled flows
  take a multiplicative decrease.  Ambient (self-congestion) overflows
  are always multiplicative decreases, which yields the usual AIMD
  sawtooth in the unattacked baseline.

Validity limits: the model has no per-packet granularity, so it cannot
express RED's probabilistic early drops, flow-start jitter, delayed-ACK
timer beats, or exponential RTO backoff, and it synchronizes ambient
loss events across flows where RED would desynchronize them.  It is a
γ-landscape localizer -- relative goodput across γ, not absolute bytes
-- which is exactly what the planner pre-pass and the model-accuracy
bench hold it to (see ``benchmarks/test_bench_model_accuracy.py``).

Everything here is deterministic: no RNG is consumed, so the scenario
seed does not influence a fluid result, and repeated runs are
bit-identical.  The module touches no packet-engine state (no
``Simulator``, no ``Packet`` uids), so merely importing or running it
cannot perturb a packet-backend measurement.
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Sequence, Tuple

import numpy as np

from repro.sim.packet import FULL_PACKET_BYTES
from repro.sim.tcp import TCPConfig
from repro.util.errors import ValidationError
from repro.util.validate import check_non_negative, check_positive

__all__ = ["FluidScenario", "FluidResult", "scenario_from_config",
           "simulate_fluid"]

#: Wire size of a full data segment -- the shared constant, aliased
#: under the fluid model's historical name.
WIRE_BYTES = FULL_PACKET_BYTES

#: Default integration step cap, seconds.  Pulse edges, the window
#: opening, and RTO expiries always break a step exactly; the cap only
#: bounds the drift accumulated between events.
DEFAULT_MAX_STEP = 0.025

#: A pulse-driven overflow freezes a flow (RTO) when the pulse spans at
#: least this many of the flow's RTTs -- i.e. several whole windows of
#: in-flight data are lost, so dup-ACK recovery cannot proceed
#: (Section 2.2).  Longer-RTT flows only lose a sliver of their window
#: and recover with a multiplicative decrease, which is the
#: RTT-dependence behind the paper's Fig. 6-9 extent gradient.  The
#: value 2.0 is calibrated against the archived packet-engine fig06
#: panel (see ``benchmarks/test_bench_model_accuracy.py``).
RTO_COVERAGE = 2.0


@dataclasses.dataclass(frozen=True)
class FluidScenario:
    """The fluid model's view of a measurement environment.

    Attributes:
        rtts: two-way propagation delay per flow, seconds.
        service_bps: bottleneck service rate, bits/s.
        buffer_bytes: physical bottleneck buffer.
        loss_threshold_bytes: backlog at which the fluid queue signals
            loss (``0.8·B`` for RED/CHOKe, ``B`` for drop-tail).
        tcp: the victim stack (MSS, AIMD(a, b), delayed ACKs, minRTO).
    """

    rtts: Tuple[float, ...]
    service_bps: float
    buffer_bytes: float
    loss_threshold_bytes: float
    tcp: TCPConfig

    def __post_init__(self) -> None:
        if not self.rtts:
            raise ValidationError("a fluid scenario needs at least one flow")
        for i, rtt in enumerate(self.rtts):
            check_positive(f"rtts[{i}]", rtt)
        check_positive("service_bps", self.service_bps)
        check_positive("buffer_bytes", self.buffer_bytes)
        check_positive("loss_threshold_bytes", self.loss_threshold_bytes)
        if self.loss_threshold_bytes > self.buffer_bytes + 1e-9:
            raise ValidationError(
                f"loss threshold ({self.loss_threshold_bytes}) exceeds the "
                f"buffer ({self.buffer_bytes})"
            )


@dataclasses.dataclass(frozen=True)
class FluidResult:
    """What one fluid integration measured.

    Attributes:
        goodput_bytes: TCP payload bytes delivered in the window.
        loss_events: queue-overflow episodes over the whole run
            (warm-up included).
        rto_events: per-flow RTO freezes those episodes triggered.
        steps: integration steps taken (a cost diagnostic).
    """

    goodput_bytes: float
    loss_events: int
    rto_events: int
    steps: int


def scenario_from_config(config) -> FluidScenario:
    """Map a platform config dataclass onto the fluid model's inputs.

    Accepts either a :class:`~repro.sim.topology.DumbbellConfig` or a
    :class:`~repro.testbed.dummynet.TestbedConfig`; the two are told
    apart structurally (only the test-bed config has a ``pipe``) so this
    low-level module does not import the test-bed layer.
    """
    if hasattr(config, "pipe"):  # TestbedConfig
        rtts = tuple(float(config.rtt()) for _ in range(config.n_flows))
        service_bps = config.pipe.bandwidth_bps
        buffer_bytes = config.pipe.queue_bytes
        early_loss = config.use_red
    else:  # DumbbellConfig
        rtts = tuple(float(r) for r in config.flow_rtts())
        service_bps = config.bottleneck_rate_bps
        buffer_bytes = config.buffer_bytes
        factory_name = getattr(config.queue_factory, "__name__", "")
        early_loss = factory_name != "make_droptail_queue"
    return FluidScenario(
        rtts=rtts,
        service_bps=service_bps,
        buffer_bytes=buffer_bytes,
        loss_threshold_bytes=(0.8 if early_loss else 1.0) * buffer_bytes,
        tcp=config.tcp,
    )


def _forcing_edges(
    sources: Sequence[Tuple], at: float,
) -> Tuple[List[Tuple[float, float]], float]:
    """Flatten (train, offset) sources into sorted rate-delta edges.

    Returns ``(edges, max_extent)`` where each edge is ``(time,
    delta_bytes_per_s)`` and *max_extent* is the longest single pulse --
    the episode length the RTO-severity rule compares RTTs against.
    """
    edges: List[Tuple[float, float]] = []
    max_extent = 0.0
    for train, offset in sources:
        intervals = train.pulse_intervals(at + float(offset))
        for (begin, end), rate_bps in zip(intervals, train.rates_bps):
            edges.append((begin, rate_bps / 8.0))
            edges.append((end, -rate_bps / 8.0))
            max_extent = max(max_extent, end - begin)
    edges.sort()
    return edges, max_extent


def simulate_fluid(
    scenario: FluidScenario,
    *,
    warmup: float,
    window: float,
    sources: Sequence[Tuple] = (),
    max_step: float = DEFAULT_MAX_STEP,
) -> FluidResult:
    """Integrate the hybrid AIMD/queue system and measure windowed goodput.

    *sources* is a sequence of ``(PulseTrain, start_offset)`` pairs; the
    first pulse of each train begins at ``warmup + offset``, matching
    how the packet backend launches attacks after the attack-free
    warm-up.  Goodput is accumulated over ``[warmup, warmup + window]``
    only, exactly like :func:`repro.runner.cells.execute_cell`.
    """
    check_non_negative("warmup", warmup)
    check_positive("window", window)
    check_positive("max_step", max_step)

    tcp = scenario.tcp
    n = len(scenario.rtts)
    rtt = np.asarray(scenario.rtts, dtype=float)
    service = scenario.service_bps / 8.0  # bytes/s
    b_loss = scenario.loss_threshold_bytes
    payload_fraction = tcp.mss / WIRE_BYTES
    add_per_rtt = tcp.aimd.increase / tcp.delayed_ack
    ss_base = 1.0 + 1.0 / tcp.delayed_ack
    horizon = warmup + window
    edges, pulse_extent = _forcing_edges(sources, warmup)
    rto_eligible = pulse_extent >= RTO_COVERAGE * rtt

    w = np.full(n, float(tcp.initial_cwnd))
    ssthresh = np.full(n, float(tcp.initial_ssthresh))
    frozen_until = np.full(n, -math.inf)
    last_cut = np.full(n, -math.inf)
    q = 0.0        # total backlog, bytes
    q_tcp = 0.0    # the TCP-owned share of the backlog
    attack_rate = 0.0
    edge_index = 0
    goodput = 0.0
    loss_events = 0
    rto_events = 0
    steps = 0
    t = 0.0
    tiny = 1e-9
    n_edges = len(edges)

    # Incrementally tracked flow state.  The frozen mask changes only
    # when an RTO fires or ``t`` crosses the earliest thaw time, and a
    # flow can sit below ``ssthresh`` only after a window cut (or at
    # start-up), so both masks are recomputed lazily; between events the
    # hot loop runs a branch-free all-active, all-additive fast path
    # whose float operations are bit-identical to the masked ones.
    frozen = frozen_until > tiny
    active = ~frozen
    n_frozen = 0
    next_thaw = math.inf
    ss_possible = True

    while t < horizon - tiny:
        while edge_index < n_edges and edges[edge_index][0] <= t + tiny:
            attack_rate += edges[edge_index][1]
            edge_index += 1
        if abs(attack_rate) < 1e-6:
            attack_rate = 0.0  # wash float accumulation across many edges

        if n_frozen and t + tiny >= next_thaw:
            frozen = frozen_until > t + tiny
            active = ~frozen
            n_frozen = int(np.count_nonzero(frozen))
            next_thaw = (float(frozen_until[frozen].min())
                         if n_frozen else math.inf)

        next_break = horizon
        if edge_index < n_edges:
            next_break = min(next_break, edges[edge_index][0])
        if t < warmup:
            next_break = min(next_break, warmup)
        if n_frozen:
            next_break = min(next_break, next_thaw)
        h = min(max_step, next_break - t)
        if h <= tiny:
            t = next_break
            continue
        steps += 1

        rtt_eff = rtt + q / service
        sent = w * WIRE_BYTES / rtt_eff
        rates = sent if not n_frozen else np.where(active, sent, 0.0)
        in_tcp = float(rates.sum())
        inflow = in_tcp + attack_rate
        out = service if q > tiny else min(inflow, service)
        if q > tiny:
            tcp_share = q_tcp / q
        else:
            tcp_share = in_tcp / inflow if inflow > 0.0 else 0.0
        out_tcp = out * tcp_share

        q_new = q + (inflow - out) * h
        q_tcp_new = q_tcp + (in_tcp - out_tcp) * h
        overflow = q_new > b_loss + tiny
        if overflow:
            # The spill is dropped at admission, shared by the classes
            # in proportion to their arrival rates (fluid drop-tail).
            spill = q_new - b_loss
            if inflow > 0.0:
                q_tcp_new -= spill * (in_tcp / inflow)
            q_new = b_loss
        if q_new < 0.0:
            q_new = 0.0
        q_tcp_new = min(max(q_tcp_new, 0.0), q_new)

        if t >= warmup - tiny:
            goodput += out_tcp * payload_fraction * h

        if ss_possible:
            slow_start = w < ssthresh
            if slow_start.any():
                # One fused update instead of two masked ones: the
                # per-element math matches the masked form bit for bit,
                # and np.where routes each flow to its regime.
                grown = np.minimum(
                    w * ss_base ** (h / rtt_eff), ssthresh,
                )
                opened = np.minimum(
                    w + add_per_rtt * h / rtt_eff, tcp.max_cwnd,
                )
                w = np.where(
                    frozen, w, np.where(slow_start, grown, opened),
                )
            else:
                if not n_frozen:
                    # No flow below ssthresh and none hiding in a
                    # freeze: slow start is over until the next cut.
                    ss_possible = False
                w_next = np.minimum(
                    w + add_per_rtt * h / rtt_eff, tcp.max_cwnd,
                )
                w = w_next if not n_frozen else np.where(frozen, w, w_next)
        elif not n_frozen:
            w = np.minimum(w + add_per_rtt * h / rtt_eff, tcp.max_cwnd)
        else:
            w = np.where(
                frozen, w,
                np.minimum(w + add_per_rtt * h / rtt_eff, tcp.max_cwnd),
            )

        now = t + h
        if overflow:
            loss_events += 1
            cut = active & (now - last_cut >= rtt_eff)
            if cut.any():
                # A pulse-driven episode: the attacker alone (or nearly
                # alone) saturates the service rate.  Ambient episodes
                # are TCP self-congestion and never freeze a flow.
                if attack_rate > 0.5 * service:
                    rto_mask = cut & rto_eligible
                    md_mask = cut & ~rto_eligible
                else:
                    # RED drops in proportion to a flow's arrival rate,
                    # so an ambient episode signals the fat flows and
                    # spares the thin ones.  Cutting only windows at or
                    # above the active mean reproduces that: windows
                    # equalize, so steady-state rates go as 1/rtt (the
                    # packet engine's RED sharing) instead of the
                    # 1/rtt^2 a fully synchronized cut would produce.
                    rto_mask = np.zeros(n, dtype=bool)
                    md_mask = cut & (w >= float(w[active].mean()))
                if rto_mask.any():
                    rto_events += int(rto_mask.sum())
                    ssthresh[rto_mask] = np.maximum(
                        w[rto_mask] * tcp.aimd.decrease, 2.0,
                    )
                    w[rto_mask] = 1.0
                    frozen_until[rto_mask] = now + np.maximum(
                        tcp.min_rto, 2.0 * rtt[rto_mask],
                    )
                    frozen = frozen_until > now + tiny
                    active = ~frozen
                    n_frozen = int(np.count_nonzero(frozen))
                    next_thaw = (float(frozen_until[frozen].min())
                                 if n_frozen else math.inf)
                if md_mask.any():
                    w[md_mask] = np.maximum(
                        w[md_mask] * tcp.aimd.decrease, 1.0,
                    )
                    ssthresh[md_mask] = np.maximum(w[md_mask], 2.0)
                last_cut[cut] = now
                ss_possible = True

        q, q_tcp = q_new, q_tcp_new
        t = now

    return FluidResult(
        goodput_bytes=goodput,
        loss_events=loss_events,
        rto_events=rto_events,
        steps=steps,
    )
