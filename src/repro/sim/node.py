"""Nodes and static forwarding.

A :class:`Node` is a router or host.  Forwarding is static: each node
holds a routing table mapping destination node id to the outgoing
:class:`~repro.sim.link.Link`.  Hosts additionally host *agents*
(TCP senders/receivers, attack sources) keyed by flow id; a packet whose
``dst`` equals the node id is delivered to the agent registered for its
flow.

Two forwarding planes share the same routing state:

* the **dict plane** (the historical path): each hop probes
  ``_routes[dst]`` then ``_links[next_hop]``;
* the **compiled plane** (default): routes are compiled into a dense
  list ``_next_send`` indexed by destination node id whose entries are
  the *bound* ``Link.send`` of the outgoing interface, so a hop is one
  indexed load and one call.  Hosts with a single outgoing interface
  use an O(1) *default route* instead of a dense table (a 10k-host
  scenario must not hold 10k tables of 20k entries each).

Both planes make identical forwarding decisions and maintain identical
statistics, so simulations are bit-identical across them.  Selection:
``REPRO_FORWARDING=compiled|dict`` (or an explicit ``compiled=``
argument / scenario-config field); see :mod:`repro.sim.routing`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, TYPE_CHECKING

from repro.sim.packet import Packet
from repro.util.env import env_choice
from repro.util.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator
    from repro.sim.link import Link

__all__ = ["Node", "forwarding_default", "FORWARDING_MODES"]

#: Recognized forwarding-plane names.
FORWARDING_MODES = ("compiled", "dict")


def forwarding_default() -> str:
    """The process-default forwarding plane.

    ``REPRO_FORWARDING=compiled|dict`` overrides; unset selects the
    compiled plane.  Both planes are bit-identical, so the choice is a
    pure performance knob (the dict plane exists as the A/B baseline
    for the forwarding benchmark).
    """
    return env_choice("REPRO_FORWARDING", FORWARDING_MODES,
                      default="compiled")


class Node:
    """A network node (host or router).

    ``__slots__`` keeps the per-hop attribute loads in :meth:`receive`
    off the instance-dict path.
    """

    __slots__ = (
        "sim", "node_id", "name", "_links", "_routes", "_agents",
        "undeliverable", "_compiled", "_next_send", "_default_hop",
        "_default_send",
    )

    def __init__(self, sim: "Simulator", node_id: int, name: str = "",
                 *, compiled: Optional[bool] = None) -> None:
        self.sim = sim
        self.node_id = node_id
        self.name = name or f"n{node_id}"
        #: outgoing interface per immediate next-hop node id.
        self._links: Dict[int, "Link"] = {}
        #: destination node id -> next-hop node id.
        self._routes: Dict[int, int] = {}
        #: flow id -> receive callback for locally terminated packets.
        self._agents: Dict[int, Callable[[Packet], None]] = {}
        #: packets that arrived with no registered agent or route.
        self.undeliverable = 0
        #: compiled forwarding plane active for this node.
        self._compiled = (
            forwarding_default() == "compiled" if compiled is None
            else bool(compiled)
        )
        #: dense dst-id-indexed table of bound ``Link.send`` callables
        #: (``None`` entries mean "no specific route").  Mirrors
        #: ``_routes``; maintained by :meth:`add_route`/:meth:`attach_link`.
        self._next_send: List[Optional[Callable[[Packet], bool]]] = []
        #: fallback next hop for destinations absent from the table
        #: (typical for single-homed hosts); ``None`` means unroutable.
        self._default_hop: Optional[int] = None
        self._default_send: Optional[Callable[[Packet], bool]] = None

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach_link(self, neighbor_id: int, link: "Link") -> None:
        """Register *link* as the interface toward *neighbor_id*.

        Called automatically by :class:`~repro.sim.link.Link`.
        """
        self._links[neighbor_id] = link
        # A neighbor is trivially routable via the direct link.
        if neighbor_id not in self._routes:
            self._routes[neighbor_id] = neighbor_id
            self._table_set(neighbor_id, link)

    def add_route(self, dst_id: int, next_hop_id: int) -> None:
        """Route packets for *dst_id* via the link to *next_hop_id*."""
        link = self._links.get(next_hop_id)
        if link is None:
            raise ConfigurationError(
                f"{self.name}: no link toward next hop n{next_hop_id}"
            )
        self._routes[dst_id] = next_hop_id
        self._table_set(dst_id, link)

    def set_default_route(self, next_hop_id: int) -> None:
        """Route destinations with no specific table entry via *next_hop_id*.

        The O(1) routing state for single-homed hosts: a leaf behind one
        access link forwards everything through it, so it needs no
        per-destination entries at all.  Explicit opt-in -- a node
        without a default still counts unroutable packets in
        :attr:`undeliverable`.
        """
        link = self._links.get(next_hop_id)
        if link is None:
            raise ConfigurationError(
                f"{self.name}: no link toward next hop n{next_hop_id}"
            )
        self._default_hop = next_hop_id
        self._default_send = link.send

    def _table_set(self, dst_id: int, link: "Link") -> None:
        """Mirror one route into the dense compiled table."""
        table = self._next_send
        if dst_id >= len(table):
            table.extend([None] * (dst_id + 1 - len(table)))
        table[dst_id] = link.send

    def register_agent(self, flow_id: int, deliver: Callable[[Packet], None]) -> None:
        """Deliver locally terminated packets of *flow_id* to *deliver*.

        Agents must be registered before traffic toward them is in
        flight: the compiled plane resolves the agent when the packet
        enters its final link, not at delivery time.  Every scenario
        builder registers agents at flow-creation time, before the
        flow's first transmission, so both planes see the same agent.
        """
        if flow_id in self._agents:
            raise ConfigurationError(
                f"{self.name}: flow {flow_id} already has an agent"
            )
        self._agents[flow_id] = deliver

    def register_agents(
        self, agents: Mapping[int, Callable[[Packet], None]],
    ) -> None:
        """Bulk-register agents (one dict merge, not one call per flow).

        Used by vectorized scenario setup; duplicate flow ids raise,
        matching :meth:`register_agent`.
        """
        existing = self._agents
        duplicates = existing.keys() & agents.keys()
        if duplicates:
            raise ConfigurationError(
                f"{self.name}: flows {sorted(duplicates)} already have agents"
            )
        existing.update(agents)

    def link_to(self, neighbor_id: int) -> "Link":
        """The direct link toward *neighbor_id* (raises if absent)."""
        try:
            return self._links[neighbor_id]
        except KeyError:
            raise ConfigurationError(
                f"{self.name}: no link toward n{neighbor_id}"
            ) from None

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------
    def _outbound(self, dst_id: int) -> Optional["Link"]:
        """The outgoing link toward *dst_id*, or ``None`` if unroutable.

        The one shared route-lookup implementation: :meth:`forward` and
        :meth:`send` delegate here, :meth:`receive` (and the compiled
        plane's resolve-at-send path in :meth:`Link.send
        <repro.sim.link.Link.send>`) inline exactly this decision
        procedure -- specific route first, default route as fallback.
        """
        next_hop = self._routes.get(dst_id)
        if next_hop is None:
            next_hop = self._default_hop
            if next_hop is None:
                return None
        return self._links[next_hop]

    def _drop_undeliverable(self, _packet: Packet) -> None:
        """Terminal for unroutable/agent-less packets (either plane)."""
        self.undeliverable += 1

    def receive(self, packet: Packet) -> None:
        """Entry point for packets arriving from a link (or locally injected).

        Hops through buffer-tracking links (and direct calls) dispatch
        through here, so the lookup is inlined rather than delegated to
        :meth:`_outbound`; on the compiled plane most hops bypass this
        frame entirely (the upstream link resolved the delivery
        callable at send time).
        """
        dst = packet.dst
        if dst == self.node_id:
            agent = self._agents.get(packet.flow_id)
            if agent is None:
                self.undeliverable += 1
                return
            agent(packet)
            return
        if self._compiled:
            table = self._next_send
            send = table[dst] if dst < len(table) else None
            if send is None:
                send = self._default_send
                if send is None:
                    self.undeliverable += 1
                    return
            send(packet)
            return
        next_hop = self._routes.get(dst)
        if next_hop is None:
            next_hop = self._default_hop
            if next_hop is None:
                self.undeliverable += 1
                return
        self._links[next_hop].send(packet)

    def forward(self, packet: Packet) -> None:
        """Send *packet* toward its destination via the routing table.

        Packets with no route are counted in :attr:`undeliverable` and
        silently discarded, matching a router's behaviour rather than
        crashing mid-simulation.
        """
        link = self._outbound(packet.dst)
        if link is None:
            self.undeliverable += 1
            return
        link.send(packet)

    def send(self, packet: Packet) -> None:
        """Inject a locally generated packet into the network."""
        self.forward(packet)

    def metrics_snapshot(self) -> dict:
        """Node-level telemetry for the observability layer."""
        return {"undeliverable_packets": float(self.undeliverable)}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Node {self.name} links={sorted(self._links)}>"
