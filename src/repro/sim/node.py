"""Nodes and static forwarding.

A :class:`Node` is a router or host.  Forwarding is static: each node
holds a routing table mapping destination node id to the outgoing
:class:`~repro.sim.link.Link`.  Hosts additionally host *agents*
(TCP senders/receivers, attack sources) keyed by flow id; a packet whose
``dst`` equals the node id is delivered to the agent registered for its
flow.
"""

from __future__ import annotations

from typing import Callable, Dict, TYPE_CHECKING

from repro.sim.packet import Packet
from repro.util.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator
    from repro.sim.link import Link

__all__ = ["Node"]


class Node:
    """A network node (host or router).

    ``__slots__`` keeps the per-hop attribute loads in :meth:`receive`
    off the instance-dict path.
    """

    __slots__ = (
        "sim", "node_id", "name", "_links", "_routes", "_agents",
        "undeliverable",
    )

    def __init__(self, sim: "Simulator", node_id: int, name: str = "") -> None:
        self.sim = sim
        self.node_id = node_id
        self.name = name or f"n{node_id}"
        #: outgoing interface per immediate next-hop node id.
        self._links: Dict[int, "Link"] = {}
        #: destination node id -> next-hop node id.
        self._routes: Dict[int, int] = {}
        #: flow id -> receive callback for locally terminated packets.
        self._agents: Dict[int, Callable[[Packet], None]] = {}
        #: packets that arrived with no registered agent (trace aid).
        self.undeliverable = 0

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach_link(self, neighbor_id: int, link: "Link") -> None:
        """Register *link* as the interface toward *neighbor_id*.

        Called automatically by :class:`~repro.sim.link.Link`.
        """
        self._links[neighbor_id] = link
        # A neighbor is trivially routable via the direct link.
        self._routes.setdefault(neighbor_id, neighbor_id)

    def add_route(self, dst_id: int, next_hop_id: int) -> None:
        """Route packets for *dst_id* via the link to *next_hop_id*."""
        if next_hop_id not in self._links:
            raise ConfigurationError(
                f"{self.name}: no link toward next hop n{next_hop_id}"
            )
        self._routes[dst_id] = next_hop_id

    def register_agent(self, flow_id: int, deliver: Callable[[Packet], None]) -> None:
        """Deliver locally terminated packets of *flow_id* to *deliver*."""
        if flow_id in self._agents:
            raise ConfigurationError(
                f"{self.name}: flow {flow_id} already has an agent"
            )
        self._agents[flow_id] = deliver

    def link_to(self, neighbor_id: int) -> "Link":
        """The direct link toward *neighbor_id* (raises if absent)."""
        try:
            return self._links[neighbor_id]
        except KeyError:
            raise ConfigurationError(
                f"{self.name}: no link toward n{neighbor_id}"
            ) from None

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------
    def receive(self, packet: Packet) -> None:
        """Entry point for packets arriving from a link (or locally injected).

        Every hop dispatches through here, so the forwarding lookup is
        inlined rather than delegated to :meth:`forward`.
        """
        if packet.dst == self.node_id:
            agent = self._agents.get(packet.flow_id)
            if agent is None:
                self.undeliverable += 1
                return
            agent(packet)
            return
        next_hop = self._routes.get(packet.dst)
        if next_hop is None:
            self.undeliverable += 1
            return
        self._links[next_hop].send(packet)

    def forward(self, packet: Packet) -> None:
        """Send *packet* toward its destination via the routing table.

        Packets with no route are counted in :attr:`undeliverable` and
        silently discarded, matching a router's behaviour rather than
        crashing mid-simulation.
        """
        next_hop = self._routes.get(packet.dst)
        if next_hop is None:
            self.undeliverable += 1
            return
        self._links[next_hop].send(packet)

    def send(self, packet: Packet) -> None:
        """Inject a locally generated packet into the network."""
        self.forward(packet)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Node {self.name} links={sorted(self._links)}>"
