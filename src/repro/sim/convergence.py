"""In-sim convergence early-exit: stop once the goodput estimate settles.

The paper's measurements run each scenario for a fixed window and read
the delivered payload at the horizon.  For most cells the windowed
goodput *rate* stabilizes long before the horizon -- the scenario is in
steady state (attacked or not) within a few congestion epochs -- so the
tail of the window buys no information.  :class:`GoodputConvergenceMonitor`
watches the cumulative goodput rate since the window opened and calls
:meth:`~repro.sim.engine.Simulator.stop` once the last few estimates
agree to a relative tolerance, recording *when* it stopped so callers
can normalize the partial-horizon byte count into a rate.

The monitor is strictly additive: it schedules its own check events on
the engine calendar and never touches packets, queues, or agents.  An
unconverged run dispatches the exact same network events as an
unmonitored one (the extra check events only shift the engine's seq
counter, which is not part of any measurement).
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Callable, Optional

from repro.util.errors import ValidationError
from repro.util.validate import check_non_negative, check_positive

__all__ = ["ConvergenceConfig", "GoodputConvergenceMonitor"]


@dataclasses.dataclass(frozen=True)
class ConvergenceConfig:
    """When a windowed goodput estimate counts as converged.

    Attributes:
        check_interval: seconds between estimate checks.
        rel_tol: the last :attr:`stable_checks` estimates must all lie
            within this relative band of their mean.
        stable_checks: consecutive agreeing estimates required.
        min_fraction: fraction of the window that must elapse before the
            first check -- transients right after the attack starts must
            not pass for steady state.
        scale_floor: goodput-rate scale (bytes/s) below which the
            tolerance band stops shrinking, mirroring
            :func:`repro.analysis.stats.ci_stable`.  A purely relative
            band never admits near-zero but jittery goodput (fully
            starved flows emitting stray retransmits) -- exactly the
            cells early exit helps most.  The default is well under 1%
            of any bottleneck rate the paper's scenarios use; 0 restores
            the strictly relative criterion.
    """

    check_interval: float = 1.0
    rel_tol: float = 0.02
    stable_checks: int = 3
    min_fraction: float = 0.3
    scale_floor: float = 1e4

    def __post_init__(self) -> None:
        check_positive("check_interval", self.check_interval)
        check_positive("rel_tol", self.rel_tol)
        if self.stable_checks < 2:
            raise ValidationError(
                f"stable_checks must be >= 2, got {self.stable_checks}"
            )
        if not 0.0 <= self.min_fraction < 1.0:
            raise ValidationError(
                f"min_fraction must be in [0, 1), got {self.min_fraction}"
            )
        check_non_negative("scale_floor", self.scale_floor)

    def describe(self) -> dict:
        """A JSON-serializable identity (feeds the cache key)."""
        return {
            "check_interval": self.check_interval,
            "rel_tol": self.rel_tol,
            "stable_checks": self.stable_checks,
            "min_fraction": self.min_fraction,
            "scale_floor": self.scale_floor,
        }


class GoodputConvergenceMonitor:
    """Stops a run early once the goodput rate estimate has stabilized.

    Attach to a warmed network just before opening the measurement
    window::

        monitor = GoodputConvergenceMonitor(
            net.sim, net.aggregate_goodput_bytes, config,
        )
        monitor.arm(start=warmup, horizon=warmup + window)
        net.run(until=warmup + window)
        # monitor.converged_at is None (ran to the horizon) or the stop time

    Attributes:
        converged_at: simulation time at which the run was stopped, or
            ``None`` while unconverged.
        checks_run: estimate checks performed so far.
    """

    def __init__(self, sim, goodput_fn: Callable[[], float],
                 config: ConvergenceConfig) -> None:
        self.sim = sim
        self.goodput_fn = goodput_fn
        self.config = config
        self.converged_at: Optional[float] = None
        self.checks_run = 0
        self._estimates: deque = deque(maxlen=config.stable_checks)
        self._start: Optional[float] = None
        self._start_bytes = 0.0
        self._horizon = 0.0

    def arm(self, *, start: float, horizon: float) -> None:
        """Start monitoring a window spanning [start, horizon].

        May be called any time at or before *start*: the baseline byte
        count is read by a scheduled event when the window actually
        opens, so bytes delivered between arming and *start* can never
        fold into the rate estimates.
        """
        if horizon <= start:
            raise ValidationError(
                f"horizon ({horizon}) must be after start ({start})"
            )
        if self.sim.now > start:
            raise ValidationError(
                f"cannot arm at t={self.sim.now} for a window starting "
                f"at t={start}"
            )
        self._start = start
        self._horizon = horizon
        if self.sim.now >= start:
            self._begin()
        else:
            self.sim.schedule_at(start, self._begin)

    # ------------------------------------------------------------------
    def _begin(self) -> None:
        """Window opening: snapshot the baseline, schedule the checks."""
        self._start_bytes = self.goodput_fn()
        first = self._start + max(
            self.config.min_fraction * (self._horizon - self._start),
            self.config.check_interval,
        )
        if first < self._horizon:
            self.sim.schedule_at(first, self._check)

    def _check(self) -> None:
        now = self.sim.now
        elapsed = now - self._start
        estimate = (self.goodput_fn() - self._start_bytes) / elapsed
        self._estimates.append(estimate)
        self.checks_run += 1
        if len(self._estimates) == self.config.stable_checks:
            mean = sum(self._estimates) / len(self._estimates)
            spread = max(self._estimates) - min(self._estimates)
            # The floor keeps the band non-degenerate for starved flows:
            # a few stray retransmits per window are steady state at
            # (effectively) zero, not an unconverged run.
            scale = max(mean, self.config.scale_floor)
            if spread <= self.config.rel_tol * scale:
                self.converged_at = now
                self.sim.stop()
                return
        next_check = now + self.config.check_interval
        if next_check < self._horizon:
            self.sim.schedule_at(next_check, self._check)
