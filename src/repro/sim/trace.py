"""Tracing and measurement instruments.

These attach to links (via :attr:`Link.monitors`) or are queried from
agents after a run.  The paper's measurements map onto:

* :class:`RateMonitor` — the binned incoming-traffic time series used for
  the quasi-global-synchronization analysis (Fig. 3); it separates attack
  bytes from legitimate bytes.
* :class:`DropMonitor` — per-arrival drop records at the bottleneck.
* :class:`QueueSampler` — periodic queue-occupancy samples.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from repro.sim.packet import Packet
from repro.util.validate import check_positive

__all__ = ["RateMonitor", "DropMonitor", "QueueSampler"]


class RateMonitor:
    """Bins accepted bytes on a link into fixed-width time buckets.

    Attach to a link with ``link.monitors.append(monitor.observe)``.

    Args:
        bin_width: bucket width in seconds (the paper uses sub-second bins
            to resolve pulses of 50-150 ms).
        horizon: observation window in seconds; arrivals past it are
            ignored so the arrays have a fixed, known shape.
        count_dropped: if True, dropped arrivals are counted too
            (offered load); if False only accepted bytes are counted
            (carried load).  The paper's "incoming traffic" is offered
            load at the router, so the default is True.
    """

    def __init__(self, bin_width: float, horizon: float, *,
                 count_dropped: bool = True) -> None:
        self.bin_width = check_positive("bin_width", bin_width)
        self.horizon = check_positive("horizon", horizon)
        self.count_dropped = count_dropped
        self.n_bins = int(math.ceil(horizon / bin_width))
        # Plain lists, not arrays: observe() runs per arrival on the
        # link hot path, and a list element += is several times cheaper
        # than a numpy scalar update.  The array views are built on read.
        self._total = [0.0] * self.n_bins
        self._attack = [0.0] * self.n_bins

    def observe(self, packet: Packet, now: float, accepted: bool) -> None:
        """Link-monitor callback."""
        if not accepted and not self.count_dropped:
            return
        index = int(now / self.bin_width)
        if 0 <= index < self.n_bins:
            self._total[index] += packet.size_bytes
            if packet.is_attack:
                self._attack[index] += packet.size_bytes

    def ingest(self, times, sizes, attack, accepted=None) -> None:
        """Vectorized :meth:`observe` over per-arrival arrays.

        The flight recorder's harvest path: it captures one flat row
        per arrival in-sim and bins them all here afterwards.
        ``np.add.at`` accumulates in element order, so the sums are
        bit-identical to observing each arrival in sequence.
        """
        times = np.asarray(times, dtype=np.float64)
        sizes = np.asarray(sizes, dtype=np.float64)
        attack = np.asarray(attack, dtype=bool)
        if accepted is not None and not self.count_dropped:
            keep = np.asarray(accepted, dtype=bool)
            times, sizes, attack = times[keep], sizes[keep], attack[keep]
        index = (times / self.bin_width).astype(np.int64)
        ok = (index >= 0) & (index < self.n_bins)
        total = np.array(self._total)
        np.add.at(total, index[ok], sizes[ok])
        self._total = total.tolist()
        attacked = ok & attack
        attack_total = np.array(self._attack)
        np.add.at(attack_total, index[attacked], sizes[attacked])
        self._attack = attack_total.tolist()

    # ------------------------------------------------------------------
    @property
    def times(self) -> np.ndarray:
        """Bin centre timestamps, seconds."""
        return (np.arange(self.n_bins) + 0.5) * self.bin_width

    @property
    def bytes_per_bin(self) -> np.ndarray:
        """Total bytes (attack + legitimate) per bin."""
        return np.array(self._total)

    @property
    def attack_bytes_per_bin(self) -> np.ndarray:
        """Attack bytes per bin."""
        return np.array(self._attack)

    @property
    def legit_bytes_per_bin(self) -> np.ndarray:
        """Legitimate (non-attack) bytes per bin."""
        return np.array(self._total) - np.array(self._attack)

    def rate_bps(self) -> np.ndarray:
        """Per-bin average arrival rate in bits per second."""
        return np.array(self._total) * 8.0 / self.bin_width

    def as_columns(self) -> np.ndarray:
        """``(time, total_bytes, attack_bytes)`` rows (flight-recorder
        harvest format; one row per bin)."""
        return np.column_stack([self.times, self._total, self._attack])


class DropMonitor:
    """Records ``(time, flow_id, is_attack)`` for every dropped arrival.

    :attr:`legit_drops` / :attr:`attack_drops` are running counters kept
    on each observation, so querying them mid-run (e.g. a per-pulse
    damage probe) is O(1) instead of a scan over every record so far.
    """

    def __init__(self) -> None:
        self.records: List[Tuple[float, int, bool]] = []
        self._attack_drops = 0

    def observe(self, packet: Packet, now: float, accepted: bool) -> None:
        """Link-monitor callback."""
        if not accepted:
            is_attack = packet.is_attack
            self.records.append((now, packet.flow_id, is_attack))
            if is_attack:
                self._attack_drops += 1

    @property
    def total_drops(self) -> int:
        return len(self.records)

    @property
    def legit_drops(self) -> int:
        return len(self.records) - self._attack_drops

    @property
    def attack_drops(self) -> int:
        return self._attack_drops

    def as_columns(self) -> np.ndarray:
        """``(time, flow_id, is_attack)`` float rows (flight-recorder
        harvest format; one row per dropped arrival)."""
        if not self.records:
            return np.empty((0, 3))
        return np.array(
            [(t, float(flow_id), float(is_attack))
             for t, flow_id, is_attack in self.records], dtype=np.float64)

    def drop_times(self, *, legit_only: bool = False) -> np.ndarray:
        """Timestamps of drops, optionally restricted to legitimate flows."""
        return np.array([
            t for t, _, is_attack in self.records
            if not (legit_only and is_attack)
        ])


class QueueSampler:
    """Samples a link's buffer occupancy every *interval* seconds.

    Start with :meth:`start`; samples accumulate in :attr:`samples` as
    ``(time, queue_bytes, queue_packets)``.
    """

    def __init__(self, link, interval: float = 0.01,
                 horizon: Optional[float] = None) -> None:
        self.link = link
        self.interval = check_positive("interval", interval)
        self.horizon = horizon
        self.samples: List[Tuple[float, float, int]] = []

    def start(self) -> None:
        """Begin periodic sampling (schedules itself)."""
        self._tick()

    def _tick(self) -> None:
        sim = self.link.sim
        now = sim.now
        if self.horizon is not None and now > self.horizon:
            return
        self.samples.append((now, self.link.queue_bytes, self.link.queue_packets))
        sim.schedule(self.interval, self._tick)

    def as_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return (times, queue_bytes, queue_packets) as numpy arrays."""
        if not self.samples:
            return np.array([]), np.array([]), np.array([])
        times, qbytes, qpkts = zip(*self.samples)
        return np.array(times), np.array(qbytes), np.array(qpkts)
