"""Discrete-event simulation engine.

A minimal but complete event scheduler in the style of ns-2's
``Scheduler``: a binary-heap calendar of timestamped callbacks, a
monotonically advancing clock, and cancellable event handles.

The engine is deliberately unaware of networking; links, queues, and TCP
agents schedule plain callables.  This keeps the core loop tight (the
simulator executes a few million events for a one-minute dumbbell
scenario) and trivially testable.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional

from repro.util.errors import SimulationError

__all__ = ["Event", "Simulator"]


class Event:
    """A scheduled callback.

    Returned by :meth:`Simulator.schedule`; hold on to it only if you may
    need to :meth:`cancel` it (e.g. a retransmission timer).  Events
    compare by ``(time, seq)`` so simultaneous events fire in FIFO
    scheduling order, which keeps runs deterministic.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent; safe after firing."""
        self.cancelled = True
        # Drop references so a cancelled timer does not pin packets/agents
        # in memory until the heap drains past it.
        self.fn = _noop
        self.args = ()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.6f} seq={self.seq} {state}>"


def _noop(*_args: Any) -> None:
    """Target for cancelled events."""


class Simulator:
    """The event loop.

    Typical use::

        sim = Simulator()
        sim.schedule(1.0, print, "hello at t=1")
        sim.run(until=10.0)

    The clock starts at 0.0 and only moves forward.  Scheduling into the
    past raises :class:`SimulationError` (a zero delay is allowed and
    fires after all previously scheduled events at the same timestamp).
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: List[Event] = []
        self._counter = itertools.count()
        self._events_executed = 0
        self._running = False
        self._stopped = False

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of events dispatched so far (cancelled events excluded)."""
        return self._events_executed

    @property
    def pending_events(self) -> int:
        """Number of events still in the calendar, including cancelled ones."""
        return len(self._heap)

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run *delay* seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run at absolute time *time*."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before current time t={self._now}"
            )
        event = Event(time, next(self._counter), fn, args)
        heapq.heappush(self._heap, event)
        return event

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Dispatch events in timestamp order.

        Args:
            until: stop once the clock would pass this time.  Events at
                exactly ``until`` still fire.  ``None`` drains the calendar.
            max_events: safety valve; raise :class:`SimulationError` rather
                than dispatch more than this many events (an unbounded event
                cascade is always a bug in a finite scenario).  The budget is
                checked before dispatch, so exactly ``max_events`` events
                have executed when the error is raised.

        Returns:
            The number of events executed by this call.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not re-entrant")
        self._running = True
        self._stopped = False
        executed = 0
        heap = self._heap
        try:
            while heap and not self._stopped:
                event = heap[0]
                if until is not None and event.time > until:
                    break
                if event.cancelled:
                    heapq.heappop(heap)
                    continue
                # Check the budget *before* dispatch so the cascade stops at
                # exactly max_events executed; the offending event stays in
                # the calendar rather than firing past the budget.
                if max_events is not None and executed >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; runaway event cascade?"
                    )
                heapq.heappop(heap)
                self._now = event.time
                event.fn(*event.args)
                executed += 1
                self._events_executed += 1
        finally:
            self._running = False
        if until is not None and not self._stopped and self._now < until:
            # Advance the clock to the horizon even if the calendar drained
            # early, so rate monitors see the full observation window.
            self._now = until
        return executed

    def stop(self) -> None:
        """Stop :meth:`run` after the currently executing event returns."""
        self._stopped = True
