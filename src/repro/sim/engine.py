"""Discrete-event simulation engine.

A minimal but complete event scheduler in the style of ns-2's
``Scheduler``: a binary-heap calendar of timestamped callbacks, a
monotonically advancing clock, and cancellable event handles.

The engine is deliberately unaware of networking; links, queues, and TCP
agents schedule plain callables.  This keeps the core loop tight (the
simulator executes a few million events for a one-minute dumbbell
scenario) and trivially testable.

Hot-path design: a calendar entry is a 4-element list
``[time, seq, fn, args]`` (see :class:`Event`), so ``heapq`` orders
entries with C-level sequence comparison -- ``time`` first, then the
unique ``seq`` tiebreaker, never reaching the callable.  Python-level
``__lt__`` dispatch used to dominate the loop at a few million events
per run.  Cancellation clears the callable slot in place (``fn = None``)
instead of removing from the heap, and the dispatch loop skips such
entries without counting them.
"""

from __future__ import annotations

import copy as _copy
import itertools
from heapq import heappop, heappush
from math import inf
from time import perf_counter
from typing import Any, Callable, List, Optional

from repro.obs import metrics as _obs
from repro.util.errors import SimulationError

__all__ = ["Event", "Simulator", "total_events_dispatched"]

#: Process-wide count of events dispatched across every Simulator; the
#: profiling instrumentation (:mod:`repro.sim.profile`) reads this to
#: compute events/sec for experiments that build simulators internally.
_TOTAL_DISPATCHED = 0


def total_events_dispatched() -> int:
    """Events dispatched by all simulators in this process so far."""
    return _TOTAL_DISPATCHED


class Event(list):
    """A scheduled callback: the heap entry ``[time, seq, fn, args]``.

    Returned by :meth:`Simulator.schedule`; hold on to it only if you may
    need to :meth:`cancel` it (e.g. a retransmission timer).  The entry
    itself is the cancellation handle -- a list subclass, so the heap
    compares entries with C-level lexicographic comparison on
    ``(time, seq)``.  ``seq`` is unique per simulator, which keeps
    simultaneous events in FIFO scheduling order (deterministic runs)
    and guarantees the comparison never reaches the callable.

    Construct with the ready-made entry sequence, e.g.
    ``Event((time, seq, fn, args))``.
    """

    __slots__ = ()

    @property
    def time(self) -> float:
        """Scheduled firing time, seconds."""
        return self[0]

    @property
    def seq(self) -> int:
        """FIFO tiebreaker, unique per simulator."""
        return self[1]

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` has been called."""
        return self[2] is None

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent; safe after firing."""
        # Clearing in place (rather than removing from the heap) keeps
        # cancellation O(1); dropping the callback and args also ensures
        # a cancelled timer does not pin packets/agents in memory until
        # the heap drains past it.
        self[2] = None
        self[3] = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self[2] is None else "pending"
        return f"<Event t={self[0]:.6f} seq={self[1]} {state}>"


class Simulator:
    """The event loop.

    Typical use::

        sim = Simulator()
        sim.schedule(1.0, print, "hello at t=1")
        sim.run(until=10.0)

    The clock starts at 0.0 and only moves forward.  Scheduling into the
    past raises :class:`SimulationError` (a zero delay is allowed and
    fires after all previously scheduled events at the same timestamp).
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: List[Event] = []
        self._counter = itertools.count()
        self._events_executed = 0
        self._events_cancelled_skipped = 0
        self._running = False
        self._stopped = False

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of events dispatched so far (cancelled events excluded)."""
        return self._events_executed

    @property
    def events_cancelled_skipped(self) -> int:
        """Cancelled calendar entries the dispatch loop has drained."""
        return self._events_cancelled_skipped

    @property
    def pending_events(self) -> int:
        """Number of events still in the calendar, including cancelled ones."""
        return len(self._heap)

    @property
    def next_event_seq(self) -> int:
        """The seq the next scheduled event will receive (non-consuming).

        Two simulators whose clocks, calendars, and seq counters agree
        dispatch identically; warm-start checkpointing uses this to
        assert a forked engine resumes exactly where the original left
        off.
        """
        # itertools.count cannot be inspected in place; advance a copy.
        return next(_copy.copy(self._counter))

    def state_digest(self) -> tuple:
        """A comparable fingerprint of the full scheduling state.

        Covers the clock, the seq counter position, and every calendar
        entry's ``(time, seq, cancelled)`` triple in heap order.  Heap
        order is deterministic for identical operation sequences, so two
        digests are equal iff the engines will dispatch identically.
        The callables themselves are deliberately excluded -- bound
        methods never compare equal across deep copies.
        """
        return (
            self._now,
            self.next_event_seq,
            tuple((entry[0], entry[1], entry[2] is None)
                  for entry in self._heap),
        )

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run *delay* seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        event = Event((self._now + delay, next(self._counter), fn, args))
        heappush(self._heap, event)
        return event

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run at absolute time *time*."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before current time t={self._now}"
            )
        event = Event((time, next(self._counter), fn, args))
        heappush(self._heap, event)
        return event

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Dispatch events in timestamp order.

        Args:
            until: stop once the clock would pass this time.  Events at
                exactly ``until`` still fire.  ``None`` drains the calendar.
            max_events: safety valve; raise :class:`SimulationError` rather
                than dispatch more than this many events (an unbounded event
                cascade is always a bug in a finite scenario).  The budget is
                checked before dispatch, so exactly ``max_events`` events
                have executed when the error is raised.

        Returns:
            The number of events executed by this call.
        """
        global _TOTAL_DISPATCHED
        if self._running:
            raise SimulationError("Simulator.run() is not re-entrant")
        self._running = True
        self._stopped = False
        # Bind the loop state to locals; infinities stand in for "no
        # horizon" / "no budget" so the loop body stays branch-light.
        horizon = inf if until is None else until
        budget = inf if max_events is None else max_events
        executed = 0
        cancelled = 0
        heap = self._heap
        pop = heappop
        # Observability forks the loop *once per run*: with no registry
        # active the original uninstrumented loop executes, so the
        # disabled path costs a single `is None` check per run() call.
        # The instrumented twin dispatches the exact same events in the
        # same order -- it only adds bookkeeping (peak calendar depth,
        # wall-clock time), never randomness or scheduling.
        registry = _obs.active()
        if registry is not None:
            wall_started = perf_counter()
            sim_started = self._now
            peak_depth = len(heap)
        try:
            if registry is None:
                while heap and not self._stopped:
                    entry = heap[0]
                    time = entry[0]
                    if time > horizon:
                        break
                    fn = entry[2]
                    if fn is None:  # cancelled: drop without counting
                        pop(heap)
                        cancelled += 1
                        continue
                    # Check the budget *before* dispatch so the cascade
                    # stops at exactly max_events executed; the offending
                    # event stays in the calendar rather than firing past
                    # the budget.
                    if executed >= budget:
                        raise SimulationError(
                            f"exceeded max_events={max_events}; "
                            "runaway event cascade?"
                        )
                    pop(heap)
                    self._now = time
                    fn(*entry[3])
                    executed += 1
                    self._events_executed += 1
            else:
                while heap and not self._stopped:
                    depth = len(heap)
                    if depth > peak_depth:
                        peak_depth = depth
                    entry = heap[0]
                    time = entry[0]
                    if time > horizon:
                        break
                    fn = entry[2]
                    if fn is None:
                        pop(heap)
                        cancelled += 1
                        continue
                    if executed >= budget:
                        raise SimulationError(
                            f"exceeded max_events={max_events}; "
                            "runaway event cascade?"
                        )
                    pop(heap)
                    self._now = time
                    fn(*entry[3])
                    executed += 1
                    self._events_executed += 1
        finally:
            self._running = False
            self._events_cancelled_skipped += cancelled
            _TOTAL_DISPATCHED += executed
        if until is not None and not self._stopped and self._now < until:
            # Advance the clock to the horizon even if the calendar drained
            # early, so rate monitors see the full observation window.
            self._now = until
        if registry is not None:
            registry.counter("engine.runs").inc()
            registry.counter("engine.events_dispatched").inc(executed)
            registry.counter("engine.events_cancelled_skipped").inc(cancelled)
            registry.counter("engine.wall_seconds").inc(
                perf_counter() - wall_started)
            registry.counter("engine.sim_seconds").inc(
                self._now - sim_started)
            registry.gauge("engine.peak_calendar_depth").track_max(peak_depth)
        return executed

    def stop(self) -> None:
        """Stop :meth:`run` after the currently executing event returns."""
        self._stopped = True
