"""Discrete-event simulation engine with pluggable calendar backends.

A minimal but complete event scheduler in the style of ns-2's
``Scheduler``: a calendar of timestamped callbacks, a monotonically
advancing clock, and cancellable event handles.

The engine is deliberately unaware of networking; links, queues, and TCP
agents schedule plain callables.  This keeps the core loop tight (the
simulator executes a few million events for a one-minute dumbbell
scenario) and trivially testable.

Scheduler backends
------------------
Two interchangeable calendar structures implement the same dispatch
contract (strict ``(time, seq)`` total order, so results are
bit-identical whichever backend runs):

* :class:`HeapScheduler` -- a binary heap (``heapq``).  O(log n) per
  operation with tiny constants; the best choice for the paper's
  15-flow dumbbell, where calendar depth stays in the hundreds.
* :class:`CalendarQueue` -- a Brown-style calendar queue (the structure
  ns-2 ships as its *default* scheduler): a time-bucketed circular
  array with automatic bucket-count/width resizing, O(1) amortized
  enqueue/dequeue.  It wins once calendar depth reaches thousands of
  entries (tens of thousands of flows keeping RTO timers pending).

Selection: ``Simulator(scheduler=...)`` accepts ``"heap"``,
``"calendar"`` or ``"auto"``; the default comes from the
``REPRO_SCHEDULER`` environment variable, else ``"auto"``.  Auto mode
starts on the heap and migrates the whole calendar to a
:class:`CalendarQueue` once the live depth crosses
:data:`AUTO_CALENDAR_DEPTH` (the measured crossover; see DESIGN.md).
Migration happens only between run segments / outside the dispatch
loop, preserves every pending entry, and never changes dispatch order.

Hot-path design
---------------
A calendar entry is a small list ``[time, seq, fn, args]`` (plus an
owner slot on cancellable entries -- see :class:`Event`), so both
backends order entries with C-level sequence comparison -- ``time``
first, then the unique ``seq`` tiebreaker, never reaching the callable.

Zero-churn event path: callers that never cancel (per-packet delivery,
attack emission chains) schedule *transient* entries via
``Simulator._push_transient``; under the calendar backend the dispatch
loop recycles fired transient entries through a freelist instead of
allocating a fresh list per event (the heap backend keeps the baseline
allocation-per-event behavior).  At many-flows scale the recycling
also keeps the cyclic GC quiet: fewer container allocations means far
fewer full collections over the (huge) scenario object graph.
Cancellable events (RTO / delayed-ACK timers)
are :class:`Event` handles and are **never** recycled, so a stale
handle can never alias a newer event; cancellation clears the callable
slot in place (``fn = None``) and counts the entry in the backend's
``cancelled_pending`` total (keeping ``pending_events`` and the
``engine.peak_calendar_depth`` gauge honest).  The heap drains
cancelled entries lazily when their timestamp comes up; the calendar
queue additionally compacts them away wholesale once they exceed two
thirds of all pending entries, so dead RTO timers cannot inflate it.
"""

from __future__ import annotations

import copy as _copy
import itertools
from heapq import heapify, heappop, heappush
from math import inf
from time import perf_counter
from typing import Any, Callable, List, Optional, Tuple

from repro.obs import metrics as _obs
from repro.util.env import env_choice
from repro.util.errors import SimulationError

__all__ = ["Event", "Simulator", "HeapScheduler", "CalendarQueue",
           "total_events_dispatched", "scheduler_builds",
           "AUTO_CALENDAR_DEPTH", "SCHEDULER_CHOICES"]

#: Process-wide count of events dispatched across every Simulator; the
#: profiling instrumentation (:mod:`repro.sim.profile`) reads this to
#: compute events/sec for experiments that build simulators internally.
_TOTAL_DISPATCHED = 0

#: Process-wide backend usage: how many Simulators selected each
#: backend (auto-migrations count toward "calendar" as well), so a
#: profile report can state which structure actually ran.
_SCHEDULER_BUILDS = {"heap": 0, "calendar": 0}

#: Valid values for ``Simulator(scheduler=...)`` / ``REPRO_SCHEDULER``.
SCHEDULER_CHOICES = ("heap", "calendar", "auto")

#: Live-depth crossover at which auto mode migrates heap -> calendar.
#: Measured on full dumbbell scenarios (see DESIGN.md "Scheduler
#: backends"): the heap wins below ~3k live entries (2k-flow dumbbell:
#: calendar at 0.9x), the backends cross between 4k and 6k, and the
#: calendar wins from ~8k up (10k-flow dumbbell: 1.05-1.2x warm, wider
#: on first run in a process), with the gap growing with depth (1.5x
#: on scheduler-bound churn at 200k+ pending).  The paper's own
#: scenarios stay well under 1k, so they keep the heap.
AUTO_CALENDAR_DEPTH = 5000

#: Upper bound on recycled entries kept per backend, so a transient
#: event storm cannot pin memory after it drains.
_FREELIST_CAP = 8192

#: The calendar queue compacts cancelled entries away once they exceed
#: this fraction of all pending entries (and at least ``_COMPACT_MIN``
#: of them exist).  2/3 bounds raw occupancy at 3x the live count while
#: keeping rebuilds rare: bucket-resident dead entries cost nothing
#: until their bucket is loaded, so eager compaction buys little.
_COMPACT_FRACTION = 2.0 / 3.0
_COMPACT_MIN = 64


def total_events_dispatched() -> int:
    """Events dispatched by all simulators in this process so far."""
    return _TOTAL_DISPATCHED


def scheduler_builds() -> dict:
    """Per-backend Simulator construction counts for this process."""
    return dict(_SCHEDULER_BUILDS)


def scheduler_from_env() -> str:
    """The backend ``REPRO_SCHEDULER`` selects (default ``"auto"``)."""
    return env_choice("REPRO_SCHEDULER", SCHEDULER_CHOICES, default="auto")


class Event(list):
    """A cancellable scheduled callback: ``[time, seq, fn, args, owner]``.

    Returned by :meth:`Simulator.schedule`; hold on to it only if you may
    need to :meth:`cancel` it (e.g. a retransmission timer).  The entry
    itself is the cancellation handle -- a list subclass, so the
    calendar compares entries with C-level lexicographic comparison on
    ``(time, seq)``.  ``seq`` is unique per simulator, which keeps
    simultaneous events in FIFO scheduling order (deterministic runs)
    and guarantees the comparison never reaches the callable.

    ``owner`` is the scheduler backend holding the entry; cancellation
    reports into its live-entry accounting.  Event handles are never
    recycled through the freelist (only anonymous transient entries
    are), so a handle kept after its event fired stays inert forever.

    Construct with the ready-made entry sequence, e.g.
    ``Event((time, seq, fn, args, owner))``.
    """

    __slots__ = ()

    @property
    def time(self) -> float:
        """Scheduled firing time, seconds."""
        return self[0]

    @property
    def seq(self) -> int:
        """FIFO tiebreaker, unique per simulator."""
        return self[1]

    @property
    def cancelled(self) -> bool:
        """True once the event can no longer fire (cancelled or fired)."""
        return self[2] is None

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent; safe after firing."""
        # Clearing in place (rather than removing from the calendar)
        # keeps cancellation O(1); dropping the callback and args also
        # ensures a cancelled timer does not pin packets/agents in
        # memory until the calendar drains or compacts past it.
        if self[2] is None:
            return
        self[2] = None
        self[3] = ()
        owner = self[4] if len(self) > 4 else None
        if owner is not None:
            owner.note_cancelled()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self[2] is None else "pending"
        return f"<Event t={self[0]:.6f} seq={self[1]} {state}>"


class HeapScheduler:
    """Binary-heap calendar backend (``heapq``); O(log n) per operation.

    The reference baseline: one fresh entry list per scheduled event
    and lazy cancellation (dead entries drain when their timestamp
    comes up).  Ideal at small depth -- C ``heapq`` constants are hard
    to beat -- but at many-flows scale it pays O(log n) pops over a
    structure inflated by dead RTO timers, plus an allocation per
    event that keeps the cyclic garbage collector busy.  The
    :class:`CalendarQueue` backend addresses exactly those costs
    (bucketed O(1) enqueue, compaction, freelist).
    """

    name = "heap"

    __slots__ = ("entries", "free", "counter", "cancelled_pending",
                 "recycled", "compactions", "events_compacted")

    def __init__(self, counter) -> None:
        #: the heap itself; the dispatch loop reaches in directly.
        self.entries: List[Any] = []
        #: freelist slot for API parity with CalendarQueue; the heap
        #: backend never recycles (baseline allocation behavior), so
        #: this stays empty.
        self.free: List[Any] = []
        #: the owning simulator's seq counter (shared across migration).
        self.counter = counter
        #: calendar entries cancelled but not yet drained/compacted.
        self.cancelled_pending = 0
        self.recycled = 0
        self.compactions = 0
        self.events_compacted = 0

    # -- scheduling ----------------------------------------------------
    def push_handle(self, time: float, fn, args) -> Event:
        """Schedule a cancellable event; returns its handle."""
        event = Event((time, next(self.counter), fn, args, self))
        heappush(self.entries, event)
        return event

    def push_transient(self, time: float, fn, args) -> None:
        """Schedule a fire-and-forget event (no handle)."""
        heappush(self.entries, [time, next(self.counter), fn, args])

    # -- accounting ----------------------------------------------------
    def __len__(self) -> int:
        return len(self.entries)

    @property
    def live_count(self) -> int:
        """Pending entries that can still fire (cancelled excluded)."""
        return len(self.entries) - self.cancelled_pending

    def note_cancelled(self) -> None:
        """Called by :meth:`Event.cancel`.

        The heap drains cancelled entries lazily, when the dispatch
        loop reaches their timestamp -- a dead RTO timer therefore
        inflates the structure until its (cancelled) expiry would have
        arrived.  This is the classic heap-scheduler weakness at many
        flows; the :class:`CalendarQueue` backend compacts instead.
        The counter keeps ``pending_events`` and the depth gauge
        honest in the meantime.
        """
        self.cancelled_pending += 1

    def compact(self) -> None:
        """Drop cancelled entries and re-heapify, in place.

        Not triggered automatically (see :meth:`note_cancelled`);
        exposed for API parity with :class:`CalendarQueue` and for
        explicit housekeeping between run segments.  In-place (slice
        assignment + ``heapify``) so a dispatch loop holding the
        ``entries`` list as a local keeps seeing the live structure.
        Dispatch order is unaffected: a heap pops the same
        ``(time, seq)`` order whatever its internal layout.
        """
        entries = self.entries
        removed = self.cancelled_pending
        entries[:] = [e for e in entries if e[2] is not None]
        heapify(entries)
        self.cancelled_pending = 0
        self.compactions += 1
        self.events_compacted += removed

    # -- introspection / migration ------------------------------------
    def live_entries(self) -> List[Any]:
        """The live entries, in no particular order."""
        return [e for e in self.entries if e[2] is not None]

    def digest_entries(self) -> Tuple[Tuple[float, int], ...]:
        """Live ``(time, seq)`` pairs in sorted order (canonical form).

        Sorted -- not raw heap order -- so digests compare equal across
        scheduler backends and across heaps built by different push
        sequences; cancelled entries are excluded because they can
        never influence dispatch (a compacting backend drops them
        eagerly, a lazy one on drain).
        """
        return tuple(sorted((e[0], e[1]) for e in self.entries
                            if e[2] is not None))


class CalendarQueue:
    """Calendar-queue backend: bucketed circular array + dispatch front.

    A two-level variant of Brown's calendar queue (R. Brown, *Calendar
    Queues: A Fast O(1) Priority Queue Implementation for the
    Simulation Event Set Problem*, CACM 1988 -- the structure ns-2
    ships as its default scheduler), adapted to CPython's constant
    factors:

    * Far-future entries live in ``nbuckets`` *unsorted* buckets, each
      covering ``width`` seconds of simulated time: an entry at time
      *t* belongs to absolute bucket index ``int(t / width)``, stored
      at ring position ``index % nbuckets``.  Enqueue is a plain
      ``list.append`` -- O(1), no comparisons at all.
    * Due entries live in a small binary-heap *front* (C ``heapq``),
      which the dispatch loop pops directly.  When the front drains,
      the ring advances one bucket: entries of the next absolute index
      are filtered out of their bucket and heapified into the front.
      The front only ever holds about one bucket's worth of events, so
      its O(log f) operations run on a tiny f regardless of total
      calendar depth.
    * Classification is *index* arithmetic on both sides -- an entry
      goes to the front iff ``int(t / width) <= cur_abs``, the exact
      comparison the bucket loader uses -- so an event scheduled
      exactly on a bucket boundary can never be mis-ordered by
      floating-point rounding (``int(t / w)`` is monotone in ``t``).
    * Resizing keeps occupancy amortized O(1): the bucket count
      doubles when live entries exceed ``2 * nbuckets`` and halves
      below ``nbuckets / 2``; each rebuild re-estimates ``width`` from
      the spacing of the earliest entries so a bucket covers a handful
      of events.
    * Lazy cancellation with compaction: cancelled entries stay put
      (O(1) cancel) but are dropped wholesale -- not drained one by
      one -- once they exceed two thirds of all pending entries, and at
      every rebuild.  A cancelled RTO timer therefore never inflates
      the structure for long, unlike a lazy heap where it sits until
      the clock drains past it.

    Dispatch order is the exact ``(time, seq)`` total order: the front
    is a heap over the same C-comparable entries, and every bucket
    entry's index exceeds ``cur_abs``, hence its time exceeds every
    front entry's.  Runs are bit-identical to the heap backend.
    """

    name = "calendar"

    #: bucket-count floor (and initial geometry).
    _MIN_BUCKETS = 8
    #: entries sampled from the sorted head to re-estimate the width.
    _WIDTH_SAMPLE = 64

    __slots__ = ("front", "buckets", "nbuckets", "width", "count", "free",
                 "counter", "cancelled_pending", "recycled", "compactions",
                 "events_compacted", "resizes", "cur_abs")

    def __init__(self, counter, *, width: float = 1e-3) -> None:
        #: due entries, a binary heap; the dispatch loop pops this.
        self.front: List[Any] = []
        self.nbuckets = self._MIN_BUCKETS
        self.buckets: List[List[Any]] = [[] for _ in range(self.nbuckets)]
        #: seconds of simulated time per bucket.
        self.width = width
        #: total entries (front + buckets), including cancelled ones.
        self.count = 0
        self.free: List[Any] = []
        self.counter = counter
        self.cancelled_pending = 0
        self.recycled = 0
        self.compactions = 0
        self.events_compacted = 0
        self.resizes = 0
        #: absolute bucket index whose entries have been moved to the
        #: front; buckets only hold strictly later indices.
        self.cur_abs = -1

    # -- scheduling ----------------------------------------------------
    def push_handle(self, time: float, fn, args) -> Event:
        """Schedule a cancellable event; returns its handle."""
        event = Event((time, next(self.counter), fn, args, self))
        index = int(time / self.width)
        if index <= self.cur_abs:
            heappush(self.front, event)
        else:
            self.buckets[index % self.nbuckets].append(event)
        count = self.count + 1
        self.count = count
        if count - self.cancelled_pending > 2 * self.nbuckets:
            self._resize(self.nbuckets * 2)
        return event

    def push_transient(self, time: float, fn, args) -> None:
        """Schedule a fire-and-forget event (recyclable, no handle)."""
        free = self.free
        if free:
            entry = free.pop()
            entry[0] = time
            entry[1] = next(self.counter)
            entry[2] = fn
            entry[3] = args
            self.recycled += 1
        else:
            entry = [time, next(self.counter), fn, args]
        index = int(time / self.width)
        if index <= self.cur_abs:
            heappush(self.front, entry)
        else:
            self.buckets[index % self.nbuckets].append(entry)
        count = self.count + 1
        self.count = count
        if count - self.cancelled_pending > 2 * self.nbuckets:
            self._resize(self.nbuckets * 2)

    # -- dequeue -------------------------------------------------------
    def advance(self) -> bool:
        """Refill the front from the next occupied bucket.

        Returns False when the whole calendar is empty.  Called by the
        dispatch loop whenever the front drains; walks the ring
        forward one bucket index at a time, moving each index's
        entries into the front.  If a full ring revolution finds
        nothing (a sparse, far-future calendar -- e.g. only RTO timers
        seconds away), it jumps straight to the bucket holding the
        global minimum instead of crawling index by index.
        """
        if self.count == len(self.front):
            return bool(self.front)
        # Shrink before loading (not after), so advance() never returns
        # True with a front a rebuild just emptied.
        if (self.count - self.cancelled_pending < self.nbuckets // 2
                and self.nbuckets > self._MIN_BUCKETS):
            self._resize(self.nbuckets // 2)
        buckets = self.buckets
        n = self.nbuckets
        width = self.width
        front = self.front
        cur = self.cur_abs
        scanned = 0
        while True:
            cur += 1
            scanned += 1
            bucket = buckets[cur % n]
            if bucket:
                due = [e for e in bucket if int(e[0] / width) <= cur]
                if due:
                    if len(due) == len(bucket):
                        del bucket[:]
                    else:
                        bucket[:] = [e for e in bucket
                                     if int(e[0] / width) > cur]
                    front.extend(due)
                    heapify(front)
                    self.cur_abs = cur
                    return True
            if scanned >= n:
                # Nothing due within one revolution: jump to the
                # global minimum's bucket and let the loop load it.
                best = None
                for bucket in buckets:
                    for entry in bucket:
                        if best is None or entry < best:
                            best = entry
                if best is None:  # pragma: no cover - guarded by count
                    return bool(front)
                cur = int(best[0] / width) - 1
                scanned = -n  # the jump target loads on the next pass

    def peek(self):
        """The next entry in ``(time, seq)`` order, or None when empty."""
        front = self.front
        if not front and not self.advance():
            return None
        return front[0]

    def pop_head(self):
        """Remove and return the next entry in ``(time, seq)`` order."""
        front = self.front
        if not front and not self.advance():
            raise SimulationError("pop from an empty calendar")
        self.count -= 1
        return heappop(front)

    # -- accounting ----------------------------------------------------
    def __len__(self) -> int:
        return self.count

    @property
    def live_count(self) -> int:
        """Pending entries that can still fire (cancelled excluded)."""
        return self.count - self.cancelled_pending

    def note_cancelled(self) -> None:
        """Called by :meth:`Event.cancel`; may trigger compaction."""
        cancelled = self.cancelled_pending + 1
        self.cancelled_pending = cancelled
        if (cancelled >= _COMPACT_MIN
                and cancelled > self.count * _COMPACT_FRACTION):
            self.compact()

    def compact(self) -> None:
        """Drop every cancelled entry (pooled rebuild).

        A rebuild at the current bucket count: pooling all live entries
        into one C ``sort`` and redistributing is far cheaper than
        filtering thousands of mostly-singleton buckets in place, and
        it refreshes the width estimate as a bonus.  The front list
        keeps its identity (slice-cleared), so a dispatch loop holding
        it as a local stays valid and simply refills on the next
        advance.
        """
        self._resize(self.nbuckets)

    # -- geometry ------------------------------------------------------
    def _estimate_width(self, entries: List[Any], nbuckets: int) -> float:
        """Bucket width for *nbuckets* buckets over sorted *entries*.

        Two constraints, take the larger:

        * Brown's rule of thumb -- a bucket should cover a few events
          -- from the mean gap over up to ``_WIDTH_SAMPLE`` head
          entries, times three.
        * Ring cover: ``nbuckets * width`` must span the full pending
          time range, so no entry wraps the ring.  Without this floor
          a skewed population (dense per-packet events now, sparse RTO
          timers seconds out) gets a microscopic width from the head
          sample and the far timers lap the ring many times, forcing
          every bucket load to re-filter mixed "years".

        Keeps the current width when the sample is degenerate (fewer
        than two entries, or all simultaneous).
        """
        m = min(len(entries), self._WIDTH_SAMPLE)
        if m < 2:
            return self.width
        head_span = entries[m - 1][0] - entries[0][0]
        full_span = entries[-1][0] - entries[0][0]
        if full_span <= 0.0:
            return self.width
        return max(3.0 * head_span / (m - 1), full_span / nbuckets)

    def _resize(self, nbuckets: int) -> None:
        """Rebuild with *nbuckets* buckets and a re-estimated width.

        Front and buckets are pooled, cancelled entries dropped, and
        everything redistributed under the new geometry; the front
        list keeps its identity (the dispatch loop may hold it as a
        local) and refills on the next :meth:`advance`.  O(n log n)
        for the sort, amortized O(1) per operation under the
        doubling/halving schedule.
        """
        live = [e for e in self.front if e[2] is not None]
        for bucket in self.buckets:
            for entry in bucket:
                if entry[2] is not None:
                    live.append(entry)
        live.sort()
        self._install(live, max(self._MIN_BUCKETS, nbuckets))
        self.resizes += 1

    def _install(self, live: List[Any], nbuckets: int) -> None:
        """Distribute sorted *live* entries into a fresh ring."""
        if self.cancelled_pending:
            self.events_compacted += self.cancelled_pending
            self.compactions += 1
            self.cancelled_pending = 0
        self.nbuckets = nbuckets
        self.width = width = self._estimate_width(live, nbuckets)
        buckets = [[] for _ in range(nbuckets)]
        for entry in live:
            buckets[int(entry[0] / width) % nbuckets].append(entry)
        self.buckets = buckets
        self.count = len(live)
        self.front[:] = []
        # Park the scan just before the earliest entry's bucket; the
        # next advance() loads it.
        self.cur_abs = (int(live[0][0] / width) - 1) if live else -1

    # -- introspection / migration ------------------------------------
    def adopt(self, other) -> None:
        """Take over *other*'s pending entries (backend migration).

        Live entries keep their ``(time, seq)`` coordinates -- dispatch
        order is unchanged -- and cancellable entries are re-owned so
        later ``cancel()`` calls report into this backend's accounting.
        Cancelled entries are dropped (their handles stay inert).  The
        freelist carries over.
        """
        live = other.live_entries()
        live.sort()
        for entry in live:
            if entry.__class__ is Event:
                entry[4] = self
        nbuckets = self._MIN_BUCKETS
        while nbuckets < len(live):
            nbuckets *= 2
        self.cancelled_pending = 0
        self._install(live, nbuckets)
        self.free = other.free
        self.recycled = other.recycled
        self.compactions = other.compactions
        self.events_compacted = other.events_compacted

    def live_entries(self) -> List[Any]:
        """The live entries, in no particular order."""
        entries = [e for e in self.front if e[2] is not None]
        for bucket in self.buckets:
            for entry in bucket:
                if entry[2] is not None:
                    entries.append(entry)
        return entries

    def digest_entries(self) -> Tuple[Tuple[float, int], ...]:
        """Live ``(time, seq)`` pairs in sorted order (canonical form)."""
        return tuple(sorted((e[0], e[1]) for e in self.live_entries()))


class Simulator:
    """The event loop.

    Typical use::

        sim = Simulator()
        sim.schedule(1.0, print, "hello at t=1")
        sim.run(until=10.0)

    The clock starts at 0.0 and only moves forward.  Scheduling into the
    past raises :class:`SimulationError` (a zero delay is allowed and
    fires after all previously scheduled events at the same timestamp).

    Args:
        scheduler: calendar backend -- ``"heap"``, ``"calendar"``, or
            ``"auto"`` (heap until :data:`AUTO_CALENDAR_DEPTH` live
            entries, then migrate).  ``None`` reads ``REPRO_SCHEDULER``
            from the environment, defaulting to ``"auto"``.  Backends
            dispatch the identical ``(time, seq)`` order, so results
            are bit-identical whichever one runs.
    """

    def __init__(self, scheduler: Optional[str] = None) -> None:
        if scheduler is None:
            scheduler = scheduler_from_env()
        if scheduler not in SCHEDULER_CHOICES:
            raise SimulationError(
                f"scheduler must be one of {SCHEDULER_CHOICES}, "
                f"got {scheduler!r}"
            )
        self._now = 0.0
        self._counter = itertools.count()
        self._auto = scheduler == "auto"
        if scheduler == "calendar":
            self._sched: Any = CalendarQueue(self._counter)
            _SCHEDULER_BUILDS["calendar"] += 1
        else:
            self._sched = HeapScheduler(self._counter)
            _SCHEDULER_BUILDS["heap"] += 1
        #: rebindable fast paths: hot callers (Link.send, attack
        #: emission chains) call these bound methods directly; backend
        #: migration rebinds them.
        self._push_transient = self._sched.push_transient
        self._push_handle = self._sched.push_handle
        self._events_executed = 0
        self._events_cancelled_skipped = 0
        self._migrations = 0
        self._running = False
        self._stopped = False
        #: Observers called as ``hook(sim, executed)`` after each
        #: :meth:`run` segment (the flight recorder's engine tap).
        #: Purely passive -- hooks must not schedule events -- and
        #: excluded from :meth:`state_digest`, so an attached hook
        #: cannot change any simulation result.  Costs one truthiness
        #: test per run() call when empty.
        self.post_run_hooks: List[Callable[["Simulator", int], None]] = []

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def scheduler(self) -> str:
        """Name of the active calendar backend (``heap``/``calendar``)."""
        return self._sched.name

    @property
    def events_executed(self) -> int:
        """Number of events dispatched so far (cancelled events excluded)."""
        return self._events_executed

    @property
    def events_cancelled_skipped(self) -> int:
        """Cancelled calendar entries the dispatch loop has drained."""
        return self._events_cancelled_skipped

    @property
    def events_compacted(self) -> int:
        """Cancelled entries removed wholesale by calendar compaction."""
        return self._sched.events_compacted

    @property
    def pending_events(self) -> int:
        """Events still pending that can fire (cancelled ones excluded)."""
        return self._sched.live_count

    @property
    def pending_entries(self) -> int:
        """Raw calendar occupancy, including not-yet-reclaimed cancelled
        entries (backend-dependent; for capacity diagnostics only)."""
        return len(self._sched)

    @property
    def next_event_seq(self) -> int:
        """The seq the next scheduled event will receive (non-consuming).

        Two simulators whose clocks, calendars, and seq counters agree
        dispatch identically; warm-start checkpointing uses this to
        assert a forked engine resumes exactly where the original left
        off.
        """
        # itertools.count cannot be inspected in place; advance a copy.
        return next(_copy.copy(self._counter))

    def state_digest(self) -> tuple:
        """A comparable fingerprint of the full scheduling state.

        Covers the clock, the seq counter position, and every *live*
        calendar entry's ``(time, seq)`` pair in sorted order.  Sorted
        -- not raw structure order -- so digests compare equal across
        scheduler backends (and across heaps built by different push
        sequences); cancelled entries are excluded because they never
        influence dispatch, whether a backend drains them lazily or
        compacts them away.  Two digests are equal iff the engines will
        dispatch identically.  The callables themselves are
        deliberately excluded -- bound methods never compare equal
        across deep copies.
        """
        return (
            self._now,
            self.next_event_seq,
            self._sched.digest_entries(),
        )

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run *delay* seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        if self._auto and not self._running:
            self._maybe_migrate()
        return self._push_handle(self._now + delay, fn, args)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run at absolute time *time*."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before current time t={self._now}"
            )
        if self._auto and not self._running:
            self._maybe_migrate()
        return self._push_handle(time, fn, args)

    # ------------------------------------------------------------------
    # backend migration (auto mode)
    # ------------------------------------------------------------------
    def _maybe_migrate(self) -> None:
        """Swap heap -> calendar once live depth crosses the threshold.

        Only called outside the dispatch loop (scheduling between run
        segments, or on :meth:`run` entry), so no loop locals can go
        stale.  The migration is pure restructuring: every live entry
        keeps its ``(time, seq)`` coordinates and dispatch order is
        unchanged, so results stay bit-identical.
        """
        sched = self._sched
        if sched.live_count <= AUTO_CALENDAR_DEPTH:
            return
        calendar = CalendarQueue(self._counter)
        calendar.adopt(sched)
        self._sched = calendar
        self._push_transient = calendar.push_transient
        self._push_handle = calendar.push_handle
        self._auto = False
        self._migrations += 1
        _SCHEDULER_BUILDS["calendar"] += 1

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Dispatch events in timestamp order.

        Args:
            until: stop once the clock would pass this time.  Events at
                exactly ``until`` still fire.  ``None`` drains the calendar.
            max_events: safety valve; raise :class:`SimulationError` rather
                than dispatch more than this many events (an unbounded event
                cascade is always a bug in a finite scenario).  The budget is
                checked before dispatch, so exactly ``max_events`` events
                have executed when the error is raised.

        Returns:
            The number of events executed by this call.
        """
        global _TOTAL_DISPATCHED
        if self._running:
            raise SimulationError("Simulator.run() is not re-entrant")
        if self._auto:
            self._maybe_migrate()
        self._running = True
        self._stopped = False
        # Bind the loop state to locals; infinities stand in for "no
        # horizon" / "no budget" so the loop body stays branch-light.
        horizon = inf if until is None else until
        budget = inf if max_events is None else max_events
        executed = 0
        cancelled = 0
        peak_depth = 0
        # Observability adds per-event depth tracking behind a local
        # bool; with no registry active the extra cost is one branch on
        # a local per event.  The instrumented path dispatches the
        # exact same events in the same order -- it only adds
        # bookkeeping (peak live calendar depth, wall-clock time),
        # never randomness or scheduling.
        registry = _obs.active()
        if registry is not None:
            wall_started = perf_counter()
            sim_started = self._now
            compacted_before = self._sched.events_compacted
        sched = self._sched
        try:
            if sched.__class__ is HeapScheduler:
                executed, cancelled, peak_depth = self._run_heap(
                    horizon, budget, max_events, registry is not None)
            else:
                executed, cancelled, peak_depth = self._run_calendar(
                    horizon, budget, max_events, registry is not None)
        finally:
            self._running = False
            self._events_cancelled_skipped += cancelled
            _TOTAL_DISPATCHED += executed
        if until is not None and not self._stopped and self._now < until:
            # Advance the clock to the horizon even if the calendar drained
            # early, so rate monitors see the full observation window.
            self._now = until
        if registry is not None:
            registry.counter("engine.runs").inc()
            registry.counter("engine.events_dispatched").inc(executed)
            registry.counter("engine.events_cancelled_skipped").inc(cancelled)
            registry.counter("engine.events_compacted").inc(
                self._sched.events_compacted - compacted_before)
            registry.counter("engine.wall_seconds").inc(
                perf_counter() - wall_started)
            registry.counter("engine.sim_seconds").inc(
                self._now - sim_started)
            registry.gauge("engine.peak_calendar_depth").track_max(peak_depth)
        hooks = self.post_run_hooks
        if hooks:
            for hook in hooks:
                hook(self, executed)
        return executed

    def _run_heap(self, horizon, budget, max_events, track):
        """Dispatch loop over the binary-heap backend."""
        sched = self._sched
        heap = sched.entries
        pop = heappop
        executed = 0
        cancelled = 0
        peak_depth = sched.live_count if track else 0
        while heap and not self._stopped:
            if track:
                depth = len(heap) - sched.cancelled_pending
                if depth > peak_depth:
                    peak_depth = depth
            entry = heap[0]
            time = entry[0]
            if time > horizon:
                break
            fn = entry[2]
            if fn is None:  # cancelled: drop without counting
                pop(heap)
                sched.cancelled_pending -= 1
                cancelled += 1
                continue
            # Check the budget *before* dispatch so the cascade stops
            # at exactly max_events executed; the offending event stays
            # in the calendar rather than firing past the budget.
            if executed >= budget:
                raise SimulationError(
                    f"exceeded max_events={max_events}; "
                    "runaway event cascade?"
                )
            pop(heap)
            self._now = time
            args = entry[3]
            # Consume the entry before dispatch: a handle cancelled
            # after firing must stay a no-op (and stop pinning args).
            entry[2] = None
            entry[3] = ()
            fn(*args)
            executed += 1
            self._events_executed += 1
        return executed, cancelled, peak_depth

    def _run_calendar(self, horizon, budget, max_events, track):
        """Dispatch loop over the calendar-queue backend.

        Pops the backend's *front* heap directly -- the same tight
        shape as :meth:`_run_heap`, just over a front that stays small
        -- and calls :meth:`CalendarQueue.advance` to refill it from
        the bucket ring when it drains.  A callback may grow/shrink the
        calendar (``_resize``) or compact it mid-loop; both mutate the
        front in place (slice assignment), so the local binding stays
        valid and an emptied front is simply refilled on the next pass.
        """
        sched = self._sched
        front = sched.front
        advance = sched.advance
        free = sched.free
        pop = heappop
        executed = 0
        cancelled = 0
        peak_depth = sched.live_count if track else 0
        while not self._stopped:
            if not front:
                if not advance():
                    break
                continue
            if track:
                depth = sched.live_count
                if depth > peak_depth:
                    peak_depth = depth
            entry = front[0]
            time = entry[0]
            if time > horizon:
                break
            fn = entry[2]
            if fn is None:  # cancelled: drop without counting
                pop(front)
                sched.count -= 1
                sched.cancelled_pending -= 1
                cancelled += 1
                continue
            # Budget check before dispatch, as in _run_heap.
            if executed >= budget:
                raise SimulationError(
                    f"exceeded max_events={max_events}; "
                    "runaway event cascade?"
                )
            pop(front)
            sched.count -= 1
            self._now = time
            args = entry[3]
            # Consume the entry before dispatch: a handle cancelled
            # after firing must stay a no-op (and stop pinning args).
            entry[2] = None
            entry[3] = ()
            fn(*args)
            executed += 1
            self._events_executed += 1
            if entry.__class__ is list and len(free) < _FREELIST_CAP:
                free.append(entry)
        return executed, cancelled, peak_depth

    def stop(self) -> None:
        """Stop :meth:`run` after the currently executing event returns."""
        self._stopped = True
