"""Attack traffic sources.

:class:`PulseAttackSource` realizes a :class:`~repro.core.attack.PulseTrain`
as actual packets: during each pulse it emits fixed-size datagrams at the
pulse's sending rate; between pulses it is silent.  A train with zero
spacing *is* a flooding attack, so the flooding baseline reuses this
source.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.core.attack import PulseTrain
from repro.sim.packet import FULL_PACKET_BYTES
from repro.sim.packet import Packet, PacketKind
from repro.util.validate import check_non_negative, check_positive

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator
    from repro.sim.node import Node

__all__ = ["PulseAttackSource", "CBRSource"]


class PulseAttackSource:
    """Emits a pulse train from *node* toward *dst_node_id*.

    Packets are evenly spaced within each pulse at the pulse's rate
    (inter-packet gap = packet bits / R_attack), which is how ns-2's CBR
    source shapes a burst.  Call :meth:`start`.
    """

    def __init__(
        self,
        sim: "Simulator",
        node: "Node",
        flow_id: int,
        dst_node_id: int,
        train: PulseTrain,
        *,
        packet_bytes: float = FULL_PACKET_BYTES,
        start_time: float = 0.0,
    ) -> None:
        self.sim = sim
        self.node = node
        self.flow_id = flow_id
        self.dst_node_id = dst_node_id
        self.train = train
        self.packet_bytes = check_positive("packet_bytes", packet_bytes)
        self.start_time = check_non_negative("start_time", start_time)
        self.packets_emitted = 0
        self.bytes_emitted = 0.0
        self.pulses_emitted = 0
        self._started = False

    def start(self) -> None:
        """Schedule the whole train relative to :attr:`start_time`."""
        if self._started:
            return
        self._started = True
        for index, (begin, end) in enumerate(
            self.train.pulse_intervals(self.start_time)
        ):
            rate = self.train.rates_bps[index]
            self.sim.schedule_at(begin, self._begin_pulse, index, end, rate)

    # ------------------------------------------------------------------
    def _begin_pulse(self, index: int, end: float, rate_bps: float) -> None:
        self.pulses_emitted += 1
        gap = self.packet_bytes * 8.0 / rate_bps
        self._emit(index, end, gap)

    def _emit(self, index: int, end: float, gap: float) -> None:
        # Per-datagram hot path: a high-rate pulse makes attack packets
        # the largest packet population in the scenario, so the chain
        # carries its per-pulse constants (pulse index, end, gap) as
        # event args and builds each datagram positionally.
        sim = self.sim
        now = sim._now
        if now >= end:
            return
        size = self.packet_bytes
        packet = Packet(
            PacketKind.ATTACK, self.flow_id, self.node.node_id,
            self.dst_node_id, size, index, None, now,
        )
        self.packets_emitted += 1
        self.bytes_emitted += size
        self.node.send(packet)
        next_at = now + gap
        if next_at < end:
            # Direct backend push (next_at > now by construction).  The
            # chain is never cancelled, so a transient entry -- no
            # Event handle, recycled after firing -- is enough.
            sim._push_transient(next_at, self._emit, (index, end, gap))


class CBRSource:
    """A constant-bit-rate (UDP-like) source, e.g. for background load."""

    def __init__(
        self,
        sim: "Simulator",
        node: "Node",
        flow_id: int,
        dst_node_id: int,
        *,
        rate_bps: float,
        packet_bytes: float = 1000.0,
        start_time: float = 0.0,
        stop_time: Optional[float] = None,
    ) -> None:
        self.sim = sim
        self.node = node
        self.flow_id = flow_id
        self.dst_node_id = dst_node_id
        self.rate_bps = check_positive("rate_bps", rate_bps)
        self.packet_bytes = check_positive("packet_bytes", packet_bytes)
        self.start_time = check_non_negative("start_time", start_time)
        self.stop_time = stop_time
        self.packets_emitted = 0
        self.bytes_emitted = 0.0
        #: constant inter-packet gap at the configured rate.
        self._gap = packet_bytes * 8.0 / rate_bps
        self._started = False

    def start(self) -> None:
        """Begin emission at :attr:`start_time` (runs until :attr:`stop_time`)."""
        if self._started:
            return
        self._started = True
        self.sim.schedule_at(max(self.start_time, self.sim.now), self._emit)

    def _emit(self) -> None:
        sim = self.sim
        now = sim._now
        if self.stop_time is not None and now >= self.stop_time:
            return
        size = self.packet_bytes
        packet = Packet(
            PacketKind.CBR, self.flow_id, self.node.node_id,
            self.dst_node_id, size, None, None, now,
        )
        self.packets_emitted += 1
        self.bytes_emitted += size
        self.node.send(packet)
        # Direct backend push; the chain is never cancelled, so the
        # transient entry is recycled after firing.
        sim._push_transient(now + self._gap, self._emit, ())
