"""Packet-level TCP with general AIMD(a, b) congestion control.

The paper analyses a general additive-increase/multiplicative-decrease
sender: on a fast-recovery congestion signal the window shrinks from
``W`` to ``b * W``; in congestion avoidance it grows by ``a`` MSS per
round-trip time (``a / d`` with delayed ACKs every ``d`` segments).
TCP Tahoe / Reno / NewReno are AIMD(1, 0.5); TCP-friendly protocols use
other (a, b) pairs.

This package implements a segment-granular TCP in the style of ns-2's
one-way TCP agents:

* :class:`~repro.sim.tcp.sender.TCPSender` — slow start, congestion
  avoidance with general AIMD(a, b), fast retransmit, Reno/NewReno fast
  recovery (or Tahoe's retransmit-and-slow-start), RTO with
  Jacobson/Karels estimation, Karn's algorithm, and exponential backoff.
* :class:`~repro.sim.tcp.receiver.TCPReceiver` — cumulative ACKs,
  duplicate ACKs on reordering/loss, and the delayed-ACK ``d`` factor.
"""

from repro.sim.tcp.params import AIMDParams, TCPConfig, TCPVariant
from repro.sim.tcp.receiver import TCPReceiver
from repro.sim.tcp.rto import RTOEstimator
from repro.sim.tcp.sender import TCPSender

__all__ = [
    "AIMDParams",
    "RTOEstimator",
    "TCPConfig",
    "TCPReceiver",
    "TCPSender",
    "TCPVariant",
]
