"""Selective-acknowledgement scoreboard (RFC 2018 / RFC 3517 style).

The receiver reports up to three SACK blocks of out-of-order data on
every ACK; the sender's :class:`Scoreboard` accumulates them and drives
loss detection and the pipe estimate during SACK-based recovery:

* a segment is **lost** when at least ``DupThresh`` (3) SACKed segments
  lie above it (RFC 3517's ``IsLost`` with segment granularity);
* ``pipe`` counts segments still believed in flight: sent, not
  cumulatively ACKed, not SACKed, minus detected-lost segments that have
  not been retransmitted yet.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set, Tuple

__all__ = ["Scoreboard", "sack_blocks_from_set"]

#: RFC 3517 DupThresh, in segments.
DUP_THRESHOLD = 3


def sack_blocks_from_set(out_of_order: Set[int], *,
                         max_blocks: int = 3) -> Tuple[Tuple[int, int], ...]:
    """Condense an out-of-order segment set into SACK blocks.

    Blocks are inclusive ``(start, end)`` segment ranges, highest first
    (approximating RFC 2018's most-recent-first ordering for a bulk
    receiver where the newest arrivals have the highest sequence
    numbers).
    """
    if not out_of_order:
        return ()
    blocks: List[Tuple[int, int]] = []
    run_start: Optional[int] = None
    previous: Optional[int] = None
    for seq in sorted(out_of_order):
        if run_start is None:
            run_start = previous = seq
            continue
        if seq == previous + 1:
            previous = seq
            continue
        blocks.append((run_start, previous))
        run_start = previous = seq
    blocks.append((run_start, previous))
    blocks.sort(key=lambda block: block[0], reverse=True)
    return tuple(blocks[:max_blocks])


class Scoreboard:
    """The sender-side view of SACKed, lost, and retransmitted segments."""

    def __init__(self) -> None:
        self._sacked: Set[int] = set()
        self._retransmitted: Set[int] = set()

    # ------------------------------------------------------------------
    def record(self, blocks: Iterable[Tuple[int, int]], cumack: int) -> int:
        """Absorb SACK blocks; returns how many *new* segments were SACKed."""
        before = len(self._sacked)
        for start, end in blocks:
            self._sacked.update(range(start, end + 1))
        self.advance(cumack)
        return len(self._sacked) - before

    def advance(self, cumack: int) -> None:
        """Forget state at or below the cumulative ACK point."""
        self._sacked = {seq for seq in self._sacked if seq > cumack}
        self._retransmitted = {
            seq for seq in self._retransmitted if seq > cumack
        }

    def reset(self) -> None:
        """Clear everything (used after a retransmission timeout)."""
        self._sacked.clear()
        self._retransmitted.clear()

    def state_digest(self) -> tuple:
        """The full scoreboard state (for checkpoint validation)."""
        return (
            tuple(sorted(self._sacked)),
            tuple(sorted(self._retransmitted)),
        )

    # ------------------------------------------------------------------
    def is_sacked(self, seq: int) -> bool:
        return seq in self._sacked

    def sacked_above(self, seq: int) -> int:
        """Number of SACKed segments with a higher sequence number."""
        return sum(1 for s in self._sacked if s > seq)

    def is_lost(self, seq: int) -> bool:
        """RFC 3517 IsLost: >= DupThresh SACKed segments above *seq*."""
        return seq not in self._sacked and self.sacked_above(seq) >= DUP_THRESHOLD

    def mark_retransmitted(self, seq: int) -> None:
        self._retransmitted.add(seq)

    def was_retransmitted(self, seq: int) -> bool:
        return seq in self._retransmitted

    # ------------------------------------------------------------------
    def next_lost_hole(self, cumack: int, highest_sent: int) -> Optional[int]:
        """Lowest detected-lost, not-yet-retransmitted segment, if any."""
        for seq in range(cumack + 1, highest_sent + 1):
            if (seq not in self._sacked
                    and seq not in self._retransmitted
                    and self.is_lost(seq)):
                return seq
        return None

    def pipe(self, cumack: int, highest_sent: int) -> int:
        """Segments estimated to be in flight (RFC 3517 SetPipe, simplified).

        ``(sent − acked) − sacked − (lost ∧ ¬retransmitted)``: SACKed
        segments have left the network; detected-lost ones that were not
        resent are gone too; everything else (including retransmissions)
        still occupies the pipe.
        """
        outstanding = highest_sent - cumack
        missing = 0
        for seq in range(cumack + 1, highest_sent + 1):
            if seq in self._sacked:
                missing += 1
            elif self.is_lost(seq) and seq not in self._retransmitted:
                missing += 1
        return outstanding - missing

    @property
    def sacked_count(self) -> int:
        return len(self._sacked)
