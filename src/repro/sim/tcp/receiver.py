"""TCP receiver (sink) with cumulative and delayed ACKs.

Mirrors ns-2's ``Agent/TCPSink/DelAck``: it tracks the highest in-order
segment, buffers out-of-order arrivals, emits an immediate duplicate ACK
for every out-of-order segment (this is what drives fast retransmit at
the sender), and delays in-order ACKs until ``d`` segments have arrived
or the delayed-ACK timer fires.

For RTT estimation the receiver echoes the send timestamp of the data
segment that triggered each ACK -- but only for first transmissions
(Karn's algorithm); retransmitted segments carry ``retransmit=True`` and
their timestamps are never echoed.
"""

from __future__ import annotations

from typing import Optional, Set, TYPE_CHECKING

from repro.sim.packet import ACK_SIZE_BYTES, Packet, PacketKind
from repro.sim.tcp.params import TCPConfig, TCPVariant
from repro.sim.tcp.sack import sack_blocks_from_set

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator
    from repro.sim.node import Node

__all__ = ["TCPReceiver"]

#: Echo value meaning "no usable timestamp" (retransmission or stale).
NO_ECHO = -1.0


class TCPReceiver:
    """A sink for one TCP flow, registered on its host node."""

    def __init__(self, sim: "Simulator", node: "Node", flow_id: int,
                 sender_node_id: int, config: Optional[TCPConfig] = None) -> None:
        self.sim = sim
        self.node = node
        self.flow_id = flow_id
        self.sender_node_id = sender_node_id
        self.config = config if config is not None else TCPConfig()

        #: highest in-order segment received; -1 before any data.
        self.cumack = -1
        self._out_of_order: Set[int] = set()
        self._unacked_inorder = 0            # in-order segments not yet ACKed
        self._pending_echo = NO_ECHO
        self._delack_event = None

        # statistics
        self.segments_received = 0
        self.duplicate_segments = 0
        self.acks_sent = 0
        self.bytes_received = 0

        node.register_agent(flow_id, self.receive)

    def state_digest(self) -> tuple:
        """The full receiver state (for checkpoint validation)."""
        delack = self._delack_event
        return (
            self.cumack,
            tuple(sorted(self._out_of_order)),
            self._unacked_inorder,
            self._pending_echo,
            None if delack is None else
            (delack.time, delack.seq, delack.cancelled),
            self.segments_received, self.duplicate_segments,
            self.acks_sent, self.bytes_received,
        )

    # ------------------------------------------------------------------
    def receive(self, packet: Packet) -> None:
        """Process one arriving data segment."""
        if packet.kind is not PacketKind.DATA:
            return
        self.segments_received += 1
        seq = packet.seq
        echo = NO_ECHO if packet.retransmit else packet.sent_at

        if seq == self.cumack + 1:
            # In-order arrival; absorb any contiguous buffered segments.
            self.cumack = seq
            self.bytes_received += self.config.mss
            while (self.cumack + 1) in self._out_of_order:
                self._out_of_order.discard(self.cumack + 1)
                self.cumack += 1
                self.bytes_received += self.config.mss
            if self._out_of_order:
                # Filled part of a hole: ACK immediately (RFC 2581).
                self._send_ack(echo)
            else:
                self._unacked_inorder += 1
                self._pending_echo = echo
                if self._unacked_inorder >= self.config.delayed_ack:
                    self._send_ack(self._pending_echo)
                elif self._delack_event is None:
                    self._delack_event = self.sim.schedule(
                        self.config.delack_timeout, self._delack_fire
                    )
        elif seq <= self.cumack or seq in self._out_of_order:
            # Duplicate data (a spurious retransmission); ACK immediately so
            # the sender learns the current cumulative point.
            self.duplicate_segments += 1
            self._send_ack(NO_ECHO)
        else:
            # Out of order: buffer and emit an immediate duplicate ACK.
            self._out_of_order.add(seq)
            self.bytes_received += self.config.mss
            self._send_ack(NO_ECHO)

    # ------------------------------------------------------------------
    def _delack_fire(self) -> None:
        self._delack_event = None
        if self._unacked_inorder > 0:
            self._send_ack(self._pending_echo)

    def _send_ack(self, echo: float) -> None:
        if self._delack_event is not None:
            self._delack_event.cancel()
            self._delack_event = None
        self._unacked_inorder = 0
        self._pending_echo = NO_ECHO
        ack = Packet(
            PacketKind.ACK, self.flow_id, self.node.node_id,
            self.sender_node_id, ACK_SIZE_BYTES, None, self.cumack, echo,
        )
        if self.config.variant is TCPVariant.SACK and self._out_of_order:
            ack.sack = sack_blocks_from_set(self._out_of_order)
        self.acks_sent += 1
        self.node.send(ack)
