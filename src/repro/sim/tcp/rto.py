"""Retransmission-timeout estimation (Jacobson/Karels, RFC 6298 style).

The estimator keeps the smoothed RTT and RTT variance, clamps the RTO to
``[min_rto, max_rto]``, and applies exponential backoff on successive
timeouts.  Karn's algorithm (never sample a retransmitted segment) is
enforced by the caller: the receiver only echoes timestamps of
first-transmission segments.
"""

from __future__ import annotations

from typing import Optional

from repro.util.validate import check_positive

__all__ = ["RTOEstimator"]

#: smoothing gain for the mean (RFC 6298 alpha).
_ALPHA = 0.125
#: smoothing gain for the variance (RFC 6298 beta).
_BETA = 0.25
#: variance multiplier in the RTO formula.
_K = 4.0
#: default clock granularity G: the variance term is floored at G
#: (RFC 6298's ``max(G, K*RTTVAR)``) so a perfectly steady RTT does not
#: collapse the RTO onto the RTT itself and fire spuriously on the
#: first queueing hiccup.  ns-2 achieves the same with its RTT tick.
_DEFAULT_GRANULARITY = 0.05


class RTOEstimator:
    """Adaptive RTO per RFC 6298 with exponential backoff."""

    def __init__(self, min_rto: float = 0.2, max_rto: float = 60.0,
                 initial_rto: float = 3.0,
                 granularity: float = _DEFAULT_GRANULARITY) -> None:
        self.min_rto = check_positive("min_rto", min_rto)
        self.max_rto = check_positive("max_rto", max_rto)
        self.granularity = check_positive("granularity", granularity)
        self.srtt: Optional[float] = None
        self.rttvar: Optional[float] = None
        self._base_rto = max(min(initial_rto, max_rto), min_rto)
        self._backoff = 1

    # ------------------------------------------------------------------
    def sample(self, rtt: float) -> None:
        """Feed one (non-retransmitted) round-trip-time measurement."""
        if rtt < 0:
            return  # clock skew artefact; ignore rather than poison the filter
        if self.srtt is None:
            self.srtt = rtt
            self.rttvar = rtt / 2.0
        else:
            self.rttvar = (1 - _BETA) * self.rttvar + _BETA * abs(self.srtt - rtt)
            self.srtt = (1 - _ALPHA) * self.srtt + _ALPHA * rtt
        raw = self.srtt + max(_K * self.rttvar, self.granularity)
        self._base_rto = min(max(raw, self.min_rto), self.max_rto)
        # A fresh sample re-validates the estimate; clear any backoff.
        self._backoff = 1

    @property
    def rto(self) -> float:
        """Current timeout value (base RTO times the backoff multiplier)."""
        return min(self._base_rto * self._backoff, self.max_rto)

    def backoff(self) -> float:
        """Double the timeout after an expiry; returns the new RTO."""
        self._backoff = min(self._backoff * 2, 64)
        return self.rto

    def reset_backoff(self) -> None:
        """Clear exponential backoff (e.g. when new data is ACKed)."""
        self._backoff = 1

    @property
    def backoff_multiplier(self) -> int:
        """Current exponential-backoff multiplier (1 when not backed off)."""
        return self._backoff

    def state_digest(self) -> tuple:
        """The full estimator state (for checkpoint validation)."""
        return (self.srtt, self.rttvar, self._base_rto, self._backoff)
