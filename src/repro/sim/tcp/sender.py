"""TCP sender: slow start, general AIMD(a, b), fast retransmit/recovery, RTO.

The sender is bulk-transfer (always backlogged), segment-granular, and
ACK-clocked, like ns-2's one-way TCP agents.  Loss recovery follows the
configured :class:`~repro.sim.tcp.params.TCPVariant`:

* **Tahoe** -- on the third duplicate ACK, retransmit and fall back to
  slow start with ``cwnd = 1``.
* **Reno** -- fast recovery with window inflation; exits on the first
  new ACK (RFC 2581).
* **NewReno** -- stays in fast recovery across partial ACKs, retransmitting
  one hole per partial ACK (RFC 3782); this is the variant the paper's
  ns-2 experiments use.
* **SACK** -- scoreboard-driven recovery (RFC 2018 receiver blocks, an
  RFC 3517-style pipe rule, the RFC 6675 entry retransmission).

Congestion avoidance implements the paper's general AIMD(a, b): the
window grows by ``a / cwnd`` per new ACK (hence ``a`` per RTT, or
``a / d`` with delayed ACKs) and shrinks to ``b * cwnd`` on a
fast-recovery signal.  Timeouts always collapse the window to one
segment and slow-start (go-back-N, as in ns-2), with Jacobson/Karels
RTO estimation, Karn's rule, exponential backoff, and the optional
randomized-RTO defense.

Transfers are bulk (infinite) by default; pass ``transfer_segments``
for a finite flow with completion-time reporting (the short-flow
"mice" workloads build on this).
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Tuple, TYPE_CHECKING

from repro.sim.packet import Packet, PacketKind, TCP_HEADER_BYTES
from repro.sim.tcp.params import TCPConfig, TCPVariant
from repro.sim.tcp.rto import RTOEstimator
from repro.sim.tcp.sack import Scoreboard

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator
    from repro.sim.node import Node

__all__ = ["TCPSender"]

#: Receiver echo value meaning "no usable RTT timestamp".
_NO_ECHO = -1.0

#: Duplicate-ACK threshold for fast retransmit (RFC 2581).
_DUPACK_THRESHOLD = 3

#: RFC 2581 floor on ssthresh, in segments.
_MIN_SSTHRESH = 2.0


class TCPSender:
    """A bulk-data TCP sender for one flow, registered on its host node.

    After construction call :meth:`start` (optionally at a scheduled
    time) to begin transmitting.  Statistics of interest afterwards:

    * :attr:`acked_segments` / :meth:`goodput_bytes` -- delivered data.
    * :attr:`timeouts`, :attr:`fast_retransmits` -- recovery events.
    * :attr:`cwnd_trace` -- ``(time, cwnd)`` samples when ``trace_cwnd``.
    """

    def __init__(
        self,
        sim: "Simulator",
        node: "Node",
        flow_id: int,
        receiver_node_id: int,
        config: Optional[TCPConfig] = None,
        *,
        trace_cwnd: bool = False,
        transfer_segments: Optional[int] = None,
        on_complete: Optional[Callable[["TCPSender"], None]] = None,
    ) -> None:
        """Args beyond the obvious:

        transfer_segments: finite transfer length in segments; ``None``
            (the default) means bulk/infinite, like ns-2's FTP source.
        on_complete: called once, with this sender, when the final
            segment of a finite transfer is cumulatively ACKed.
        """
        self.sim = sim
        self.node = node
        self.flow_id = flow_id
        self.receiver_node_id = receiver_node_id
        self.config = config if config is not None else TCPConfig()
        if transfer_segments is not None and transfer_segments < 1:
            raise ValueError(
                f"transfer_segments must be >= 1, got {transfer_segments}"
            )
        self.transfer_segments = transfer_segments
        self.on_complete = on_complete
        self.completed_at: Optional[float] = None
        self._start_time: Optional[float] = None

        cfg = self.config
        self.cwnd = float(cfg.initial_cwnd)
        self.ssthresh = float(cfg.initial_ssthresh)
        self.cumack = -1                 # highest cumulatively ACKed segment
        self.next_seq = 0                # next segment to send
        self.highest_sent = -1           # highest segment ever transmitted
        self.dupacks = 0
        self.in_fast_recovery = False
        # NewReno recovery point / FR re-entry guard.  Initialized below
        # the initial cumack (-1) so the very first loss can enter FR.
        self.recover = -2
        self.rto_estimator = RTOEstimator(cfg.min_rto, cfg.max_rto,
                                          initial_rto=cfg.initial_rto)
        # Per-flow deterministic RNG for the randomized-RTO defense.
        self._rng = random.Random(0x5EED ^ (flow_id * 7919))
        #: SACK scoreboard (RFC 2018/3517); None for non-SACK variants.
        self.scoreboard = (
            Scoreboard() if cfg.variant is TCPVariant.SACK else None
        )
        self._rto_event = None
        self._started = False
        self._send_times = {}            # seq -> first-transmission time (Karn)

        # statistics
        self.segments_sent = 0
        self.retransmissions = 0
        self.fast_retransmits = 0
        self.timeouts = 0
        self.trace_cwnd = trace_cwnd
        self.cwnd_trace: List[Tuple[float, float]] = []
        #: (time, kind) for each recovery episode; kind in {"fr", "to"}.
        self.recovery_events: List[Tuple[float, str]] = []
        #: Flight-recorder listener (``cwnd_append``/``on_recovery``),
        #: or ``None``.  ``cwnd_append`` is a C-level callable
        #: (``list.append``) fed ``(time, flow_id, cwnd)`` rows -- cwnd
        #: changes happen per ACK, so the hot path avoids a Python
        #: frame.  Purely observational -- excluded from
        #: :meth:`state_digest` -- and costs one ``is None`` check per
        #: cwnd change / recovery event when unset (the same
        #: dual-dispatch discipline as the metrics registry).
        self.telemetry = None

        node.register_agent(flow_id, self._receive)

    # ------------------------------------------------------------------
    # public control / observation
    # ------------------------------------------------------------------
    def start(self, at: Optional[float] = None) -> None:
        """Begin the bulk transfer now or at absolute time *at*."""
        if self._started:
            return
        self._started = True
        if at is None or at <= self.sim.now:
            self._begin()
        else:
            self.sim.schedule_at(at, self._begin)

    def _begin(self) -> None:
        self._start_time = self.sim.now
        self._record_cwnd()
        self._try_send()

    @property
    def completed(self) -> bool:
        """True once a finite transfer is fully acknowledged."""
        return self.completed_at is not None

    def completion_time(self) -> Optional[float]:
        """Flow completion time (start to final ACK), or None."""
        if self.completed_at is None or self._start_time is None:
            return None
        return self.completed_at - self._start_time

    @property
    def acked_segments(self) -> int:
        """Segments cumulatively acknowledged so far."""
        return self.cumack + 1

    def goodput_bytes(self) -> float:
        """Payload bytes delivered (cumulatively acknowledged)."""
        return self.acked_segments * float(self.config.mss)

    @property
    def inflight(self) -> int:
        """Outstanding (sent, unacknowledged) segments."""
        return self.next_seq - 1 - self.cumack

    def metrics_snapshot(self) -> dict:
        """Cumulative per-flow telemetry for the observability layer.

        Exactly the recovery quantities behind Eq. 1's converged window
        W_c: fast-retransmit entries, timeouts, and the instantaneous
        cwnd/ssthresh, plus delivery totals.  Reads existing counters
        only -- no per-ACK cost.
        """
        return {
            "segments_sent": float(self.segments_sent),
            "retransmissions": float(self.retransmissions),
            "fast_retransmits": float(self.fast_retransmits),
            "timeouts": float(self.timeouts),
            "acked_segments": float(self.acked_segments),
            "goodput_bytes": self.goodput_bytes(),
            "cwnd": self.cwnd,
            "ssthresh": self.ssthresh,
        }

    def state_digest(self) -> tuple:
        """The full sender state (for checkpoint validation).

        Covers the congestion/recovery machine, the RTO timer (as its
        calendar coordinates, since event objects never compare equal
        across deep copies), the per-flow RNG state, and every counter.
        Two senders with equal digests behave identically from here on.
        """
        rto_event = self._rto_event
        return (
            self.cwnd, self.ssthresh, self.cumack, self.next_seq,
            self.highest_sent, self.dupacks, self.in_fast_recovery,
            self.recover,
            tuple(self._send_times.items()),
            self.rto_estimator.state_digest(),
            None if rto_event is None else
            (rto_event.time, rto_event.seq, rto_event.cancelled),
            None if self.scoreboard is None else
            self.scoreboard.state_digest(),
            self._rng.getstate(),
            self.segments_sent, self.retransmissions,
            self.fast_retransmits, self.timeouts,
        )

    # ------------------------------------------------------------------
    # transmission
    # ------------------------------------------------------------------
    def _usable_window(self) -> float:
        return min(self.cwnd, self.config.max_cwnd)

    def _try_send(self) -> None:
        """Send segments while the window allows (ACK clocking).

        After a timeout ``next_seq`` is pulled back to the first unACKed
        segment (go-back-N, as in ns-2's one-way TCP), so this loop also
        performs slow-start retransmission of the lost window.
        """
        if self.scoreboard is not None and self.in_fast_recovery:
            self._sack_send()
            return
        window = self._usable_window()
        limit = self.transfer_segments
        while self.inflight < window:
            if limit is not None and self.next_seq >= limit:
                break  # finite transfer: nothing new left to send
            self._transmit(self.next_seq)
            self.next_seq += 1

    def _transmit(self, seq: int) -> None:
        now = self.sim.now
        retransmit = seq <= self.highest_sent
        self.highest_sent = max(self.highest_sent, seq)
        packet = Packet(
            PacketKind.DATA, self.flow_id, self.node.node_id,
            self.receiver_node_id, self.config.mss + TCP_HEADER_BYTES,
            seq, None, now, retransmit,
        )
        self.segments_sent += 1
        if retransmit:
            self.retransmissions += 1
            self._send_times.pop(seq, None)  # Karn: never sample this seq
        else:
            self._send_times[seq] = now
        if self._rto_event is None:
            self._arm_rto()
        self.node.send(packet)

    # ------------------------------------------------------------------
    # ACK processing
    # ------------------------------------------------------------------
    def _receive(self, packet: Packet) -> None:
        if packet.kind is not PacketKind.ACK:
            return
        ack = packet.ack
        if ack is None:
            return
        if self.scoreboard is not None and packet.sack:
            self.scoreboard.record(packet.sack, self.cumack)
        if ack > self.cumack:
            self._handle_new_ack(ack, packet.sent_at)
        elif ack == self.cumack:
            self._handle_dupack()
        # ACKs below cumack are stale; ignore.
        self._try_send()

    def _handle_new_ack(self, ack: int, echo: float) -> None:
        newly_acked = ack - self.cumack
        self.cumack = ack
        # After a go-back-N pull-back, a cumulative jump (the receiver had
        # buffered out-of-order data) can leave next_seq below the ACK
        # point; never resend what is already acknowledged.
        self.next_seq = max(self.next_seq, self.cumack + 1)
        if self.scoreboard is not None:
            self.scoreboard.advance(ack)

        # RTT sampling (Karn's rule enforced via the receiver echo and our
        # send-time table -- both must agree the segment was not resent).
        if echo != _NO_ECHO and echo >= 0:
            self.rto_estimator.sample(self.sim.now - echo)
        # _send_times is insertion-ordered by ascending seq (new sends only
        # append higher seqs; retransmissions pop), so the acked prefix can
        # be peeled off the front without rescanning the whole window.
        send_times = self._send_times
        while send_times:
            seq = next(iter(send_times))
            if seq > ack:
                break
            del send_times[seq]

        self.rto_estimator.reset_backoff()

        if self.in_fast_recovery:
            self._fast_recovery_new_ack(ack, newly_acked)
        else:
            self.dupacks = 0
            self._grow_window(newly_acked)

        # Restart (or clear) the retransmission timer.
        self._cancel_rto()
        if self.inflight > 0:
            self._arm_rto()
        self._record_cwnd()

        if (self.transfer_segments is not None
                and not self.completed
                and self.cumack >= self.transfer_segments - 1):
            self.completed_at = self.sim.now
            self._cancel_rto()
            if self.on_complete is not None:
                self.on_complete(self)

    def _grow_window(self, newly_acked: int) -> None:
        a = self.config.aimd.increase
        if self.cwnd < self.ssthresh:
            # Slow start: grow per ACK (delayed ACKs naturally slow this).
            self.cwnd = min(self.cwnd + a, self.config.max_cwnd)
        else:
            # Congestion avoidance: a/cwnd per new ACK => +a per RTT.
            self.cwnd = min(self.cwnd + a / self.cwnd, self.config.max_cwnd)

    def _fast_recovery_new_ack(self, ack: int, newly_acked: int) -> None:
        if self.config.variant is TCPVariant.SACK:
            # RFC 3517: recovery ends once the cumulative ACK covers the
            # recovery point; until then the pipe rule drives sending.
            if ack >= self.recover:
                self.in_fast_recovery = False
                self.dupacks = 0
            return
        if self.config.variant is TCPVariant.NEWRENO and ack < self.recover:
            # Partial ACK: one more hole. Retransmit it, deflate the window
            # by the amount ACKed, add back one segment (RFC 3782).
            self.cwnd = max(self.cwnd - newly_acked + 1.0, 1.0)
            self._transmit(self.cumack + 1)
            # Partial ACK restarts the retransmit timer (done by caller).
        else:
            # Full ACK (or any new ACK for plain Reno): leave fast recovery.
            self.in_fast_recovery = False
            self.dupacks = 0
            self.cwnd = self.ssthresh

    def _handle_dupack(self) -> None:
        if self.scoreboard is not None:
            self._sack_dupack()
            return
        self.dupacks += 1
        if self.in_fast_recovery:
            # Window inflation: each extra dup ACK signals a departed packet.
            self.cwnd = min(self.cwnd + 1.0, self.config.max_cwnd)
            self._record_cwnd()
            return
        if self.dupacks == _DUPACK_THRESHOLD:
            # RFC 3782 re-entry guard: only enter recovery once the
            # cumulative ACK covers MORE than the previous recovery point
            # (dup ACKs of data sent before/during the last episode --
            # including go-back-N re-sends after a timeout -- are stale).
            if self.cumack <= self.recover:
                return
            self._enter_fast_retransmit()

    def _sack_dupack(self) -> None:
        """Duplicate-ACK handling for the SACK variant.

        Recovery starts when the scoreboard detects a lost segment (at
        least DupThresh SACKed segments above a hole) or on the classic
        third duplicate ACK; transmission during recovery is driven by
        the pipe rule in :meth:`_sack_send`, with no window inflation.
        """
        self.dupacks += 1
        if self.in_fast_recovery:
            return
        loss_detected = (
            self.dupacks >= _DUPACK_THRESHOLD
            or self.scoreboard.next_lost_hole(
                self.cumack, self.highest_sent) is not None
        )
        if not loss_detected or self.cumack <= self.recover:
            return
        b = self.config.aimd.decrease
        self.fast_retransmits += 1
        self._note_recovery("fr")
        self.ssthresh = max(b * self.cwnd, _MIN_SSTHRESH)
        self.cwnd = self.ssthresh
        self.in_fast_recovery = True
        self.recover = self.highest_sent
        # RFC 6675: retransmit the first hole immediately on entry, not
        # gated behind the pipe rule -- otherwise a full pipe would delay
        # the repair past the retransmission timer.
        hole = self.scoreboard.next_lost_hole(self.cumack, self.highest_sent)
        first_hole = hole if hole is not None else self.cumack + 1
        self._transmit(first_hole)
        self.scoreboard.mark_retransmitted(first_hole)
        self._cancel_rto()
        self._arm_rto()
        self._record_cwnd()

    def _sack_send(self) -> None:
        """RFC 3517 pipe-driven (re)transmission during SACK recovery."""
        window = self._usable_window()
        scoreboard = self.scoreboard
        limit = self.transfer_segments
        while scoreboard.pipe(self.cumack, self.highest_sent) < window:
            hole = scoreboard.next_lost_hole(self.cumack, self.highest_sent)
            if hole is not None:
                self._transmit(hole)
                scoreboard.mark_retransmitted(hole)
            else:
                self.next_seq = max(self.next_seq, self.highest_sent + 1)
                if limit is not None and self.next_seq >= limit:
                    break  # finite transfer: no new data to fill the pipe
                self._transmit(self.next_seq)
                self.next_seq += 1

    def _enter_fast_retransmit(self) -> None:
        b = self.config.aimd.decrease
        self.fast_retransmits += 1
        self._note_recovery("fr")
        self.ssthresh = max(b * self.cwnd, _MIN_SSTHRESH)
        if self.config.variant is TCPVariant.TAHOE:
            self.cwnd = 1.0
            self.dupacks = 0
            self.recover = self.highest_sent
            # Go back to the lost segment and slow-start forward.
            self._transmit(self.cumack + 1)
            self.next_seq = self.cumack + 2
        else:
            self.in_fast_recovery = True
            self.recover = self.highest_sent
            self.cwnd = self.ssthresh + float(_DUPACK_THRESHOLD)
            self._transmit(self.cumack + 1)
        self._cancel_rto()
        self._arm_rto()
        self._record_cwnd()

    # ------------------------------------------------------------------
    # retransmission timeout
    # ------------------------------------------------------------------
    def _arm_rto(self) -> None:
        delay = self.rto_estimator.rto
        jitter = self.config.rto_jitter
        if jitter > 0.0:
            # Randomized timeouts (reference [7]): the attacker can no
            # longer predict when retransmissions re-enter the network.
            delay *= 1.0 + jitter * self._rng.random()
        self._rto_event = self.sim.schedule(delay, self._rto_fire)

    def _cancel_rto(self) -> None:
        if self._rto_event is not None:
            self._rto_event.cancel()
            self._rto_event = None

    def _rto_fire(self) -> None:
        self._rto_event = None
        if self.inflight <= 0:
            return  # spurious: everything was ACKed as the timer fired
        b = self.config.aimd.decrease
        self.timeouts += 1
        self._note_recovery("to")
        self.ssthresh = max(b * self.cwnd, _MIN_SSTHRESH)
        self.cwnd = 1.0
        self.dupacks = 0
        self.in_fast_recovery = False
        if self.scoreboard is not None:
            # RFC 3517 (conservatively): clear the scoreboard on RTO and
            # let go-back-N slow start rediscover delivery state.
            self.scoreboard.reset()
        # Guard against false fast retransmits for pre-timeout data.
        self.recover = self.highest_sent
        self.rto_estimator.backoff()
        # Go-back-N (as in ns-2): pull next_seq back to the first hole
        # and let slow start retransmit the lost window.  _try_send
        # re-arms the timer (it is None here) with the backed-off RTO.
        self.next_seq = self.cumack + 1
        self._try_send()
        self._record_cwnd()

    # ------------------------------------------------------------------
    def _record_cwnd(self) -> None:
        if self.trace_cwnd:
            self.cwnd_trace.append((self.sim.now, self.cwnd))
        telemetry = self.telemetry
        if telemetry is not None:
            telemetry.cwnd_append((self.sim.now, self.flow_id, self.cwnd))

    def _note_recovery(self, kind: str) -> None:
        """Record a recovery entry ("fr"/"to"), sampled pre-decrease."""
        self.recovery_events.append((self.sim.now, kind))
        telemetry = self.telemetry
        if telemetry is not None:
            telemetry.on_recovery(self.flow_id, self.sim.now, kind,
                                  self.cwnd, self.ssthresh,
                                  self.rto_estimator.rto)
