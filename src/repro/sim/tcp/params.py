"""TCP configuration: AIMD parameters and host/transport settings."""

from __future__ import annotations

import dataclasses
import enum

from repro.util.errors import ValidationError

__all__ = ["AIMDParams", "TCPConfig", "TCPVariant"]


class TCPVariant(enum.Enum):
    """Loss-recovery flavour of the sender."""

    TAHOE = "tahoe"       #: retransmit + slow start on 3 dup ACKs
    RENO = "reno"         #: fast recovery, exits on first new ACK
    NEWRENO = "newreno"   #: fast recovery with partial-ACK retransmits (RFC 3782)
    SACK = "sack"         #: scoreboard-driven recovery (RFC 2018 + RFC 3517)


@dataclasses.dataclass(frozen=True)
class AIMDParams:
    """General AIMD(a, b) parameters (paper, Section 2.1).

    ``increase`` (a > 0) is the additive window growth in MSS per RTT;
    ``decrease`` (0 < b < 1) is the multiplicative factor applied on a
    fast-recovery congestion signal.  Standard TCP is AIMD(1, 0.5).
    """

    increase: float = 1.0
    decrease: float = 0.5

    def __post_init__(self) -> None:
        if self.increase <= 0:
            raise ValidationError(f"AIMD increase must be > 0, got {self.increase}")
        if not 0 < self.decrease < 1:
            raise ValidationError(
                f"AIMD decrease must be in (0, 1), got {self.decrease}"
            )

    @classmethod
    def standard_tcp(cls) -> "AIMDParams":
        """AIMD(1, 0.5) as used by Tahoe, Reno, and NewReno."""
        return cls(1.0, 0.5)

    @classmethod
    def tcp_friendly(cls, decrease: float) -> "AIMDParams":
        """A TCP-friendly pair: a = 4(1 - b^2)/3 (Yang & Lam, ICNP 2000).

        Keeps the same mean throughput as AIMD(1, 0.5) under periodic loss.
        """
        if not 0 < decrease < 1:
            raise ValidationError(f"decrease must be in (0, 1), got {decrease}")
        return cls(4.0 * (1.0 - decrease**2) / 3.0, decrease)


@dataclasses.dataclass(frozen=True)
class TCPConfig:
    """Transport/host parameters shared by a sender/receiver pair.

    Attributes:
        mss: maximum segment size (payload bytes per data packet).
        variant: loss-recovery flavour.
        aimd: general AIMD(a, b) parameters.
        delayed_ack: the paper's ``d`` -- the receiver ACKs every ``d``
            full-size segments (1 disables delayed ACKs, matching ns-2's
            default one-way sink; 2 matches common host stacks).
        delack_timeout: maximum time an ACK may be delayed, seconds.
        min_rto: lower bound on the retransmission timeout.  The paper's
            test-bed host (Linux 2.6.5) uses 200 ms; ns-2 defaults match.
        max_rto: upper bound on the (backed-off) RTO.
        initial_rto: the RTO before any RTT sample exists (RFC 6298
            allows 1 s; classic BSD used 3 s).
        rto_jitter: randomize each armed retransmission timer uniformly
            in ``[RTO, RTO * (1 + rto_jitter)]``.  This is the defense of
            Yang, Gerla & Sanadidi (ISCC 2004, the paper's reference
            [7]): random timeouts desynchronize retransmissions from a
            timeout-based attacker's pulses.  0 disables it.
        initial_cwnd: initial congestion window, segments.
        initial_ssthresh: initial slow-start threshold, segments.
        max_cwnd: receiver-window cap on the congestion window, segments.
    """

    mss: int = 1460
    variant: TCPVariant = TCPVariant.NEWRENO
    aimd: AIMDParams = dataclasses.field(default_factory=AIMDParams.standard_tcp)
    delayed_ack: int = 1
    delack_timeout: float = 0.2
    min_rto: float = 0.2
    max_rto: float = 60.0
    initial_rto: float = 3.0
    rto_jitter: float = 0.0
    initial_cwnd: float = 2.0
    initial_ssthresh: float = 64.0
    max_cwnd: float = 10_000.0

    def __post_init__(self) -> None:
        if self.mss <= 0:
            raise ValidationError(f"mss must be > 0, got {self.mss}")
        if self.delayed_ack < 1:
            raise ValidationError(
                f"delayed_ack must be >= 1, got {self.delayed_ack}"
            )
        if self.min_rto <= 0 or self.max_rto < self.min_rto:
            raise ValidationError(
                f"need 0 < min_rto <= max_rto, got [{self.min_rto}, {self.max_rto}]"
            )
        if self.initial_rto <= 0:
            raise ValidationError(
                f"initial_rto must be > 0, got {self.initial_rto}"
            )
        if self.rto_jitter < 0:
            raise ValidationError(
                f"rto_jitter must be >= 0, got {self.rto_jitter}"
            )
        if self.initial_cwnd < 1:
            raise ValidationError(
                f"initial_cwnd must be >= 1, got {self.initial_cwnd}"
            )
        if self.max_cwnd < self.initial_cwnd:
            raise ValidationError("max_cwnd must be >= initial_cwnd")
