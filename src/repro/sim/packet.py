"""Packet model.

Packets are segment-granular, like ns-2: a TCP data packet carries a
segment index rather than a byte offset, and an ACK carries the
cumulative highest in-order segment received.  Attack packets are
UDP-like constant-size datagrams with no transport state.
"""

from __future__ import annotations

import copy
import enum
import itertools
from typing import Optional, Tuple

__all__ = ["PacketKind", "Packet", "TCP_HEADER_BYTES", "ACK_SIZE_BYTES",
           "FULL_PACKET_BYTES"]

#: Size of a full data packet on the wire (MSS 1460 + 40 B headers).
#: The one shared wire-size constant -- topologies, the fluid model,
#: attack sources, and throughput formulas all import it from here.
FULL_PACKET_BYTES = 1500.0

#: Combined TCP/IP header overhead modelled on every data packet, bytes.
TCP_HEADER_BYTES = 40

#: Size of a pure ACK (TCP/IP headers, no payload), bytes.
ACK_SIZE_BYTES = 40


class PacketKind(enum.Enum):
    """Transport-level packet classification used by agents and monitors."""

    DATA = "data"       #: TCP data segment
    ACK = "ack"         #: TCP acknowledgement
    ATTACK = "attack"   #: PDoS / flooding attack datagram
    CBR = "cbr"         #: generic constant-bit-rate (UDP-like) payload


class Packet:
    """A packet in flight.

    Attributes:
        uid: globally unique id (monotonically increasing; useful in traces).
        kind: :class:`PacketKind`.
        flow_id: identifier of the generating flow/agent (attack sources get
            flow ids too so traces can separate attack from legitimate bytes).
        src / dst: node ids, used by static forwarding.
        size_bytes: total on-the-wire size including modelled headers.
        seq: data segment index (DATA) or pulse index (ATTACK); ``None``
            otherwise.
        ack: cumulative ACK segment index (ACK packets only).
        sent_at: timestamp the transport handed the packet to the network,
            echoed on ACKs for RTT sampling.
        ecn / retransmit: bookkeeping flags.
    """

    __slots__ = (
        "uid", "kind", "flow_id", "src", "dst", "size_bytes",
        "seq", "ack", "sent_at", "retransmit", "hops", "sack",
    )

    _uid_counter = itertools.count()

    @classmethod
    def reset_uids(cls) -> None:
        """Restart uid numbering from 0.

        Scenario builders call this so back-to-back in-process runs
        number their packets identically -- with a process-global
        counter, a rerun of the same scenario would otherwise produce a
        different (run-order-dependent) uid stream in its traces.
        """
        cls._uid_counter = itertools.count()

    @classmethod
    def peek_uid(cls) -> int:
        """The uid the next packet will receive, without consuming it.

        Warm-start checkpointing records this alongside a network
        snapshot so every fork resumes the exact uid stream a
        from-scratch run would produce.
        """
        # itertools.count cannot be inspected in place; advance a copy.
        return next(copy.copy(cls._uid_counter))

    @classmethod
    def set_next_uid(cls, value: int) -> None:
        """Make *value* the next uid handed out (checkpoint restore)."""
        cls._uid_counter = itertools.count(value)

    def __init__(
        self,
        kind: PacketKind,
        flow_id: int,
        src: int,
        dst: int,
        size_bytes: float,
        seq: Optional[int] = None,
        ack: Optional[int] = None,
        sent_at: float = 0.0,
        retransmit: bool = False,
    ) -> None:
        self.uid = next(Packet._uid_counter)
        self.kind = kind
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.size_bytes = size_bytes
        self.seq = seq
        self.ack = ack
        self.sent_at = sent_at
        self.retransmit = retransmit
        self.hops = 0
        #: SACK blocks on ACKs: inclusive (start, end) segment ranges.
        self.sack: Tuple[Tuple[int, int], ...] = ()

    @property
    def is_attack(self) -> bool:
        """True for attack datagrams (used by traces and detectors)."""
        return self.kind is PacketKind.ATTACK

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        extra = ""
        if self.seq is not None:
            extra += f" seq={self.seq}"
        if self.ack is not None:
            extra += f" ack={self.ack}"
        return (
            f"<Packet #{self.uid} {self.kind.value} flow={self.flow_id} "
            f"{self.src}->{self.dst} {self.size_bytes}B{extra}>"
        )
