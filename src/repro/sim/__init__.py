"""Packet-level discrete-event network simulator (the ns-2 substrate).

The paper validates its analysis with ns-2 2.28; this package provides
the equivalent substrate built from scratch:

* :mod:`repro.sim.engine` -- the event scheduler;
* :mod:`repro.sim.packet` -- segment-granular packets;
* :mod:`repro.sim.link` / :mod:`repro.sim.queues` -- links with
  serialization + propagation and DropTail / RED buffering;
* :mod:`repro.sim.node` -- static forwarding;
* :mod:`repro.sim.tcp` -- general-AIMD TCP (Tahoe/Reno/NewReno/SACK);
* :mod:`repro.sim.attacker` -- pulse-train and CBR sources;
* :mod:`repro.sim.workload` -- finite-transfer ("mice") workloads;
* :mod:`repro.sim.topology` -- the Fig. 5 dumbbell builder;
* :mod:`repro.sim.checkpoint` -- warm-start snapshot/fork of a built
  network (simulate a shared warm-up once, fork each sweep cell);
* :mod:`repro.sim.trace` -- rate / drop / queue instrumentation;
* :mod:`repro.sim.profile` -- cProfile wrapper reporting events/sec;
* :mod:`repro.sim.tracefile` -- ns-2-format trace file writer/parser.
"""

from repro.sim.attacker import CBRSource, PulseAttackSource
from repro.sim.checkpoint import NetworkSnapshot
from repro.sim.engine import Event, Simulator
from repro.sim.link import Link
from repro.sim.node import Node
from repro.sim.packet import Packet, PacketKind
from repro.sim.profile import ProfileReport, profile_run
from repro.sim.queues import (
    CHOKeQueue,
    DropTailQueue,
    QueueDiscipline,
    QueueState,
    REDQueue,
)
from repro.sim.tcp import AIMDParams, TCPConfig, TCPReceiver, TCPSender, TCPVariant
from repro.sim.topology import (
    DumbbellConfig,
    DumbbellNetwork,
    build_dumbbell,
    make_droptail_queue,
    make_red_queue,
)
from repro.sim.trace import DropMonitor, QueueSampler, RateMonitor
from repro.sim.tracefile import TraceRecord, TraceWriter, read_trace
from repro.sim.workload import FlowRecord, ShortFlowWorkload

__all__ = [
    "AIMDParams",
    "CBRSource",
    "CHOKeQueue",
    "DropMonitor",
    "DropTailQueue",
    "DumbbellConfig",
    "DumbbellNetwork",
    "Event",
    "FlowRecord",
    "Link",
    "NetworkSnapshot",
    "Node",
    "Packet",
    "PacketKind",
    "ProfileReport",
    "PulseAttackSource",
    "QueueDiscipline",
    "QueueSampler",
    "QueueState",
    "REDQueue",
    "RateMonitor",
    "ShortFlowWorkload",
    "Simulator",
    "TCPConfig",
    "TCPReceiver",
    "TCPSender",
    "TCPVariant",
    "TraceRecord",
    "TraceWriter",
    "build_dumbbell",
    "make_droptail_queue",
    "make_red_queue",
    "profile_run",
    "read_trace",
]
