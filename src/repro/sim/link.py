"""Unidirectional links with a FIFO buffer, serialization, and delay.

Timing model (identical to ns-2's ``DelayLink`` + ``Queue`` pair, but with
one scheduler event per packet):

* A packet arriving at a busy link waits in FIFO order; its departure
  time is ``max(now, busy_until) + size / rate`` and is fully determined
  at arrival, so the link keeps a *departure list* instead of scheduling
  a dequeue event per packet.
* The instantaneous queue occupancy seen by the discipline (RED's sampled
  queue length, drop-tail's fill check) is computed lazily by expiring
  entries from the departure list.
* After serialization the packet propagates for ``delay`` seconds and is
  then delivered to the destination node.

Each link is unidirectional; duplex connectivity uses two links.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional, Tuple, TYPE_CHECKING

from repro.sim.packet import Packet, PacketKind
from repro.sim.queues import (
    DropTailQueue,
    QueueDiscipline,
    QueueState,
    REDQueue,
)
from repro.util.validate import check_non_negative, check_positive

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator
    from repro.sim.node import Node

__all__ = ["Link", "LinkMonitor", "BufferedPacket"]

#: Signature of a link monitor callback: (packet, time, accepted).
LinkMonitor = Callable[[Packet, float, bool], None]

_ATTACK = PacketKind.ATTACK


class BufferedPacket:
    """A buffered packet's bookkeeping on buffer-tracking links.

    Indexable like the plain ``(departure, size)`` tuples of the fast
    path so the expiry loop handles both representations.
    """

    __slots__ = ("departure", "size_bytes", "packet", "event")

    def __init__(self, departure: float, size_bytes: float, packet: Packet,
                 event) -> None:
        self.departure = departure
        self.size_bytes = size_bytes
        self.packet = packet
        self.event = event

    @property
    def flow_id(self) -> int:
        return self.packet.flow_id

    def __getitem__(self, index: int) -> float:
        if index == 0:
            return self.departure
        if index == 1:
            return self.size_bytes
        raise IndexError(index)


class Link:
    """A unidirectional link from ``src`` to ``dst``.

    ``__slots__`` keeps per-packet attribute loads in :meth:`send` off
    the instance-dict path.

    Args:
        sim: the event engine.
        src / dst: endpoint nodes; the link auto-registers itself as
            ``src``'s outgoing interface toward ``dst``.
        rate_bps: serialization rate in bits per second.
        delay: one-way propagation delay in seconds.
        queue: buffer discipline; defaults to a 64 KiB drop-tail queue.
        name: label used in traces and repr.
    """

    __slots__ = (
        "sim", "src", "dst", "rate_bps", "delay", "queue", "name",
        "_departures", "_queued_bytes", "_busy_until", "_track_buffer",
        "_tx_time", "_fast_admit", "_red_admit", "bytes_sent",
        "packets_sent", "bytes_dropped", "packets_dropped",
        "peak_queue_bytes", "monitors", "arrival_tap", "drop_tap",
        "_deliver", "_fwd_compiled",
    )

    def __init__(
        self,
        sim: "Simulator",
        src: "Node",
        dst: "Node",
        rate_bps: float,
        delay: float,
        queue: Optional[QueueDiscipline] = None,
        name: str = "",
    ) -> None:
        self.sim = sim
        self.src = src
        self.dst = dst
        self.rate_bps = check_positive("rate_bps", rate_bps)
        self.delay = check_non_negative("delay", delay)
        self.queue = queue if queue is not None else DropTailQueue(65536.0)
        self.name = name or f"{src.node_id}->{dst.node_id}"

        # Lazy departure list: (departure_time, size_bytes) per buffered pkt
        # -- or BufferedPacket entries when the discipline inspects the
        # buffer (CHOKe-style match-and-drop).
        self._departures: Deque = deque()
        self._queued_bytes = 0.0
        self._busy_until = 0.0
        self._track_buffer = getattr(self.queue, "needs_buffer_access", False)
        # Per-size serialization times, memoized with the exact
        # ``size * 8.0 / rate`` arithmetic so cached and uncached lookups
        # are bit-identical.  Traffic uses a handful of distinct sizes.
        self._tx_time: dict = {}
        # Plain tail-drop admission needs neither a QueueState nor the
        # idle bookkeeping; Link.send inlines it.  Exact-type check: a
        # subclass may override admit().
        self._fast_admit = (
            type(self.queue) is DropTailQueue and not self._track_buffer
        )
        # RED admission on raw values (no QueueState) -- exact-type check
        # so subclasses (CHOKe) keep the composed reference path.
        self._red_admit = (
            self.queue.admit_values if type(self.queue) is REDQueue else None
        )

        # Statistics.
        self.bytes_sent = 0.0
        self.packets_sent = 0
        self.bytes_dropped = 0.0
        self.packets_dropped = 0
        self.peak_queue_bytes = 0.0

        #: Monitors invoked on every arrival at the link's ingress with
        #: ``(packet, time, accepted)``.  Used by rate/drop tracers.
        self.monitors: List[LinkMonitor] = []

        #: Flight-recorder fast tap (see :mod:`repro.obs.recorder`):
        #: when set, :meth:`send` feeds it one ``(time, queue_bytes,
        #: queue_packets, signed_size)`` row per arrival, where the
        #: size carries a negative sign for attack packets.  It must
        #: be a C-level callable (``list.append``) fed number-only
        #: tuples -- a Python callback per arrival costs more than the
        #: recorder's whole overhead budget, and a tuple holding a
        #: packet reference stays on the GC's scan list forever (the
        #: cyclic collector untracks number-only tuples after one
        #: survived collection).  ``None`` costs one pointer check.
        self.arrival_tap: Optional[Callable] = None

        #: Companion drop tap, fed ``(time, packet)`` per *dropped*
        #: arrival only -- checked inside the drop branch, so it is
        #: free on the accepted path.
        self.drop_tap: Optional[Callable] = None

        #: cached bound method: deliveries on the dict plane (and on
        #: buffer-tracking links, whose evict() must be able to cancel
        #: and reschedule through one stable callable) dispatch to
        #: dst.receive.
        self._deliver = dst.receive
        #: compiled forwarding plane: resolve the delivery callable --
        #: the next hop's bound ``Link.send`` or the terminal agent --
        #: at send time, so the scheduler dispatches straight into the
        #: next hop with no ``Node.receive`` frame or dict probes in
        #: between.  Buffer-tracking links stay on the receive path.
        self._fwd_compiled = dst._compiled and not self._track_buffer

        src.attach_link(dst.node_id, self)

    # ------------------------------------------------------------------
    def _expire_departed(self, now: float) -> None:
        departures = self._departures
        while departures and departures[0][0] <= now:
            self._queued_bytes -= departures.popleft()[1]
        if not departures:
            self._queued_bytes = 0.0  # guard against float drift

    # ------------------------------------------------------------------
    # buffer access for match-and-drop disciplines (CHOKe)
    # ------------------------------------------------------------------
    def sample_buffered(self, rng) -> Optional["BufferedPacket"]:
        """A uniformly random *waiting* packet (in-service head excluded).

        Only available on links whose discipline sets
        ``needs_buffer_access``; returns None when nothing is waiting.
        """
        if not self._track_buffer or len(self._departures) < 2:
            return None
        index = rng.randrange(1, len(self._departures))
        return self._departures[index]

    def evict(self, entry: "BufferedPacket") -> None:
        """Drop a buffered packet chosen by the discipline.

        The link stays work-conserving: the evicted packet's transmission
        slot is reclaimed, so every packet queued behind it departs one
        serialization time earlier (their delivery events are
        rescheduled).  This is safe because packets queued behind a
        waiting packet were necessarily enqueued back-to-back -- no idle
        gap can exist behind a backlog.
        """
        # Expire finished transmissions first: a stale handle for a packet
        # that already departed must be a no-op, not a reschedule of
        # trailing deliveries into the past.
        self._expire_departed(self.sim._now)
        try:
            self._departures.remove(entry)
        except ValueError:
            return  # already departed; nothing to evict
        entry.event.cancel()
        self._queued_bytes -= entry.size_bytes
        reclaimed = self.transmission_time(entry.size_bytes)
        for other in self._departures:
            if other[0] > entry.departure:
                other.departure -= reclaimed
                other.event.cancel()
                other.event = self.sim.schedule_at(
                    other.departure + self.delay, self.dst.receive,
                    other.packet,
                )
        self._busy_until -= reclaimed
        # The evicted packet never reached the wire after all.
        self.bytes_sent -= entry.size_bytes
        self.packets_sent -= 1
        self.bytes_dropped += entry.size_bytes
        self.packets_dropped += 1

    def queue_state(self) -> QueueState:
        """Instantaneous buffer occupancy (expires departed packets first)."""
        now = self.sim.now
        self._expire_departed(now)
        idle_since: Optional[float] = None
        if not self._departures:
            # Idle since the last transmission finished (0.0 if never used).
            idle_since = min(self._busy_until, now)
        return QueueState(self._queued_bytes, len(self._departures), now, idle_since)

    @property
    def queue_bytes(self) -> float:
        """Current buffered bytes (including the packet in transmission)."""
        self._expire_departed(self.sim.now)
        return self._queued_bytes

    @property
    def queue_packets(self) -> int:
        """Current buffered packet count (including the one in transmission)."""
        self._expire_departed(self.sim.now)
        return len(self._departures)

    def transmission_time(self, size_bytes: float) -> float:
        """Serialization time of *size_bytes* on this link, seconds."""
        tx = self._tx_time.get(size_bytes)
        if tx is None:
            tx = self._tx_time[size_bytes] = size_bytes * 8.0 / self.rate_bps
        return tx

    # ------------------------------------------------------------------
    def send(self, packet: Packet) -> bool:
        """Offer *packet* to the link; returns False if the buffer dropped it.

        This is the per-packet hot path (every hop of every packet lands
        here), so departed-entry expiry is fused in, the drop-tail admit
        check is inlined without building a :class:`QueueState`, and the
        monitor loop is skipped when nothing is attached.
        """
        sim = self.sim
        now = sim._now
        size = packet.size_bytes
        queue = self.queue

        # Expire entries that have finished serialization (was
        # _expire_departed; fused to keep the occupancy in a local).
        departures = self._departures
        queued = self._queued_bytes
        while departures and departures[0][0] <= now:
            queued -= departures.popleft()[1]
        if not departures:
            queued = 0.0  # guard against float drift
        self._queued_bytes = queued

        if self._fast_admit:
            # Inlined DropTailQueue.admit: fits-or-drop on raw occupancy.
            if queued + size <= queue.capacity_bytes:
                queue.accepts += 1
                accepted = True
            else:
                queue.drops += 1
                accepted = False
        else:
            idle_since: Optional[float] = None
            if not departures:
                # Idle since the last transmission finished (0.0 if never
                # used).
                busy = self._busy_until
                idle_since = busy if busy < now else now
            red_admit = self._red_admit
            if red_admit is not None:
                accepted = red_admit(
                    size, queued, len(departures), now, idle_since,
                )
            elif self._track_buffer:
                state = QueueState(queued, len(departures), now, idle_since)
                accepted = self.queue.admit_with_link(packet, state, self)
            else:
                state = QueueState(queued, len(departures), now, idle_since)
                accepted = self.queue.admit(size, state)

        tap = self.arrival_tap
        if tap is not None:
            # Flight-recorder row: `queued`/`departures` hold the
            # post-expiry occupancy excluding this packet; the append
            # mutates only the recorder's buffer, so digests are
            # unchanged.
            tap((now, queued, len(departures),
                 -size if packet.kind is _ATTACK else size))

        monitors = self.monitors
        if monitors:
            for monitor in monitors:
                monitor(packet, now, accepted)

        if not accepted:
            drop_tap = self.drop_tap
            if drop_tap is not None:
                drop_tap((now, packet))
            self.bytes_dropped += size
            self.packets_dropped += 1
            return False

        # Re-read busy/queued state: a match-and-drop discipline may have
        # evicted a buffered packet during admission.
        busy = self._busy_until
        start = now if busy < now else busy
        tx = self._tx_time.get(size)
        if tx is None:
            tx = self._tx_time[size] = size * 8.0 / self.rate_bps
        departure = start + tx
        self._busy_until = departure
        # Direct backend push: the delivery time can never precede the
        # clock (departure >= now and delay >= 0), so schedule_at's
        # past-check is statically satisfied and the entry goes straight
        # onto the active calendar backend.  Only buffer-tracking links
        # need an Event handle (evict() must cancel in-flight
        # deliveries); every other delivery is a transient entry that
        # the dispatch loop recycles through the backend's freelist.
        if self._track_buffer:
            event = sim._push_handle(
                departure + self.delay, self._deliver, (packet,))
            departures.append(BufferedPacket(departure, size, packet, event))
        elif self._fwd_compiled:
            # Compiled plane: resolve what Node.receive would do at the
            # delivery time *now* (routes and agents are static once
            # traffic toward them is in flight -- see
            # Node.register_agent) and schedule that callable directly.
            # Same event time, same seq, same effect: bit-identical to
            # dispatching dst.receive, minus one Python frame and the
            # dict probes per hop.
            dst_node = self.dst
            d = packet.dst
            if d == dst_node.node_id:
                fn = dst_node._agents.get(packet.flow_id)
                if fn is None:
                    fn = dst_node._drop_undeliverable
            else:
                table = dst_node._next_send
                fn = table[d] if d < len(table) else None
                if fn is None:
                    fn = dst_node._default_send
                    if fn is None:
                        fn = dst_node._drop_undeliverable
            sim._push_transient(departure + self.delay, fn, (packet,))
            departures.append((departure, size))
        else:
            sim._push_transient(
                departure + self.delay, self._deliver, (packet,))
            departures.append((departure, size))
        queued = self._queued_bytes + size
        self._queued_bytes = queued
        if queued > self.peak_queue_bytes:
            self.peak_queue_bytes = queued

        self.bytes_sent += size
        self.packets_sent += 1
        packet.hops += 1
        return True

    @property
    def utilization_bytes(self) -> float:
        """Total bytes accepted onto the wire so far."""
        return self.bytes_sent

    def state_digest(self) -> tuple:
        """Every value the link's future behaviour can depend on.

        Covers the serialization horizon, the lazy departure list (the
        physical FIFO), the cumulative statistics, and the attached
        discipline's own digest.  Warm-start checkpointing compares
        digests to prove a forked link carries and drops exactly like
        the original.
        """
        return (
            self._busy_until,
            self._queued_bytes,
            tuple((entry[0], entry[1]) for entry in self._departures),
            self.bytes_sent, self.packets_sent,
            self.bytes_dropped, self.packets_dropped,
            self.peak_queue_bytes,
            self.queue.state_digest(),
        )

    def metrics_snapshot(self) -> dict:
        """Cumulative link telemetry for the observability layer.

        Reads the counters :meth:`send` already maintains (plus the
        discipline's), so snapshotting costs nothing on the per-packet
        path.  Keys are stable: the run-log schema and
        ``repro obs report`` rely on them.
        """
        snap = {
            "accepted_bytes": self.bytes_sent,
            "accepted_packets": float(self.packets_sent),
            "dropped_bytes": self.bytes_dropped,
            "dropped_packets": float(self.packets_dropped),
            "peak_queue_bytes": self.peak_queue_bytes,
            "queue_bytes": self._queued_bytes,
            "queue_packets": float(len(self._departures)),
        }
        snap.update(self.queue.metrics_snapshot())
        return snap

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Link {self.name} {self.rate_bps / 1e6:.1f}Mbps "
            f"{self.delay * 1e3:.1f}ms q={len(self._departures)}pkts>"
        )
