"""Unidirectional links with a FIFO buffer, serialization, and delay.

Timing model (identical to ns-2's ``DelayLink`` + ``Queue`` pair, but with
one scheduler event per packet):

* A packet arriving at a busy link waits in FIFO order; its departure
  time is ``max(now, busy_until) + size / rate`` and is fully determined
  at arrival, so the link keeps a *departure list* instead of scheduling
  a dequeue event per packet.
* The instantaneous queue occupancy seen by the discipline (RED's sampled
  queue length, drop-tail's fill check) is computed lazily by expiring
  entries from the departure list.
* After serialization the packet propagates for ``delay`` seconds and is
  then delivered to the destination node.

Each link is unidirectional; duplex connectivity uses two links.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional, Tuple, TYPE_CHECKING

from repro.sim.packet import Packet
from repro.sim.queues import DropTailQueue, QueueDiscipline, QueueState
from repro.util.validate import check_non_negative, check_positive

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator
    from repro.sim.node import Node

__all__ = ["Link", "LinkMonitor", "BufferedPacket"]

#: Signature of a link monitor callback: (packet, time, accepted).
LinkMonitor = Callable[[Packet, float, bool], None]


class BufferedPacket:
    """A buffered packet's bookkeeping on buffer-tracking links.

    Indexable like the plain ``(departure, size)`` tuples of the fast
    path so the expiry loop handles both representations.
    """

    __slots__ = ("departure", "size_bytes", "packet", "event")

    def __init__(self, departure: float, size_bytes: float, packet: Packet,
                 event) -> None:
        self.departure = departure
        self.size_bytes = size_bytes
        self.packet = packet
        self.event = event

    @property
    def flow_id(self) -> int:
        return self.packet.flow_id

    def __getitem__(self, index: int) -> float:
        if index == 0:
            return self.departure
        if index == 1:
            return self.size_bytes
        raise IndexError(index)


class Link:
    """A unidirectional link from ``src`` to ``dst``.

    Args:
        sim: the event engine.
        src / dst: endpoint nodes; the link auto-registers itself as
            ``src``'s outgoing interface toward ``dst``.
        rate_bps: serialization rate in bits per second.
        delay: one-way propagation delay in seconds.
        queue: buffer discipline; defaults to a 64 KiB drop-tail queue.
        name: label used in traces and repr.
    """

    def __init__(
        self,
        sim: "Simulator",
        src: "Node",
        dst: "Node",
        rate_bps: float,
        delay: float,
        queue: Optional[QueueDiscipline] = None,
        name: str = "",
    ) -> None:
        self.sim = sim
        self.src = src
        self.dst = dst
        self.rate_bps = check_positive("rate_bps", rate_bps)
        self.delay = check_non_negative("delay", delay)
        self.queue = queue if queue is not None else DropTailQueue(65536.0)
        self.name = name or f"{src.node_id}->{dst.node_id}"

        # Lazy departure list: (departure_time, size_bytes) per buffered pkt
        # -- or BufferedPacket entries when the discipline inspects the
        # buffer (CHOKe-style match-and-drop).
        self._departures: Deque = deque()
        self._queued_bytes = 0.0
        self._busy_until = 0.0
        self._track_buffer = getattr(self.queue, "needs_buffer_access", False)

        # Statistics.
        self.bytes_sent = 0.0
        self.packets_sent = 0
        self.bytes_dropped = 0.0
        self.packets_dropped = 0
        self.peak_queue_bytes = 0.0

        #: Monitors invoked on every arrival at the link's ingress with
        #: ``(packet, time, accepted)``.  Used by rate/drop tracers.
        self.monitors: List[LinkMonitor] = []

        src.attach_link(dst.node_id, self)

    # ------------------------------------------------------------------
    def _expire_departed(self, now: float) -> None:
        departures = self._departures
        while departures and departures[0][0] <= now:
            self._queued_bytes -= departures.popleft()[1]
        if not departures:
            self._queued_bytes = 0.0  # guard against float drift

    # ------------------------------------------------------------------
    # buffer access for match-and-drop disciplines (CHOKe)
    # ------------------------------------------------------------------
    def sample_buffered(self, rng) -> Optional["BufferedPacket"]:
        """A uniformly random *waiting* packet (in-service head excluded).

        Only available on links whose discipline sets
        ``needs_buffer_access``; returns None when nothing is waiting.
        """
        if not self._track_buffer or len(self._departures) < 2:
            return None
        index = rng.randrange(1, len(self._departures))
        return self._departures[index]

    def evict(self, entry: "BufferedPacket") -> None:
        """Drop a buffered packet chosen by the discipline.

        The link stays work-conserving: the evicted packet's transmission
        slot is reclaimed, so every packet queued behind it departs one
        serialization time earlier (their delivery events are
        rescheduled).  This is safe because packets queued behind a
        waiting packet were necessarily enqueued back-to-back -- no idle
        gap can exist behind a backlog.
        """
        try:
            self._departures.remove(entry)
        except ValueError:
            return  # already departed; nothing to evict
        entry.event.cancel()
        self._queued_bytes -= entry.size_bytes
        reclaimed = self.transmission_time(entry.size_bytes)
        for other in self._departures:
            if other[0] > entry.departure:
                other.departure -= reclaimed
                other.event.cancel()
                other.event = self.sim.schedule_at(
                    other.departure + self.delay, self.dst.receive,
                    other.packet,
                )
        self._busy_until -= reclaimed
        # The evicted packet never reached the wire after all.
        self.bytes_sent -= entry.size_bytes
        self.packets_sent -= 1
        self.bytes_dropped += entry.size_bytes
        self.packets_dropped += 1

    def queue_state(self) -> QueueState:
        """Instantaneous buffer occupancy (expires departed packets first)."""
        now = self.sim.now
        self._expire_departed(now)
        idle_since: Optional[float] = None
        if not self._departures:
            # Idle since the last transmission finished (0.0 if never used).
            idle_since = min(self._busy_until, now)
        return QueueState(self._queued_bytes, len(self._departures), now, idle_since)

    @property
    def queue_bytes(self) -> float:
        """Current buffered bytes (including the packet in transmission)."""
        self._expire_departed(self.sim.now)
        return self._queued_bytes

    @property
    def queue_packets(self) -> int:
        """Current buffered packet count (including the one in transmission)."""
        self._expire_departed(self.sim.now)
        return len(self._departures)

    def transmission_time(self, size_bytes: float) -> float:
        """Serialization time of *size_bytes* on this link, seconds."""
        return size_bytes * 8.0 / self.rate_bps

    # ------------------------------------------------------------------
    def send(self, packet: Packet) -> bool:
        """Offer *packet* to the link; returns False if the buffer dropped it."""
        now = self.sim.now
        state = self.queue_state()
        if self._track_buffer:
            accepted = self.queue.admit_with_link(packet, state, self)
        else:
            accepted = self.queue.admit(packet.size_bytes, state)

        for monitor in self.monitors:
            monitor(packet, now, accepted)

        if not accepted:
            self.bytes_dropped += packet.size_bytes
            self.packets_dropped += 1
            return False

        start = max(now, self._busy_until)
        departure = start + self.transmission_time(packet.size_bytes)
        self._busy_until = departure
        event = self.sim.schedule_at(departure + self.delay,
                                     self.dst.receive, packet)
        if self._track_buffer:
            self._departures.append(BufferedPacket(
                departure, packet.size_bytes, packet, event,
            ))
        else:
            self._departures.append((departure, packet.size_bytes))
        self._queued_bytes += packet.size_bytes
        if self._queued_bytes > self.peak_queue_bytes:
            self.peak_queue_bytes = self._queued_bytes

        self.bytes_sent += packet.size_bytes
        self.packets_sent += 1
        packet.hops += 1
        return True

    @property
    def utilization_bytes(self) -> float:
        """Total bytes accepted onto the wire so far."""
        return self.bytes_sent

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Link {self.name} {self.rate_bps / 1e6:.1f}Mbps "
            f"{self.delay * 1e3:.1f}ms q={len(self._departures)}pkts>"
        )
