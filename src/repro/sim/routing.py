"""Graph topologies and the compiled forwarding plane.

:class:`GraphTopology` builds arbitrary directed graphs of
:class:`~repro.sim.node.Node`\\ s and :class:`~repro.sim.link.Link`\\ s
and compiles static shortest-path routes into the per-node forwarding
state the hot path consumes:

* **Routers** (nodes with two or more outgoing interfaces) get a dense
  ``list``-indexed next-link table keyed by destination node id -- one
  indexed load per hop instead of two dict probes.
* **Hosts** (single outgoing interface) get an O(1) *default route*
  through their access link, so a 10k-host scenario carries no
  per-host tables at all.

Route selection is breadth-first shortest path over the directed link
graph with a deterministic tie-break: the BFS expands nodes in FIFO
order and each node's neighbors in ascending node-id order, so among
equal-length paths the one discovered through the lowest-id ancestry
wins.  Compilation is a pure function of the wiring -- compiling twice,
or on another machine, yields identical tables.

Loop freedom: every installed next hop lies on *some* shortest path, so
each hop strictly decreases the remaining BFS distance even when
different routers broke ties differently (a subpath of a shortest path
is itself shortest).

The compiled *forwarding plane* (``REPRO_FORWARDING=compiled``, the
default) additionally resolves each delivery's continuation at send
time (see :meth:`repro.sim.link.Link.send`), eliminating the
``Node.receive`` frame per hop; ``REPRO_FORWARDING=dict`` restores the
historical dict-probe path.  Both planes are bit-identical.

:func:`aimd_buffer_bytes` sizes per-link buffers from the AIMD
buffer-sizing rule (Avrachenkov, Ayesta & Piunovskiy, "Convergence and
Optimal Buffer Sizing for Window Based AIMD Congestion Control",
arXiv:cs/0703063), used by the heterogeneous multi-bottleneck
scenarios.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.sim.link import Link
from repro.sim.node import FORWARDING_MODES, Node, forwarding_default
from repro.sim.packet import FULL_PACKET_BYTES
from repro.sim.queues import QueueDiscipline
from repro.util.errors import ConfigurationError, ValidationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator

__all__ = ["GraphTopology", "aimd_buffer_bytes", "forwarding_default",
           "FORWARDING_MODES"]


def aimd_buffer_bytes(
    rate_bps: float,
    rtt: float,
    n_flows: int = 1,
    *,
    beta: float = 0.5,
    floor_packets: float = 16.0,
    packet_bytes: float = FULL_PACKET_BYTES,
) -> float:
    """Per-link buffer from the AIMD buffer-sizing rule (arXiv cs/0703063).

    An AIMD(α, β) flow cuts its window to β·W on loss; the link stays
    busy through the cut iff the buffer absorbs the reduction:
    ``β·(C·T + B) >= C·T``, i.e. ``B >= C·T·(1 - β)/β`` -- the full
    bandwidth-delay product for standard TCP's β = 1/2, which is the
    paper's full-utilization buffer.  ``n_flows`` desynchronized flows
    share the burst statistically, scaling the requirement by
    ``1/sqrt(N)`` (the usual multiplexing reduction applied on top of
    the AIMD rule).  A small floor keeps very low-BDP links from
    degenerating to sub-packet buffers.

    Args:
        rate_bps: link rate C, bits per second.
        rtt: round-trip time T of the flows sharing the link, seconds
            (use the mean for a heterogeneous population).
        n_flows: long-lived AIMD flows sharing the link.
        beta: multiplicative-decrease factor (0.5 for standard TCP).
        floor_packets: minimum buffer, in packets of ``packet_bytes``.
    """
    if not 0.0 < beta < 1.0:
        raise ValidationError(f"beta must be in (0, 1), got {beta}")
    if rate_bps <= 0 or rtt <= 0:
        raise ValidationError(
            f"rate_bps and rtt must be positive, got {rate_bps}, {rtt}"
        )
    bdp_bytes = rate_bps * rtt / 8.0
    buffer = (1.0 - beta) / beta * bdp_bytes / math.sqrt(max(n_flows, 1))
    return max(buffer, floor_packets * packet_bytes)


class GraphTopology:
    """An arbitrary directed network graph with compiled static routes.

    Thin builder over :class:`~repro.sim.node.Node` /
    :class:`~repro.sim.link.Link`: it owns node-id assignment, records
    the wiring, and compiles shortest-path forwarding state.  Scenario
    classes (the dumbbell, the parking lot) compose one of these rather
    than wiring nodes by hand.
    """

    def __init__(self, sim: "Simulator", *,
                 forwarding: Optional[str] = None) -> None:
        self.sim = sim
        mode = forwarding if forwarding is not None else forwarding_default()
        if mode not in FORWARDING_MODES:
            raise ValidationError(
                f"forwarding must be one of {FORWARDING_MODES}, got {mode!r}"
            )
        self.forwarding = mode
        self.nodes: Dict[int, Node] = {}
        self.links: List[Link] = []
        self._next_node_id = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, name: str = "", *,
                 node_id: Optional[int] = None) -> Node:
        """Create a node (sequential ids by default) and register it."""
        if node_id is None:
            node_id = self._next_node_id
        if node_id in self.nodes:
            raise ConfigurationError(f"node id {node_id} already exists")
        node = Node(self.sim, node_id, name,
                    compiled=self.forwarding == "compiled")
        self.nodes[node_id] = node
        self._next_node_id = max(self._next_node_id, node_id + 1)
        return node

    def add_link(
        self,
        src: Node,
        dst: Node,
        *,
        rate_bps: float,
        delay: float,
        queue: Optional[QueueDiscipline] = None,
        name: str = "",
    ) -> Link:
        """Wire a unidirectional link and record it."""
        link = Link(self.sim, src, dst, rate_bps, delay, queue, name=name)
        self.links.append(link)
        return link

    def add_duplex_link(
        self,
        a: Node,
        b: Node,
        *,
        rate_bps: float,
        delay: float,
        queue: Optional[QueueDiscipline] = None,
        queue_back: Optional[QueueDiscipline] = None,
        name: str = "",
    ) -> Tuple[Link, Link]:
        """Two opposing links between *a* and *b* (forward queue optional)."""
        forward = self.add_link(a, b, rate_bps=rate_bps, delay=delay,
                                queue=queue, name=name)
        back_name = f"{name}-reverse" if name else ""
        backward = self.add_link(b, a, rate_bps=rate_bps, delay=delay,
                                 queue=queue_back, name=back_name)
        return forward, backward

    # ------------------------------------------------------------------
    # route compilation
    # ------------------------------------------------------------------
    def compile_routes(self) -> None:
        """Install shortest-path forwarding state on every node.

        Hosts (one outgoing interface) get a default route; routers get
        per-destination entries (dict plane) mirrored into the dense
        next-link table (compiled plane).  Deterministic and
        idempotent; routes added explicitly afterwards (e.g. for nodes
        attached mid-scenario) layer on top via
        :meth:`~repro.sim.node.Node.add_route`.
        """
        adjacency = {
            node_id: sorted(node._links)
            for node_id, node in self.nodes.items()
        }
        for node_id in sorted(self.nodes):
            node = self.nodes[node_id]
            neighbors = adjacency[node_id]
            if not neighbors:
                continue  # pure sink: nothing to forward
            if len(neighbors) == 1:
                node.set_default_route(neighbors[0])
                continue
            for dst_id, hop_id in self._first_hops(
                    node_id, adjacency).items():
                node.add_route(dst_id, hop_id)

    def _first_hops(self, root: int,
                    adjacency: Dict[int, List[int]]) -> Dict[int, int]:
        """BFS first-hop table from *root* (ascending-id tie-break)."""
        first: Dict[int, int] = {}
        frontier: deque = deque()
        for neighbor in adjacency[root]:
            first[neighbor] = neighbor
            frontier.append(neighbor)
        while frontier:
            via = frontier.popleft()
            hop = first[via]
            for reached in adjacency.get(via, ()):
                if reached != root and reached not in first:
                    first[reached] = hop
                    frontier.append(reached)
        return first

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def path(self, src_id: int,
             dst_id: int) -> Optional[Tuple[Link, ...]]:
        """The compiled route src -> dst as a flat tuple of links.

        Walks the installed forwarding state hop by hop (exactly what
        the data path consults), so the returned tuple is the route
        packets actually take.  Returns ``None`` when the destination
        is unroutable from *src_id*; raises on a forwarding loop
        (impossible for compiled shortest-path routes, possible for
        hand-installed ones).
        """
        if src_id not in self.nodes or dst_id not in self.nodes:
            raise ConfigurationError(
                f"unknown endpoint in path({src_id}, {dst_id})"
            )
        hops: List[Link] = []
        node = self.nodes[src_id]
        visited = set()
        while node.node_id != dst_id:
            if node.node_id in visited:
                raise ConfigurationError(
                    f"forwarding loop at n{node.node_id} toward n{dst_id}"
                )
            visited.add(node.node_id)
            link = node._outbound(dst_id)
            if link is None:
                return None
            hops.append(link)
            node = link.dst
        return tuple(hops)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<GraphTopology {len(self.nodes)} nodes "
            f"{len(self.links)} links {self.forwarding}>"
        )
