"""Scenario topologies.

:func:`build_dumbbell` constructs the paper's simulation topology
(Fig. 5): ``M`` TCP sender/receiver pairs on 50 Mb/s access links, a
15 Mb/s RED bottleneck between routers S and R, flow RTTs spread over
20-460 ms, and an attacker whose pulses cross the bottleneck toward a
sink behind router R.

Node id layout (M flows)::

    0            router S
    1            router R
    2 .. M+1     TCP sender hosts
    M+2 .. 2M+1  TCP receiver hosts
    2M+2         attacker host
    2M+3         attack sink host
"""

from __future__ import annotations

import dataclasses
import random
from typing import Callable, List, Optional

import numpy as np

from repro.core.attack import PulseTrain
from repro.obs import metrics as _obs_metrics
from repro.obs.instrument import publish_network
from repro.sim.attacker import PulseAttackSource
from repro.sim.engine import Simulator
from repro.sim.link import Link
from repro.sim.node import Node
from repro.sim.packet import Packet
from repro.sim.queues import DropTailQueue, QueueDiscipline, REDQueue
from repro.sim.tcp import TCPConfig, TCPReceiver, TCPSender
from repro.util.errors import ConfigurationError
from repro.util.units import mbps, ms
from repro.util.validate import check_positive

__all__ = ["DumbbellConfig", "DumbbellNetwork", "build_dumbbell",
           "make_red_queue", "make_droptail_queue", "make_choke_queue",
           "QUEUE_FACTORIES"]

#: Size of a full data packet on the wire (MSS 1460 + 40 B headers).
FULL_PACKET_BYTES = 1500.0


def make_red_queue(
    capacity_bytes: float,
    *,
    rng: Optional[random.Random] = None,
    service_rate_bps: Optional[float] = None,
    mean_pkt_bytes: float = FULL_PACKET_BYTES,
    byte_mode: bool = False,
) -> REDQueue:
    """A RED queue configured like the paper's test-bed (Section 4.2).

    Thresholds at 20% / 80% of the buffer, ``w_q = 0.002``,
    ``max_p = 0.1``, ``gentle_ = true``.  In packet mode (the ns-2
    default) the byte fractions are converted to packet counts using the
    mean packet size.
    """
    if byte_mode:
        min_th, max_th = 0.2 * capacity_bytes, 0.8 * capacity_bytes
    else:
        capacity_pkts = capacity_bytes / mean_pkt_bytes
        min_th, max_th = 0.2 * capacity_pkts, 0.8 * capacity_pkts
    return REDQueue(
        capacity_bytes,
        min_th=min_th,
        max_th=max_th,
        max_p=0.1,
        w_q=0.002,
        gentle=True,
        byte_mode=byte_mode,
        mean_pkt_bytes=mean_pkt_bytes,
        service_rate_bps=service_rate_bps,
        rng=rng,
    )


def make_droptail_queue(capacity_bytes: float, **_ignored) -> DropTailQueue:
    """A drop-tail queue of the same physical capacity (ablation baseline)."""
    return DropTailQueue(capacity_bytes)


def make_choke_queue(
    capacity_bytes: float,
    *,
    rng: Optional[random.Random] = None,
    service_rate_bps: Optional[float] = None,
    mean_pkt_bytes: float = FULL_PACKET_BYTES,
    byte_mode: bool = False,
) -> "CHOKeQueue":
    """A CHOKe queue with the same thresholds as :func:`make_red_queue`.

    The pulse-resistant AQM evaluated by the RED-hardening defense
    experiment (the direction the paper's conclusion motivates).
    """
    from repro.sim.queues import CHOKeQueue

    if byte_mode:
        min_th, max_th = 0.2 * capacity_bytes, 0.8 * capacity_bytes
    else:
        capacity_pkts = capacity_bytes / mean_pkt_bytes
        min_th, max_th = 0.2 * capacity_pkts, 0.8 * capacity_pkts
    return CHOKeQueue(
        capacity_bytes,
        min_th=min_th,
        max_th=max_th,
        max_p=0.1,
        w_q=0.002,
        gentle=True,
        byte_mode=byte_mode,
        mean_pkt_bytes=mean_pkt_bytes,
        service_rate_bps=service_rate_bps,
        rng=rng,
    )


#: Queue-discipline name -> factory.  The names are what experiment
#: platforms and runner cells use to reference a discipline: a name
#: serializes into a cache key and pickles to a worker, a callable does
#: not (reliably).
QUEUE_FACTORIES = {
    "red": make_red_queue,
    "droptail": make_droptail_queue,
    "choke": make_choke_queue,
}


@dataclasses.dataclass(frozen=True)
class DumbbellConfig:
    """Parameters of the Fig. 5 dumbbell.

    Defaults reproduce the paper's ns-2 setup: 50 Mb/s access links,
    15 Mb/s bottleneck with RED, TCP NewReno, RTTs evenly spread over
    20-460 ms.  The bottleneck buffer defaults to 180 full-size packets
    (about half the bandwidth-delay product at the mean RTT) -- large
    enough that a 50 ms pulse is partially absorbed (the paper's
    under-gain regime) while a 100 ms pulse overflows it (normal/over
    gain), which is the gradient Section 4.1.1 describes.

    Frozen (hashable and picklable) so a config can key the experiment
    runner's result cache and ship to worker processes unchanged.
    """

    n_flows: int = 15
    access_rate_bps: float = mbps(50)
    bottleneck_rate_bps: float = mbps(15)
    rtt_min: float = ms(20)
    rtt_max: float = ms(460)
    bottleneck_delay: float = ms(4)
    receiver_access_delay: float = ms(1)
    buffer_bytes: float = 180 * FULL_PACKET_BYTES
    queue_factory: Callable[..., QueueDiscipline] = None  # type: ignore[assignment]
    tcp: TCPConfig = dataclasses.field(default_factory=TCPConfig)
    attacker_access_rate_bps: float = mbps(1000)
    seed: int = 1
    #: scheduler backend for the engine ("heap"/"calendar"/"auto");
    #: ``None`` defers to ``REPRO_SCHEDULER`` / the engine default.
    #: ``compare=False``: backends dispatch bit-identically, so the
    #: choice must not split the runner's result-cache keys.
    scheduler: Optional[str] = dataclasses.field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.n_flows < 1:
            raise ConfigurationError(f"n_flows must be >= 1, got {self.n_flows}")
        check_positive("access_rate_bps", self.access_rate_bps)
        check_positive("bottleneck_rate_bps", self.bottleneck_rate_bps)
        check_positive("buffer_bytes", self.buffer_bytes)
        if not 0 < self.rtt_min <= self.rtt_max:
            raise ConfigurationError(
                f"need 0 < rtt_min <= rtt_max, got [{self.rtt_min}, {self.rtt_max}]"
            )
        if self.queue_factory is None:
            object.__setattr__(self, "queue_factory", make_red_queue)

    def flow_rtts(self) -> np.ndarray:
        """Per-flow propagation RTTs, evenly spread over [rtt_min, rtt_max]."""
        if self.n_flows == 1:
            return np.array([(self.rtt_min + self.rtt_max) / 2.0])
        return np.linspace(self.rtt_min, self.rtt_max, self.n_flows)


class DumbbellNetwork:
    """A built dumbbell scenario: nodes, links, agents, and helpers."""

    def __init__(self, config: DumbbellConfig) -> None:
        self.config = config
        self.sim = Simulator(scheduler=config.scheduler)
        self.rng = random.Random(config.seed)
        # Fresh uid stream per scenario: identical reruns trace identically.
        Packet.reset_uids()

        m = config.n_flows
        self.router_s = Node(self.sim, 0, "routerS")
        self.router_r = Node(self.sim, 1, "routerR")
        self.sender_nodes = [
            Node(self.sim, 2 + i, f"sender{i}") for i in range(m)
        ]
        self.receiver_nodes = [
            Node(self.sim, 2 + m + i, f"receiver{i}") for i in range(m)
        ]
        self.attacker_node = Node(self.sim, 2 + 2 * m, "attacker")
        self.attack_sink_node = Node(self.sim, 3 + 2 * m, "attackSink")

        self._build_links()
        self._build_routes()
        self._build_flows()
        self.attack_sources: List[PulseAttackSource] = []
        self._next_attack_flow_id = 10_000
        self._next_node_id = 4 + 2 * m

    # ------------------------------------------------------------------
    def _build_links(self) -> None:
        cfg = self.config
        sim = self.sim
        rtts = cfg.flow_rtts()
        # One-way fixed components of the path: sender access + bottleneck
        # + receiver access.  All flow-specific delay goes on the sender
        # access link so the configured RTT spread is achieved exactly.
        fixed_one_way = cfg.bottleneck_delay + cfg.receiver_access_delay
        access_buffer = 4_000_000.0  # generous; only the bottleneck drops

        self.sender_links: List[Link] = []
        self.sender_return_links: List[Link] = []
        for i, (sender, rtt) in enumerate(zip(self.sender_nodes, rtts)):
            one_way = rtt / 2.0
            access_delay = one_way - fixed_one_way
            if access_delay <= 0:
                raise ConfigurationError(
                    f"flow {i}: RTT {rtt * 1e3:.0f}ms too small for the fixed "
                    f"path delay {2 * fixed_one_way * 1e3:.0f}ms"
                )
            self.sender_links.append(Link(
                sim, sender, self.router_s, cfg.access_rate_bps,
                access_delay, DropTailQueue(access_buffer),
                name=f"sender{i}->S",
            ))
            self.sender_return_links.append(Link(
                sim, self.router_s, sender, cfg.access_rate_bps,
                access_delay, DropTailQueue(access_buffer),
                name=f"S->sender{i}",
            ))

        self.receiver_links: List[Link] = []
        self.receiver_return_links: List[Link] = []
        for i, receiver in enumerate(self.receiver_nodes):
            self.receiver_links.append(Link(
                sim, self.router_r, receiver, cfg.access_rate_bps,
                cfg.receiver_access_delay, DropTailQueue(access_buffer),
                name=f"R->receiver{i}",
            ))
            self.receiver_return_links.append(Link(
                sim, receiver, self.router_r, cfg.access_rate_bps,
                cfg.receiver_access_delay, DropTailQueue(access_buffer),
                name=f"receiver{i}->R",
            ))

        # The contested bottleneck S->R, plus the (ACK-carrying) reverse path.
        self.bottleneck_queue = cfg.queue_factory(
            cfg.buffer_bytes,
            rng=self.rng,
            service_rate_bps=cfg.bottleneck_rate_bps,
        )
        self.bottleneck = Link(
            sim, self.router_s, self.router_r, cfg.bottleneck_rate_bps,
            cfg.bottleneck_delay, self.bottleneck_queue, name="bottleneck",
        )
        self.reverse_bottleneck = Link(
            sim, self.router_r, self.router_s, cfg.bottleneck_rate_bps,
            cfg.bottleneck_delay, DropTailQueue(4_000_000.0),
            name="bottleneck-reverse",
        )

        # Attacker and attack sink attachment.
        self.attacker_link = Link(
            sim, self.attacker_node, self.router_s, cfg.attacker_access_rate_bps,
            ms(1), DropTailQueue(16_000_000.0), name="attacker->S",
        )
        self.attack_sink_link = Link(
            sim, self.router_r, self.attack_sink_node, cfg.attacker_access_rate_bps,
            ms(1), DropTailQueue(16_000_000.0), name="R->attackSink",
        )

    def _build_routes(self) -> None:
        m = self.config.n_flows
        router_s, router_r = self.router_s, self.router_r
        sink_id = self.attack_sink_node.node_id
        for i in range(m):
            sender_id = 2 + i
            receiver_id = 2 + m + i
            # Hosts: everything via their access link.
            self.sender_nodes[i].add_route(receiver_id, router_s.node_id)
            self.receiver_nodes[i].add_route(sender_id, router_r.node_id)
            # Router S: data forward to R, ACKs back to senders.
            router_s.add_route(receiver_id, router_r.node_id)
            # Router R: data out to receivers, ACKs back toward S.
            router_r.add_route(sender_id, router_s.node_id)
        self.attacker_node.add_route(sink_id, router_s.node_id)
        router_s.add_route(sink_id, router_r.node_id)

    def _build_flows(self) -> None:
        cfg = self.config
        m = cfg.n_flows
        self.senders: List[TCPSender] = []
        self.receivers: List[TCPReceiver] = []
        for i in range(m):
            flow_id = i
            sender = TCPSender(
                self.sim, self.sender_nodes[i], flow_id,
                receiver_node_id=2 + m + i, config=cfg.tcp,
            )
            receiver = TCPReceiver(
                self.sim, self.receiver_nodes[i], flow_id,
                sender_node_id=2 + i, config=cfg.tcp,
            )
            self.senders.append(sender)
            self.receivers.append(receiver)

    # ------------------------------------------------------------------
    # scenario control
    # ------------------------------------------------------------------
    def start_flows(self, *, stagger: float = 0.1) -> None:
        """Start all TCP flows, staggered to avoid a synchronized start."""
        for i, sender in enumerate(self.senders):
            jitter = self.rng.uniform(0.0, stagger)
            sender.start(at=self.sim.now + jitter)

    def add_attack(self, train: PulseTrain, *, packet_bytes: float = 1500.0,
                   start_time: float = 0.0) -> PulseAttackSource:
        """Attach (but do not start) a pulse-train attack source."""
        flow_id = self._next_attack_flow_id
        self._next_attack_flow_id += 1
        self.attack_sink_node.register_agent(flow_id, _discard_packet)
        source = PulseAttackSource(
            self.sim, self.attacker_node, flow_id,
            self.attack_sink_node.node_id, train,
            packet_bytes=packet_bytes, start_time=start_time,
        )
        self.attack_sources.append(source)
        return source

    def add_host_pair(self, *, rtt: float = ms(100)):
        """Attach an extra sender/receiver host pair across the bottleneck.

        Used by short-flow ("mice") workloads that coexist with the main
        long-lived flows.  Returns ``(sender_host, receiver_host)`` with
        two-way routes installed.  All flow-specific delay goes on the
        sender's access link, as for the primary flows.
        """
        cfg = self.config
        fixed_one_way = cfg.bottleneck_delay + cfg.receiver_access_delay
        access_delay = rtt / 2.0 - fixed_one_way
        if access_delay <= 0:
            raise ConfigurationError(
                f"rtt {rtt * 1e3:.0f}ms too small for the fixed path delay"
            )
        buffer = 4_000_000.0
        sender_host = Node(self.sim, self._next_node_id,
                           f"host{self._next_node_id}")
        self._next_node_id += 1
        receiver_host = Node(self.sim, self._next_node_id,
                             f"host{self._next_node_id}")
        self._next_node_id += 1
        Link(self.sim, sender_host, self.router_s, cfg.access_rate_bps,
             access_delay, DropTailQueue(buffer))
        Link(self.sim, self.router_s, sender_host, cfg.access_rate_bps,
             access_delay, DropTailQueue(buffer))
        Link(self.sim, self.router_r, receiver_host, cfg.access_rate_bps,
             cfg.receiver_access_delay, DropTailQueue(buffer))
        Link(self.sim, receiver_host, self.router_r, cfg.access_rate_bps,
             cfg.receiver_access_delay, DropTailQueue(buffer))
        sender_host.add_route(receiver_host.node_id, self.router_s.node_id)
        receiver_host.add_route(sender_host.node_id, self.router_r.node_id)
        self.router_s.add_route(receiver_host.node_id, self.router_r.node_id)
        self.router_r.add_route(sender_host.node_id, self.router_s.node_id)
        return sender_host, receiver_host

    def add_attacker_host(self) -> Node:
        """Attach an additional attack-source host (for DDoS scenarios)."""
        cfg = self.config
        node = Node(self.sim, self._next_node_id,
                    f"attacker{self._next_node_id}")
        self._next_node_id += 1
        Link(
            self.sim, node, self.router_s, cfg.attacker_access_rate_bps,
            ms(1), DropTailQueue(16_000_000.0),
            name=f"{node.name}->S",
        )
        node.add_route(self.attack_sink_node.node_id, self.router_s.node_id)
        return node

    def launch_distributed(self, attack, *, packet_bytes: float = 1500.0,
                           start_time: float = 0.0) -> List[PulseAttackSource]:
        """Launch a :class:`~repro.core.distributed.DistributedAttack`.

        Each per-source train runs from its own attacker host (distinct
        flow ids, distinct ingress links), offset per the split strategy.
        Sources are started immediately.
        """
        sources: List[PulseAttackSource] = []
        for train, offset in zip(attack.trains, attack.offsets):
            host = self.add_attacker_host()
            flow_id = self._next_attack_flow_id
            self._next_attack_flow_id += 1
            self.attack_sink_node.register_agent(flow_id, _discard_packet)
            source = PulseAttackSource(
                self.sim, host, flow_id, self.attack_sink_node.node_id,
                train, packet_bytes=packet_bytes,
                start_time=start_time + offset,
            )
            source.start()
            sources.append(source)
            self.attack_sources.append(source)
        return sources

    def run(self, until: float) -> None:
        """Advance the simulation to absolute time *until*.

        When metrics are enabled, the contested links and the TCP flock
        are snapshotted into the active registry after each run segment
        (warm-up, measurement window) -- once per segment, never per
        event, so the disabled path is a single ``is None`` check.
        """
        self.sim.run(until=until)
        registry = _obs_metrics.active()
        if registry is not None:
            publish_network(registry, links={
                "bottleneck": self.bottleneck,
                "bottleneck_reverse": self.reverse_bottleneck,
                "attacker": self.attacker_link,
            }, senders=self.senders)

    # ------------------------------------------------------------------
    # measurement helpers
    # ------------------------------------------------------------------
    def state_digest(self) -> tuple:
        """Fingerprint of the whole scenario's dynamic state.

        Combines the engine calendar, every link and queue, every TCP
        agent, the scenario RNG, and the process-global packet uid
        stream.  Warm-start checkpointing asserts a forked network's
        digest matches the original's -- equal digests mean the two
        evolve identically from here.
        """
        links = [*self.sender_links, *self.sender_return_links,
                 *self.receiver_links, *self.receiver_return_links,
                 self.bottleneck, self.reverse_bottleneck,
                 self.attacker_link, self.attack_sink_link]
        return (
            self.sim.state_digest(),
            self.rng.getstate(),
            Packet.peek_uid(),
            tuple(link.state_digest() for link in links),
            tuple(s.state_digest() for s in self.senders),
            tuple(r.state_digest() for r in self.receivers),
            self._next_attack_flow_id,
            self._next_node_id,
        )

    def flow_rtts(self) -> np.ndarray:
        """Propagation RTT of each flow, seconds (as configured)."""
        return self.config.flow_rtts()

    def aggregate_goodput_bytes(self) -> float:
        """Total payload bytes delivered across all TCP flows so far."""
        return float(sum(sender.goodput_bytes() for sender in self.senders))

    def goodput_snapshot(self) -> np.ndarray:
        """Per-flow delivered payload bytes (for windowed measurements)."""
        return np.array([sender.goodput_bytes() for sender in self.senders])


def _discard_packet(_packet) -> None:
    """Attack-sink agent: attack datagrams terminate here."""


def build_dumbbell(config: Optional[DumbbellConfig] = None) -> DumbbellNetwork:
    """Construct the Fig. 5 dumbbell scenario."""
    return DumbbellNetwork(config if config is not None else DumbbellConfig())
