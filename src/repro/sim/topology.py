"""Scenario topologies.

:func:`build_dumbbell` constructs the paper's simulation topology
(Fig. 5): ``M`` TCP sender/receiver pairs on 50 Mb/s access links, a
15 Mb/s RED bottleneck between routers S and R, flow RTTs spread over
20-460 ms, and an attacker whose pulses cross the bottleneck toward a
sink behind router R.

Node id layout (M flows)::

    0            router S
    1            router R
    2 .. M+1     TCP sender hosts
    M+2 .. 2M+1  TCP receiver hosts
    2M+2         attacker host
    2M+3         attack sink host

:func:`build_parking_lot` generalizes beyond the dumbbell onto a chain
of routers with per-segment bottlenecks (the "parking lot" of the
multi-bottleneck literature): long flows traverse every segment, local
cross traffic loads individual segments, per-link buffers follow the
AIMD buffer-sizing rule (:func:`repro.sim.routing.aimd_buffer_bytes`),
and the pulse attacker's path may span one or several bottleneck
links.  Both scenarios are expressed on
:class:`~repro.sim.routing.GraphTopology`, which compiles static
shortest-path routes into the forwarding plane.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.attack import PulseTrain
from repro.obs import metrics as _obs_metrics
from repro.obs.instrument import publish_network
from repro.sim.attacker import PulseAttackSource
from repro.sim.engine import Simulator
from repro.sim.link import Link
from repro.sim.node import Node
from repro.sim.packet import FULL_PACKET_BYTES, Packet
from repro.sim.queues import DropTailQueue, QueueDiscipline, REDQueue
from repro.sim.routing import GraphTopology, aimd_buffer_bytes
from repro.sim.tcp import TCPConfig, TCPReceiver, TCPSender
from repro.util.errors import ConfigurationError
from repro.util.units import mbps, ms
from repro.util.validate import check_positive

__all__ = ["DumbbellConfig", "DumbbellNetwork", "build_dumbbell",
           "ParkingLotConfig", "ParkingLotNetwork", "build_parking_lot",
           "make_red_queue", "make_droptail_queue", "make_choke_queue",
           "QUEUE_FACTORIES", "FULL_PACKET_BYTES"]


def make_red_queue(
    capacity_bytes: float,
    *,
    rng: Optional[random.Random] = None,
    service_rate_bps: Optional[float] = None,
    mean_pkt_bytes: float = FULL_PACKET_BYTES,
    byte_mode: bool = False,
) -> REDQueue:
    """A RED queue configured like the paper's test-bed (Section 4.2).

    Thresholds at 20% / 80% of the buffer, ``w_q = 0.002``,
    ``max_p = 0.1``, ``gentle_ = true``.  In packet mode (the ns-2
    default) the byte fractions are converted to packet counts using the
    mean packet size.
    """
    if byte_mode:
        min_th, max_th = 0.2 * capacity_bytes, 0.8 * capacity_bytes
    else:
        capacity_pkts = capacity_bytes / mean_pkt_bytes
        min_th, max_th = 0.2 * capacity_pkts, 0.8 * capacity_pkts
    return REDQueue(
        capacity_bytes,
        min_th=min_th,
        max_th=max_th,
        max_p=0.1,
        w_q=0.002,
        gentle=True,
        byte_mode=byte_mode,
        mean_pkt_bytes=mean_pkt_bytes,
        service_rate_bps=service_rate_bps,
        rng=rng,
    )


def make_droptail_queue(capacity_bytes: float, **_ignored) -> DropTailQueue:
    """A drop-tail queue of the same physical capacity (ablation baseline)."""
    return DropTailQueue(capacity_bytes)


def make_choke_queue(
    capacity_bytes: float,
    *,
    rng: Optional[random.Random] = None,
    service_rate_bps: Optional[float] = None,
    mean_pkt_bytes: float = FULL_PACKET_BYTES,
    byte_mode: bool = False,
) -> "CHOKeQueue":
    """A CHOKe queue with the same thresholds as :func:`make_red_queue`.

    The pulse-resistant AQM evaluated by the RED-hardening defense
    experiment (the direction the paper's conclusion motivates).
    """
    from repro.sim.queues import CHOKeQueue

    if byte_mode:
        min_th, max_th = 0.2 * capacity_bytes, 0.8 * capacity_bytes
    else:
        capacity_pkts = capacity_bytes / mean_pkt_bytes
        min_th, max_th = 0.2 * capacity_pkts, 0.8 * capacity_pkts
    return CHOKeQueue(
        capacity_bytes,
        min_th=min_th,
        max_th=max_th,
        max_p=0.1,
        w_q=0.002,
        gentle=True,
        byte_mode=byte_mode,
        mean_pkt_bytes=mean_pkt_bytes,
        service_rate_bps=service_rate_bps,
        rng=rng,
    )


#: Queue-discipline name -> factory.  The names are what experiment
#: platforms and runner cells use to reference a discipline: a name
#: serializes into a cache key and pickles to a worker, a callable does
#: not (reliably).
QUEUE_FACTORIES = {
    "red": make_red_queue,
    "droptail": make_droptail_queue,
    "choke": make_choke_queue,
}


@dataclasses.dataclass(frozen=True)
class DumbbellConfig:
    """Parameters of the Fig. 5 dumbbell.

    Defaults reproduce the paper's ns-2 setup: 50 Mb/s access links,
    15 Mb/s bottleneck with RED, TCP NewReno, RTTs evenly spread over
    20-460 ms.  The bottleneck buffer defaults to 180 full-size packets
    (about half the bandwidth-delay product at the mean RTT) -- large
    enough that a 50 ms pulse is partially absorbed (the paper's
    under-gain regime) while a 100 ms pulse overflows it (normal/over
    gain), which is the gradient Section 4.1.1 describes.

    Frozen (hashable and picklable) so a config can key the experiment
    runner's result cache and ship to worker processes unchanged.
    """

    n_flows: int = 15
    access_rate_bps: float = mbps(50)
    bottleneck_rate_bps: float = mbps(15)
    rtt_min: float = ms(20)
    rtt_max: float = ms(460)
    bottleneck_delay: float = ms(4)
    receiver_access_delay: float = ms(1)
    buffer_bytes: float = 180 * FULL_PACKET_BYTES
    queue_factory: Callable[..., QueueDiscipline] = None  # type: ignore[assignment]
    tcp: TCPConfig = dataclasses.field(default_factory=TCPConfig)
    attacker_access_rate_bps: float = mbps(1000)
    seed: int = 1
    #: scheduler backend for the engine ("heap"/"calendar"/"auto");
    #: ``None`` defers to ``REPRO_SCHEDULER`` / the engine default.
    #: ``compare=False``: backends dispatch bit-identically, so the
    #: choice must not split the runner's result-cache keys.
    scheduler: Optional[str] = dataclasses.field(default=None, compare=False)
    #: forwarding plane ("compiled"/"dict"); ``None`` defers to
    #: ``REPRO_FORWARDING`` / the compiled default.  ``compare=False``
    #: for the same reason as ``scheduler``: the planes are
    #: bit-identical, so the choice must not split cache keys.
    forwarding: Optional[str] = dataclasses.field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.n_flows < 1:
            raise ConfigurationError(f"n_flows must be >= 1, got {self.n_flows}")
        check_positive("access_rate_bps", self.access_rate_bps)
        check_positive("bottleneck_rate_bps", self.bottleneck_rate_bps)
        check_positive("buffer_bytes", self.buffer_bytes)
        if not 0 < self.rtt_min <= self.rtt_max:
            raise ConfigurationError(
                f"need 0 < rtt_min <= rtt_max, got [{self.rtt_min}, {self.rtt_max}]"
            )
        if self.queue_factory is None:
            object.__setattr__(self, "queue_factory", make_red_queue)

    def flow_rtts(self) -> np.ndarray:
        """Per-flow propagation RTTs, evenly spread over [rtt_min, rtt_max]."""
        if self.n_flows == 1:
            return np.array([(self.rtt_min + self.rtt_max) / 2.0])
        return np.linspace(self.rtt_min, self.rtt_max, self.n_flows)


class DumbbellNetwork:
    """A built dumbbell scenario: nodes, links, agents, and helpers."""

    def __init__(self, config: DumbbellConfig) -> None:
        self.config = config
        self.sim = Simulator(scheduler=config.scheduler)
        self.rng = random.Random(config.seed)
        # Fresh uid stream per scenario: identical reruns trace identically.
        Packet.reset_uids()

        m = config.n_flows
        self.topo = GraphTopology(self.sim, forwarding=config.forwarding)
        self.router_s = self.topo.add_node("routerS")
        self.router_r = self.topo.add_node("routerR")
        self.sender_nodes = [
            self.topo.add_node(f"sender{i}") for i in range(m)
        ]
        self.receiver_nodes = [
            self.topo.add_node(f"receiver{i}") for i in range(m)
        ]
        self.attacker_node = self.topo.add_node("attacker")
        self.attack_sink_node = self.topo.add_node("attackSink")

        self._build_links()
        # Static shortest-path compilation makes exactly the decisions
        # the historical per-flow add_route() calls installed: hosts
        # default through their access link, routers route data across
        # the bottleneck and ACKs back.
        self.topo.compile_routes()
        self._build_flows()
        self.attack_sources: List[PulseAttackSource] = []
        self._next_attack_flow_id = 10_000
        self._next_node_id = 4 + 2 * m

    # ------------------------------------------------------------------
    def _build_links(self) -> None:
        cfg = self.config
        topo = self.topo
        rtts = cfg.flow_rtts()
        # One-way fixed components of the path: sender access + bottleneck
        # + receiver access.  All flow-specific delay goes on the sender
        # access link so the configured RTT spread is achieved exactly.
        fixed_one_way = cfg.bottleneck_delay + cfg.receiver_access_delay
        access_buffer = 4_000_000.0  # generous; only the bottleneck drops

        self.sender_links: List[Link] = []
        self.sender_return_links: List[Link] = []
        for i, (sender, rtt) in enumerate(zip(self.sender_nodes, rtts)):
            one_way = rtt / 2.0
            access_delay = one_way - fixed_one_way
            if access_delay <= 0:
                raise ConfigurationError(
                    f"flow {i}: RTT {rtt * 1e3:.0f}ms too small for the fixed "
                    f"path delay {2 * fixed_one_way * 1e3:.0f}ms"
                )
            self.sender_links.append(topo.add_link(
                sender, self.router_s, rate_bps=cfg.access_rate_bps,
                delay=access_delay, queue=DropTailQueue(access_buffer),
                name=f"sender{i}->S",
            ))
            self.sender_return_links.append(topo.add_link(
                self.router_s, sender, rate_bps=cfg.access_rate_bps,
                delay=access_delay, queue=DropTailQueue(access_buffer),
                name=f"S->sender{i}",
            ))

        self.receiver_links: List[Link] = []
        self.receiver_return_links: List[Link] = []
        for i, receiver in enumerate(self.receiver_nodes):
            self.receiver_links.append(topo.add_link(
                self.router_r, receiver, rate_bps=cfg.access_rate_bps,
                delay=cfg.receiver_access_delay,
                queue=DropTailQueue(access_buffer),
                name=f"R->receiver{i}",
            ))
            self.receiver_return_links.append(topo.add_link(
                receiver, self.router_r, rate_bps=cfg.access_rate_bps,
                delay=cfg.receiver_access_delay,
                queue=DropTailQueue(access_buffer),
                name=f"receiver{i}->R",
            ))

        # The contested bottleneck S->R, plus the (ACK-carrying) reverse path.
        self.bottleneck_queue = cfg.queue_factory(
            cfg.buffer_bytes,
            rng=self.rng,
            service_rate_bps=cfg.bottleneck_rate_bps,
        )
        self.bottleneck = topo.add_link(
            self.router_s, self.router_r, rate_bps=cfg.bottleneck_rate_bps,
            delay=cfg.bottleneck_delay, queue=self.bottleneck_queue,
            name="bottleneck",
        )
        self.reverse_bottleneck = topo.add_link(
            self.router_r, self.router_s, rate_bps=cfg.bottleneck_rate_bps,
            delay=cfg.bottleneck_delay, queue=DropTailQueue(4_000_000.0),
            name="bottleneck-reverse",
        )

        # Attacker and attack sink attachment.
        self.attacker_link = topo.add_link(
            self.attacker_node, self.router_s,
            rate_bps=cfg.attacker_access_rate_bps,
            delay=ms(1), queue=DropTailQueue(16_000_000.0), name="attacker->S",
        )
        self.attack_sink_link = topo.add_link(
            self.router_r, self.attack_sink_node,
            rate_bps=cfg.attacker_access_rate_bps,
            delay=ms(1), queue=DropTailQueue(16_000_000.0), name="R->attackSink",
        )

    def _build_flows(self) -> None:
        cfg = self.config
        m = cfg.n_flows
        self.senders: List[TCPSender] = []
        self.receivers: List[TCPReceiver] = []
        for i in range(m):
            flow_id = i
            sender = TCPSender(
                self.sim, self.sender_nodes[i], flow_id,
                receiver_node_id=2 + m + i, config=cfg.tcp,
            )
            receiver = TCPReceiver(
                self.sim, self.receiver_nodes[i], flow_id,
                sender_node_id=2 + i, config=cfg.tcp,
            )
            self.senders.append(sender)
            self.receivers.append(receiver)

    # ------------------------------------------------------------------
    # scenario control
    # ------------------------------------------------------------------
    def start_flows(self, *, stagger: float = 0.1) -> None:
        """Start all TCP flows, staggered to avoid a synchronized start."""
        for i, sender in enumerate(self.senders):
            jitter = self.rng.uniform(0.0, stagger)
            sender.start(at=self.sim.now + jitter)

    def add_attack(self, train: PulseTrain, *,
                   packet_bytes: float = FULL_PACKET_BYTES,
                   start_time: float = 0.0) -> PulseAttackSource:
        """Attach (but do not start) a pulse-train attack source."""
        flow_id = self._next_attack_flow_id
        self._next_attack_flow_id += 1
        self.attack_sink_node.register_agent(flow_id, _discard_packet)
        source = PulseAttackSource(
            self.sim, self.attacker_node, flow_id,
            self.attack_sink_node.node_id, train,
            packet_bytes=packet_bytes, start_time=start_time,
        )
        self.attack_sources.append(source)
        return source

    def add_host_pair(self, *, rtt: float = ms(100)):
        """Attach an extra sender/receiver host pair across the bottleneck.

        Used by short-flow ("mice") workloads that coexist with the main
        long-lived flows.  Returns ``(sender_host, receiver_host)`` with
        two-way routes installed.  All flow-specific delay goes on the
        sender's access link, as for the primary flows.
        """
        cfg = self.config
        fixed_one_way = cfg.bottleneck_delay + cfg.receiver_access_delay
        access_delay = rtt / 2.0 - fixed_one_way
        if access_delay <= 0:
            raise ConfigurationError(
                f"rtt {rtt * 1e3:.0f}ms too small for the fixed path delay"
            )
        buffer = 4_000_000.0
        topo = self.topo
        sender_host = topo.add_node(f"host{self._next_node_id}",
                                    node_id=self._next_node_id)
        self._next_node_id += 1
        receiver_host = topo.add_node(f"host{self._next_node_id}",
                                      node_id=self._next_node_id)
        self._next_node_id += 1
        topo.add_link(sender_host, self.router_s,
                      rate_bps=cfg.access_rate_bps, delay=access_delay,
                      queue=DropTailQueue(buffer))
        topo.add_link(self.router_s, sender_host,
                      rate_bps=cfg.access_rate_bps, delay=access_delay,
                      queue=DropTailQueue(buffer))
        topo.add_link(self.router_r, receiver_host,
                      rate_bps=cfg.access_rate_bps,
                      delay=cfg.receiver_access_delay,
                      queue=DropTailQueue(buffer))
        topo.add_link(receiver_host, self.router_r,
                      rate_bps=cfg.access_rate_bps,
                      delay=cfg.receiver_access_delay,
                      queue=DropTailQueue(buffer))
        # Mid-scenario attachment: the hosts are single-homed (default
        # route through their access link); only the routers learn the
        # new destinations.
        sender_host.set_default_route(self.router_s.node_id)
        receiver_host.set_default_route(self.router_r.node_id)
        self.router_s.add_route(receiver_host.node_id, self.router_r.node_id)
        self.router_r.add_route(sender_host.node_id, self.router_s.node_id)
        return sender_host, receiver_host

    def add_attacker_host(self) -> Node:
        """Attach an additional attack-source host (for DDoS scenarios)."""
        cfg = self.config
        node = self.topo.add_node(f"attacker{self._next_node_id}",
                                  node_id=self._next_node_id)
        self._next_node_id += 1
        self.topo.add_link(
            node, self.router_s, rate_bps=cfg.attacker_access_rate_bps,
            delay=ms(1), queue=DropTailQueue(16_000_000.0),
            name=f"{node.name}->S",
        )
        node.set_default_route(self.router_s.node_id)
        return node

    def launch_distributed(self, attack, *,
                           packet_bytes: float = FULL_PACKET_BYTES,
                           start_time: float = 0.0) -> List[PulseAttackSource]:
        """Launch a :class:`~repro.core.distributed.DistributedAttack`.

        Each per-source train runs from its own attacker host (distinct
        flow ids, distinct ingress links), offset per the split strategy.
        Sources are started immediately.
        """
        sources: List[PulseAttackSource] = []
        for train, offset in zip(attack.trains, attack.offsets):
            host = self.add_attacker_host()
            flow_id = self._next_attack_flow_id
            self._next_attack_flow_id += 1
            self.attack_sink_node.register_agent(flow_id, _discard_packet)
            source = PulseAttackSource(
                self.sim, host, flow_id, self.attack_sink_node.node_id,
                train, packet_bytes=packet_bytes,
                start_time=start_time + offset,
            )
            source.start()
            sources.append(source)
            self.attack_sources.append(source)
        return sources

    def run(self, until: float) -> None:
        """Advance the simulation to absolute time *until*.

        When metrics are enabled, the contested links and the TCP flock
        are snapshotted into the active registry after each run segment
        (warm-up, measurement window) -- once per segment, never per
        event, so the disabled path is a single ``is None`` check.
        """
        self.sim.run(until=until)
        registry = _obs_metrics.active()
        if registry is not None:
            publish_network(registry, links={
                "bottleneck": self.bottleneck,
                "bottleneck_reverse": self.reverse_bottleneck,
                "attacker": self.attacker_link,
            }, senders=self.senders, nodes=self.topo.nodes.values())

    # ------------------------------------------------------------------
    # measurement helpers
    # ------------------------------------------------------------------
    def state_digest(self) -> tuple:
        """Fingerprint of the whole scenario's dynamic state.

        Combines the engine calendar, every link and queue, every TCP
        agent, the scenario RNG, and the process-global packet uid
        stream.  Warm-start checkpointing asserts a forked network's
        digest matches the original's -- equal digests mean the two
        evolve identically from here.
        """
        links = [*self.sender_links, *self.sender_return_links,
                 *self.receiver_links, *self.receiver_return_links,
                 self.bottleneck, self.reverse_bottleneck,
                 self.attacker_link, self.attack_sink_link]
        return (
            self.sim.state_digest(),
            self.rng.getstate(),
            Packet.peek_uid(),
            tuple(link.state_digest() for link in links),
            tuple(s.state_digest() for s in self.senders),
            tuple(r.state_digest() for r in self.receivers),
            self._next_attack_flow_id,
            self._next_node_id,
        )

    def flow_rtts(self) -> np.ndarray:
        """Propagation RTT of each flow, seconds (as configured)."""
        return self.config.flow_rtts()

    def aggregate_goodput_bytes(self) -> float:
        """Total payload bytes delivered across all TCP flows so far."""
        return float(sum(sender.goodput_bytes() for sender in self.senders))

    def goodput_snapshot(self) -> np.ndarray:
        """Per-flow delivered payload bytes (for windowed measurements)."""
        return np.array([sender.goodput_bytes() for sender in self.senders])


def _discard_packet(_packet) -> None:
    """Attack-sink agent: attack datagrams terminate here."""


def build_dumbbell(config: Optional[DumbbellConfig] = None) -> DumbbellNetwork:
    """Construct the Fig. 5 dumbbell scenario."""
    return DumbbellNetwork(config if config is not None else DumbbellConfig())


# ======================================================================
# parking-lot / multi-bottleneck scenarios
# ======================================================================
@dataclasses.dataclass(frozen=True)
class ParkingLotConfig:
    """Parameters of an N-bottleneck parking-lot chain.

    ``n_segments`` chain links connect routers ``R_0 .. R_K``.  *Long*
    flows enter at ``R_0`` and exit behind ``R_K`` (crossing every
    segment); *cross* flows load exactly one segment each.  Segment
    rates may be heterogeneous (``segment_rates_bps``), per-link
    buffers follow the AIMD buffer-sizing rule
    (:func:`repro.sim.routing.aimd_buffer_bytes`, arXiv cs/0703063),
    and flow RTTs are numpy-drawn uniformly over
    ``[rtt_min, rtt_max]`` (heterogeneous, unlike the dumbbell's even
    spread).  The pulse attacker's path spans the contiguous
    ``attack_segments`` -- one segment reproduces the single-bottleneck
    question, several reproduce the converging-attack-path scenarios
    the optimal-filtering literature motivates.

    Frozen (hashable and picklable) so a config can key the experiment
    runner's result cache and ship to worker processes unchanged.
    """

    n_segments: int = 2
    long_flows: int = 8
    cross_flows: int = 4
    bottleneck_rate_bps: float = mbps(15)
    segment_rates_bps: Tuple[float, ...] = ()
    access_rate_bps: float = mbps(50)
    segment_delay: float = ms(4)
    receiver_access_delay: float = ms(1)
    rtt_min: float = ms(60)
    rtt_max: float = ms(460)
    buffer_beta: float = 0.5
    attack_segments: Tuple[int, ...] = (0,)
    queue_factory: Callable[..., QueueDiscipline] = None  # type: ignore[assignment]
    tcp: TCPConfig = dataclasses.field(default_factory=TCPConfig)
    attacker_access_rate_bps: float = mbps(1000)
    seed: int = 1
    scheduler: Optional[str] = dataclasses.field(default=None, compare=False)
    forwarding: Optional[str] = dataclasses.field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.n_segments < 1:
            raise ConfigurationError(
                f"n_segments must be >= 1, got {self.n_segments}"
            )
        if self.long_flows < 1:
            raise ConfigurationError(
                f"long_flows must be >= 1, got {self.long_flows}"
            )
        if self.cross_flows < 0:
            raise ConfigurationError(
                f"cross_flows must be >= 0, got {self.cross_flows}"
            )
        check_positive("bottleneck_rate_bps", self.bottleneck_rate_bps)
        check_positive("access_rate_bps", self.access_rate_bps)
        if self.segment_rates_bps and (
                len(self.segment_rates_bps) != self.n_segments):
            raise ConfigurationError(
                f"segment_rates_bps needs {self.n_segments} entries, "
                f"got {len(self.segment_rates_bps)}"
            )
        segments = self.attack_segments
        if not segments:
            raise ConfigurationError("attack_segments must not be empty")
        if list(segments) != list(range(segments[0], segments[-1] + 1)):
            raise ConfigurationError(
                f"attack_segments must be a contiguous ascending span "
                f"(the attack path crosses them in order), got {segments}"
            )
        if segments[0] < 0 or segments[-1] >= self.n_segments:
            raise ConfigurationError(
                f"attack_segments {segments} outside 0..{self.n_segments - 1}"
            )
        fixed = 2.0 * (self.n_segments * self.segment_delay
                       + self.receiver_access_delay)
        if not fixed < self.rtt_min <= self.rtt_max:
            raise ConfigurationError(
                f"need rtt_min > fixed path delay {fixed * 1e3:.0f}ms and "
                f"rtt_min <= rtt_max, got [{self.rtt_min}, {self.rtt_max}]"
            )
        if self.long_flows + self.n_segments * self.cross_flows >= 10_000:
            raise ConfigurationError(
                "TCP flow ids must stay below the attack id range (10000)"
            )
        if self.queue_factory is None:
            object.__setattr__(self, "queue_factory", make_red_queue)

    def segment_rates(self) -> Tuple[float, ...]:
        """Per-segment chain rates (resolved heterogeneous list)."""
        if self.segment_rates_bps:
            return tuple(float(r) for r in self.segment_rates_bps)
        return (float(self.bottleneck_rate_bps),) * self.n_segments

    def attacked_rate_bps(self) -> float:
        """The tightest attacked segment's rate: the γ normalizer."""
        rates = self.segment_rates()
        return min(rates[j] for j in self.attack_segments)

    def draw_rtts(self) -> Tuple[np.ndarray, np.ndarray]:
        """Numpy-drawn flow RTTs: ``(long[L], cross[K, X])``, seconds.

        A pure function of the seed, so experiment platforms can
        recompute the victim population without building the network.
        """
        rng = np.random.default_rng(self.seed)
        long_rtts = rng.uniform(self.rtt_min, self.rtt_max, self.long_flows)
        cross_rtts = rng.uniform(
            self.rtt_min, self.rtt_max,
            (self.n_segments, self.cross_flows),
        )
        return long_rtts, cross_rtts


class ParkingLotNetwork:
    """A built parking-lot chain: routers, per-segment bottlenecks, flows.

    Exposes the same measurement interface as
    :class:`DumbbellNetwork` (``start_flows`` / ``add_attack`` /
    ``run`` / ``aggregate_goodput_bytes`` / ``state_digest``), so
    runner cells, warm-start snapshots, the convergence monitor, and
    the flight recorder work unchanged.  The *victim population* is
    the long flows (they cross every attacked link);
    :meth:`aggregate_goodput_bytes` measures exactly those, keeping
    gain curves comparable across topologies with different cross
    traffic.
    """

    def __init__(self, config: ParkingLotConfig) -> None:
        self.config = config
        self.sim = Simulator(scheduler=config.scheduler)
        self.rng = random.Random(config.seed)
        #: vectorized start-jitter stream (distinct from the RED rng).
        self.np_rng = np.random.default_rng((config.seed, 1))
        Packet.reset_uids()

        self.long_rtts, self.cross_rtts = config.draw_rtts()
        self.topo = GraphTopology(self.sim, forwarding=config.forwarding)
        self._build_nodes()
        self._build_links()
        self.topo.compile_routes()
        self._build_flows()
        self.attack_sources: List[PulseAttackSource] = []
        self._next_attack_flow_id = 10_000

    # ------------------------------------------------------------------
    def _build_nodes(self) -> None:
        cfg = self.config
        topo = self.topo
        k, l, x = cfg.n_segments, cfg.long_flows, cfg.cross_flows
        self.routers = [topo.add_node(f"R{j}") for j in range(k + 1)]
        self.long_sender_nodes = [
            topo.add_node(f"longSender{i}") for i in range(l)
        ]
        self.long_receiver_nodes = [
            topo.add_node(f"longReceiver{i}") for i in range(l)
        ]
        self.cross_sender_nodes = [
            [topo.add_node(f"crossSender{j}_{i}") for i in range(x)]
            for j in range(k)
        ]
        self.cross_receiver_nodes = [
            [topo.add_node(f"crossReceiver{j}_{i}") for i in range(x)]
            for j in range(k)
        ]
        first = cfg.attack_segments[0]
        last = cfg.attack_segments[-1]
        self.attacker_node = topo.add_node("attacker")
        self.attack_sink_node = topo.add_node("attackSink")
        self._attack_entry = self.routers[first]
        self._attack_exit = self.routers[last + 1]

    def _build_links(self) -> None:
        cfg = self.config
        topo = self.topo
        k, x = cfg.n_segments, cfg.cross_flows
        rates = cfg.segment_rates()
        access_buffer = 4_000_000.0
        long_fixed = (k * cfg.segment_delay + cfg.receiver_access_delay)
        cross_fixed = (cfg.segment_delay + cfg.receiver_access_delay)

        def host_pair(sender, receiver, entry, exit_, rtt, fixed, label):
            """Duplex access wiring for one sender/receiver host pair."""
            access_delay = rtt / 2.0 - fixed
            topo.add_duplex_link(
                sender, entry, rate_bps=cfg.access_rate_bps,
                delay=access_delay, queue=DropTailQueue(access_buffer),
                queue_back=DropTailQueue(access_buffer),
                name=f"{label}->in",
            )
            topo.add_duplex_link(
                exit_, receiver, rate_bps=cfg.access_rate_bps,
                delay=cfg.receiver_access_delay,
                queue=DropTailQueue(access_buffer),
                queue_back=DropTailQueue(access_buffer),
                name=f"{label}->out",
            )

        for i, rtt in enumerate(self.long_rtts):
            host_pair(self.long_sender_nodes[i], self.long_receiver_nodes[i],
                      self.routers[0], self.routers[k], float(rtt),
                      long_fixed, f"long{i}")
        for j in range(k):
            for i in range(x):
                host_pair(self.cross_sender_nodes[j][i],
                          self.cross_receiver_nodes[j][i],
                          self.routers[j], self.routers[j + 1],
                          float(self.cross_rtts[j, i]), cross_fixed,
                          f"cross{j}_{i}")

        # The chain: one AQM bottleneck per segment, buffer from the
        # AIMD rule at the mean RTT of the flows crossing it.
        self.segment_links: List[Link] = []
        self.segment_return_links: List[Link] = []
        self.segment_queues: List[QueueDiscipline] = []
        n_sharing = cfg.long_flows + cfg.cross_flows
        for j in range(k):
            crossing = [self.long_rtts]
            if x:
                crossing.append(self.cross_rtts[j])
            mean_rtt = float(np.mean(np.concatenate(crossing)))
            buffer_bytes = aimd_buffer_bytes(
                rates[j], mean_rtt, n_sharing, beta=cfg.buffer_beta,
            )
            queue = cfg.queue_factory(
                buffer_bytes, rng=self.rng, service_rate_bps=rates[j],
            )
            self.segment_queues.append(queue)
            forward, backward = topo.add_duplex_link(
                self.routers[j], self.routers[j + 1], rate_bps=rates[j],
                delay=cfg.segment_delay, queue=queue,
                queue_back=DropTailQueue(4_000_000.0),
                name=f"segment{j}",
            )
            self.segment_links.append(forward)
            self.segment_return_links.append(backward)

        self.attacker_link = topo.add_link(
            self.attacker_node, self._attack_entry,
            rate_bps=cfg.attacker_access_rate_bps, delay=ms(1),
            queue=DropTailQueue(16_000_000.0), name="attacker->in",
        )
        self.attack_sink_link = topo.add_link(
            self._attack_exit, self.attack_sink_node,
            rate_bps=cfg.attacker_access_rate_bps, delay=ms(1),
            queue=DropTailQueue(16_000_000.0), name="out->attackSink",
        )

    def _build_flows(self) -> None:
        cfg = self.config
        k, l, x = cfg.n_segments, cfg.long_flows, cfg.cross_flows
        self.senders: List[TCPSender] = []
        self.receivers: List[TCPReceiver] = []
        for i in range(l):
            self.senders.append(TCPSender(
                self.sim, self.long_sender_nodes[i], i,
                receiver_node_id=self.long_receiver_nodes[i].node_id,
                config=cfg.tcp,
            ))
            self.receivers.append(TCPReceiver(
                self.sim, self.long_receiver_nodes[i], i,
                sender_node_id=self.long_sender_nodes[i].node_id,
                config=cfg.tcp,
            ))
        self.cross_senders: List[TCPSender] = []
        self.cross_receivers: List[TCPReceiver] = []
        flow_id = l
        for j in range(k):
            for i in range(x):
                self.cross_senders.append(TCPSender(
                    self.sim, self.cross_sender_nodes[j][i], flow_id,
                    receiver_node_id=self.cross_receiver_nodes[j][i].node_id,
                    config=cfg.tcp,
                ))
                self.cross_receivers.append(TCPReceiver(
                    self.sim, self.cross_receiver_nodes[j][i], flow_id,
                    sender_node_id=self.cross_sender_nodes[j][i].node_id,
                    config=cfg.tcp,
                ))
                flow_id += 1

    # ------------------------------------------------------------------
    # scenario control (DumbbellNetwork-compatible surface)
    # ------------------------------------------------------------------
    def start_flows(self, *, stagger: float = 0.1) -> None:
        """Start every TCP flow with a vectorized start jitter."""
        senders = self.senders + self.cross_senders
        jitters = self.np_rng.uniform(0.0, stagger, len(senders))
        now = self.sim.now
        for sender, jitter in zip(senders, jitters):
            sender.start(at=now + float(jitter))

    def add_attack(self, train: PulseTrain, *,
                   packet_bytes: float = FULL_PACKET_BYTES,
                   start_time: float = 0.0) -> PulseAttackSource:
        """Attach (but do not start) a pulse source crossing the attacked span."""
        flow_id = self._next_attack_flow_id
        self._next_attack_flow_id += 1
        self.attack_sink_node.register_agent(flow_id, _discard_packet)
        source = PulseAttackSource(
            self.sim, self.attacker_node, flow_id,
            self.attack_sink_node.node_id, train,
            packet_bytes=packet_bytes, start_time=start_time,
        )
        self.attack_sources.append(source)
        return source

    def run(self, until: float) -> None:
        """Advance to *until*, publishing telemetry when metrics are on."""
        self.sim.run(until=until)
        registry = _obs_metrics.active()
        if registry is not None:
            links = {
                f"segment{j}": self.segment_links[j]
                for j in range(self.config.n_segments)
            }
            links["attacker"] = self.attacker_link
            publish_network(
                registry, links=links,
                senders=self.senders + self.cross_senders,
                nodes=self.topo.nodes.values(),
            )

    # ------------------------------------------------------------------
    # measurement helpers
    # ------------------------------------------------------------------
    @property
    def bottleneck(self) -> Link:
        """The tightest attacked chain link (recorder/detector target)."""
        rates = self.config.segment_rates()
        j = min(self.config.attack_segments, key=lambda s: rates[s])
        return self.segment_links[j]

    @property
    def reverse_bottleneck(self) -> Link:
        rates = self.config.segment_rates()
        j = min(self.config.attack_segments, key=lambda s: rates[s])
        return self.segment_return_links[j]

    def attacked_rate_bps(self) -> float:
        """Rate of the tightest attacked segment (γ normalizer)."""
        return self.config.attacked_rate_bps()

    def state_digest(self) -> tuple:
        """Fingerprint of the whole scenario's dynamic state.

        Same protocol as :meth:`DumbbellNetwork.state_digest`, extended
        with the numpy jitter stream's state so warm-start forks resume
        the vectorized draws exactly.
        """
        return (
            self.sim.state_digest(),
            self.rng.getstate(),
            repr(self.np_rng.bit_generator.state),
            Packet.peek_uid(),
            tuple(link.state_digest() for link in self.topo.links),
            tuple(s.state_digest()
                  for s in self.senders + self.cross_senders),
            tuple(r.state_digest()
                  for r in self.receivers + self.cross_receivers),
            self._next_attack_flow_id,
        )

    def flow_rtts(self) -> np.ndarray:
        """Propagation RTTs of the victim (long) flows, seconds."""
        return self.long_rtts

    def aggregate_goodput_bytes(self) -> float:
        """Payload bytes delivered across the victim (long) flows."""
        return float(sum(s.goodput_bytes() for s in self.senders))

    def total_goodput_bytes(self) -> float:
        """Payload bytes delivered across every TCP flow (incl. cross)."""
        return float(sum(
            s.goodput_bytes() for s in self.senders + self.cross_senders
        ))

    def goodput_snapshot(self) -> np.ndarray:
        """Per-victim-flow delivered payload bytes."""
        return np.array([s.goodput_bytes() for s in self.senders])


def build_parking_lot(
    config: Optional[ParkingLotConfig] = None,
) -> ParkingLotNetwork:
    """Construct a parking-lot / N-bottleneck chain scenario."""
    return ParkingLotNetwork(
        config if config is not None else ParkingLotConfig()
    )
