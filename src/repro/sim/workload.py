"""Short-flow ("mice") workload generation.

The shrew literature frames pulsing attacks as "the shrew vs the mice
and elephants": long-lived bulk flows (elephants) share the bottleneck
with a churn of short transfers (mice).  Mice are disproportionately
fragile -- a pulse that costs an elephant one window costs a mouse its
whole initial window, pushing its completion time from milliseconds to
multiples of the RTO.

:class:`ShortFlowWorkload` launches back-to-back finite TCP transfers
between a host pair: flow sizes and inter-arrival gaps are drawn from
seeded distributions, each completed flow records its flow completion
time (FCT), and summary percentiles are available afterwards.
"""

from __future__ import annotations

import dataclasses
import random
from typing import List, Optional, TYPE_CHECKING

import numpy as np

from repro.sim.tcp import TCPConfig, TCPReceiver, TCPSender
from repro.util.errors import ValidationError
from repro.util.validate import check_positive

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator
    from repro.sim.node import Node

__all__ = ["ShortFlowWorkload", "FlowRecord"]


@dataclasses.dataclass(frozen=True)
class FlowRecord:
    """One completed (or abandoned) short flow.

    Attributes:
        flow_id: the transfer's flow id.
        size_segments: requested transfer length.
        started_at: launch time.
        completion_time: FCT in seconds, or None if unfinished at the
            end of the run.
    """

    flow_id: int
    size_segments: int
    started_at: float
    completion_time: Optional[float]


class ShortFlowWorkload:
    """Sequentially launched finite transfers between two hosts.

    Args:
        sim: the event engine.
        src / dst: the host pair (must be routable both ways).
        flow_id_base: first flow id; each transfer takes the next id.
        tcp: transport configuration shared by all transfers.
        mean_size_segments: mean flow size (geometric-ish via lognormal).
        mean_interarrival: mean gap between a launch and the next,
            seconds (exponential).
        seed: RNG seed for sizes and gaps.
        max_flows: stop after this many launches.
    """

    def __init__(
        self,
        sim: "Simulator",
        src: "Node",
        dst: "Node",
        *,
        flow_id_base: int = 50_000,
        tcp: Optional[TCPConfig] = None,
        mean_size_segments: float = 20.0,
        mean_interarrival: float = 0.5,
        seed: int = 9,
        max_flows: int = 10_000,
    ) -> None:
        self.sim = sim
        self.src = src
        self.dst = dst
        self.tcp = tcp if tcp is not None else TCPConfig()
        self.mean_size_segments = check_positive(
            "mean_size_segments", mean_size_segments
        )
        self.mean_interarrival = check_positive(
            "mean_interarrival", mean_interarrival
        )
        if max_flows < 1:
            raise ValidationError(f"max_flows must be >= 1, got {max_flows}")
        self.max_flows = max_flows
        self._rng = random.Random(seed)
        self._next_flow_id = flow_id_base
        self._launched = 0
        #: live senders keyed by flow id (drained into records on finish).
        self._active = {}
        self.records: List[FlowRecord] = []
        self._started = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Launch the first flow now; subsequent ones follow the process."""
        if self._started:
            return
        self._started = True
        self._launch()

    def _draw_size(self) -> int:
        # Lognormal with the requested mean: sigma fixed at 1 (heavy-ish
        # tail, like web transfer sizes), mu solved from the mean.
        sigma = 1.0
        mu = np.log(self.mean_size_segments) - sigma**2 / 2
        return max(1, int(round(self._rng.lognormvariate(mu, sigma))))

    def _launch(self) -> None:
        if self._launched >= self.max_flows:
            return
        self._launched += 1
        flow_id = self._next_flow_id
        self._next_flow_id += 1
        size = self._draw_size()
        started = self.sim.now

        sender = TCPSender(
            self.sim, self.src, flow_id,
            receiver_node_id=self.dst.node_id, config=self.tcp,
            transfer_segments=size,
            on_complete=self._flow_done,
        )
        TCPReceiver(self.sim, self.dst, flow_id,
                    sender_node_id=self.src.node_id, config=self.tcp)
        self._active[flow_id] = (sender, size, started)
        sender.start()

        gap = self._rng.expovariate(1.0 / self.mean_interarrival)
        self.sim.schedule(gap, self._launch)

    def _flow_done(self, sender: TCPSender) -> None:
        flow_id = sender.flow_id
        _sender, size, started = self._active.pop(flow_id)
        self.records.append(FlowRecord(
            flow_id=flow_id,
            size_segments=size,
            started_at=started,
            completion_time=sender.completion_time(),
        ))

    # ------------------------------------------------------------------
    def finalize(self) -> None:
        """Record still-unfinished flows (completion_time None)."""
        for flow_id, (sender, size, started) in sorted(self._active.items()):
            self.records.append(FlowRecord(
                flow_id=flow_id,
                size_segments=size,
                started_at=started,
                completion_time=None,
            ))
        self._active.clear()

    @property
    def launched(self) -> int:
        return self._launched

    def completed_records(self) -> List[FlowRecord]:
        return [r for r in self.records if r.completion_time is not None]

    def fct_percentiles(self, percentiles=(50, 90, 99)) -> dict:
        """FCT percentiles over completed flows, seconds."""
        fcts = [r.completion_time for r in self.completed_records()]
        if not fcts:
            return {p: float("nan") for p in percentiles}
        return {
            p: float(np.percentile(fcts, p)) for p in percentiles
        }

    def unfinished_fraction(self) -> float:
        """Fraction of launched flows not finished by the end of the run."""
        if not self.records:
            return 0.0
        unfinished = sum(
            1 for r in self.records if r.completion_time is None
        )
        return unfinished / len(self.records)
