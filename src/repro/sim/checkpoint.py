"""Warm-start checkpointing: freeze a simulated network, fork copies.

Every cell of a gain sweep begins the same way: build the scenario,
start the TCP flows, and simulate a multi-second warm-up so the flock
reaches congestion-avoidance equilibrium before the attack differs
between cells.  That shared prefix dominates runtime for short
measurement windows.  :class:`NetworkSnapshot` lets the runner simulate
the prefix once, freeze the fully-warmed network, and *fork* a private,
bit-identical copy for each cell.

Mechanism
---------
A built network is a closed object graph: the :class:`~repro.sim.engine.
Simulator` (clock, scheduler backend -- binary heap or calendar queue,
with its entries, freelist, and seq counter), every link's departure
queue and queue discipline (including RED averages and RNG), every TCP
agent (windows, timers, scoreboards, per-flow RNGs), and the scenario
RNG.  ``copy.deepcopy`` clones the whole graph in one traversal; its
memo dictionary preserves internal aliasing, so a calendar entry whose
callback is a bound method of a link lands on the *copied* link, and an
:class:`~repro.sim.engine.Event` handle held by a TCP agent aliases the
entry inside the copied backend (whichever backend structure holds it).
Both scheduler backends are plain slotted containers, so forks work --
and stay bit-identical -- under either; the warm-start tests pin the
round-trip per backend.  Two details need explicit care:

* the packet uid counter is a class-level global on
  :class:`~repro.sim.packet.Packet` (so uids are unique across helper
  objects); it is captured at snapshot time and re-seeded before each
  fork so every fork draws the identical uid stream;
* ``itertools.count`` cannot be read in place; the captured value comes
  from advancing a shallow copy.

Forks are bit-identical to simply continuing the original network --
the engine's :meth:`~repro.sim.engine.Simulator.state_digest` and the
network-level ``state_digest()`` protocols exist to assert exactly
that, and the warm-start tests pin it per queue discipline and TCP
variant.

Cost model: one deep copy of a warmed 15-flow dumbbell runs ~10-15 ms
while re-simulating its 6 s warm-up costs ~150-200 ms, so forking pays
for itself immediately for sweeps of two or more cells per prefix.
"""

from __future__ import annotations

import copy
from typing import Any, Tuple

from repro.sim.packet import Packet
from repro.util.errors import SimulationError

__all__ = ["NetworkSnapshot"]


class NetworkSnapshot:
    """An immutable frozen copy of a network mid-simulation.

    Args:
        net: the network to freeze (any object owning a ``sim``
            attribute -- :class:`~repro.sim.topology.DumbbellNetwork`,
            :class:`~repro.testbed.dummynet.TestbedNetwork`, or a test
            scenario).  Must not be inside :meth:`Simulator.run`.
        extras: companion objects to freeze *in the same deep copy* so
            aliasing with the network is preserved (e.g. a
            :class:`~repro.detection.conformance.ConformanceDetector`
            whose monitors wrap the network's links).  Returned, forked,
            by :meth:`fork` alongside the network.

    The snapshot itself is one deep copy taken eagerly at construction,
    so later mutation of the original network cannot leak into forks.
    """

    def __init__(self, net: Any, *extras: Any) -> None:
        sim = getattr(net, "sim", None)
        if sim is not None and getattr(sim, "_running", False):
            raise SimulationError(
                "cannot snapshot a network while its simulator is running; "
                "snapshot between run() segments"
            )
        #: packet uid the frozen network would draw next; re-seeded
        #: before every fork so uid streams are identical across forks.
        self._next_uid = Packet.peek_uid()
        #: simulation time at which the snapshot was taken.
        self.taken_at = 0.0 if sim is None else sim.now
        # One deepcopy with a shared memo: extras that alias network
        # internals (monitors holding links) stay aliased in the copy.
        self._frozen: Tuple[Any, Tuple[Any, ...]] = copy.deepcopy(
            (net, tuple(extras))
        )
        self.forks = 0

    # ------------------------------------------------------------------
    def fork(self) -> Tuple[Any, Tuple[Any, ...]]:
        """A private, mutable copy of the frozen network (and extras).

        Restores the global packet uid counter to the snapshot's value
        first, so every fork -- and a from-scratch run of the same
        prefix -- draws the same uid sequence.  Returns ``(net,
        extras)`` where ``extras`` matches the constructor arguments.
        """
        Packet.set_next_uid(self._next_uid)
        net, extras = copy.deepcopy(self._frozen)
        self.forks += 1
        return net, extras
