"""Queue disciplines: DropTail and RED.

The paper's bottleneck router runs RED (ns-2's implementation, with
``gentle_ = true`` in the test-bed); the conclusion also compares against
drop-tail.  Both disciplines are implemented here.

Design note: the :class:`~repro.sim.link.Link` owns the physical FIFO and
its timing; a discipline only decides *accept or drop* for each arriving
packet, given the instantaneous queue state.  This mirrors the split in
ns-2 between ``Queue`` buffering and the RED early-drop logic, and it
lets the link use a lazy departure list (one event per packet) instead of
a per-dequeue event.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.util.errors import ValidationError
from repro.util.validate import check_non_negative, check_positive, check_probability

__all__ = ["QueueDiscipline", "DropTailQueue", "REDQueue", "CHOKeQueue", "QueueState"]


class QueueState:
    """Instantaneous queue state handed to a discipline on each arrival.

    Attributes:
        queue_bytes: bytes buffered (including the packet in transmission).
        queue_pkts: packets buffered (including the packet in transmission).
        now: current simulation time.
        idle_since: when the queue last went empty, or ``None`` if it is
            non-empty now.  RED uses this to decay its average over idle
            periods.
    """

    __slots__ = ("queue_bytes", "queue_pkts", "now", "idle_since")

    def __init__(self, queue_bytes: float, queue_pkts: int, now: float,
                 idle_since: Optional[float]) -> None:
        self.queue_bytes = queue_bytes
        self.queue_pkts = queue_pkts
        self.now = now
        self.idle_since = idle_since


class QueueDiscipline:
    """Base class: accept/drop decisions for an attached link buffer."""

    #: Physical buffer size in bytes; arrivals that would exceed it are
    #: dropped regardless of the discipline's early-drop logic.
    capacity_bytes: float

    #: Disciplines that inspect or evict buffered packets (e.g. CHOKe's
    #: match-and-drop) set this True; the link then tracks per-packet
    #: flow ids and calls :meth:`admit_with_link` instead of
    #: :meth:`admit`.
    needs_buffer_access = False

    def __init__(self, capacity_bytes: float) -> None:
        self.capacity_bytes = check_positive("capacity_bytes", capacity_bytes)
        self.drops = 0
        self.early_drops = 0
        self.accepts = 0

    def reset_counters(self) -> None:
        """Zero the drop/accept statistics (state such as RED's average stays)."""
        self.drops = 0
        self.early_drops = 0
        self.accepts = 0

    def metrics_snapshot(self) -> dict:
        """Cumulative admission telemetry (``disc_*`` keys).

        Subclasses extend this with their own state (RED's averaged
        queue, CHOKe's match-drops); the base counters cover every
        discipline.
        """
        return {
            "disc_accepts": float(self.accepts),
            "disc_drops": float(self.drops),
            "disc_early_drops": float(self.early_drops),
        }

    def state_digest(self) -> tuple:
        """Every value a future admission decision can depend on.

        Subclasses extend this with their dynamic state (RED's EWMA,
        inter-drop count, and RNG state); warm-start checkpointing
        compares digests to prove a forked discipline decides exactly
        like the original.
        """
        return (self.accepts, self.drops, self.early_drops)

    def admit(self, pkt_bytes: float, state: QueueState) -> bool:
        """Return True to enqueue the packet, False to drop it."""
        raise NotImplementedError

    def admit_with_link(self, packet, state: QueueState, link) -> bool:
        """Buffer-aware admission (only called when
        :attr:`needs_buffer_access` is True).  *link* exposes
        ``sample_buffered(rng)`` and ``evict(entry)``."""
        raise NotImplementedError

    # shared helper -----------------------------------------------------
    def _fits(self, pkt_bytes: float, state: QueueState) -> bool:
        return state.queue_bytes + pkt_bytes <= self.capacity_bytes


class DropTailQueue(QueueDiscipline):
    """Plain FIFO tail-drop buffer of a fixed byte capacity."""

    def admit(self, pkt_bytes: float, state: QueueState) -> bool:
        if self._fits(pkt_bytes, state):
            self.accepts += 1
            return True
        self.drops += 1
        return False


class REDQueue(QueueDiscipline):
    """Random Early Detection (Floyd & Jacobson 1993) with gentle mode.

    Implements the classic algorithm as in ns-2:

    * EWMA of the queue length, updated on every arrival with weight
      ``w_q``; an arrival ending an idle period first decays the average
      by ``(1 - w_q)**m`` -- ``m`` being the idle time divided by a
      typical packet transmission time -- and then applies the normal
      ``w_q`` update with its own queue sample, as ns-2 does.
    * Probabilistic early drop between ``min_th`` and ``max_th`` with the
      inter-drop count correction ``p_a = p_b / (1 - count * p_b)``.
    * ``gentle`` mode ramps the drop probability from ``max_p`` at
      ``max_th`` to 1 at ``2 * max_th`` instead of dropping everything.
    * Optional byte mode scales the drop probability by
      ``pkt_bytes / mean_pkt_bytes``.

    The thresholds ``min_th``/``max_th`` and the averaged queue are in
    packets by default (ns-2's convention) or in bytes when
    ``byte_mode=True`` (the paper's test-bed configures thresholds as
    fractions of the byte buffer).
    """

    def __init__(
        self,
        capacity_bytes: float,
        *,
        min_th: float,
        max_th: float,
        max_p: float = 0.1,
        w_q: float = 0.002,
        gentle: bool = True,
        byte_mode: bool = False,
        mean_pkt_bytes: float = 1000.0,
        service_rate_bps: Optional[float] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        super().__init__(capacity_bytes)
        self.min_th = check_positive("min_th", min_th)
        self.max_th = check_positive("max_th", max_th)
        if max_th <= min_th:
            raise ValidationError(
                f"max_th ({max_th}) must exceed min_th ({min_th})"
            )
        self.max_p = check_probability("max_p", max_p)
        self.w_q = check_probability("w_q", w_q)
        self.gentle = gentle
        self.byte_mode = byte_mode
        self.mean_pkt_bytes = check_positive("mean_pkt_bytes", mean_pkt_bytes)
        #: transmission time of a mean-size packet; sets the idle decay rate.
        if service_rate_bps is not None:
            check_positive("service_rate_bps", service_rate_bps)
            self._mean_service_time = mean_pkt_bytes * 8.0 / service_rate_bps
        else:
            self._mean_service_time = None
        self.rng = rng if rng is not None else random.Random(0)
        # dynamic state
        self.avg = 0.0
        self.count = -1  # packets since the last early drop; -1 = "fresh"

    # ------------------------------------------------------------------
    def _measured_queue(self, state: QueueState) -> float:
        return state.queue_bytes if self.byte_mode else float(state.queue_pkts)

    def _update_average(self, state: QueueState) -> None:
        q = self._measured_queue(state)
        if q <= 0 and state.idle_since is not None:
            # Queue has been idle; pretend m small packets went by.  As in
            # ns-2's estimator the decay only accounts for the idle
            # interval -- the arrival's own queue sample still folds into
            # the EWMA through the normal w_q update below.
            service = self._mean_service_time or 0.001
            m = max(0.0, (state.now - state.idle_since) / service)
            self.avg *= (1.0 - self.w_q) ** m
        self.avg = (1.0 - self.w_q) * self.avg + self.w_q * q

    def _drop_probability(self, pkt_bytes: float) -> float:
        """Base drop probability p_b from the current average queue."""
        if self.avg < self.min_th:
            return 0.0
        if self.avg < self.max_th:
            p_b = self.max_p * (self.avg - self.min_th) / (self.max_th - self.min_th)
        elif self.gentle and self.avg < 2.0 * self.max_th:
            p_b = self.max_p + (1.0 - self.max_p) * (self.avg - self.max_th) / self.max_th
        else:
            return 1.0
        if self.byte_mode:
            p_b *= pkt_bytes / self.mean_pkt_bytes
        return min(p_b, 1.0)

    def metrics_snapshot(self) -> dict:
        snap = super().metrics_snapshot()
        snap["red_avg_queue"] = self.avg
        return snap

    def state_digest(self) -> tuple:
        # The EWMA, the inter-drop count, and the coin-flip RNG decide
        # every future early drop; all three must survive a fork intact.
        return super().state_digest() + (
            self.avg, self.count, self.rng.getstate(),
        )

    def admit(self, pkt_bytes: float, state: QueueState) -> bool:
        return self.admit_values(
            pkt_bytes, state.queue_bytes, state.queue_pkts, state.now,
            state.idle_since,
        )

    def admit_values(self, pkt_bytes: float, queue_bytes: float,
                     queue_pkts: int, now: float,
                     idle_since: Optional[float]) -> bool:
        """RED admission on raw queue state, no :class:`QueueState` needed.

        The link's per-arrival hot path calls this directly.  The body
        fuses :meth:`_update_average`, :meth:`_drop_probability`, and
        :meth:`_admit_updated` -- those remain the reference
        implementation (CHOKe's match-and-drop path composes them) and
        this method must stay arithmetically in lockstep with them:
        same operations, same order, same single ``rng.random()`` draw.
        """
        # --- EWMA update (= _update_average) ---------------------------
        q = queue_bytes if self.byte_mode else float(queue_pkts)
        w_q = self.w_q
        avg = self.avg
        if q <= 0 and idle_since is not None:
            service = self._mean_service_time or 0.001
            m = max(0.0, (now - idle_since) / service)
            avg *= (1.0 - w_q) ** m
        avg = (1.0 - w_q) * avg + w_q * q
        self.avg = avg

        # --- forced (overflow) drop (= _fits check) --------------------
        if queue_bytes + pkt_bytes > self.capacity_bytes:
            self.count = 0
            self.drops += 1
            return False

        # --- early-drop probability (= _drop_probability) --------------
        min_th = self.min_th
        max_th = self.max_th
        if avg < min_th:
            self.count = -1
            self.accepts += 1
            return True
        on_ramp = True
        if avg < max_th:
            p_b = self.max_p * (avg - min_th) / (max_th - min_th)
        elif self.gentle and avg < 2.0 * max_th:
            p_b = self.max_p + (1.0 - self.max_p) * (avg - max_th) / max_th
        else:
            # Past the (gentle) ramp: certain drop, no byte scaling.
            p_b = 1.0
            on_ramp = False
        if on_ramp:
            if self.byte_mode:
                p_b *= pkt_bytes / self.mean_pkt_bytes
            if p_b > 1.0:
                p_b = 1.0

        # --- inter-drop count correction (= _admit_updated) ------------
        if p_b >= 1.0:
            self.count = 0
            self.drops += 1
            self.early_drops += 1
            return False
        if p_b > 0.0:
            count = self.count + 1
            self.count = count
            denominator = 1.0 - count * p_b
            p_a = 1.0 if denominator <= 0 else min(1.0, p_b / denominator)
            if self.rng.random() < p_a:
                self.count = 0
                self.drops += 1
                self.early_drops += 1
                return False
        else:
            self.count = -1

        self.accepts += 1
        return True

    def _admit_updated(self, pkt_bytes: float, state: QueueState) -> bool:
        """The RED decision after the average has been updated."""
        if not self._fits(pkt_bytes, state):
            # Forced (overflow) drop; RED resets its count as ns-2 does.
            self.count = 0
            self.drops += 1
            return False

        p_b = self._drop_probability(pkt_bytes)
        if p_b >= 1.0:
            self.count = 0
            self.drops += 1
            self.early_drops += 1
            return False
        if p_b > 0.0:
            self.count += 1
            denominator = 1.0 - self.count * p_b
            p_a = 1.0 if denominator <= 0 else min(1.0, p_b / denominator)
            if self.rng.random() < p_a:
                self.count = 0
                self.drops += 1
                self.early_drops += 1
                return False
        else:
            self.count = -1

        self.accepts += 1
        return True


class CHOKeQueue(REDQueue):
    """CHOKe (Pan, Prabhakar & Psounis, INFOCOM 2000) on top of RED.

    The "enhancement to the RED algorithms" direction the paper's
    conclusion motivates: a stateless AQM that penalizes unresponsive
    high-rate flows -- exactly what a PDoS pulse source is.  When the
    averaged queue exceeds ``min_th``, each arrival is compared against
    a randomly drawn *buffered* packet; if both belong to the same flow,
    **both** are dropped (the buffered one is evicted).  Responsive TCP
    flows rarely self-match; a pulse source whose burst fills the queue
    matches itself constantly, so its own burst mostly annihilates
    itself instead of displacing TCP traffic.

    The regular RED early-drop logic still applies to arrivals that
    survive the match test, so CHOKe degrades gracefully to RED for
    well-behaved traffic mixes.

    Modelling note: the matched victim is sampled among *waiting*
    packets -- the in-service head is excluded, since a packet already
    on the wire cannot be recalled.
    """

    needs_buffer_access = True

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: arrivals dropped because they matched a buffered packet.
        self.match_drops = 0
        #: buffered packets evicted by a match.
        self.evictions = 0

    def metrics_snapshot(self) -> dict:
        snap = super().metrics_snapshot()
        snap["choke_match_drops"] = float(self.match_drops)
        snap["choke_evictions"] = float(self.evictions)
        return snap

    def state_digest(self) -> tuple:
        return super().state_digest() + (self.match_drops, self.evictions)

    def admit_with_link(self, packet, state: QueueState, link) -> bool:
        self._update_average(state)
        if self.avg > self.min_th:
            entry = link.sample_buffered(self.rng)
            if entry is not None and entry.flow_id == packet.flow_id:
                link.evict(entry)
                self.evictions += 1
                self.match_drops += 1
                self.drops += 1
                return False
        return self._admit_updated(packet.size_bytes, state)
