"""ns-2-style trace files.

ns-2 users analyse attacks from its classic whitespace trace format::

    + 1.84375 0 2 tcp 1500 ------- 1 0.0 2.0 25 40

This module writes the enqueue-side subset of that format from a link
monitor (``+`` accepted into the queue, ``d`` dropped) and parses it
back, so existing awk/pandas ns-2 tooling can consume this simulator's
output and, conversely, archived runs can be re-analysed offline.

Column layout (matching ns-2's positional fields):

====== =======================================
column meaning
====== =======================================
1      event: ``+`` enqueue, ``d`` drop
2      time, seconds
3      link source node id
4      link destination node id
5      packet type: tcp / ack / attack / cbr
6      size, bytes
7      flags (always ``-------``)
8      flow id
9      source "addr.port" (node id, port 0)
10     destination "addr.port"
11     sequence number (-1 when absent)
12     packet uid
====== =======================================
"""

from __future__ import annotations

import dataclasses
import io
from typing import Iterable, List, Optional, TextIO, Union

from repro.sim.link import Link
from repro.sim.packet import Packet, PacketKind
from repro.util.errors import ValidationError

__all__ = ["TraceWriter", "TraceRecord", "read_trace"]

_TYPE_NAMES = {
    PacketKind.DATA: "tcp",
    PacketKind.ACK: "ack",
    PacketKind.ATTACK: "attack",
    PacketKind.CBR: "cbr",
}
_TYPE_KINDS = {name: kind for kind, name in _TYPE_NAMES.items()}


@dataclasses.dataclass(frozen=True)
class TraceRecord:
    """One parsed trace line."""

    event: str
    time: float
    from_node: int
    to_node: int
    kind: PacketKind
    size_bytes: float
    flow_id: int
    src: int
    dst: int
    seq: Optional[int]
    uid: int

    @property
    def dropped(self) -> bool:
        return self.event == "d"


class TraceWriter:
    """Streams ns-2-style trace lines for every arrival at a link.

    Attach with :meth:`attach`, or pass monitors manually::

        writer = TraceWriter(open("out.tr", "w"))
        writer.attach(net.bottleneck)
        ...
        writer.close()

    The writer may observe any number of links; each line carries the
    link's endpoint node ids.
    """

    def __init__(self, stream: TextIO) -> None:
        self._stream = stream
        self.lines_written = 0
        self._owned = False

    @classmethod
    def to_path(cls, path) -> "TraceWriter":
        """Open *path* for writing and own the file handle."""
        writer = cls(open(path, "w"))
        writer._owned = True
        return writer

    def attach(self, link: Link) -> None:
        """Start tracing arrivals at *link*."""
        from_node = link.src.node_id
        to_node = link.dst.node_id

        def observe(packet: Packet, now: float, accepted: bool,
                    _from=from_node, _to=to_node) -> None:
            self._write(packet, now, accepted, _from, _to)

        link.monitors.append(observe)

    def _write(self, packet: Packet, now: float, accepted: bool,
               from_node: int, to_node: int) -> None:
        event = "+" if accepted else "d"
        seq = packet.seq if packet.seq is not None else -1
        self._stream.write(
            f"{event} {now:.6f} {from_node} {to_node} "
            f"{_TYPE_NAMES[packet.kind]} {packet.size_bytes:.0f} ------- "
            f"{packet.flow_id} {packet.src}.0 {packet.dst}.0 {seq} "
            f"{packet.uid}\n"
        )
        self.lines_written += 1

    def close(self) -> None:
        """Flush, and close the stream if this writer opened it."""
        self._stream.flush()
        if self._owned:
            self._stream.close()


def read_trace(source: Union[str, TextIO, Iterable[str]]) -> List[TraceRecord]:
    """Parse trace lines from a path, stream, or line iterable."""
    if isinstance(source, str):
        with open(source) as handle:
            return read_trace(handle)
    records: List[TraceRecord] = []
    for line_number, line in enumerate(source, start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split()
        if len(fields) != 12:
            raise ValidationError(
                f"line {line_number}: expected 12 fields, got {len(fields)}"
            )
        event = fields[0]
        if event not in ("+", "d"):
            raise ValidationError(
                f"line {line_number}: unknown event {event!r}"
            )
        kind = _TYPE_KINDS.get(fields[4])
        if kind is None:
            raise ValidationError(
                f"line {line_number}: unknown packet type {fields[4]!r}"
            )
        seq = int(fields[10])
        records.append(TraceRecord(
            event=event,
            time=float(fields[1]),
            from_node=int(fields[2]),
            to_node=int(fields[3]),
            kind=kind,
            size_bytes=float(fields[5]),
            flow_id=int(fields[7]),
            src=int(fields[8].split(".")[0]),
            dst=int(fields[9].split(".")[0]),
            seq=None if seq < 0 else seq,
            uid=int(fields[11]),
        ))
    return records
