"""Profiling instrumentation for the simulator hot path.

Wraps any zero-argument workload (typically one of the experiment
runners from :mod:`repro.experiments`) in :mod:`cProfile` and reports

* wall-clock time,
* events dispatched by every :class:`~repro.sim.engine.Simulator`
  constructed during the workload (via
  :func:`repro.sim.engine.total_events_dispatched`),
* the resulting events/sec throughput,
* which scheduler backends the workload's simulators used (via
  :func:`repro.sim.engine.scheduler_builds`), and
* the top functions by cumulative time.

Profiling is observation only: the workload runs exactly once, with the
same arithmetic and the same RNG draws, so its results are identical to
an unprofiled run (cProfile hooks call events; it never reorders or
repeats them).  The CLI exposes this as ``repro --profile <experiment>``.
"""

from __future__ import annotations

import cProfile
import dataclasses
import io
import pstats
import time
from typing import Any, Callable, Tuple

from repro.sim.engine import scheduler_builds, total_events_dispatched

__all__ = ["ProfileReport", "profile_run"]


@dataclasses.dataclass(frozen=True)
class ProfileReport:
    """Outcome of one profiled workload."""

    label: str
    wall_seconds: float
    events_executed: int
    calls_profiled: int
    top_functions: str
    #: simulators built per scheduler backend during the workload
    #: (``(("heap", 3), ("calendar", 1))``); auto-mode migrations count
    #: toward "calendar" too, so the line names the structure that ran.
    scheduler_builds: Tuple[Tuple[str, int], ...] = ()

    @property
    def events_per_sec(self) -> float:
        """Scheduler throughput; 0.0 when nothing was simulated."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.events_executed / self.wall_seconds

    def render(self) -> str:
        """Human-readable report block."""
        builds = ", ".join(
            f"{name}={count}" for name, count in self.scheduler_builds
        ) or "none"
        lines = [
            f"=== profile: {self.label} ===",
            f"wall time        : {self.wall_seconds:.3f} s",
            f"events executed  : {self.events_executed}",
            f"events/sec       : {self.events_per_sec:,.0f}",
            f"scheduler builds : {builds}",
            f"calls profiled   : {self.calls_profiled}",
            "top functions by cumulative time:",
            self.top_functions.rstrip(),
        ]
        return "\n".join(lines)


def profile_run(
    workload: Callable[[], Any],
    *,
    label: str = "workload",
    top: int = 25,
    sort: str = "cumulative",
) -> Tuple[Any, ProfileReport]:
    """Run *workload* under cProfile; return ``(result, report)``.

    The workload's return value is passed through untouched so callers
    can keep using it (the CLI prints the experiment rendering first and
    the profile block after it).
    """
    events_before = total_events_dispatched()
    builds_before = scheduler_builds()
    profiler = cProfile.Profile()
    started = time.perf_counter()
    profiler.enable()
    try:
        result = workload()
    finally:
        profiler.disable()
    wall = time.perf_counter() - started
    events = total_events_dispatched() - events_before
    builds_after = scheduler_builds()
    builds = tuple(
        (name, builds_after[name] - builds_before.get(name, 0))
        for name in sorted(builds_after)
        if builds_after[name] - builds_before.get(name, 0)
    )

    stats_buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=stats_buffer)
    stats.sort_stats(sort)
    stats.print_stats(top)
    report = ProfileReport(
        label=label,
        wall_seconds=wall,
        events_executed=events,
        calls_profiled=int(stats.total_calls),
        top_functions=stats_buffer.getvalue(),
        scheduler_builds=builds,
    )
    return result, report
