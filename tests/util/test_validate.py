"""Argument validation helpers."""

import math

import pytest

from repro.util.errors import ValidationError
from repro.util.validate import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_probability,
    check_range,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 2.5) == 2.5

    def test_returns_float(self):
        assert isinstance(check_positive("x", 3), float)

    def test_rejects_zero(self):
        with pytest.raises(ValidationError, match="x"):
            check_positive("x", 0)

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_positive("x", -1)

    def test_rejects_nan(self):
        with pytest.raises(ValidationError):
            check_positive("x", math.nan)

    def test_rejects_inf(self):
        with pytest.raises(ValidationError):
            check_positive("x", math.inf)

    def test_rejects_bool(self):
        with pytest.raises(ValidationError):
            check_positive("x", True)

    def test_rejects_string(self):
        with pytest.raises(ValidationError):
            check_positive("x", "5")  # type: ignore[arg-type]


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative("x", 0) == 0.0

    def test_accepts_positive(self):
        assert check_non_negative("x", 7) == 7.0

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_non_negative("x", -0.001)


class TestCheckFraction:
    def test_accepts_interior(self):
        assert check_fraction("x", 0.5) == 0.5

    def test_rejects_zero(self):
        with pytest.raises(ValidationError):
            check_fraction("x", 0.0)

    def test_rejects_one(self):
        with pytest.raises(ValidationError):
            check_fraction("x", 1.0)

    def test_rejects_above_one(self):
        with pytest.raises(ValidationError):
            check_fraction("x", 1.5)


class TestCheckProbability:
    def test_accepts_bounds(self):
        assert check_probability("p", 0.0) == 0.0
        assert check_probability("p", 1.0) == 1.0

    def test_rejects_above(self):
        with pytest.raises(ValidationError):
            check_probability("p", 1.0001)

    def test_rejects_below(self):
        with pytest.raises(ValidationError):
            check_probability("p", -0.0001)


class TestCheckRange:
    def test_inclusive_bounds(self):
        assert check_range("x", 1.0, 1.0, 2.0) == 1.0
        assert check_range("x", 2.0, 1.0, 2.0) == 2.0

    def test_exclusive_bounds_rejected(self):
        with pytest.raises(ValidationError):
            check_range("x", 1.0, 1.0, 2.0, inclusive=False)

    def test_exclusive_interior_accepted(self):
        assert check_range("x", 1.5, 1.0, 2.0, inclusive=False) == 1.5

    def test_out_of_range(self):
        with pytest.raises(ValidationError):
            check_range("x", 3.0, 1.0, 2.0)

    def test_error_message_names_argument(self):
        with pytest.raises(ValidationError, match="myarg"):
            check_range("myarg", 3.0, 1.0, 2.0)


class TestErrorHierarchy:
    def test_validation_error_is_value_error(self):
        from repro.util.errors import ReproError

        assert issubclass(ValidationError, ValueError)
        assert issubclass(ValidationError, ReproError)

    def test_all_errors_share_base(self):
        from repro.util.errors import (
            ConfigurationError,
            ReproError,
            SimulationError,
        )

        for exc in (ConfigurationError, SimulationError, ValidationError):
            assert issubclass(exc, ReproError)
