"""The consolidated REPRO_* environment-variable parsers.

Every knob the package reads from the environment goes through
``repro.util.env``; the contract under test is uniform failure:
a :class:`ValidationError` that names the variable and the offending
value, and "unset or blank means default" everywhere.
"""

import pytest

from repro.util.env import (
    FALSY,
    TRUTHY,
    env_choice,
    env_flag,
    env_float,
    env_int,
    env_raw,
    env_str,
)
from repro.util.errors import ValidationError

VAR = "REPRO_TEST_KNOB"


class TestEnvRaw:
    def test_unset_is_none(self, monkeypatch):
        monkeypatch.delenv(VAR, raising=False)
        assert env_raw(VAR) is None

    @pytest.mark.parametrize("blank", ["", "   ", "\t\n"])
    def test_blank_is_none(self, monkeypatch, blank):
        monkeypatch.setenv(VAR, blank)
        assert env_raw(VAR) is None

    def test_value_is_stripped(self, monkeypatch):
        monkeypatch.setenv(VAR, "  value  ")
        assert env_raw(VAR) == "value"


class TestEnvStr:
    def test_default_when_unset(self, monkeypatch):
        monkeypatch.delenv(VAR, raising=False)
        assert env_str(VAR) is None
        assert env_str(VAR, "fallback") == "fallback"

    def test_value_wins_over_default(self, monkeypatch):
        monkeypatch.setenv(VAR, "/some/path")
        assert env_str(VAR, "fallback") == "/some/path"


class TestEnvFlag:
    @pytest.mark.parametrize("raw", list(TRUTHY) + ["TRUE", " Yes ", "ON"])
    def test_truthy_spellings(self, monkeypatch, raw):
        monkeypatch.setenv(VAR, raw)
        assert env_flag(VAR) is True

    @pytest.mark.parametrize("raw", list(FALSY) + ["False", " off "])
    def test_falsy_spellings(self, monkeypatch, raw):
        monkeypatch.setenv(VAR, raw)
        assert env_flag(VAR, default=True) is False

    def test_unset_uses_default(self, monkeypatch):
        monkeypatch.delenv(VAR, raising=False)
        assert env_flag(VAR) is False
        assert env_flag(VAR, default=True) is True

    def test_garbage_names_variable_and_value(self, monkeypatch):
        monkeypatch.setenv(VAR, "ture")
        with pytest.raises(ValidationError, match=rf"{VAR}.*'ture'"):
            env_flag(VAR)


class TestEnvInt:
    def test_parses_and_strips(self, monkeypatch):
        monkeypatch.setenv(VAR, " 42 ")
        assert env_int(VAR, 1) == 42

    def test_unset_uses_default(self, monkeypatch):
        monkeypatch.delenv(VAR, raising=False)
        assert env_int(VAR, 7) == 7

    def test_non_integer_names_variable_and_value(self, monkeypatch):
        monkeypatch.setenv(VAR, "two")
        with pytest.raises(ValidationError, match=rf"{VAR}.*'two'"):
            env_int(VAR, 1)

    def test_minimum_in_message(self, monkeypatch):
        monkeypatch.setenv(VAR, "0")
        with pytest.raises(ValidationError, match=rf"{VAR} must be >= 1"):
            env_int(VAR, 1, minimum=1)

    def test_minimum_boundary_accepted(self, monkeypatch):
        monkeypatch.setenv(VAR, "1")
        assert env_int(VAR, 5, minimum=1) == 1


class TestEnvFloat:
    def test_parses(self, monkeypatch):
        monkeypatch.setenv(VAR, "2.5")
        assert env_float(VAR, 0.0) == 2.5

    def test_non_number_names_variable_and_value(self, monkeypatch):
        monkeypatch.setenv(VAR, "fast")
        with pytest.raises(ValidationError, match=rf"{VAR}.*'fast'"):
            env_float(VAR, 0.0)

    def test_minimum_enforced(self, monkeypatch):
        monkeypatch.setenv(VAR, "-1.0")
        with pytest.raises(ValidationError, match=rf"{VAR} must be >= 0"):
            env_float(VAR, 0.0, minimum=0.0)


class TestEnvChoice:
    CHOICES = ("heap", "calendar", "auto")

    def test_case_insensitive_match(self, monkeypatch):
        monkeypatch.setenv(VAR, "Calendar")
        assert env_choice(VAR, self.CHOICES) == "calendar"

    def test_unset_uses_default(self, monkeypatch):
        monkeypatch.delenv(VAR, raising=False)
        assert env_choice(VAR, self.CHOICES) is None
        assert env_choice(VAR, self.CHOICES, default="auto") == "auto"

    def test_unknown_lists_choices_and_value(self, monkeypatch):
        monkeypatch.setenv(VAR, "splay-tree")
        with pytest.raises(ValidationError,
                           match=rf"{VAR}.*'splay-tree'"):
            env_choice(VAR, self.CHOICES)


class TestConsumersRouteThroughHelpers:
    """Spot checks that the scattered parsers now share one failure mode."""

    def test_repro_jobs_message_format_preserved(self, monkeypatch):
        from repro.runner import get_default_runner, set_default_runner

        set_default_runner(None)
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(
            ValidationError,
            match=r"environment variable REPRO_JOBS must be an integer"
                  r" >= 1, got 'many'",
        ):
            get_default_runner()

    def test_repro_fabric_rejects_negative(self, monkeypatch):
        from repro.runner import get_default_runner, set_default_runner

        set_default_runner(None)
        monkeypatch.setenv("REPRO_FABRIC", "-2")
        with pytest.raises(ValidationError,
                           match=r"REPRO_FABRIC must be >= 0"):
            get_default_runner()

    def test_repro_full_garbage_rejected(self, monkeypatch):
        from repro.experiments.base import full_scale

        monkeypatch.setenv("REPRO_FULL", "2")
        with pytest.raises(ValidationError, match="REPRO_FULL"):
            full_scale()

    def test_repro_forwarding_garbage_rejected(self, monkeypatch):
        from repro.sim.node import forwarding_default

        monkeypatch.setenv("REPRO_FORWARDING", "hashmap")
        with pytest.raises(ValidationError, match="REPRO_FORWARDING"):
            forwarding_default()
