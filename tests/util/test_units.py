"""Unit-conversion helpers."""

import pytest

from repro.util.units import (
    BITS_PER_BYTE,
    bits_to_bytes,
    bytes_to_bits,
    gbps,
    kbps,
    mbps,
    ms,
    seconds_to_ms,
    transmission_delay,
    us,
)


class TestRates:
    def test_mbps(self):
        assert mbps(15) == 15_000_000.0

    def test_gbps(self):
        assert gbps(1) == 1_000_000_000.0

    def test_kbps(self):
        assert kbps(64) == 64_000.0

    def test_fractional_mbps(self):
        assert mbps(2.5) == 2_500_000.0


class TestTimes:
    def test_ms(self):
        assert ms(50) == 0.05

    def test_us(self):
        assert us(500) == pytest.approx(0.0005)

    def test_seconds_to_ms_roundtrip(self):
        assert seconds_to_ms(ms(123)) == pytest.approx(123)


class TestSizes:
    def test_bits_per_byte(self):
        assert BITS_PER_BYTE == 8

    def test_bytes_to_bits(self):
        assert bytes_to_bits(1500) == 12_000

    def test_bits_to_bytes_roundtrip(self):
        assert bits_to_bytes(bytes_to_bits(1234.5)) == pytest.approx(1234.5)


class TestTransmissionDelay:
    def test_known_value(self):
        # 1500 B over 15 Mb/s = 0.8 ms
        assert transmission_delay(1500, 15e6) == pytest.approx(0.0008)

    def test_scales_inversely_with_rate(self):
        slow = transmission_delay(1000, 1e6)
        fast = transmission_delay(1000, 2e6)
        assert slow == pytest.approx(2 * fast)

    def test_zero_rate_rejected(self):
        with pytest.raises(ValueError):
            transmission_delay(1000, 0.0)

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            transmission_delay(1000, -5.0)
