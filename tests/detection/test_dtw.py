"""Dynamic-time-warping pulse detection."""

import numpy as np
import pytest

from repro.analysis.paa import znormalize
from repro.detection.dtw import (
    DTWPulseDetector,
    dtw_distance,
    square_wave_template,
)
from repro.util.errors import ValidationError


class TestDTWDistance:
    def test_identical_series_zero(self):
        a = np.array([1.0, 2.0, 3.0, 2.0, 1.0])
        assert dtw_distance(a, a) == 0.0

    def test_shifted_square_wave_small_distance(self):
        a = square_wave_template(60, 10, 0.3)
        b = np.roll(a, 2)
        assert dtw_distance(a, b) < 0.05

    def test_different_shapes_large_distance(self):
        pulse = znormalize(square_wave_template(60, 10, 0.3))
        ramp = znormalize(np.arange(60.0))
        assert dtw_distance(pulse, ramp) > 0.2

    def test_symmetric(self):
        rng = np.random.default_rng(0)
        a, b = rng.normal(0, 1, 30), rng.normal(0, 1, 40)
        assert dtw_distance(a, b) == pytest.approx(dtw_distance(b, a))

    def test_unequal_lengths_supported(self):
        a = np.array([0.0, 1.0, 0.0])
        b = np.array([0.0, 0.0, 1.0, 1.0, 0.0, 0.0])
        assert np.isfinite(dtw_distance(a, b))

    def test_band_restricts_warping(self):
        a = square_wave_template(60, 20, 0.3)
        b = np.roll(a, 10)  # shift beyond a narrow band
        narrow = dtw_distance(a, b, window=2)
        wide = dtw_distance(a, b, window=30)
        assert wide <= narrow

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            dtw_distance(np.array([]), np.array([1.0]))

    def test_bad_window_rejected(self):
        with pytest.raises(ValidationError):
            dtw_distance(np.ones(3), np.ones(3), window=0)


class TestTemplate:
    def test_duty_cycle_fraction(self):
        template = square_wave_template(100, 10, 0.3)
        assert template[:3].sum() == 3
        assert template.mean() == pytest.approx(0.3)

    def test_period_repeats(self):
        template = square_wave_template(40, 8, 0.25)
        assert np.array_equal(template[:8], template[8:16])

    def test_validation(self):
        with pytest.raises(ValidationError):
            square_wave_template(0, 10, 0.3)
        with pytest.raises(ValidationError):
            square_wave_template(10, 0, 0.3)
        with pytest.raises(ValidationError):
            square_wave_template(10, 5, 1.5)


class TestDetector:
    def synthetic_trace(self, *, period=0.5, extent=0.1, bin_width=0.02,
                        duration=25.0, rate=30e6, base=10e6, seed=2):
        rng = np.random.default_rng(seed)
        n_bins = int(duration / bin_width)
        series = rng.normal(base, base * 0.15, n_bins) * bin_width / 8.0
        for start in np.arange(0.0, duration, period):
            lo = int(start / bin_width)
            hi = int((start + extent) / bin_width)
            series[lo:hi] += rate * bin_width / 8.0
        return np.clip(series, 0, None)

    def test_detects_pulse_train(self):
        detector = DTWPulseDetector(sample_period=0.1)
        verdict = detector.detect(self.synthetic_trace(), 0.02)
        assert verdict.detected
        assert verdict.best_period == pytest.approx(0.5, rel=0.25)

    def test_ignores_flat_traffic(self):
        rng = np.random.default_rng(5)
        series = rng.normal(15e6, 1e6, 1250) * 0.02 / 8.0
        detector = DTWPulseDetector(sample_period=0.1)
        assert not detector.detect(series, 0.02).detected

    def test_constant_series_not_detected(self):
        series = np.full(1250, 1000.0)
        detector = DTWPulseDetector(sample_period=0.1)
        verdict = detector.detect(series, 0.02)
        assert not verdict.detected

    def test_blind_when_sampling_exceeds_extent(self):
        """The paper's criticism of [8]: sub-sample pulses average away."""
        trace = self.synthetic_trace(period=2.0, extent=0.05, rate=100e6,
                                     duration=60.0)
        fast = DTWPulseDetector(sample_period=0.1, max_period=4.0)
        slow = DTWPulseDetector(sample_period=2.0, max_period=8.0)
        assert fast.detect(trace, 0.02).detected
        assert not slow.detect(trace, 0.02).detected

    def test_insufficient_samples_reports_nothing(self):
        trace = self.synthetic_trace(duration=10.0)
        slow = DTWPulseDetector(sample_period=1.0)
        verdict = slow.detect(trace, 0.02)
        assert not verdict.detected
        assert verdict.best_period is None

    def test_resample_aggregates_bins(self):
        detector = DTWPulseDetector(sample_period=0.1)
        series = np.ones(100)
        out = detector.resample(series, 0.02)
        assert len(out) == 20
        assert np.all(out == 5.0)

    def test_resample_too_short_rejected(self):
        detector = DTWPulseDetector(sample_period=10.0)
        with pytest.raises(ValidationError):
            detector.resample(np.ones(3), 0.02)

    def test_period_range_validated(self):
        with pytest.raises(ValidationError):
            DTWPulseDetector(sample_period=0.1, min_period=2.0, max_period=1.0)
