"""Flow-conformance (feature-based) filtering."""

import pytest

from repro.detection.feature import ConformanceDetector, FlowProfile
from repro.sim.packet import Packet, PacketKind


def forward(detector, flow_id, times, size=1500.0, kind=PacketKind.ATTACK):
    for t in times:
        packet = Packet(kind, flow_id=flow_id, src=0, dst=1, size_bytes=size)
        detector.observe_forward(packet, t, True)


def reverse_acks(detector, flow_id, count):
    for _ in range(count):
        packet = Packet(PacketKind.ACK, flow_id=flow_id, src=1, dst=0,
                        size_bytes=40.0)
        detector.observe_reverse(packet, 0.0, True)


class TestFlowProfile:
    def test_mean_rate(self):
        profile = FlowProfile()
        profile.forward_bytes = 1_000_000.0
        profile.first_time, profile.last_time = 0.0, 8.0
        assert profile.mean_rate_bps() == pytest.approx(1e6)

    def test_zero_span_rate(self):
        profile = FlowProfile()
        profile.forward_bytes = 100.0
        assert profile.mean_rate_bps() == 0.0

    def test_one_way(self):
        profile = FlowProfile()
        profile.forward_packets = 5
        assert profile.one_way()
        profile.reverse_packets = 1
        assert not profile.one_way()

    def test_burst_ratio_smooth_traffic(self):
        profile = FlowProfile()
        profile.arrival_times = [i * 0.01 for i in range(1000)]
        assert profile.burst_ratio() == pytest.approx(1.0, rel=0.1)

    def test_burst_ratio_pulsed_traffic(self):
        profile = FlowProfile()
        times = []
        for pulse_start in (0.0, 1.0, 2.0):
            times.extend(pulse_start + i * 0.001 for i in range(100))
        profile.arrival_times = times
        assert profile.burst_ratio() > 3.0


class TestConformanceDetector:
    def test_one_way_flood_flagged(self):
        detector = ConformanceDetector(min_rate_bps=1e6)
        forward(detector, 50, [i * 0.001 for i in range(10_000)])
        assert detector.is_flagged(50)

    def test_tcp_flow_with_acks_not_flagged(self):
        detector = ConformanceDetector(min_rate_bps=1e6)
        forward(detector, 1, [i * 0.001 for i in range(10_000)],
                kind=PacketKind.DATA)
        reverse_acks(detector, 1, 500)
        assert not detector.is_flagged(1)

    def test_low_rate_one_way_flow_evades(self):
        """The PDoS stealth property: under the rate floor, no flag."""
        detector = ConformanceDetector(min_rate_bps=10e6)
        # 1500 B every 10 ms = 1.2 Mb/s, far below the 10 Mb/s floor.
        forward(detector, 50, [i * 0.01 for i in range(1000)])
        assert not detector.is_flagged(50)

    def test_flagged_sorted_by_rate(self):
        detector = ConformanceDetector(min_rate_bps=1e5)
        forward(detector, 1, [i * 0.01 for i in range(1000)])   # slower
        forward(detector, 2, [i * 0.001 for i in range(1000)])  # faster
        flagged = detector.flagged_flows()
        assert [flow_id for flow_id, _ in flagged] == [2, 1]

    def test_bursty_flows_reported_separately(self):
        detector = ConformanceDetector(min_burst_ratio=3.0)
        times = []
        for pulse_start in (0.0, 2.0, 4.0):
            times.extend(pulse_start + i * 0.001 for i in range(200))
        forward(detector, 7, times)
        assert 7 in [fid for fid, _ in detector.bursty_flows()]

    def test_unknown_flow_not_flagged(self):
        detector = ConformanceDetector()
        assert not detector.is_flagged(12345)
