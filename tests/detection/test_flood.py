"""Volume-threshold flood detection."""

import numpy as np
import pytest

from repro.detection.flood import FloodDetector
from repro.util.errors import ValidationError


def series_at_rate(rate_bps, duration=20.0, bin_width=0.1):
    """A constant-rate byte series."""
    n_bins = int(duration / bin_width)
    return np.full(n_bins, rate_bps * bin_width / 8.0)


class TestDetection:
    def test_flood_above_threshold_detected(self):
        detector = FloodDetector(15e6, threshold_fraction=1.2, window=5.0)
        verdict = detector.inspect(series_at_rate(30e6), 0.1)
        assert verdict.detected
        assert verdict.max_window_rate == pytest.approx(30e6, rel=0.01)

    def test_saturated_link_not_flagged(self):
        detector = FloodDetector(15e6, threshold_fraction=1.2, window=5.0)
        verdict = detector.inspect(series_at_rate(15e6), 0.1)
        assert not verdict.detected

    def test_pdos_average_under_threshold_evades(self):
        """Pulses above line rate but a low duty cycle: window average safe."""
        bin_width = 0.05
        n_bins = 400
        series = np.zeros(n_bins)
        # 100 ms pulses of 30 Mb/s every 500 ms, idle otherwise.
        for start in range(0, n_bins, 10):
            series[start:start + 2] = 30e6 * bin_width / 8.0
        detector = FloodDetector(15e6, threshold_fraction=1.2, window=5.0)
        verdict = detector.inspect(series, bin_width)
        assert not verdict.detected
        # but the same pulses shrunk into a tiny window WOULD alarm:
        tight = FloodDetector(15e6, threshold_fraction=1.2, window=0.1)
        assert tight.inspect(series, bin_width).detected

    def test_first_alarm_time(self):
        bin_width = 0.1
        series = np.zeros(200)
        series[100:] = 40e6 * bin_width / 8.0  # flood starts at t = 10 s
        detector = FloodDetector(15e6, threshold_fraction=1.2, window=2.0)
        verdict = detector.inspect(series, bin_width)
        assert verdict.detected
        assert 10.0 < verdict.first_alarm_time < 13.0

    def test_alarm_fraction(self):
        detector = FloodDetector(15e6, threshold_fraction=1.2, window=1.0)
        verdict = detector.inspect(series_at_rate(30e6), 0.1)
        assert verdict.alarm_fraction == pytest.approx(1.0)

    def test_empty_series(self):
        detector = FloodDetector(15e6)
        verdict = detector.inspect(np.array([]), 0.1)
        assert not verdict.detected
        assert verdict.first_alarm_time is None

    def test_series_shorter_than_window(self):
        detector = FloodDetector(15e6, threshold_fraction=1.2, window=100.0)
        verdict = detector.inspect(series_at_rate(30e6, duration=2.0), 0.1)
        assert verdict.detected  # falls back to the whole-series average


class TestValidation:
    def test_capacity_positive(self):
        with pytest.raises(ValidationError):
            FloodDetector(0.0)

    def test_threshold_positive(self):
        with pytest.raises(ValidationError):
            FloodDetector(15e6, threshold_fraction=0.0)

    def test_bin_width_positive(self):
        detector = FloodDetector(15e6)
        with pytest.raises(ValidationError):
            detector.inspect(np.ones(10), 0.0)
