"""The command-line experiment runner."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_all_experiments_listed(self):
        expected = {
            "fig01", "fig02", "fig03a", "fig03b", "fig04", "fig06", "fig07",
            "fig08", "fig09", "fig10", "fig12", "ablation-queues",
            "ablation-model", "ablation-victim", "flow-damage", "detection",
            "defense-rto", "defense-choke", "replication", "distributed", "mice-elephants",
        }
        assert set(EXPERIMENTS) == expected

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_full_flag(self):
        args = build_parser().parse_args(["fig04", "--full"])
        assert args.full

    def test_output_dir(self, tmp_path):
        args = build_parser().parse_args(["fig04", "-o", str(tmp_path)])
        assert args.output_dir == tmp_path

    def test_runner_flags(self, tmp_path):
        args = build_parser().parse_args(
            ["fig06", "-j", "4", "--no-cache", "--cache-dir", str(tmp_path)]
        )
        assert args.jobs == 4
        assert args.no_cache
        assert args.cache_dir == tmp_path

    def test_runner_flag_defaults(self):
        args = build_parser().parse_args(["fig06"])
        assert args.jobs == 1
        assert not args.no_cache
        assert args.cache_dir is None
        assert not args.no_warm_start

    def test_no_warm_start_flag_disables_checkpointing(self):
        from repro.cli import _make_runner

        args = build_parser().parse_args(["fig06", "--no-warm-start",
                                          "--no-cache"])
        assert args.no_warm_start
        assert _make_runner(args).warm_start is False
        default = build_parser().parse_args(["fig06", "--no-cache"])
        assert _make_runner(default).warm_start is True

    def test_metrics_flag_off_by_default(self):
        args = build_parser().parse_args(["fig04"])
        assert args.metrics is None
        assert not args.verbose
        assert not args.quiet

    def test_bare_metrics_flag_uses_default_runlog(self):
        from repro.cli import DEFAULT_RUNLOG

        args = build_parser().parse_args(["fig04", "--metrics"])
        assert args.metrics == DEFAULT_RUNLOG

    def test_metrics_flag_with_path(self, tmp_path):
        path = tmp_path / "log.jsonl"
        args = build_parser().parse_args(["fig04", "--metrics", str(path)])
        assert args.metrics == path

    def test_verbose_and_quiet_are_exclusive(self):
        assert build_parser().parse_args(["fig04", "-v"]).verbose
        assert build_parser().parse_args(["fig04", "-q"]).quiet
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig04", "-v", "-q"])


class TestMain:
    def test_list_prints_catalogue(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_runs_analytic_experiment(self, capsys, tmp_path):
        assert main(["fig04", "-o", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "risk" in out
        assert (tmp_path / "fig04.txt").exists()

    def test_full_sets_env(self, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        import os
        main(["fig04", "--full"])
        assert os.environ.get("REPRO_FULL") == "1"

    def test_installs_configured_default_runner(self, capsys, tmp_path):
        from repro.runner import get_default_runner

        assert main(["fig04", "-j", "2", "--cache-dir", str(tmp_path)]) == 0
        runner = get_default_runner()
        assert runner.jobs == 2
        assert runner.cache.directory == tmp_path
        assert "[total: cells:" in capsys.readouterr().out

    def test_no_cache_disables_disk_cache(self, capsys):
        from repro.runner import get_default_runner

        assert main(["fig04", "--no-cache"]) == 0
        assert get_default_runner().cache is None

    def test_quiet_suppresses_timing_but_keeps_rendering(self, capsys):
        assert main(["fig04", "-q"]) == 0
        out = capsys.readouterr().out
        assert "risk" in out
        assert "[total:" not in out
        assert "[fig04:" not in out

    def test_verbose_shows_per_cell_lines(self, capsys):
        assert main(["fig01", "-v", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "executed in" in out  # per-cell debug line


class TestMetricsFlag:
    def test_writes_experiment_and_run_records(self, capsys, tmp_path):
        from repro.obs.runlog import read_run_log

        path = tmp_path / "runlog.jsonl"
        assert main(["fig01", "--no-cache", "--metrics", str(path)]) == 0
        out = capsys.readouterr().out
        assert f"2 records -> {path}" in out
        records = read_run_log(path)
        assert [r["record"] for r in records] == ["experiment", "run"]
        experiment, run = records
        assert experiment["name"] == "fig01"
        assert experiment["elapsed_seconds"] > 0
        assert experiment["metrics"]["engine.events_dispatched"] > 0
        assert any(key.startswith("link.bottleneck.")
                   for key in experiment["metrics"])
        assert any(key.startswith("tcp.") for key in experiment["metrics"])
        # fig01 simulates directly rather than through runner cells, but
        # the accounting block is still present in both records.
        assert experiment["runner"]["hit_ratio"] == 0.0
        assert run["runner"]["worker_utilization"] is None
        assert run["experiments"] == ["fig01"]

    def test_appends_across_invocations(self, capsys, tmp_path):
        from repro.obs.runlog import read_run_log

        path = tmp_path / "runlog.jsonl"
        assert main(["fig04", "--metrics", str(path)]) == 0
        assert main(["fig04", "--metrics", str(path)]) == 0
        assert len(read_run_log(path)) == 4

    def test_registry_disabled_after_run(self, capsys, tmp_path):
        from repro.obs import metrics

        main(["fig04", "--metrics", str(tmp_path / "log.jsonl")])
        assert metrics.active() is None


class TestObsReport:
    def test_report_renders_run_log(self, capsys, tmp_path):
        path = tmp_path / "runlog.jsonl"
        assert main(["fig01", "--no-cache", "--metrics", str(path)]) == 0
        capsys.readouterr()
        assert main(["obs", "report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "fig01" in out
        assert "kev/s" in out
        assert "1 records" in out  # run record excluded from the table

    def test_report_missing_log_fails(self, capsys, tmp_path):
        assert main(["obs", "report", str(tmp_path / "absent.jsonl")]) == 1
        assert "no such run log" in capsys.readouterr().err


class TestFastAndJobsFlags:
    def test_fast_flag_parses_off_by_default(self):
        assert not build_parser().parse_args(["fig04"]).fast
        assert build_parser().parse_args(["fig04", "--fast"]).fast

    def test_fast_sets_env(self, monkeypatch, capsys):
        import os

        monkeypatch.delenv("REPRO_FAST", raising=False)
        # fig01 is a cwnd trace -- unaffected by the planner, so this
        # stays cheap while still exercising the env hand-off.
        assert main(["fig01", "--fast", "--no-cache"]) == 0
        assert os.environ.get("REPRO_FAST") == "1"

    def test_non_positive_jobs_rejected_by_name(self):
        from repro.util.errors import ValidationError

        with pytest.raises(ValidationError, match="--jobs"):
            main(["fig04", "-j", "0"])
        with pytest.raises(ValidationError, match="--jobs"):
            main(["fig04", "--jobs", "-3"])

    def test_non_integer_jobs_rejected_by_argparse(self):
        # argparse's type=int still screens non-numeric values.
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig04", "-j", "two"])


class TestRunnerJobsValidation:
    def test_runner_rejects_non_positive_jobs(self):
        from repro.runner import ExperimentRunner
        from repro.util.errors import ValidationError

        with pytest.raises(ValidationError, match="jobs"):
            ExperimentRunner(jobs=0)
        with pytest.raises(ValidationError, match="got -1"):
            ExperimentRunner(jobs=-1)

    def test_runner_rejects_non_integer_jobs(self):
        from repro.runner import ExperimentRunner
        from repro.util.errors import ValidationError

        with pytest.raises(ValidationError, match="must be an integer"):
            ExperimentRunner(jobs=2.5)
        with pytest.raises(ValidationError, match="must be an integer"):
            ExperimentRunner(jobs=True)

    def test_check_jobs_names_its_source(self):
        from repro.runner import check_jobs
        from repro.util.errors import ValidationError

        assert check_jobs(4) == 4
        with pytest.raises(ValidationError, match="REPRO_JOBS"):
            check_jobs(0, source="REPRO_JOBS")
