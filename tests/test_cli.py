"""The command-line experiment runner."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_all_experiments_listed(self):
        expected = {
            "fig01", "fig02", "fig03a", "fig03b", "fig04", "fig06", "fig07",
            "fig08", "fig09", "fig10", "fig12", "ablation-queues",
            "ablation-model", "ablation-victim", "flow-damage", "detection",
            "defense-rto", "defense-choke", "replication", "distributed", "mice-elephants",
            "multi-bottleneck",
        }
        assert set(EXPERIMENTS) == expected

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_full_flag(self):
        args = build_parser().parse_args(["fig04", "--full"])
        assert args.full

    def test_output_dir(self, tmp_path):
        args = build_parser().parse_args(["fig04", "-o", str(tmp_path)])
        assert args.output_dir == tmp_path

    def test_runner_flags(self, tmp_path):
        args = build_parser().parse_args(
            ["fig06", "-j", "4", "--no-cache", "--cache-dir", str(tmp_path)]
        )
        assert args.jobs == 4
        assert args.no_cache
        assert args.cache_dir == tmp_path

    def test_runner_flag_defaults(self):
        args = build_parser().parse_args(["fig06"])
        assert args.jobs == 1
        assert not args.no_cache
        assert args.cache_dir is None
        assert not args.no_warm_start

    def test_no_warm_start_flag_disables_checkpointing(self):
        from repro.cli import _make_runner

        args = build_parser().parse_args(["fig06", "--no-warm-start",
                                          "--no-cache"])
        assert args.no_warm_start
        assert _make_runner(args).warm_start is False
        default = build_parser().parse_args(["fig06", "--no-cache"])
        assert _make_runner(default).warm_start is True

    def test_metrics_flag_off_by_default(self):
        args = build_parser().parse_args(["fig04"])
        assert args.metrics is None
        assert not args.verbose
        assert not args.quiet

    def test_bare_metrics_flag_uses_default_runlog(self):
        from repro.cli import DEFAULT_RUNLOG

        args = build_parser().parse_args(["fig04", "--metrics"])
        assert args.metrics == DEFAULT_RUNLOG

    def test_metrics_flag_with_path(self, tmp_path):
        path = tmp_path / "log.jsonl"
        args = build_parser().parse_args(["fig04", "--metrics", str(path)])
        assert args.metrics == path

    def test_verbose_and_quiet_are_exclusive(self):
        assert build_parser().parse_args(["fig04", "-v"]).verbose
        assert build_parser().parse_args(["fig04", "-q"]).quiet
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig04", "-v", "-q"])


class TestMain:
    def test_list_prints_catalogue(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_runs_analytic_experiment(self, capsys, tmp_path):
        assert main(["fig04", "-o", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "risk" in out
        assert (tmp_path / "fig04.txt").exists()

    def test_full_sets_env(self, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        import os
        main(["fig04", "--full"])
        assert os.environ.get("REPRO_FULL") == "1"

    def test_installs_configured_default_runner(self, capsys, tmp_path):
        from repro.runner import get_default_runner

        assert main(["fig04", "-j", "2", "--cache-dir", str(tmp_path)]) == 0
        runner = get_default_runner()
        assert runner.jobs == 2
        assert runner.cache.directory == tmp_path
        assert "[total: cells:" in capsys.readouterr().out

    def test_no_cache_disables_disk_cache(self, capsys):
        from repro.runner import get_default_runner

        assert main(["fig04", "--no-cache"]) == 0
        assert get_default_runner().cache is None

    def test_quiet_suppresses_timing_but_keeps_rendering(self, capsys):
        assert main(["fig04", "-q"]) == 0
        out = capsys.readouterr().out
        assert "risk" in out
        assert "[total:" not in out
        assert "[fig04:" not in out

    def test_verbose_shows_per_cell_lines(self, capsys):
        assert main(["fig01", "-v", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "executed in" in out  # per-cell debug line


class TestMetricsFlag:
    def test_writes_experiment_and_run_records(self, capsys, tmp_path):
        from repro.obs.runlog import read_run_log

        path = tmp_path / "runlog.jsonl"
        assert main(["fig01", "--no-cache", "--metrics", str(path)]) == 0
        out = capsys.readouterr().out
        assert f"2 records -> {path}" in out
        records = read_run_log(path)
        assert [r["record"] for r in records] == ["experiment", "run"]
        experiment, run = records
        assert experiment["name"] == "fig01"
        assert experiment["elapsed_seconds"] > 0
        assert experiment["metrics"]["engine.events_dispatched"] > 0
        assert any(key.startswith("link.bottleneck.")
                   for key in experiment["metrics"])
        assert any(key.startswith("tcp.") for key in experiment["metrics"])
        # fig01 simulates directly rather than through runner cells, but
        # the accounting block is still present in both records.
        assert experiment["runner"]["hit_ratio"] == 0.0
        assert run["runner"]["worker_utilization"] is None
        assert run["experiments"] == ["fig01"]

    def test_appends_across_invocations(self, capsys, tmp_path):
        from repro.obs.runlog import read_run_log

        path = tmp_path / "runlog.jsonl"
        assert main(["fig04", "--metrics", str(path)]) == 0
        assert main(["fig04", "--metrics", str(path)]) == 0
        assert len(read_run_log(path)) == 4

    def test_registry_disabled_after_run(self, capsys, tmp_path):
        from repro.obs import metrics

        main(["fig04", "--metrics", str(tmp_path / "log.jsonl")])
        assert metrics.active() is None


class TestObsReport:
    def test_report_renders_run_log(self, capsys, tmp_path):
        path = tmp_path / "runlog.jsonl"
        assert main(["fig01", "--no-cache", "--metrics", str(path)]) == 0
        capsys.readouterr()
        assert main(["obs", "report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "fig01" in out
        assert "kev/s" in out
        assert "1 records" in out  # run record excluded from the table

    def test_report_missing_log_fails(self, capsys, tmp_path):
        assert main(["obs", "report", str(tmp_path / "absent.jsonl")]) == 1
        assert "no such run log" in capsys.readouterr().err


class TestStoreFlag:
    def test_bare_store_flag_uses_default_path(self):
        from repro.cli import DEFAULT_STORE

        args = build_parser().parse_args(["fig04", "--store"])
        assert args.store == DEFAULT_STORE
        assert not args.record

    def test_record_requires_store(self, capsys):
        assert main(["fig04", "--record"]) == 2
        assert "--record requires --store" in capsys.readouterr().err

    def test_dual_writes_store_and_runlog(self, capsys, tmp_path):
        from repro.obs.runlog import read_run_log
        from repro.obs.store import is_store, open_readonly

        db = tmp_path / "runlog.sqlite"
        log = tmp_path / "runlog.jsonl"
        assert main(["fig01", "--no-cache", "--store", str(db),
                     "--metrics", str(log)]) == 0
        assert is_store(db)
        records = read_run_log(log)
        assert all(r["store"] == str(db) for r in records)
        with open_readonly(db) as store:
            assert store.query("SELECT name FROM runs")[1] == [("fig01",)]
            assert (store.query("SELECT name FROM experiments")[1]
                    == [("fig01",)])
            # The equivalence contract, via the real CLI: the store
            # reconstructs the exact record the run log holds.
            assert store.experiment_records() == [records[0]]

    def test_recorded_cells_land_in_store(self, capsys, tmp_path):
        # fig06 at smoke scale exercises the full path: runner cells,
        # per-cell rows keyed by the cache key, recorded series.
        from repro.experiments.fig06_09_gain import run_gain_figure
        from repro.obs.store import ExperimentStore
        from repro.runner import ExperimentRunner, set_default_runner
        from repro.util.units import ms

        db = tmp_path / "runlog.sqlite"
        store = ExperimentStore(db)
        store.begin_run("fig06")
        store.begin_experiment("fig06")
        previous = set_default_runner(None)
        try:
            runner = ExperimentRunner(jobs=1)
            runner.attach_store(store, record_series=True)
            set_default_runner(runner)
            figure = run_gain_figure(6, flow_counts=[2],
                                     extents=[ms(100)], gammas=(0.4, 0.7))
        finally:
            set_default_runner(previous)
        store.finish_experiment()

        names, cells = store.query(
            "SELECT cell_id, gamma, source FROM cells ORDER BY cell_id")
        assert cells  # one row per resolved cell
        assert {c[2] for c in cells} <= {"executed", "cache", "memo"}
        n_series = store.query("SELECT count(*) FROM series")[1][0][0]
        assert n_series > 0

        # gamma-star answers the figure's own peak-gamma question.
        points = figure.all_curves()[0].points
        best = max(points, key=lambda p: p.measured_gain)
        names, rows = store.gamma_star()
        row = dict(zip(names, rows[0]))
        assert row["gamma_star"] == pytest.approx(best.gamma, abs=0.05)
        store.close()

        assert main(["obs", "query", "gamma-star", "--store",
                     str(db)]) == 0
        out = capsys.readouterr().out
        assert "gamma_star" in out
        assert "fig06" in out


class TestObsQuery:
    @staticmethod
    def small_store(tmp_path):
        from repro.obs.store import ExperimentStore

        db = tmp_path / "store.sqlite"
        store = ExperimentStore(db)
        store.begin_run("fig06")
        store.begin_experiment("fig06")
        store._db.execute(
            "INSERT INTO cells (experiment_id, key, source, elapsed, spec,"
            " backend, kind, n_flows, seed, goodput_bytes, goodput_rate)"
            " VALUES (?, 'abcd1234', 'executed', 1.5, '{}', 'packet',"
            " 'dumbbell', 2, 7, 100.0, 50.0)", (store._experiment_id,))
        store._db.commit()
        store.close()
        return db

    def test_raw_sql(self, capsys, tmp_path):
        db = self.small_store(tmp_path)
        assert main(["obs", "query",
                     "SELECT key, n_flows FROM cells",
                     "--store", str(db)]) == 0
        out = capsys.readouterr().out
        assert "abcd1234" in out
        assert "(1 row)" in out

    def test_canned_query(self, capsys, tmp_path):
        db = self.small_store(tmp_path)
        assert main(["obs", "query", "cache-hits", "--store",
                     str(db)]) == 0
        out = capsys.readouterr().out
        assert "fig06" in out
        assert "executed" in out

    def test_missing_store_fails(self, capsys, tmp_path):
        assert main(["obs", "query", "cache-hits", "--store",
                     str(tmp_path / "absent.sqlite")]) == 1
        assert "no such experiment store" in capsys.readouterr().err

    def test_bad_sql_fails_cleanly(self, capsys, tmp_path):
        db = self.small_store(tmp_path)
        assert main(["obs", "query", "SELECT nope FROM nowhere",
                     "--store", str(db)]) == 1
        assert "query failed" in capsys.readouterr().err

    def test_limit_truncates_rows(self, capsys, tmp_path):
        db = self.small_store(tmp_path)
        assert main(["obs", "query", "SELECT * FROM cells", "--limit",
                     "0", "--store", str(db)]) == 0
        assert "(0 rows)" in capsys.readouterr().out


class TestObsTrace:
    @staticmethod
    def recorded_store(tmp_path):
        import numpy as np

        from repro.obs.recorder import Series
        from repro.obs.store import ExperimentStore

        db = tmp_path / "store.sqlite"
        store = ExperimentStore(db)
        store.begin_run("fig06")
        store.begin_experiment("fig06")
        queue = Series("link.bottleneck.queue",
                       ("time", "queue_bytes", "queue_packets"),
                       np.array([[0.1, 1500.0, 1.0], [0.2, 3000.0, 2.0],
                                 [0.3, 0.1 + 0.2, 0.0]]))
        cwnd = Series("tcp.cwnd", ("time", "flow_id", "cwnd"),
                      np.array([[0.1, 0.0, 2.0]]))
        store._db.execute(
            "INSERT INTO cells (experiment_id, key, source, spec, backend,"
            " kind, n_flows, seed, goodput_bytes, goodput_rate)"
            " VALUES (?, 'abcd1234', 'executed', '{}', 'packet',"
            " 'dumbbell', 2, 7, 100.0, 50.0)", (store._experiment_id,))
        cell_id = store._db.execute(
            "SELECT max(cell_id) FROM cells").fetchone()[0]
        import json as json_module
        for series in (queue, cwnd):
            store._db.execute(
                "INSERT INTO series (cell_id, name, columns, n_rows,"
                " evicted, rows) VALUES (?, ?, ?, ?, 0, ?)",
                (cell_id, series.name,
                 json_module.dumps(list(series.columns)), series.n_rows,
                 series.data.tobytes()))
        store._db.commit()
        store.close()
        return db, cell_id, queue

    def test_lists_series_without_export(self, capsys, tmp_path):
        db, cell_id, _ = self.recorded_store(tmp_path)
        assert main(["obs", "trace", str(cell_id), "--store",
                     str(db)]) == 0
        out = capsys.readouterr().out
        assert "link.bottleneck.queue" in out
        assert "tcp.cwnd" in out

    def test_resolves_cell_by_key_prefix(self, capsys, tmp_path):
        db, _, _ = self.recorded_store(tmp_path)
        assert main(["obs", "trace", "abcd", "--store", str(db)]) == 0
        assert "tcp.cwnd" in capsys.readouterr().out

    def test_csv_export_round_trips_exactly(self, capsys, tmp_path):
        import numpy as np

        db, cell_id, queue = self.recorded_store(tmp_path)
        out_path = tmp_path / "queue.csv"
        assert main(["obs", "trace", str(cell_id),
                     "--series", "link.bottleneck.queue",
                     "--export", "csv", "-o", str(out_path),
                     "--store", str(db)]) == 0
        header = out_path.read_text().splitlines()[0]
        assert header == "time,queue_bytes,queue_packets"
        parsed = np.loadtxt(out_path, delimiter=",", skiprows=1)
        # %.17g preserves every float64 bit, 0.1+0.2 included.
        assert np.array_equal(parsed, queue.data)

    def test_npz_export_carries_all_series(self, capsys, tmp_path):
        import numpy as np

        db, cell_id, queue = self.recorded_store(tmp_path)
        out_path = tmp_path / "trace.npz"
        assert main(["obs", "trace", str(cell_id), "--export", "npz",
                     "-o", str(out_path), "--store", str(db)]) == 0
        archive = np.load(out_path)
        assert np.array_equal(archive["link.bottleneck.queue"],
                              queue.data)
        assert list(archive["tcp.cwnd.columns"]) == [
            "time", "flow_id", "cwnd"]

    def test_csv_export_of_multiple_series_refused(self, capsys,
                                                   tmp_path):
        db, cell_id, _ = self.recorded_store(tmp_path)
        assert main(["obs", "trace", str(cell_id), "--export", "csv",
                     "--store", str(db)]) == 1
        assert "exactly one series" in capsys.readouterr().err

    def test_unknown_cell_fails(self, capsys, tmp_path):
        db, _, _ = self.recorded_store(tmp_path)
        assert main(["obs", "trace", "9999", "--store", str(db)]) == 1
        assert "no such cell_id" in capsys.readouterr().err


class TestFastAndJobsFlags:
    def test_fast_flag_parses_off_by_default(self):
        assert not build_parser().parse_args(["fig04"]).fast
        assert build_parser().parse_args(["fig04", "--fast"]).fast

    def test_fast_sets_env(self, monkeypatch, capsys):
        import os

        monkeypatch.delenv("REPRO_FAST", raising=False)
        # fig01 is a cwnd trace -- unaffected by the planner, so this
        # stays cheap while still exercising the env hand-off.
        assert main(["fig01", "--fast", "--no-cache"]) == 0
        assert os.environ.get("REPRO_FAST") == "1"

    def test_non_positive_jobs_rejected_by_name(self):
        from repro.util.errors import ValidationError

        with pytest.raises(ValidationError, match="--jobs"):
            main(["fig04", "-j", "0"])
        with pytest.raises(ValidationError, match="--jobs"):
            main(["fig04", "--jobs", "-3"])

    def test_non_integer_jobs_rejected_by_argparse(self):
        # argparse's type=int still screens non-numeric values.
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig04", "-j", "two"])


class TestRunnerJobsValidation:
    def test_runner_rejects_non_positive_jobs(self):
        from repro.runner import ExperimentRunner
        from repro.util.errors import ValidationError

        with pytest.raises(ValidationError, match="jobs"):
            ExperimentRunner(jobs=0)
        with pytest.raises(ValidationError, match="got -1"):
            ExperimentRunner(jobs=-1)

    def test_runner_rejects_non_integer_jobs(self):
        from repro.runner import ExperimentRunner
        from repro.util.errors import ValidationError

        with pytest.raises(ValidationError, match="must be an integer"):
            ExperimentRunner(jobs=2.5)
        with pytest.raises(ValidationError, match="must be an integer"):
            ExperimentRunner(jobs=True)

    def test_check_jobs_names_its_source(self):
        from repro.runner import check_jobs
        from repro.util.errors import ValidationError

        assert check_jobs(4) == 4
        with pytest.raises(ValidationError, match="REPRO_JOBS"):
            check_jobs(0, source="REPRO_JOBS")


def _payload():
    """Module-level so the lease queue can pickle it."""
    return 42


class TestFabricFlags:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["fig06"])
        assert args.fabric is None
        assert args.fabric_queue is None
        assert not args.dry_run

    def test_parser_values(self, tmp_path):
        queue = tmp_path / "q.sqlite"
        args = build_parser().parse_args(
            ["fig06", "--fabric", "2", "--fabric-queue", str(queue)])
        assert args.fabric == 2
        assert args.fabric_queue == queue

    def test_make_runner_uses_flag(self):
        from repro.cli import _make_runner

        args = build_parser().parse_args(["fig06", "--fabric", "3",
                                          "--no-cache"])
        runner = _make_runner(args)
        assert runner.fabric == 3
        runner.close()

    def test_make_runner_env_fallback(self, monkeypatch, tmp_path):
        from repro.cli import _make_runner

        queue = tmp_path / "q.sqlite"
        monkeypatch.setenv("REPRO_FABRIC", "2")
        monkeypatch.setenv("REPRO_FABRIC_QUEUE", str(queue))
        args = build_parser().parse_args(["fig06", "--no-cache"])
        runner = _make_runner(args)
        assert runner.fabric == 2
        assert runner.fabric_queue == str(queue)
        runner.close()

    def test_flag_overrides_env(self, monkeypatch):
        from repro.cli import _make_runner

        monkeypatch.setenv("REPRO_FABRIC", "8")
        args = build_parser().parse_args(["fig06", "--fabric", "0",
                                          "--no-cache"])
        runner = _make_runner(args)
        assert runner.fabric == 0
        runner.close()


class TestDryRunFlag:
    def test_plans_without_executing(self, capsys, tmp_path):
        from repro.runner import get_default_runner

        assert main(["fig06", "--dry-run", "--no-cache",
                     "-o", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "dry run:" in out
        assert "to execute" in out
        assert "warm-up prefixes to simulate" in out
        # Planning leaves no trace: nothing executed, nothing written.
        assert get_default_runner().stats.executed == 0
        assert not (tmp_path / "fig06.txt").exists()

    def test_rejects_observability_sinks(self, capsys, tmp_path):
        for extra in (["--store", str(tmp_path / "s.sqlite")],
                      ["--metrics", str(tmp_path / "m.jsonl")],
                      ["--store", str(tmp_path / "s.sqlite"), "--record"]):
            assert main(["fig01", "--dry-run", *extra]) == 2
            assert "cannot be combined" in capsys.readouterr().err


class TestWorkerSubcommand:
    def test_requires_queue(self):
        with pytest.raises(SystemExit):
            main(["worker"])

    def test_drains_queue_and_exits(self, tmp_path):
        import pickle

        from repro.runner import LeaseQueue

        path = tmp_path / "q.sqlite"
        queue = LeaseQueue(path)
        batch, _ = queue.enqueue_batch(
            [("wkey", [("key-1", pickle.dumps(_payload))])])
        assert main(["worker", "--queue", str(path), "--once",
                     "--id", "external:1"]) == 0
        (row,) = queue.take_completed(batch)
        assert pickle.loads(row.result) == 42
        assert row.worker == "external:1"
        queue.close()
