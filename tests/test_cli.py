"""The command-line experiment runner."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_all_experiments_listed(self):
        expected = {
            "fig01", "fig02", "fig03a", "fig03b", "fig04", "fig06", "fig07",
            "fig08", "fig09", "fig10", "fig12", "ablation-queues",
            "ablation-model", "ablation-victim", "flow-damage", "detection",
            "defense-rto", "defense-choke", "replication", "distributed", "mice-elephants",
        }
        assert set(EXPERIMENTS) == expected

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_full_flag(self):
        args = build_parser().parse_args(["fig04", "--full"])
        assert args.full

    def test_output_dir(self, tmp_path):
        args = build_parser().parse_args(["fig04", "-o", str(tmp_path)])
        assert args.output_dir == tmp_path

    def test_runner_flags(self, tmp_path):
        args = build_parser().parse_args(
            ["fig06", "-j", "4", "--no-cache", "--cache-dir", str(tmp_path)]
        )
        assert args.jobs == 4
        assert args.no_cache
        assert args.cache_dir == tmp_path

    def test_runner_flag_defaults(self):
        args = build_parser().parse_args(["fig06"])
        assert args.jobs == 1
        assert not args.no_cache
        assert args.cache_dir is None


class TestMain:
    def test_list_prints_catalogue(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_runs_analytic_experiment(self, capsys, tmp_path):
        assert main(["fig04", "-o", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "risk" in out
        assert (tmp_path / "fig04.txt").exists()

    def test_full_sets_env(self, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        import os
        main(["fig04", "--full"])
        assert os.environ.get("REPRO_FULL") == "1"

    def test_installs_configured_default_runner(self, capsys, tmp_path):
        from repro.runner import get_default_runner

        assert main(["fig04", "-j", "2", "--cache-dir", str(tmp_path)]) == 0
        runner = get_default_runner()
        assert runner.jobs == 2
        assert runner.cache.directory == tmp_path
        assert "[total: cells:" in capsys.readouterr().out

    def test_no_cache_disables_disk_cache(self, capsys):
        from repro.runner import get_default_runner

        assert main(["fig04", "--no-cache"]) == 0
        assert get_default_runner().cache is None
