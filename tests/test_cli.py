"""The command-line experiment runner."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_all_experiments_listed(self):
        expected = {
            "fig01", "fig02", "fig03a", "fig03b", "fig04", "fig06", "fig07",
            "fig08", "fig09", "fig10", "fig12", "ablation-queues",
            "ablation-model", "ablation-victim", "flow-damage", "detection",
            "defense-rto", "defense-choke", "replication", "distributed", "mice-elephants",
        }
        assert set(EXPERIMENTS) == expected

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_full_flag(self):
        args = build_parser().parse_args(["fig04", "--full"])
        assert args.full

    def test_output_dir(self, tmp_path):
        args = build_parser().parse_args(["fig04", "-o", str(tmp_path)])
        assert args.output_dir == tmp_path


class TestMain:
    def test_list_prints_catalogue(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_runs_analytic_experiment(self, capsys, tmp_path):
        assert main(["fig04", "-o", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "risk" in out
        assert (tmp_path / "fig04.txt").exists()

    def test_full_sets_env(self, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        import os
        main(["fig04", "--full"])
        assert os.environ.get("REPRO_FULL") == "1"
