"""Adaptive planner: policy validation, refinement, seed allocation.

The orchestration logic (coarse-to-fine refinement, CI-driven replica
allocation, savings accounting) is exercised against a stub runner
whose "measurements" come from a synthetic gain curve with a known
peak -- fast and exact control over the shape the planner explores.
A small real-simulator integration at the end checks the pieces the
stub cannot: distinct cache identities for planner cells, convergence
truncation, and runner counters.
"""

import dataclasses

import numpy as np
import pytest

from repro.experiments.base import DumbbellPlatform
from repro.runner import Cell, CellResult, ExperimentRunner, PlatformSpec
from repro.runner.planner import (
    FAST_POLICY,
    PlannerPolicy,
    active_policy,
    fast_mode,
    run_planned_sweep,
)
from repro.runner.runner import RunnerStats
from repro.sim.convergence import ConvergenceConfig
from repro.util.errors import ValidationError
from repro.util.units import mbps, ms

BOTTLENECK = mbps(15)


class StubRunner:
    """Serves synthetic measurements from a known gain curve.

    Baseline cells deliver a fixed rate; attacked cells deliver the
    rate degraded so the planner's reconstructed gain is
    ``height * exp(-((gamma - peak) / width)**2)`` plus an optional
    per-seed alternating jitter (so CI stopping has variance to react
    to).  Deterministic, instant, and shaped however a test needs.
    """

    def __init__(self, *, peak=0.42, height=0.5, width=0.25, noise=0.0):
        self.stats = RunnerStats()
        self.peak = peak
        self.height = height
        self.width = width
        self.noise = noise
        self.cells_measured = []

    def measure_many(self, cells):
        self.cells_measured.extend(cells)
        return [self._result(cell) for cell in cells]

    def _result(self, cell):
        rate = 1e6  # baseline bytes/sec
        if cell.train is not None:
            gamma = cell.train.gamma(BOTTLENECK)
            gain = self.height * np.exp(-((gamma - self.peak)
                                          / self.width) ** 2)
            gain += self.noise * (1 if cell.platform.seed % 2 == 0 else -1)
            degradation = gain / (1.0 - gamma)
            rate *= 1.0 - degradation
        return CellResult(goodput_bytes=rate * cell.window)


def policy(**overrides):
    base = dict(
        coarse_points=5, refine_points=2, max_rounds=3,
        gamma_resolution=0.05, min_seeds=1, max_seeds=1,
        confirm_peak_seeds=1, early_exit=None,
    )
    base.update(overrides)
    return PlannerPolicy(**base)


def sweep(runner, planner_policy, **kwargs):
    kwargs.setdefault("rate_bps", mbps(30))
    kwargs.setdefault("extent", ms(100))
    kwargs.setdefault("warmup", 1.0)
    kwargs.setdefault("window", 10.0)
    return run_planned_sweep(
        DumbbellPlatform(n_flows=2, seed=0), policy=planner_policy,
        runner=runner, **kwargs,
    )


class TestPolicy:
    @pytest.mark.parametrize("kwargs", [
        dict(coarse_points=2),
        dict(refine_points=0),
        dict(max_rounds=-1),
        dict(gamma_resolution=0.0),
        dict(min_seeds=0),
        dict(min_seeds=4, max_seeds=3),
        dict(ci_rel_tol=0.0),
        dict(confidence=1.0),
        dict(gain_floor=-0.1),
        dict(confirm_peak_seeds=0),
    ])
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ValidationError):
            PlannerPolicy(**kwargs)

    def test_fast_mode_follows_environment(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAST", raising=False)
        assert not fast_mode()
        assert active_policy() is None
        monkeypatch.setenv("REPRO_FAST", "1")
        assert fast_mode()
        assert active_policy() is FAST_POLICY
        monkeypatch.setenv("REPRO_FAST", "0")
        assert not fast_mode()


class TestRefinement:
    def test_localizes_the_synthetic_peak(self):
        runner = StubRunner(peak=0.42)
        result = sweep(runner, policy(max_rounds=6))
        # The bracket around the argmax shrank to the target
        # resolution, so gamma* sits within a step of the true peak.
        assert abs(result.gamma_star - 0.42) <= 2 * 0.05
        assert result.rounds >= 1
        assert result.gammas_sampled > 5  # refinement added samples
        assert runner.stats.planner_rounds == result.rounds

    def test_refinement_disabled_stays_on_the_coarse_grid(self):
        runner = StubRunner(peak=0.42)
        result = sweep(runner, policy(max_rounds=0))
        assert result.rounds == 0
        assert result.gammas_sampled == 5
        assert list(result.curve.gammas()) == pytest.approx(
            list(np.linspace(0.1, 0.9, 5)))

    def test_custom_grid_bounds_refinement(self):
        runner = StubRunner(peak=0.42)
        result = sweep(runner, policy(max_rounds=4),
                       gammas=(0.2, 0.4, 0.6))
        sampled = result.curve.gammas()
        assert sampled.min() >= 0.2 - 1e-12
        assert sampled.max() <= 0.6 + 1e-12

    def test_savings_accounting_is_consistent(self):
        runner = StubRunner()
        result = sweep(runner, policy(max_rounds=2, max_seeds=3,
                                      confirm_peak_seeds=2))
        dense = int((0.9 - 0.1) / 0.05) + 1  # 17-cell dense grid
        assert result.cells_saved == dense - result.gammas_sampled
        assert result.seeds_saved == sum(
            3 - point.n_seeds for point in result.points)
        assert runner.stats.planner_cells_saved == result.cells_saved
        assert runner.stats.planner_seeds_saved == result.seeds_saved

    def test_rejects_degenerate_custom_grids(self):
        runner = StubRunner()
        with pytest.raises(ValidationError, match=">= 3"):
            sweep(runner, policy(), gammas=(0.3, 0.5))
        with pytest.raises(ValidationError, match="C_attack"):
            sweep(runner, policy(), gammas=(0.3, 0.5, 3.0))


class TestFluidPrepass:
    def test_localizes_on_fluid_then_confirms_with_packet(self):
        runner = StubRunner(peak=0.42)
        result = sweep(runner, policy(fluid_prepass=True, max_rounds=0))
        # Two-stage sampling of the 17-point grid: the fluid baseline,
        # 9 coarse points, then the 2 full-resolution peak neighbors.
        assert result.fluid_cells == 12
        assert result.fluid_gamma_star == pytest.approx(0.42, abs=0.05)
        # Packet confirmation shrank to 3 points around the fluid peak.
        assert result.gammas_sampled == 3
        assert list(result.curve.gammas()) == pytest.approx(
            [0.35, 0.40, 0.45])
        fluid = [c for c in runner.cells_measured if c.backend == "fluid"]
        packet = [c for c in runner.cells_measured if c.backend == "packet"]
        assert len(fluid) == 12
        # Pre-pass cells integrate at the policy's coarse step; packet
        # cells never carry the fluid-only knob.
        assert all(c.fluid_max_step == FAST_POLICY.fluid_max_step
                   for c in fluid)
        assert all(c.fluid_max_step is None for c in packet)
        # 3 attacked packet cells + 1 packet baseline.
        assert len(packet) == 4
        assert "fluid pre-pass localized" in result.summary()

    def test_confirm_grid_clamps_to_the_sweep_bounds(self):
        runner = StubRunner(peak=0.05, width=0.1)
        result = sweep(runner, policy(fluid_prepass=True, max_rounds=0))
        sampled = result.curve.gammas()
        assert sampled.min() >= 0.1 - 1e-12
        assert result.gammas_sampled == 3

    def test_narrow_grids_skip_the_prepass(self):
        # A span of <= 2 resolution steps cannot be narrowed further,
        # so the fluid cells would be pure overhead.
        runner = StubRunner(peak=0.42)
        result = sweep(runner, policy(fluid_prepass=True, max_rounds=0),
                       gammas=(0.3, 0.35, 0.4))
        assert result.fluid_cells == 0
        assert result.fluid_gamma_star is None
        assert all(c.backend == "packet" for c in runner.cells_measured)

    def test_disabled_prepass_runs_the_full_coarse_grid(self):
        runner = StubRunner(peak=0.42)
        result = sweep(runner, policy(fluid_prepass=False, max_rounds=0))
        assert result.fluid_cells == 0
        assert result.fluid_gamma_star is None
        assert result.gammas_sampled == 5
        assert "fluid pre-pass" not in result.summary()

    def test_savings_count_against_the_dense_packet_grid(self):
        runner = StubRunner(peak=0.42)
        result = sweep(runner, policy(fluid_prepass=True, max_rounds=0))
        dense = int((0.9 - 0.1) / 0.05) + 1
        assert result.cells_saved == dense - result.gammas_sampled
        assert runner.stats.planner_cells_saved == result.cells_saved

    @pytest.mark.parametrize("kwargs", [
        dict(fluid_grid_points=2),
        dict(fluid_confirm_points=2),
        dict(fluid_max_step=0.0),
    ])
    def test_bad_prepass_values_rejected(self, kwargs):
        with pytest.raises(ValidationError):
            PlannerPolicy(**kwargs)

    def test_no_fluid_env_disables_only_the_prepass(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAST", "1")
        monkeypatch.setenv("REPRO_NO_FLUID", "1")
        active = active_policy()
        assert active is not FAST_POLICY
        assert not active.fluid_prepass
        assert dataclasses.replace(active, fluid_prepass=True) == FAST_POLICY
        monkeypatch.setenv("REPRO_NO_FLUID", "0")
        assert active_policy() is FAST_POLICY


class TestSeedAllocation:
    def test_noise_free_samples_settle_at_two_seeds(self):
        # Zero variance -> the CI half-width is 0 after two replicas,
        # so min_seeds=2 is also where allocation stops.
        runner = StubRunner(noise=0.0)
        result = sweep(runner, policy(max_rounds=0, min_seeds=2,
                                      max_seeds=5, confirm_peak_seeds=2))
        assert all(point.n_seeds == 2 for point in result.points)
        assert result.seeds_saved == 3 * len(result.points)

    def test_noisy_samples_escalate_to_the_seed_cap(self):
        # Alternating per-seed jitter keeps the CI wide: every gamma
        # escalates to max_seeds and nothing is saved.
        runner = StubRunner(noise=0.2)
        result = sweep(runner, policy(max_rounds=0, min_seeds=2,
                                      max_seeds=4, confirm_peak_seeds=2))
        assert result.seeds_at_peak == 4
        assert all(point.n_seeds == 4 for point in result.points)
        assert result.seeds_saved == 0

    def test_single_seed_points_report_infinite_ci(self):
        runner = StubRunner()
        result = sweep(runner, policy(max_rounds=0))
        assert all(np.isinf(p.ci_halfwidth) for p in result.points)
        assert result.seeds_at_peak == 1
        assert "n/a" in result.summary()  # inf CI renders as n/a


class TestCellIdentity:
    def test_early_exit_changes_the_cache_identity(self):
        base = Cell(
            platform=PlatformSpec(kind="dumbbell", n_flows=1, seed=3),
            warmup=0.5, window=1.0,
        )
        fast = dataclasses.replace(base, early_exit=ConvergenceConfig())
        assert "early_exit" not in base.describe()
        assert base.describe() != fast.describe()

    def test_planner_cells_never_hit_exact_memos(self):
        runner = ExperimentRunner(jobs=1, cache_dir=None)
        base = Cell(
            platform=PlatformSpec(kind="dumbbell", n_flows=1, seed=3),
            warmup=0.5, window=4.0,
        )
        fast = dataclasses.replace(
            base, early_exit=ConvergenceConfig(
                check_interval=0.5, min_fraction=0.2, rel_tol=0.5))
        runner.measure(base)
        runner.measure(fast)
        assert runner.stats.executed == 2
        assert runner.stats.memo_hits == 0


class TestIntegration:
    def test_real_sweep_truncates_and_counts(self):
        runner = ExperimentRunner(jobs=1, cache_dir=None)
        relaxed = ConvergenceConfig(
            check_interval=0.5, min_fraction=0.2, rel_tol=0.5,
            stable_checks=2,
        )
        result = sweep(
            runner,
            policy(coarse_points=3, max_rounds=1, early_exit=relaxed),
            window=6.0,
        )
        assert 0.1 <= result.gamma_star <= 0.9
        assert len(result.points) == result.gammas_sampled
        # The generous tolerance guarantees early exits on this quiet
        # 2-flow dumbbell, and every truncation is accounted.
        assert runner.stats.truncated_cells > 0
        assert runner.stats.truncated_sim_seconds > 0.0
        assert "early exits truncated" in runner.stats.summary()
