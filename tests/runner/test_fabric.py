"""The work-stealing fabric: lease queue, invariance, crash recovery.

Three contracts under test, in increasing order of integration:

1. **Lease queue semantics** -- whole-group leases under ``BEGIN
   IMMEDIATE``, expiry-as-crash-signal, idempotent completion, durable
   result reuse across broker restarts.
2. **Steal-order invariance** -- a batch run serially, through the
   static process pool, or through the fabric with *any* randomized
   lease interleaving yields bit-identical :class:`CellResult`\\ s.
3. **Crash recovery** -- a SIGKILLed worker's group re-enters the
   pending state after its lease expires and is completed by a
   surviving worker, with the re-queue visible in ``attempts``.
"""

import functools
import hashlib
import multiprocessing
import os
import pickle
import random
import signal
import sqlite3
import tempfile
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.attack import PulseTrain
from repro.runner import (
    Cell,
    ExperimentRunner,
    FabricBroker,
    FabricError,
    LeaseQueue,
    PlatformSpec,
    cell_key,
    warmup_key,
    worker_main,
)
from repro.util.errors import ValidationError
from repro.util.units import mbps, ms


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def make_train(gamma):
    return PulseTrain.from_gamma(
        gamma=gamma, rate_bps=mbps(30), extent=ms(100),
        bottleneck_bps=mbps(15), n_pulses=3,
    )


def sweep_cells(*, seed=11, n_flows=2, warmup=1.0, window=2.0,
                gammas=(0.3, 0.6)):
    platform = PlatformSpec(kind="dumbbell", n_flows=n_flows, seed=seed)
    baseline = Cell(platform=platform, warmup=warmup, window=window)
    return [baseline] + [
        Cell(platform=platform, warmup=warmup, window=window,
             train=make_train(g))
        for g in gammas
    ]


def two_group_cells():
    """Six cells across two warm-start prefixes (seeds 11 and 12)."""
    return sweep_cells(seed=11) + sweep_cells(seed=12)


def digest(results):
    """A bit-exact fingerprint of a result list (repr round-trips floats)."""
    return hashlib.sha256(repr(results).encode()).hexdigest()


def cell_units(cells):
    """Group cells into fabric enqueue units, serial-planner style."""
    groups = {}
    for cell in cells:
        groups.setdefault(warmup_key(cell), []).append(
            (cell_key(cell), pickle.dumps(cell))
        )
    return [(wkey, items) for wkey, items in groups.items()]


# Queue payloads that are not Cells must be picklable zero-arg
# callables, so everything lives at module level.
def _value(tag):
    return f"done:{tag}"


def _boom():
    raise RuntimeError("payload exploded")


def _slow(seconds):
    time.sleep(seconds)
    return "slept"


def callable_units(tags_by_group):
    return [
        (f"wkey-{g}", [(f"key-{g}-{t}",
                        pickle.dumps(functools.partial(_value, f"{g}-{t}")))
                       for t in tags])
        for g, tags in enumerate(tags_by_group)
    ]


def drain_map(queue, batch_id):
    """All completed results of *batch_id*, unpickled, keyed by task key."""
    out = {}
    for row in queue.take_completed(batch_id):
        assert row.error is None, row.error
        out[row.key] = pickle.loads(row.result)
    return out


# ----------------------------------------------------------------------
# lease queue semantics
# ----------------------------------------------------------------------
class TestLeaseQueue:
    def test_lease_takes_whole_group_in_order(self, tmp_path):
        queue = LeaseQueue(tmp_path / "q.sqlite")
        batch, reused = queue.enqueue_batch(callable_units([["a", "b", "c"]]))
        assert reused == {}
        lease = queue.lease("w1")
        assert lease is not None
        assert lease.attempts == 1
        assert len(lease.task_ids) == 3
        assert list(lease.keys) == ["key-0-a", "key-0-b", "key-0-c"]
        # The group is leased whole: nothing else to claim.
        assert queue.lease("w2") is None
        for task_id, key in zip(lease.task_ids, lease.keys):
            queue.complete_task(task_id, pickle.dumps(key), elapsed=0.0,
                                warm=False, worker="w1")
        queue.complete_group(lease.group_id, "w1")
        assert queue.batch_progress(batch) == (3, 3)
        rows = queue.take_completed(batch)
        assert [r.key for r in rows] == ["key-0-a", "key-0-b", "key-0-c"]
        # Absorption is exactly-once.
        assert queue.take_completed(batch) == []
        queue.close()

    def test_expired_lease_is_stolen_with_attempts(self, tmp_path):
        queue = LeaseQueue(tmp_path / "q.sqlite")
        batch, _ = queue.enqueue_batch(callable_units([["a"]]))
        first = queue.lease("victim", ttl=0.01)
        time.sleep(0.05)
        stolen = queue.lease("thief", ttl=30.0)
        assert stolen is not None
        assert stolen.group_id == first.group_id
        assert stolen.attempts == 2
        assert queue.requeued_groups(batch) == 1
        queue.close()

    def test_stolen_group_relists_only_unfinished_tasks(self, tmp_path):
        queue = LeaseQueue(tmp_path / "q.sqlite")
        queue.enqueue_batch(callable_units([["a", "b", "c"]]))
        first = queue.lease("victim", ttl=0.01)
        queue.complete_task(first.task_ids[0], pickle.dumps("early"),
                            elapsed=0.1, warm=False, worker="victim")
        time.sleep(0.05)
        stolen = queue.lease("thief", ttl=30.0)
        # The stealer re-executes only what was never persisted.
        assert list(stolen.keys) == ["key-0-b", "key-0-c"]
        queue.close()

    def test_lease_closes_group_whose_tasks_all_finished(self, tmp_path):
        # A stalled worker's lease can expire *after* it persisted every
        # task; the next lease() must close the group out, not re-run it.
        queue = LeaseQueue(tmp_path / "q.sqlite")
        queue.enqueue_batch(callable_units([["a"]]))
        lease = queue.lease("staller", ttl=0.01)
        queue.complete_task(lease.task_ids[0], pickle.dumps("done"),
                            elapsed=0.1, warm=False, worker="staller")
        time.sleep(0.05)
        assert queue.lease("thief") is None

    def test_heartbeat_extends_lease_and_detects_steal(self, tmp_path):
        queue = LeaseQueue(tmp_path / "q.sqlite")
        queue.enqueue_batch(callable_units([["a"]]))
        lease = queue.lease("w1", ttl=0.2)
        for _ in range(4):
            time.sleep(0.1)
            assert queue.heartbeat(lease.group_id, "w1", ttl=0.2)
            # Kept alive well past the original deadline.
            assert queue.reclaim_expired() == 0
        time.sleep(0.3)  # stop beating: the lease lapses
        assert queue.lease("w2", ttl=30.0) is not None
        assert queue.heartbeat(lease.group_id, "w1", ttl=0.2) is False
        queue.close()

    def test_enqueue_reuses_durable_results(self, tmp_path):
        # Crash recovery: re-enqueueing after a completed (then killed)
        # run reuses every durable result instead of re-executing.
        path = tmp_path / "q.sqlite"
        queue = LeaseQueue(path)
        units = callable_units([["a", "b"], ["c"]])
        queue.enqueue_batch(units)
        assert worker_main(path, worker_id="w1", once=True) == 2
        batch2, reused = queue.enqueue_batch(units)
        assert set(reused) == {"key-0-a", "key-0-b", "key-1-c"}
        assert pickle.loads(reused["key-0-a"].result) == "done:0-a"
        assert queue.lease("w1") is None  # nothing was re-enqueued
        assert queue.batch_progress(batch2) == (0, 0)
        queue.close()

    def test_state_open_closed(self, tmp_path):
        queue = LeaseQueue(tmp_path / "q.sqlite")
        assert not queue.is_closed()
        queue.set_state("closed")
        assert queue.is_closed()
        with pytest.raises(ValidationError, match="queue state"):
            queue.set_state("draining")
        queue.close()


class TestWorkerMain:
    def test_drains_and_counts_groups(self, tmp_path):
        path = tmp_path / "q.sqlite"
        queue = LeaseQueue(path)
        batch, _ = queue.enqueue_batch(callable_units([["a", "b"], ["c"]]))
        served = worker_main(path, worker_id="w1", once=True)
        assert served == 2
        results = drain_map(queue, batch)
        assert results == {"key-0-a": "done:0-a", "key-0-b": "done:0-b",
                           "key-1-c": "done:1-c"}
        queue.close()

    def test_max_groups_limits_stealing(self, tmp_path):
        path = tmp_path / "q.sqlite"
        queue = LeaseQueue(path)
        queue.enqueue_batch(callable_units([["a"], ["b"], ["c"]]))
        assert worker_main(path, worker_id="w1", once=True,
                           max_groups=1) == 1
        assert worker_main(path, worker_id="w2", once=True) == 2
        queue.close()

    def test_closed_queue_releases_worker(self, tmp_path):
        path = tmp_path / "q.sqlite"
        queue = LeaseQueue(path)
        queue.set_state("closed")
        # No ``once``: only the closed flag lets an idle worker exit.
        assert worker_main(path, worker_id="w1") == 0
        queue.close()

    def test_failing_payload_persists_error_and_reraises(self, tmp_path):
        path = tmp_path / "q.sqlite"
        queue = LeaseQueue(path)
        units = [("wkey-0", [("key-bad", pickle.dumps(_boom))])]
        batch, _ = queue.enqueue_batch(units)
        with pytest.raises(RuntimeError, match="payload exploded"):
            worker_main(path, worker_id="w1", once=True)
        (row,) = queue.take_completed(batch)
        assert row.result is None
        assert "payload exploded" in row.error
        queue.close()


# ----------------------------------------------------------------------
# steal-order invariance
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def serial_expected():
    """Ground truth: the sweep executed serially, keyed by content."""
    cells = two_group_cells()
    with ExperimentRunner(jobs=1) as runner:
        results = runner.measure_many(cells)
    return cells, results, {cell_key(c): r for c, r in zip(cells, results)}


class TestFabricInvariance:
    def test_serial_pool_fabric_bit_identical(self, serial_expected):
        cells, serial, _ = serial_expected
        with ExperimentRunner(jobs=2) as pool_runner:
            pooled = pool_runner.measure_many(cells)
        with ExperimentRunner(fabric=2) as fabric_runner:
            fabbed = fabric_runner.measure_many(cells)
        assert digest(pooled) == digest(serial)
        assert digest(fabbed) == digest(serial)
        stats = fabric_runner.stats
        assert stats.fabric_batches == 1
        assert stats.executed == len(cells)
        # Warm accounting is placement-independent too: one warm-up per
        # prefix, every other cell a fork.
        assert stats.warmup_sims == 2
        assert stats.warm_starts == len(cells) - 2

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_randomized_lease_interleavings(self, seed, serial_expected):
        """Any seeded steal order reproduces the serial results bit-exactly."""
        cells, _, expected = serial_expected
        rng = random.Random(seed)
        workers = ["w0", "w1", "w2"]
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "q.sqlite")
            queue = LeaseQueue(path)
            batch, reused = queue.enqueue_batch(cell_units(cells))
            assert reused == {}
            done, total = queue.batch_progress(batch)
            while done < total:
                worker_main(path, worker_id=rng.choice(workers),
                            once=True, max_groups=1)
                done, total = queue.batch_progress(batch)
            results = drain_map(queue, batch)
            queue.close()
        assert results == expected

    def test_fabric_rejects_record_series(self):
        runner = ExperimentRunner(fabric=1)
        runner.record_series = True
        with pytest.raises(ValidationError, match="record_series"):
            runner.measure_many(two_group_cells()[:1])
        runner.close()

    @pytest.mark.parametrize("bad", [True, -1, "2", 1.5])
    def test_fabric_argument_validated(self, bad):
        with pytest.raises(ValidationError, match="fabric"):
            ExperimentRunner(fabric=bad)

    def test_explicit_queue_survives_runner_restart(self, tmp_path,
                                                    serial_expected):
        """A re-run against the same durable queue reuses its results."""
        cells, serial, _ = serial_expected
        path = tmp_path / "shared.sqlite"
        with ExperimentRunner(fabric=1, fabric_queue=path) as first:
            assert digest(first.measure_many(cells)) == digest(serial)
        with ExperimentRunner(fabric=1, fabric_queue=path) as second:
            assert digest(second.measure_many(cells)) == digest(serial)
        # The second run re-enqueued nothing: every task row predates it.
        db = sqlite3.connect(str(path))
        (task_rows,) = db.execute("SELECT COUNT(*) FROM tasks").fetchone()
        db.close()
        assert task_rows == len(cells)


# ----------------------------------------------------------------------
# crash recovery
# ----------------------------------------------------------------------
class TestCrashRecovery:
    def _wait_for(self, predicate, timeout=5.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if predicate():
                return True
            time.sleep(0.01)
        return False

    def test_sigkilled_worker_group_requeued_and_completed(self, tmp_path):
        path = tmp_path / "q.sqlite"
        queue = LeaseQueue(path)
        units = [("wkey-0", [("key-slow",
                              pickle.dumps(functools.partial(_slow, 0.5)))])]
        batch, _ = queue.enqueue_batch(units)

        context = multiprocessing.get_context("fork")
        victim = context.Process(
            target=worker_main, args=(str(path),),
            kwargs=dict(worker_id="victim", ttl=0.2, poll=0.01),
        )
        victim.start()
        db = sqlite3.connect(str(path))
        leased = self._wait_for(lambda: db.execute(
            "SELECT COUNT(*) FROM groups WHERE state = 'leased'"
        ).fetchone()[0] == 1)
        db.close()
        assert leased, "victim never leased the group"
        os.kill(victim.pid, signal.SIGKILL)
        victim.join(timeout=5.0)

        time.sleep(0.3)  # let the dead worker's lease lapse
        assert queue.reclaim_expired() == 1
        assert worker_main(path, worker_id="rescuer", once=True) == 1
        assert queue.requeued_groups(batch) == 1
        (row,) = queue.take_completed(batch)
        assert pickle.loads(row.result) == "slept"
        assert row.worker == "rescuer"
        queue.close()

    def test_runner_results_survive_worker_kill(self, serial_expected):
        """Killing a fabric worker mid-batch cannot change any result."""
        import threading

        cells, serial, _ = serial_expected
        with ExperimentRunner(fabric=2, fabric_ttl=0.5) as runner:
            def assassin():
                broker = runner._broker
                deadline = time.monotonic() + 5.0
                while time.monotonic() < deadline:
                    if broker is None:
                        broker = runner._broker
                    elif broker.worker_pids():
                        os.kill(broker.worker_pids()[0], signal.SIGKILL)
                        return
                    time.sleep(0.02)

            thread = threading.Thread(target=assassin)
            thread.start()
            results = runner.measure_many(cells)
            thread.join(timeout=10.0)
        # The kill may or may not land mid-lease (timing), but results
        # are bit-identical either way -- that is the whole point.
        assert digest(results) == digest(serial)


class TestBroker:
    def test_task_failure_surfaces_as_fabric_error(self, tmp_path):
        broker = FabricBroker(tmp_path / "q.sqlite", spawn_workers=1,
                              ttl=5.0)
        try:
            with pytest.raises(FabricError, match="payload exploded"):
                broker.run_batch(
                    [("wkey-0", [("key-bad", _boom)])],
                    lambda *a: None,
                )
        finally:
            broker.close()

    def test_spawn_workers_validated(self, tmp_path):
        with pytest.raises(ValidationError, match="spawn_workers"):
            FabricBroker(tmp_path / "q.sqlite", spawn_workers=-1)


# ----------------------------------------------------------------------
# dry run
# ----------------------------------------------------------------------
class TestDryRun:
    def test_plans_instead_of_executing(self):
        cells = sweep_cells()
        with ExperimentRunner(dry_run=True) as runner:
            results = runner.measure_many(cells)
            assert len(results) == len(cells)
            # Placeholders, not measurements: rate exactly 1.0 and no
            # execution recorded anywhere.
            assert all(r.goodput_bytes == cells[0].window for r in results)
            assert runner.stats.executed == 0
            assert runner.stats.cache_hits == 0
            plan = runner.dry_run_plan
            assert [e.status for e in plan.entries] == ["execute"] * 3
            assert plan.batches == 1

    def test_second_batch_hits_dry_memo(self):
        cells = sweep_cells()
        with ExperimentRunner(dry_run=True) as runner:
            first = runner.measure_many(cells)
            second = runner.measure_many(cells)
            assert second == first
            statuses = [e.status for e in runner.dry_run_plan.entries]
            assert statuses == ["execute"] * 3 + ["memo"] * 3

    def test_duplicates_counted_once(self):
        cell = sweep_cells()[0]
        with ExperimentRunner(dry_run=True) as runner:
            runner.measure_many([cell, cell, cell])
            assert len(runner.dry_run_plan.entries) == 1
            assert runner.dry_run_plan.duplicates == 2

    def test_cache_hits_resolve_real_results(self, tmp_path):
        cells = sweep_cells()
        with ExperimentRunner(cache_dir=tmp_path) as real:
            executed = real.measure_many(cells)
        with ExperimentRunner(cache_dir=tmp_path, dry_run=True) as dry:
            planned = dry.measure_many(cells)
            assert planned == executed  # real cached values, not stand-ins
            statuses = [e.status for e in dry.dry_run_plan.entries]
            assert statuses == ["cache"] * 3

    def test_render_summarizes_prefix_groups(self):
        cells = two_group_cells()
        with ExperimentRunner(dry_run=True) as runner:
            runner.measure_many(cells)
            text = runner.dry_run_plan.render()
        assert "6 cells planned -- 6 to execute" in text
        assert "warm-up prefixes to simulate: 2" in text
        assert "kind=dumbbell" in text and "seed=11" in text

    def test_empty_plan_renders(self):
        assert ExperimentRunner(dry_run=True).dry_run_plan.render() \
            == "dry run: no cells planned"
