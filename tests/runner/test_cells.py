"""Cell / PlatformSpec / DeploymentSpec specs and the pure executor."""

import dataclasses
import pickle

import pytest

from repro.core.attack import PulseTrain
from repro.core.distributed import split_interleaved
from repro.runner import Cell, DeploymentSpec, PlatformSpec, execute_cell
from repro.sim.tcp import TCPConfig, TCPVariant
from repro.sim.topology import DumbbellConfig
from repro.testbed.dummynet import TestbedConfig
from repro.util.errors import ValidationError
from repro.util.units import mbps, ms


def small_train(n_pulses=3):
    return PulseTrain.from_gamma(
        gamma=0.5, rate_bps=mbps(30), extent=ms(100),
        bottleneck_bps=mbps(15), n_pulses=n_pulses,
    )


class TestPlatformSpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValidationError, match="kind"):
            PlatformSpec(kind="emulab", n_flows=5, seed=1)

    def test_rejects_unknown_queue(self):
        with pytest.raises(ValidationError, match="queue"):
            PlatformSpec(kind="dumbbell", n_flows=5, seed=1, queue="codel")

    def test_rejects_zero_flows(self):
        with pytest.raises(ValidationError, match="n_flows"):
            PlatformSpec(kind="dumbbell", n_flows=0, seed=1)

    def test_dumbbell_config_carries_spec_fields(self):
        tcp = TCPConfig(variant=TCPVariant.SACK)
        spec = PlatformSpec(kind="dumbbell", n_flows=7, seed=3,
                            queue="droptail", tcp=tcp)
        config = spec.to_config()
        assert isinstance(config, DumbbellConfig)
        assert config.n_flows == 7
        assert config.seed == 3
        assert config.tcp is tcp

    def test_testbed_config_carries_spec_fields(self):
        spec = PlatformSpec(kind="testbed", n_flows=4, seed=9, use_red=False)
        config = spec.to_config()
        assert isinstance(config, TestbedConfig)
        assert config.n_flows == 4
        assert config.seed == 9
        assert not config.use_red

    def test_hashable_and_picklable(self):
        spec = PlatformSpec(kind="dumbbell", n_flows=5, seed=1,
                            tcp=TCPConfig())
        assert hash(spec) == hash(pickle.loads(pickle.dumps(spec)))

    def test_describe_scopes_discipline_by_kind(self):
        dumbbell = PlatformSpec(kind="dumbbell", n_flows=5, seed=1)
        testbed = PlatformSpec(kind="testbed", n_flows=5, seed=1)
        assert "queue" in dumbbell.describe()
        assert "use_red" in testbed.describe()


class TestDeploymentSpec:
    def test_from_attack_duckwraps_trains_and_offsets(self):
        split = split_interleaved(small_train(4), 2)
        spec = DeploymentSpec.from_attack(split)
        assert spec.trains == tuple(split.trains)
        assert spec.offsets == tuple(split.offsets)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValidationError, match="offsets"):
            DeploymentSpec(trains=(small_train(),), offsets=(0.0, 1.0))

    def test_empty_rejected(self):
        with pytest.raises(ValidationError, match="at least one"):
            DeploymentSpec(trains=(), offsets=())


class TestCell:
    def platform(self, kind="dumbbell"):
        return PlatformSpec(kind=kind, n_flows=2, seed=1)

    def test_train_and_deployment_mutually_exclusive(self):
        deployment = DeploymentSpec.from_attack(
            split_interleaved(small_train(4), 2)
        )
        with pytest.raises(ValidationError, match="not both"):
            Cell(platform=self.platform(), warmup=1.0, window=2.0,
                 train=small_train(), deployment=deployment)

    def test_deployment_needs_dumbbell(self):
        deployment = DeploymentSpec.from_attack(
            split_interleaved(small_train(4), 2)
        )
        with pytest.raises(ValidationError, match="dumbbell"):
            Cell(platform=self.platform("testbed"), warmup=1.0, window=2.0,
                 deployment=deployment)

    def test_rate_floor_needs_dumbbell(self):
        with pytest.raises(ValidationError, match="dumbbell"):
            Cell(platform=self.platform("testbed"), warmup=1.0, window=2.0,
                 rate_floor_bps=mbps(1))

    def test_window_must_be_positive(self):
        with pytest.raises(ValidationError):
            Cell(platform=self.platform(), warmup=1.0, window=0.0)

    def test_describe_round_trips_through_json(self):
        import json

        cell = Cell(platform=self.platform(), warmup=1.0, window=2.0,
                    train=small_train())
        blob = json.dumps(cell.describe(), sort_keys=True)
        assert json.loads(blob) == cell.describe()

    def test_rejects_unknown_backend(self):
        with pytest.raises(ValidationError, match="backend"):
            Cell(platform=self.platform(), warmup=1.0, window=2.0,
                 backend="ode")

    def test_fluid_backend_rejects_packet_only_features(self):
        from repro.sim.convergence import ConvergenceConfig

        with pytest.raises(ValidationError, match="rate floor"):
            Cell(platform=self.platform(), warmup=1.0, window=2.0,
                 backend="fluid", rate_floor_bps=mbps(1))
        with pytest.raises(ValidationError, match="early exit"):
            Cell(platform=self.platform(), warmup=1.0, window=2.0,
                 backend="fluid", early_exit=ConvergenceConfig())

    def test_fluid_max_step_is_fluid_only_and_positive(self):
        with pytest.raises(ValidationError, match="fluid_max_step"):
            Cell(platform=self.platform(), warmup=1.0, window=2.0,
                 fluid_max_step=0.05)
        with pytest.raises(ValidationError, match="fluid_max_step"):
            Cell(platform=self.platform(), warmup=1.0, window=2.0,
                 backend="fluid", fluid_max_step=0.0)

    def test_backend_separates_warmup_groups(self):
        from repro.runner.cells import warmup_key

        packet = Cell(platform=self.platform(), warmup=1.0, window=2.0)
        fluid = dataclasses.replace(packet, backend="fluid")
        assert warmup_key(packet) != warmup_key(fluid)


class TestExecuteCell:
    def test_deterministic_re_execution(self):
        cell = Cell(
            platform=PlatformSpec(kind="dumbbell", n_flows=2, seed=11),
            warmup=1.0, window=2.0, train=small_train(),
        )
        first = execute_cell(cell)
        second = execute_cell(cell)
        assert first.goodput_bytes == second.goodput_bytes
        assert first.flagged_sources is None

    def test_detector_reports_flagged_sources(self):
        train = small_train(4)
        cell = Cell(
            platform=PlatformSpec(kind="dumbbell", n_flows=2, seed=11),
            warmup=1.0, window=2.0, train=train,
            rate_floor_bps=0.3 * train.mean_rate_bps(),
        )
        result = execute_cell(cell)
        assert result.flagged_sources == 1

    def test_fluid_group_matches_per_cell_execution(self):
        # A same-key fluid group has no snapshot to fork; the group
        # executor must fall back to per-cell runs, bit-identically,
        # without claiming any warm-start economics.
        from repro.runner.cells import execute_cell_group

        base = Cell(
            platform=PlatformSpec(kind="dumbbell", n_flows=2, seed=11),
            warmup=1.0, window=2.0, backend="fluid",
        )
        attacked = dataclasses.replace(base, train=small_train())
        group = execute_cell_group([base, attacked])
        assert group.results[0] == execute_cell(base)
        assert group.results[1] == execute_cell(attacked)
        assert group.warmup_sims == 0
        assert group.warm_starts == 0
        assert group.warmup_seconds_saved == 0.0
