"""The executor: determinism, dedup, caching, parallel fan-out, stats."""

import time

import pytest

from repro.core.attack import PulseTrain
from repro.experiments.base import DumbbellPlatform, run_gain_sweep
from repro.runner import (
    Cell,
    ExperimentRunner,
    PlatformSpec,
    get_default_runner,
    set_default_runner,
)
from repro.util.errors import ValidationError
from repro.util.units import mbps, ms


def make_cell(seed=11, gamma=0.5, window=2.0):
    return Cell(
        platform=PlatformSpec(kind="dumbbell", n_flows=2, seed=seed),
        warmup=1.0,
        window=window,
        train=PulseTrain.from_gamma(
            gamma=gamma, rate_bps=mbps(30), extent=ms(100),
            bottleneck_bps=mbps(15), n_pulses=4,
        ),
    )


class TestValidation:
    def test_jobs_must_be_positive(self):
        with pytest.raises(ValidationError, match="jobs"):
            ExperimentRunner(jobs=0)


class TestDeterminism:
    def test_serial_worker_and_cache_agree_bitwise(self, tmp_path):
        cells = [make_cell(seed=11), make_cell(seed=12)]

        serial = ExperimentRunner(jobs=1).measure_many(cells)
        parallel = ExperimentRunner(jobs=2).measure_many(cells)

        caching = ExperimentRunner(jobs=1, cache_dir=tmp_path)
        first = caching.measure_many(cells)
        replayed = ExperimentRunner(jobs=1, cache_dir=tmp_path).measure_many(
            cells
        )

        goodputs = [
            [result.goodput_bytes for result in batch]
            for batch in (serial, parallel, first, replayed)
        ]
        assert goodputs[0] == goodputs[1] == goodputs[2] == goodputs[3]


class TestDedupAndMemo:
    def test_identical_cells_measured_once(self):
        runner = ExperimentRunner(jobs=1)
        results = runner.measure_many([make_cell(), make_cell()])
        assert runner.stats.executed == 1
        assert results[0].goodput_bytes == results[1].goodput_bytes

    def test_memo_serves_repeat_batches(self):
        runner = ExperimentRunner(jobs=1)
        first = runner.measure(make_cell())
        again = runner.measure(make_cell())
        assert runner.stats.executed == 1
        assert runner.stats.memo_hits == 1
        assert first.goodput_bytes == again.goodput_bytes

    def test_results_return_in_input_order(self):
        runner = ExperimentRunner(jobs=2)
        cells = [make_cell(seed=s) for s in (21, 22, 21, 23)]
        results = runner.measure_many(cells)
        assert results[0].goodput_bytes == results[2].goodput_bytes
        solo = {
            seed: ExperimentRunner().measure(make_cell(seed=s)).goodput_bytes
            for seed, s in zip((21, 22, 23), (21, 22, 23))
        }
        assert [r.goodput_bytes for r in results] == [
            solo[21], solo[22], solo[21], solo[23],
        ]


class TestCachePersistence:
    def test_cache_survives_runner_instances(self, tmp_path):
        first = ExperimentRunner(cache_dir=tmp_path)
        first.measure(make_cell())
        assert first.stats.executed == 1

        second = ExperimentRunner(cache_dir=tmp_path)
        second.measure(make_cell())
        assert second.stats.executed == 0
        assert second.stats.cache_hits == 1

    def test_cached_rerun_at_least_5x_faster(self, tmp_path):
        cell = make_cell(window=4.0)

        started = time.perf_counter()
        warm = ExperimentRunner(cache_dir=tmp_path)
        warm.measure(cell)
        executed_wall = time.perf_counter() - started

        started = time.perf_counter()
        ExperimentRunner(cache_dir=tmp_path).measure(cell)
        cached_wall = time.perf_counter() - started

        assert executed_wall >= 5.0 * cached_wall

    def test_no_cache_dir_means_no_disk_io(self):
        runner = ExperimentRunner()
        assert runner.cache is None
        runner.measure(make_cell())
        assert runner.stats.executed == 1


class TestStats:
    def test_checkpoint_delta_counts_only_new_cells(self, tmp_path):
        runner = ExperimentRunner(cache_dir=tmp_path)
        runner.measure(make_cell())
        mark = runner.stats.checkpoint()
        runner.measure(make_cell())          # memo hit
        runner.measure(make_cell(seed=99))   # fresh execution
        delta = runner.stats.since(mark)
        assert "cells: 2" in delta
        assert "1 executed" in delta
        assert "1 memo hits" in delta

    def test_summary_totals(self):
        runner = ExperimentRunner()
        runner.measure_many([make_cell(), make_cell(seed=77)])
        assert "cells: 2 (2 executed" in runner.stats.summary()
        assert runner.stats.cells == 2


class TestDefaultRunner:
    def test_env_configures_lazy_default(self, monkeypatch, tmp_path):
        set_default_runner(None)
        monkeypatch.setenv("REPRO_JOBS", "3")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        runner = get_default_runner()
        assert runner.jobs == 3
        assert runner.cache.directory == tmp_path

    def test_set_returns_previous(self):
        installed = ExperimentRunner(jobs=2)
        set_default_runner(None)
        assert set_default_runner(installed) is None
        assert get_default_runner() is installed


class TestSweepIntegration:
    def test_parallel_sweep_equals_serial_sweep(self):
        kwargs = dict(
            rate_bps=mbps(30), extent=ms(100), gammas=(0.4, 0.7),
            warmup=1.0, window=3.0,
        )
        serial = run_gain_sweep(
            DumbbellPlatform(n_flows=2, seed=5), runner=ExperimentRunner(),
            **kwargs,
        )
        parallel = run_gain_sweep(
            DumbbellPlatform(n_flows=2, seed=5),
            runner=ExperimentRunner(jobs=2), **kwargs,
        )
        assert [p.measured_degradation for p in serial.points] == [
            p.measured_degradation for p in parallel.points
        ]
