"""RunnerStats accounting: ratios, snapshots, deltas, utilization."""

import pytest

from repro.runner import Cell, ExperimentRunner, PlatformSpec
from repro.runner.runner import RunnerStats


def make_stats(executed=0, cache=0, memo=0, seconds_each=1.0):
    stats = RunnerStats()
    for i in range(executed):
        stats.record(f"x{i}", "executed", seconds_each)
    for i in range(cache):
        stats.record(f"c{i}", "cache")
    for i in range(memo):
        stats.record(f"m{i}", "memo")
    return stats


class TestRatios:
    def test_hit_ratio_zero_when_empty(self):
        assert make_stats().hit_ratio == 0.0

    def test_hit_ratio_counts_cache_and_memo(self):
        stats = make_stats(executed=1, cache=2, memo=1)
        assert stats.cells == 4
        assert stats.hit_ratio == 0.75

    def test_worker_utilization_none_before_parallel_batches(self):
        assert make_stats(executed=3).worker_utilization is None

    def test_worker_utilization_is_busy_over_available(self):
        stats = make_stats()
        stats.parallel_batches = 1
        stats.parallel_wall_seconds = 2.0
        stats.parallel_busy_seconds = 3.0
        stats.parallel_worker_seconds = 4.0  # 2 workers x 2 s wall
        assert stats.worker_utilization == 0.75

    def test_worker_utilization_none_at_zero_elapsed_time(self):
        # A batch so fast the wall clock read 0.0 must not divide by
        # zero -- no available worker-seconds means no utilization yet.
        stats = make_stats(executed=1)
        stats.parallel_batches = 1
        stats.parallel_wall_seconds = 0.0
        stats.parallel_busy_seconds = 0.0
        stats.parallel_worker_seconds = 0.0
        assert stats.worker_utilization is None
        assert stats.snapshot()["worker_utilization"] is None


class TestSnapshots:
    def test_snapshot_is_cumulative(self):
        stats = make_stats(executed=2, cache=1, seconds_each=0.5)
        stats.seeds.update({11, 12, 13})
        snap = stats.snapshot()
        assert snap["cells"] == 3
        assert snap["executed"] == 2
        assert snap["cache_hits"] == 1
        assert snap["executed_seconds"] == pytest.approx(1.0)
        assert snap["seed_fanout"] == 3
        assert snap["worker_utilization"] is None

    def test_delta_snapshot_excludes_work_before_mark(self):
        stats = make_stats(executed=2, cache=2)
        stats.warm_starts = 4
        stats.warmup_sims = 2
        stats.warmup_seconds_saved = 24.0
        mark = stats.checkpoint()
        stats.record("y", "executed", 2.0)
        stats.record("z", "memo")
        stats.warm_starts += 1
        stats.warmup_sims += 1
        stats.warmup_seconds_saved += 6.0
        delta = stats.delta_snapshot(mark)
        assert delta == {
            "cells": 2, "executed": 1, "cache_hits": 0, "memo_hits": 1,
            "hit_ratio": 0.5, "executed_seconds": pytest.approx(2.0),
            "warm_starts": 1, "warmup_sims": 1,
            "warmup_seconds_saved": pytest.approx(6.0),
            "planner_rounds": 0, "planner_cells_saved": 0,
            "planner_seeds_saved": 0, "truncated_cells": 0,
            "truncated_sim_seconds": 0.0, "fluid_cells": 0,
        }

    def test_delta_snapshot_accepts_pre_warm_start_marks(self):
        # Run-log tooling may replay 4-tuple marks from older records;
        # they baseline the warm-start counters at zero.
        stats = make_stats(executed=1)
        stats.warm_starts = 2
        stats.warmup_seconds_saved = 12.0
        delta = stats.delta_snapshot((0, 0, 0, 0.0))
        assert delta["executed"] == 1
        assert delta["warm_starts"] == 2
        assert delta["warmup_seconds_saved"] == pytest.approx(12.0)

    def test_delta_snapshot_accepts_pre_planner_marks(self):
        # 7-tuple marks predate the planner counters; those baseline at
        # zero while the warm-start fields still subtract.
        stats = make_stats(executed=1)
        stats.warm_starts = 3
        stats.planner_rounds = 2
        stats.planner_seeds_saved = 9
        stats.truncated_sim_seconds = 30.0
        delta = stats.delta_snapshot((0, 0, 0, 0.0, 1, 0, 0.0))
        assert delta["warm_starts"] == 2
        assert delta["planner_rounds"] == 2
        assert delta["planner_seeds_saved"] == 9
        assert delta["truncated_sim_seconds"] == pytest.approx(30.0)

    def test_delta_snapshot_accepts_pre_fluid_marks(self):
        # 12-tuple marks predate the fluid-backend counter; it baselines
        # at zero while later fields still subtract.
        stats = make_stats(executed=1)
        stats.fluid_cells = 4
        delta = stats.delta_snapshot(
            (0, 0, 0, 0.0, 0, 0, 0.0, 0, 0, 0, 0, 0.0))
        assert delta["fluid_cells"] == 4
        assert "4 cells on the fluid backend" in stats.summary()

    def test_checkpoint_roundtrip_with_planner_counters(self):
        # A checkpoint taken with planner counters present must zero the
        # delta exactly, and further planner work must subtract cleanly.
        stats = make_stats(executed=2)
        stats.planner_rounds = 1
        stats.planner_cells_saved = 4
        stats.planner_seeds_saved = 6
        stats.truncated_cells = 5
        stats.truncated_sim_seconds = 42.5
        mark = stats.checkpoint()
        zero = stats.delta_snapshot(mark)
        assert all(value == 0 for key, value in zero.items()
                   if key != "hit_ratio")
        stats.planner_rounds += 2
        stats.truncated_cells += 1
        stats.truncated_sim_seconds += 7.5
        delta = stats.delta_snapshot(mark)
        assert delta["planner_rounds"] == 2
        assert delta["planner_cells_saved"] == 0
        assert delta["truncated_cells"] == 1
        assert delta["truncated_sim_seconds"] == pytest.approx(7.5)

    def test_delta_snapshot_of_empty_batch_is_all_zero(self):
        stats = make_stats(executed=3, cache=1)
        stats.planner_seeds_saved = 2
        mark = stats.checkpoint()
        delta = stats.delta_snapshot(mark)
        assert delta["cells"] == 0
        assert delta["hit_ratio"] == 0.0  # vacuous, not NaN
        assert delta["executed_seconds"] == 0.0
        assert delta["planner_seeds_saved"] == 0

    def test_since_renders_delta_with_hit_ratio(self):
        stats = make_stats(executed=1, memo=3, seconds_each=0.2)
        text = stats.since(stats.__class__().checkpoint())
        assert text.startswith("cells: 4 (1 executed")
        assert "3 memo hits" in text
        assert "75% hit ratio" in text
        assert "warm starts" not in text  # no warm starts -> no clause

    def test_since_mentions_warm_starts_when_present(self):
        stats = make_stats(executed=2)
        stats.warm_starts = 3
        stats.warmup_sims = 1
        stats.warmup_seconds_saved = 18.0
        text = stats.summary()
        assert "3 warm starts saved 18s of simulated warm-up" in text


class TestRunnerIntegration:
    def test_seed_fanout_tracks_distinct_seeds(self):
        runner = ExperimentRunner(jobs=1, cache_dir=None)
        cells = [
            Cell(platform=PlatformSpec(kind="dumbbell", n_flows=1, seed=s),
                 warmup=0.5, window=0.5)
            for s in (3, 4, 3)
        ]
        runner.measure_many(cells)
        assert runner.stats.seeds == {3, 4}
        assert runner.stats.snapshot()["seed_fanout"] == 2

    def test_parallel_batch_accounting(self):
        runner = ExperimentRunner(jobs=2, cache_dir=None)
        cells = [
            Cell(platform=PlatformSpec(kind="dumbbell", n_flows=1, seed=s),
                 warmup=0.5, window=0.5)
            for s in (5, 6)
        ]
        runner.measure_many(cells)
        stats = runner.stats
        assert stats.parallel_batches == 1
        assert stats.parallel_wall_seconds > 0.0
        assert stats.parallel_busy_seconds > 0.0
        # Two workers for the whole batch wall time.
        assert stats.parallel_worker_seconds == pytest.approx(
            2.0 * stats.parallel_wall_seconds)
        assert 0.0 < stats.worker_utilization <= 1.0
