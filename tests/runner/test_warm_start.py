"""Warm-start scheduling: grouping, bit-identity, stats, pool lifecycle.

The contract under test: an :class:`ExperimentRunner` with warm starts
enabled (the default) returns byte-for-byte the same
:class:`CellResult` objects as one with ``warm_start=False`` -- across
attack shapes, deployments, conformance detection, platforms, and job
counts -- while paying for each shared warm-up prefix once.
"""

import pytest

from repro.core.attack import PulseTrain
from repro.runner import (
    Cell,
    DeploymentSpec,
    ExperimentRunner,
    PlatformSpec,
    execute_cell,
    execute_cell_group,
    get_default_runner,
    set_default_runner,
    warmup_key,
)
from repro.util.errors import ValidationError
from repro.util.units import mbps, ms


def make_train(gamma):
    return PulseTrain.from_gamma(
        gamma=gamma, rate_bps=mbps(30), extent=ms(100),
        bottleneck_bps=mbps(15), n_pulses=3,
    )


def sweep_cells(*, seed=11, n_flows=2, warmup=1.0, window=2.0,
                gammas=(0.3, 0.6, 0.9), rate_floor_bps=None, kind="dumbbell"):
    platform = PlatformSpec(kind=kind, n_flows=n_flows, seed=seed)
    baseline = Cell(platform=platform, warmup=warmup, window=window,
                    rate_floor_bps=rate_floor_bps)
    return [baseline] + [
        Cell(platform=platform, warmup=warmup, window=window,
             train=make_train(g), rate_floor_bps=rate_floor_bps)
        for g in gammas
    ]


class TestWarmupKey:
    def test_same_prefix_same_key(self):
        cells = sweep_cells()
        keys = {warmup_key(cell) for cell in cells}
        assert len(keys) == 1  # attack shape is not part of the prefix

    def test_window_not_part_of_key(self):
        a = sweep_cells(window=2.0)[0]
        b = sweep_cells(window=9.0)[0]
        assert warmup_key(a) == warmup_key(b)

    @pytest.mark.parametrize("variation", [
        dict(seed=12), dict(warmup=2.0), dict(n_flows=3),
        dict(rate_floor_bps=mbps(1)),
    ])
    def test_prefix_changes_split_groups(self, variation):
        assert warmup_key(sweep_cells()[0]) != warmup_key(
            sweep_cells(**variation)[0])


class TestGroupExecutor:
    def test_group_matches_cell_by_cell(self):
        cells = sweep_cells()
        grouped = execute_cell_group(cells)
        assert list(grouped.results) == [execute_cell(c) for c in cells]
        assert grouped.warmup_sims == 1
        assert grouped.warm_starts == len(cells) - 1
        assert grouped.warmup_seconds_saved == pytest.approx(
            sum(c.warmup for c in cells[1:]))

    def test_group_rejects_mixed_prefixes(self):
        mixed = [sweep_cells(seed=1)[0], sweep_cells(seed=2)[0]]
        with pytest.raises(ValidationError, match="warmup prefix"):
            execute_cell_group(mixed)

    def test_empty_and_singleton_groups(self):
        assert execute_cell_group([]).results == ()
        cell = sweep_cells()[0]
        single = execute_cell_group([cell])
        assert single.results == (execute_cell(cell),)
        assert single.warm_starts == 0
        assert single.warmup_sims == 1


class TestBitIdentity:
    @staticmethod
    def run_both(cells, **kwargs):
        warm = ExperimentRunner(warm_start=True, **kwargs)
        cold = ExperimentRunner(warm_start=False, **kwargs)
        with warm, cold:
            warm_results = warm.measure_many(cells)
            cold_results = cold.measure_many(cells)
        return warm, warm_results, cold_results

    def test_sweep_identical_warm_vs_cold(self):
        warm, warm_results, cold_results = self.run_both(sweep_cells())
        assert warm_results == cold_results
        assert warm.stats.warm_starts == 3
        assert warm.stats.warmup_sims == 1

    def test_conformance_detection_identical(self):
        # The detector observes warm-up traffic, so its state rides the
        # snapshot; flagged counts must match from-scratch execution.
        cells = sweep_cells(rate_floor_bps=mbps(0.05), gammas=(0.6, 1.2))
        _, warm_results, cold_results = self.run_both(cells)
        assert warm_results == cold_results
        assert any(r.flagged_sources for r in warm_results)

    def test_deployment_cells_identical(self):
        platform = PlatformSpec(kind="dumbbell", n_flows=2, seed=4)
        deployment = DeploymentSpec(
            trains=(make_train(0.4), make_train(0.4)),
            offsets=(0.0, 0.5),
        )
        cells = [
            Cell(platform=platform, warmup=1.0, window=2.0),
            Cell(platform=platform, warmup=1.0, window=2.0,
                 deployment=deployment),
            Cell(platform=platform, warmup=1.0, window=2.0,
                 train=make_train(0.8)),
        ]
        _, warm_results, cold_results = self.run_both(cells)
        assert warm_results == cold_results

    def test_testbed_cells_identical(self):
        _, warm_results, cold_results = self.run_both(
            sweep_cells(kind="testbed", n_flows=2, gammas=(0.5, 1.0)))
        assert warm_results == cold_results

    def test_parallel_identical_and_saturates(self):
        cells = sweep_cells(gammas=(0.3, 0.5, 0.7, 0.9))
        warm, warm_results, cold_results = self.run_both(cells, jobs=2)
        assert warm_results == cold_results
        # One warm-up group split into chunks: some sharing survives.
        assert warm.stats.warmup_sims == 2
        assert warm.stats.warm_starts == len(cells) - 2

    def test_mixed_prefix_batch_identical(self):
        cells = sweep_cells(seed=21) + sweep_cells(seed=22, warmup=1.5)
        warm, warm_results, cold_results = self.run_both(cells)
        assert warm_results == cold_results
        assert warm.stats.warmup_sims == 2  # one per prefix group


class TestStatsAndCache:
    def test_cold_runner_reports_no_warm_starts(self):
        runner = ExperimentRunner(warm_start=False)
        runner.measure_many(sweep_cells())
        assert runner.stats.warm_starts == 0
        assert runner.stats.warmup_seconds_saved == 0.0

    def test_cache_keys_unchanged_by_warm_start(self, tmp_path):
        cells = sweep_cells()
        ExperimentRunner(cache_dir=tmp_path, warm_start=True).measure_many(
            cells)
        replay = ExperimentRunner(cache_dir=tmp_path, warm_start=False)
        replay.measure_many(cells)
        assert replay.stats.cache_hits == len(cells)
        assert replay.stats.executed == 0

    def test_snapshot_carries_warm_start_fields(self):
        runner = ExperimentRunner()
        runner.measure_many(sweep_cells(gammas=(0.4, 0.8)))
        snap = runner.stats.snapshot()
        assert snap["warm_starts"] == 2
        assert snap["warmup_sims"] == 1
        assert snap["warmup_seconds_saved"] == pytest.approx(2.0)

    def test_intra_batch_duplicates_count_as_memo_hits(self):
        # Regression: duplicates inside one batch used to vanish from
        # the accounting entirely (neither executed nor hits).
        runner = ExperimentRunner()
        cell = sweep_cells()[1]
        runner.measure_many([cell, cell, cell])
        assert runner.stats.executed == 1
        assert runner.stats.memo_hits == 2
        assert runner.stats.cells == 3


class TestPersistentPool:
    def test_pool_persists_across_batches(self):
        runner = ExperimentRunner(jobs=2)
        runner.measure_many(sweep_cells(seed=31, gammas=(0.4, 0.8)))
        pool = runner._pool
        assert pool is not None
        runner.measure_many(sweep_cells(seed=32, gammas=(0.4, 0.8)))
        assert runner._pool is pool  # reused, not rebuilt
        runner.close()
        assert runner._pool is None

    def test_close_is_idempotent_and_reopens(self):
        runner = ExperimentRunner(jobs=2)
        runner.close()  # nothing created yet: no-op
        runner.measure_many(sweep_cells(seed=33, gammas=(0.4, 0.8)))
        runner.close()
        runner.close()
        # Runner stays usable: the next parallel batch makes a new pool.
        results = runner.measure_many(sweep_cells(seed=34, gammas=(0.4, 0.8)))
        assert len(results) == 3
        runner.close()

    def test_context_manager_closes_pool(self):
        with ExperimentRunner(jobs=2) as runner:
            runner.measure_many(sweep_cells(seed=35, gammas=(0.4, 0.8)))
            assert runner._pool is not None
        assert runner._pool is None

    def test_serial_runner_never_creates_pool(self):
        runner = ExperimentRunner(jobs=1)
        runner.measure_many(sweep_cells(seed=36))
        assert runner._pool is None


class TestEnvironment:
    def test_jobs_must_parse_as_integer(self, monkeypatch):
        set_default_runner(None)
        monkeypatch.setenv("REPRO_JOBS", "abc")
        with pytest.raises(ValidationError) as excinfo:
            get_default_runner()
        assert "REPRO_JOBS" in str(excinfo.value)
        assert "abc" in str(excinfo.value)

    @pytest.mark.parametrize("value", ["0", "-3"])
    def test_jobs_must_be_at_least_one(self, monkeypatch, value):
        set_default_runner(None)
        monkeypatch.setenv("REPRO_JOBS", value)
        with pytest.raises(ValidationError, match="REPRO_JOBS"):
            get_default_runner()

    def test_blank_jobs_falls_back_to_default(self, monkeypatch):
        set_default_runner(None)
        monkeypatch.setenv("REPRO_JOBS", "  ")
        assert get_default_runner().jobs == 1

    def test_no_warm_start_env_opts_out(self, monkeypatch):
        set_default_runner(None)
        monkeypatch.setenv("REPRO_NO_WARM_START", "1")
        assert get_default_runner().warm_start is False
        set_default_runner(None)
        monkeypatch.delenv("REPRO_NO_WARM_START")
        assert get_default_runner().warm_start is True
