"""End-to-end determinism: repeated runs are bit-identical.

The hot-path engine work (C-compared heap entries, inlined admits,
memoized serialization times) is only valid if it changes *nothing*
observable: every float metric and every packet-level trace must come
out bit-identical run over run.  These tests pin that property at the
experiment level (fig01 / fig06 metrics) and at the wire level (a full
per-packet trace of the bottleneck).
"""

import numpy as np

from repro.core.attack import PulseTrain
from repro.runner import ExperimentRunner, set_default_runner
from repro.sim.topology import DumbbellConfig, build_dumbbell
from repro.util.units import mbps, ms


class TestFig01Determinism:
    def test_metrics_bit_identical(self):
        from repro.experiments.fig01_cwnd import run_fig01

        first = run_fig01(n_pulses=6)
        second = run_fig01(n_pulses=6)
        # Exact equality, not approx: the runs must be bit-identical.
        # (repr-compare: the steady mean is NaN at smoke scale, and the
        # identity must hold for that bit pattern too.)
        assert repr(first.measured_steady_mean) == repr(second.measured_steady_mean)
        assert np.array_equal(np.asarray(first.epochs), np.asarray(second.epochs))
        assert first.render() == second.render()


class TestFig06Determinism:
    def test_metrics_bit_identical(self):
        from repro.experiments.fig06_09_gain import run_gain_figure

        kwargs = dict(flow_counts=[2], extents=[ms(100)], gammas=(0.4, 0.7))
        previous = set_default_runner(None)
        try:
            # Fresh runner per run so the second pass re-executes every
            # cell instead of being served from the first run's memo.
            set_default_runner(ExperimentRunner(jobs=1))
            first = run_gain_figure(6, **kwargs)
            set_default_runner(ExperimentRunner(jobs=1))
            second = run_gain_figure(6, **kwargs)
        finally:
            set_default_runner(previous)

        for a, b in zip(first.all_curves(), second.all_curves()):
            assert [p.measured_degradation for p in a.points] == [
                p.measured_degradation for p in b.points
            ]
            assert [p.measured_gain for p in a.points] == [
                p.measured_gain for p in b.points
            ]
        assert first.render() == second.render()


class TestWarmStartDeterminism:
    def test_gain_figure_identical_with_and_without_warm_start(self):
        # The figure drivers funnel every measurement through the
        # default runner; warm-start scheduling there must be invisible
        # in the rendered output and in every per-point metric.
        from repro.experiments.fig06_09_gain import run_gain_figure

        kwargs = dict(flow_counts=[2], extents=[ms(100)], gammas=(0.4, 0.7))
        previous = set_default_runner(None)
        try:
            warm_runner = ExperimentRunner(jobs=1, warm_start=True)
            set_default_runner(warm_runner)
            warm = run_gain_figure(6, **kwargs)
            set_default_runner(ExperimentRunner(jobs=1, warm_start=False))
            cold = run_gain_figure(6, **kwargs)
        finally:
            set_default_runner(previous)

        assert warm_runner.stats.warm_starts > 0  # the fast path ran

        for a, b in zip(warm.all_curves(), cold.all_curves()):
            assert [p.measured_degradation for p in a.points] == [
                p.measured_degradation for p in b.points
            ]
            assert [p.measured_gain for p in a.points] == [
                p.measured_gain for p in b.points
            ]
        assert warm.render() == cold.render()


class TestFluidIsolation:
    def test_packet_path_identical_with_fluid_imported(self):
        # The default (packet, planner-off) path must stay bit-identical
        # when the fluid module is merely imported -- the fluid backend
        # touches no Simulator or Packet state, so loading it (or even
        # running it) cannot perturb a packet measurement.
        from repro.experiments.fig06_09_gain import run_gain_figure

        kwargs = dict(flow_counts=[2], extents=[ms(100)], gammas=(0.4, 0.7))
        previous = set_default_runner(None)
        try:
            set_default_runner(ExperimentRunner(jobs=1))
            clean = run_gain_figure(6, **kwargs)

            import repro.sim.fluid  # noqa: F401 -- the import is the test

            set_default_runner(ExperimentRunner(jobs=1))
            loaded = run_gain_figure(6, **kwargs)
        finally:
            set_default_runner(previous)

        for a, b in zip(clean.all_curves(), loaded.all_curves()):
            assert [p.measured_degradation for p in a.points] == [
                p.measured_degradation for p in b.points
            ]
        assert clean.render() == loaded.render()

    def test_packet_cells_unaffected_by_interleaved_fluid_cells(self):
        # Running fluid cells between packet cells in the same runner
        # must not change the packet bytes (no shared RNG, no shared
        # engine state, distinct memo keys).
        from repro.runner import Cell, PlatformSpec

        spec = PlatformSpec(kind="dumbbell", n_flows=2, seed=7)
        packet = Cell(platform=spec, warmup=1.0, window=2.0)
        fluid = Cell(platform=spec, warmup=1.0, window=2.0,
                     backend="fluid")

        alone = ExperimentRunner(jobs=1).measure(packet)
        runner = ExperimentRunner(jobs=1)
        runner.measure(fluid)
        interleaved = runner.measure(packet)
        assert interleaved.goodput_bytes == alone.goodput_bytes
        assert runner.stats.fluid_cells == 1


class TestPacketTraceDeterminism:
    @staticmethod
    def _traced_run():
        """A short attacked dumbbell with a full bottleneck packet trace."""
        config = DumbbellConfig(n_flows=3, seed=23)
        net = build_dumbbell(config)
        trace = []

        def tap(packet, now, accepted):
            trace.append((
                now, packet.uid, packet.flow_id, packet.kind.value,
                packet.size_bytes, packet.seq, accepted,
            ))

        net.bottleneck.monitors.append(tap)
        train = PulseTrain.from_gamma(
            gamma=0.5, rate_bps=mbps(30), extent=ms(100),
            bottleneck_bps=config.bottleneck_rate_bps, n_pulses=10,
        )
        net.add_attack(train, start_time=1.0)
        net.start_flows()
        for source in net.attack_sources:
            source.start()
        net.run(until=4.0)
        return trace

    def test_trace_bit_identical(self):
        first = self._traced_run()
        second = self._traced_run()
        assert len(first) > 500  # the trace is non-trivial
        # Tuple equality is exact on every field, floats included.
        assert first == second
