"""Cache keys, the version fingerprint, and the on-disk store."""

import dataclasses

import pytest

from repro.core.attack import PulseTrain
from repro.runner import (
    Cell,
    CellResult,
    PlatformSpec,
    ResultCache,
    cell_key,
    code_version,
    default_cache_dir,
)
from repro.sim.tcp import TCPConfig, TCPVariant
from repro.util.units import mbps, ms


def cell(**overrides):
    fields = dict(
        platform=PlatformSpec(kind="dumbbell", n_flows=5, seed=1),
        warmup=2.0,
        window=10.0,
        train=PulseTrain.from_gamma(
            gamma=0.5, rate_bps=mbps(30), extent=ms(100),
            bottleneck_bps=mbps(15), n_pulses=3,
        ),
    )
    fields.update(overrides)
    return Cell(**fields)


class TestCellKey:
    def test_stable_for_equal_cells(self):
        assert cell_key(cell()) == cell_key(cell())

    def test_distinguishes_seed(self):
        other = cell(platform=PlatformSpec(kind="dumbbell", n_flows=5, seed=2))
        assert cell_key(cell()) != cell_key(other)

    def test_distinguishes_platform_config(self):
        droptail = cell(platform=PlatformSpec(
            kind="dumbbell", n_flows=5, seed=1, queue="droptail",
        ))
        sack = cell(platform=PlatformSpec(
            kind="dumbbell", n_flows=5, seed=1,
            tcp=TCPConfig(variant=TCPVariant.SACK),
        ))
        keys = {cell_key(cell()), cell_key(droptail), cell_key(sack)}
        assert len(keys) == 3

    def test_distinguishes_train(self):
        shorter = cell(train=PulseTrain.from_gamma(
            gamma=0.5, rate_bps=mbps(30), extent=ms(50),
            bottleneck_bps=mbps(15), n_pulses=3,
        ))
        assert cell_key(cell()) != cell_key(shorter)

    def test_distinguishes_window_and_warmup(self):
        keys = {
            cell_key(cell()),
            cell_key(cell(window=20.0)),
            cell_key(cell(warmup=4.0)),
        }
        assert len(keys) == 3

    def test_distinguishes_code_version(self):
        assert (cell_key(cell(), version="aaaa")
                != cell_key(cell(), version="bbbb"))

    def test_default_version_is_the_fingerprint(self):
        assert cell_key(cell()) == cell_key(cell(), version=code_version())

    def test_distinguishes_backend(self):
        # Fluid and packet measurements of the same scenario must never
        # collide in the cache.
        packet = cell()
        fluid = dataclasses.replace(packet, backend="fluid")
        assert cell_key(packet) != cell_key(fluid)
        # Default packet cells keep their historical identity: no
        # backend key appears in their description.
        assert "backend" not in packet.describe()
        assert fluid.describe()["backend"] == "fluid"

    def test_distinguishes_fluid_integration_step(self):
        # A coarsely integrated pre-pass result must never answer for a
        # full-fidelity fluid measurement (or vice versa).
        fluid = dataclasses.replace(cell(), backend="fluid")
        coarse = dataclasses.replace(fluid, fluid_max_step=0.05)
        assert cell_key(fluid) != cell_key(coarse)
        assert "fluid_max_step" not in fluid.describe()
        assert coarse.describe()["fluid_max_step"] == 0.05

    def test_backend_round_trips_through_the_store(self, tmp_path):
        cache = ResultCache(tmp_path)
        packet = cell()
        fluid = dataclasses.replace(packet, backend="fluid")
        cache.put(cell_key(packet), CellResult(goodput_bytes=1.0),
                  meta={"cell": packet.describe()})
        cache.put(cell_key(fluid), CellResult(goodput_bytes=2.0),
                  meta={"cell": fluid.describe()})
        assert cache.get(cell_key(packet)).goodput_bytes == 1.0
        assert cache.get(cell_key(fluid)).goodput_bytes == 2.0


class TestDefaultCacheDir:
    def test_env_override_wins(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "override"))
        assert default_cache_dir() == tmp_path / "override"

    def test_xdg_fallback(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path))
        assert default_cache_dir() == tmp_path / "repro-pdos"


class TestResultCache:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cell_key(cell())
        cache.put(key, CellResult(goodput_bytes=12345.5, flagged_sources=2))
        hit = cache.get(key)
        assert hit == CellResult(goodput_bytes=12345.5, flagged_sources=2)

    def test_floats_survive_bit_exactly(self, tmp_path):
        cache = ResultCache(tmp_path)
        value = 0.1 + 0.2  # not representable exactly; repr round-trips
        cache.put("ab" + "0" * 62, CellResult(goodput_bytes=value))
        assert cache.get("ab" + "0" * 62).goodput_bytes == value

    def test_miss_returns_none(self, tmp_path):
        assert ResultCache(tmp_path).get("ff" + "0" * 62) is None

    def test_corrupt_entry_tolerated(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "cd" + "0" * 62
        cache.put(key, CellResult(goodput_bytes=1.0))
        (tmp_path / key[:2] / f"{key}.json").write_text("{not json")
        assert cache.get(key) is None

    def test_len_counts_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert len(cache) == 0
        cache.put("ab" + "0" * 62, CellResult(goodput_bytes=1.0))
        cache.put("cd" + "0" * 62, CellResult(goodput_bytes=2.0))
        assert len(cache) == 2

    def test_meta_rides_along_without_affecting_get(self, tmp_path):
        import json

        cache = ResultCache(tmp_path)
        key = "ef" + "0" * 62
        cache.put(key, CellResult(goodput_bytes=3.0),
                  meta={"cell": {"window": 10.0}, "elapsed": 1.5})
        payload = json.loads((tmp_path / key[:2] / f"{key}.json").read_text())
        assert payload["meta"]["elapsed"] == 1.5
        assert cache.get(key).goodput_bytes == 3.0


class TestCodeVersion:
    def test_stable_within_a_process(self):
        assert code_version() == code_version()

    def test_is_a_short_hex_digest(self):
        version = code_version()
        assert len(version) == 16
        int(version, 16)  # raises if not hex

    def test_backends_have_distinct_fingerprints(self):
        # The packet fingerprint excludes the fluid module (the packet
        # executor never imports it), so recalibrating the fluid model
        # cannot invalidate packet-level cache entries.
        assert code_version("packet") != code_version("fluid")
