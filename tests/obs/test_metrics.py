"""The metrics registry and its enable/disable switch."""

import pytest

from repro.obs import metrics


@pytest.fixture(autouse=True)
def metrics_disabled():
    """Every test starts and ends with no active registry."""
    metrics.disable()
    yield
    metrics.disable()


class TestInstruments:
    def test_counter_accumulates(self):
        counter = metrics.Counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_gauge_set_and_track_max(self):
        gauge = metrics.Gauge("g")
        gauge.set(4.0)
        gauge.track_max(2.0)
        assert gauge.value == 4.0
        gauge.track_max(9.0)
        assert gauge.value == 9.0

    def test_histogram_moments(self):
        histogram = metrics.Histogram("h")
        for value in (1.0, 3.0, 2.0):
            histogram.observe(value)
        snap = histogram.snapshot()
        assert snap == {"count": 3, "sum": 6.0, "min": 1.0, "max": 3.0,
                        "mean": 2.0}

    def test_empty_histogram_snapshot(self):
        assert metrics.Histogram("h").snapshot() == {
            "count": 0, "sum": 0.0, "min": None, "max": None, "mean": 0.0,
        }

    def test_timer_observes_duration(self):
        timer = metrics.Timer("t")
        with timer.time():
            pass
        snap = timer.snapshot()
        assert snap["count"] == 1
        assert snap["min"] >= 0.0


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = metrics.MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert len(registry) == 1

    def test_kind_mismatch_raises(self):
        registry = metrics.MetricsRegistry()
        registry.counter("a")
        with pytest.raises(TypeError):
            registry.gauge("a")

    def test_snapshot_is_sorted_and_json_ready(self):
        import json

        registry = metrics.MetricsRegistry()
        registry.gauge("b.depth").set(7.0)
        registry.counter("a.events").inc(3)
        registry.histogram("c.sizes").observe(10.0)
        snap = registry.snapshot()
        assert list(snap) == ["a.events", "b.depth", "c.sizes"]
        assert snap["a.events"] == 3.0
        assert snap["c.sizes"]["count"] == 1
        json.dumps(snap)  # must serialize


class TestSwitch:
    def test_disabled_by_default(self):
        assert metrics.active() is None
        assert not metrics.enabled()
        assert metrics.get_registry() is metrics.NULL_REGISTRY

    def test_enable_installs_fresh_registry(self):
        registry = metrics.enable()
        assert metrics.active() is registry
        assert metrics.get_registry() is registry
        assert metrics.disable() is registry
        assert metrics.active() is None

    def test_null_registry_absorbs_everything(self):
        null = metrics.NULL_REGISTRY
        null.counter("x").inc(5)
        null.gauge("y").set(1.0)
        null.histogram("z").observe(2.0)
        with null.timer("t").time():
            pass
        assert null.snapshot() == {}
        assert len(null) == 0
        assert "x" not in null

    def test_collecting_restores_previous_state(self):
        outer = metrics.enable()
        with metrics.collecting() as inner:
            assert metrics.active() is inner
            assert inner is not outer
        assert metrics.active() is outer
