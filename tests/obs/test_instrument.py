"""End-to-end instrumentation: engine, network, and runner telemetry."""

import pytest

from repro.core.attack import PulseTrain
from repro.obs import metrics
from repro.sim.engine import Simulator
from repro.sim.topology import DumbbellConfig, build_dumbbell
from repro.util.units import mbps, ms


@pytest.fixture(autouse=True)
def metrics_disabled():
    metrics.disable()
    yield
    metrics.disable()


def run_attacked_dumbbell(horizon=4.0):
    net = build_dumbbell(DumbbellConfig(n_flows=3))
    train = PulseTrain.from_gamma(
        gamma=0.5, rate_bps=mbps(30), extent=ms(100),
        bottleneck_bps=mbps(15), n_pulses=20,
    )
    net.start_flows()
    source = net.add_attack(train, start_time=1.0)
    source.start()
    net.run(until=horizon)
    return net


class TestEngineTelemetry:
    def test_engine_counters_match_simulator(self):
        with metrics.collecting() as registry:
            sim = Simulator()
            for delay in (1.0, 2.0, 3.0):
                sim.schedule(delay, lambda: None)
            cancelled = sim.schedule(1.5, lambda: None)
            cancelled.cancel()
            sim.run()
        snap = registry.snapshot()
        assert snap["engine.events_dispatched"] == sim.events_executed == 3
        assert snap["engine.events_cancelled_skipped"] == 1.0
        assert sim.events_cancelled_skipped == 1
        assert snap["engine.runs"] == 1.0
        assert snap["engine.sim_seconds"] == 3.0
        assert snap["engine.wall_seconds"] > 0.0
        # Live depth: the cancelled timer is excluded from the gauge.
        assert snap["engine.peak_calendar_depth"] == 3.0

    def test_cancelled_skips_counted_when_disabled_too(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None).cancel()
        sim.run()
        assert sim.events_cancelled_skipped == 1

    def test_sim_seconds_includes_horizon_advance(self):
        with metrics.collecting() as registry:
            sim = Simulator()
            sim.schedule(1.0, lambda: None)
            sim.run(until=10.0)  # calendar drains early; clock advances
        assert registry.snapshot()["engine.sim_seconds"] == 10.0

    def test_results_bit_identical_with_metrics_on(self):
        baseline = run_attacked_dumbbell()
        with metrics.collecting():
            instrumented = run_attacked_dumbbell()
        assert (instrumented.aggregate_goodput_bytes()
                == baseline.aggregate_goodput_bytes())
        assert (instrumented.sim.events_executed
                == baseline.sim.events_executed)
        assert (instrumented.bottleneck.packets_dropped
                == baseline.bottleneck.packets_dropped)


class TestNetworkTelemetry:
    def test_dumbbell_publishes_links_and_tcp(self):
        with metrics.collecting() as registry:
            net = run_attacked_dumbbell()
        snap = registry.snapshot()
        assert (snap["link.bottleneck.accepted_packets"]
                == net.bottleneck.packets_sent)
        assert (snap["link.bottleneck.dropped_packets"]
                == net.bottleneck.packets_dropped)
        assert snap["link.bottleneck.red_avg_queue"] >= 0.0
        assert snap["tcp.flows"] == 3.0
        assert snap["tcp.goodput_bytes"] == net.aggregate_goodput_bytes()
        assert snap["tcp.fast_retransmits"] == float(
            sum(s.fast_retransmits for s in net.senders))
        assert snap["tcp.cwnd_min"] <= snap["tcp.cwnd_mean"] <= snap["tcp.cwnd_max"]

    def test_testbed_publishes_pipe(self):
        from repro.testbed.dummynet import TestbedConfig, build_testbed

        with metrics.collecting() as registry:
            net = build_testbed(TestbedConfig(n_flows=2))
            net.start_flows()
            net.run(until=2.0)
        snap = registry.snapshot()
        assert snap["link.pipe.accepted_packets"] == net.pipe_link.packets_sent
        assert snap["tcp.flows"] == 2.0

    def test_nothing_published_when_disabled(self):
        registry = metrics.MetricsRegistry()
        run_attacked_dumbbell()
        assert len(registry) == 0
        assert metrics.active() is None


class TestSnapshotMethods:
    def test_link_snapshot_keys_are_stable(self):
        net = run_attacked_dumbbell()
        snap = net.bottleneck.metrics_snapshot()
        for key in ("accepted_bytes", "accepted_packets", "dropped_bytes",
                    "dropped_packets", "peak_queue_bytes", "queue_bytes",
                    "queue_packets", "disc_accepts", "disc_drops",
                    "disc_early_drops", "red_avg_queue"):
            assert key in snap, key

    def test_choke_snapshot_has_match_counters(self):
        from repro.sim.topology import make_choke_queue

        queue = make_choke_queue(100_000.0)
        snap = queue.metrics_snapshot()
        assert snap["choke_match_drops"] == 0.0
        assert snap["choke_evictions"] == 0.0
        assert "red_avg_queue" in snap

    def test_sender_snapshot_matches_counters(self):
        net = run_attacked_dumbbell()
        sender = net.senders[0]
        snap = sender.metrics_snapshot()
        assert snap["fast_retransmits"] == float(sender.fast_retransmits)
        assert snap["timeouts"] == float(sender.timeouts)
        assert snap["goodput_bytes"] == sender.goodput_bytes()
        assert snap["cwnd"] == sender.cwnd


class TestRunnerTelemetry:
    def test_measure_many_publishes_runner_gauges(self):
        from repro.runner import Cell, ExperimentRunner, PlatformSpec

        runner = ExperimentRunner(jobs=1, cache_dir=None)
        cell = Cell(
            platform=PlatformSpec(kind="dumbbell", n_flows=1, seed=3),
            warmup=0.5, window=0.5,
        )
        with metrics.collecting() as registry:
            runner.measure_many([cell])
            runner.measure_many([cell])  # second pass hits the memo
        snap = registry.snapshot()
        assert snap["runner.cells"] == 2.0
        assert snap["runner.executed"] == 1.0
        assert snap["runner.memo_hits"] == 1.0
        assert snap["runner.hit_ratio"] == 0.5
        assert snap["runner.seed_fanout"] == 1.0
