"""The ``repro obs report`` renderer."""

import json

from repro.obs.report import render_report, summarize_records


def experiment_record(name="fig06", **overrides):
    record = {
        "record": "experiment",
        "name": name,
        "elapsed_seconds": 12.5,
        "runner": {"cells": 32, "hit_ratio": 0.25},
        "metrics": {
            "engine.events_dispatched": 100_000.0,
            "engine.wall_seconds": 0.5,
            "tcp.goodput_bytes": 20_000_000.0,
            "link.bottleneck.accepted_packets": 900.0,
            "link.bottleneck.dropped_packets": 100.0,
        },
    }
    record.update(overrides)
    return record


class TestSummarize:
    def test_renders_full_row(self):
        text = summarize_records([experiment_record()])
        row = text.splitlines()[2]
        assert "fig06" in row
        assert "12.5" in row      # wall seconds
        assert "32" in row        # cells
        assert "25" in row        # hit %
        assert "200" in row       # 100k events / 0.5s = 200 kev/s
        assert "20.00" in row     # goodput MB
        assert "10.0" in row      # drop %

    def test_sparse_record_renders_dashes(self):
        text = summarize_records([
            {"record": "experiment", "name": "fig04"},
        ])
        row = text.splitlines()[2]
        assert "fig04" in row
        assert "-" in row

    def test_run_records_excluded_from_rows(self):
        text = summarize_records([
            {"record": "run", "name": "all"},
        ])
        assert "(no experiment records)" in text

    def test_pipe_link_used_for_testbed_records(self):
        record = experiment_record(name="fig12")
        record["metrics"] = {
            "link.pipe.accepted_packets": 300.0,
            "link.pipe.dropped_packets": 100.0,
        }
        row = summarize_records([record]).splitlines()[2]
        assert "25.0" in row  # 100 / 400 offered

    def test_totals_footer(self):
        text = summarize_records(
            [experiment_record("a"), experiment_record("b")]
        )
        assert "2 records" in text
        assert "64 cells" in text


class TestRenderReport:
    def test_merges_multiple_logs(self, tmp_path):
        first = tmp_path / "one.jsonl"
        second = tmp_path / "two.jsonl"
        first.write_text(json.dumps(experiment_record("fig06")) + "\n")
        second.write_text(json.dumps(experiment_record("fig07")) + "\n")
        text = render_report([first, second])
        assert "fig06" in text
        assert "fig07" in text
        assert str(first) in text
