"""The ``repro obs report`` renderer."""

import json

import pytest

from repro.obs.report import (
    SORT_CHOICES,
    render_report,
    resolve_sources,
    summarize_records,
)


def experiment_record(name="fig06", **overrides):
    record = {
        "record": "experiment",
        "name": name,
        "elapsed_seconds": 12.5,
        "runner": {"cells": 32, "hit_ratio": 0.25},
        "metrics": {
            "engine.events_dispatched": 100_000.0,
            "engine.wall_seconds": 0.5,
            "tcp.goodput_bytes": 20_000_000.0,
            "link.bottleneck.accepted_packets": 900.0,
            "link.bottleneck.dropped_packets": 100.0,
        },
    }
    record.update(overrides)
    return record


class TestSummarize:
    def test_renders_full_row(self):
        text = summarize_records([experiment_record()])
        row = text.splitlines()[2]
        assert "fig06" in row
        assert "12.5" in row      # wall seconds
        assert "32" in row        # cells
        assert "25" in row        # hit %
        assert "200" in row       # 100k events / 0.5s = 200 kev/s
        assert "20.00" in row     # goodput MB
        assert "10.0" in row      # drop %

    def test_sparse_record_renders_dashes(self):
        text = summarize_records([
            {"record": "experiment", "name": "fig04"},
        ])
        row = text.splitlines()[2]
        assert "fig04" in row
        assert "-" in row

    def test_run_records_excluded_from_rows(self):
        text = summarize_records([
            {"record": "run", "name": "all"},
        ])
        assert "(no experiment records)" in text

    def test_pipe_link_used_for_testbed_records(self):
        record = experiment_record(name="fig12")
        record["metrics"] = {
            "link.pipe.accepted_packets": 300.0,
            "link.pipe.dropped_packets": 100.0,
        }
        row = summarize_records([record]).splitlines()[2]
        assert "25.0" in row  # 100 / 400 offered

    def test_totals_footer(self):
        text = summarize_records(
            [experiment_record("a"), experiment_record("b")]
        )
        assert "2 records" in text
        assert "64 cells" in text


class TestSortAndLast:
    def records(self):
        return [
            experiment_record("fig07", elapsed_seconds=5.0, timestamp=1.0),
            experiment_record("fig06", elapsed_seconds=20.0, timestamp=2.0),
            experiment_record("fig09", elapsed_seconds=1.0, timestamp=3.0),
        ]

    @staticmethod
    def row_names(text):
        return [line.split()[0] for line in text.splitlines()[2:-1]
                if line and not line.startswith("(")]

    def test_time_sort_keeps_append_order(self):
        assert self.row_names(summarize_records(self.records())) == [
            "fig07", "fig06", "fig09"]

    def test_name_sort(self):
        text = summarize_records(self.records(), sort="name")
        assert self.row_names(text) == ["fig06", "fig07", "fig09"]

    def test_elapsed_sort_puts_most_expensive_first(self):
        text = summarize_records(self.records(), sort="elapsed")
        assert self.row_names(text) == ["fig06", "fig07", "fig09"]

    def test_elapsed_sort_puts_sparse_rows_last(self):
        records = self.records() + [{"record": "experiment", "name": "zz"}]
        text = summarize_records(records, sort="elapsed")
        assert self.row_names(text)[-1] == "zz"

    def test_last_keeps_most_recent_records(self):
        text = summarize_records(self.records(), last=2)
        assert self.row_names(text) == ["fig06", "fig09"]

    def test_last_applies_before_sorting(self):
        text = summarize_records(self.records(), sort="name", last=2)
        assert self.row_names(text) == ["fig06", "fig09"]

    def test_last_zero_keeps_nothing(self):
        assert "(no experiment records)" in summarize_records(
            self.records(), last=0)

    def test_invalid_sort_and_last_rejected(self):
        with pytest.raises(ValueError, match="sort"):
            summarize_records([], sort="goodput")
        with pytest.raises(ValueError, match="last"):
            summarize_records([], last=-1)
        assert set(SORT_CHOICES) == {"time", "name", "elapsed"}


def store_with(tmp_path, names, store_name="runlog.sqlite"):
    """A small store holding one experiment record per name."""
    from repro.obs.store import ExperimentStore

    store = ExperimentStore(tmp_path / store_name)
    store.begin_run("all", git_sha="abc1234", timestamp=10.0)
    for offset, name in enumerate(names):
        store.begin_experiment(name, timestamp=20.0 + offset)
        store.finish_experiment(
            elapsed_seconds=1.0,
            runner={"cells": 4, "hit_ratio": 0.5},
            metrics={"engine.events_dispatched": 1000.0,
                     "engine.wall_seconds": 0.5})
    store.close()
    return store.path


class TestResolveSources:
    def test_store_recognized_by_content(self, tmp_path):
        path = store_with(tmp_path, ["fig06"], store_name="data.bin")
        assert resolve_sources([path]) == [("store", path)]

    def test_plain_log_stays_a_log(self, tmp_path):
        log = tmp_path / "one.jsonl"
        log.write_text(json.dumps(experiment_record("fig06")) + "\n")
        assert resolve_sources([log]) == [("log", log)]

    def test_log_upgraded_to_its_store(self, tmp_path):
        store_path = store_with(tmp_path, ["fig06"])
        log = tmp_path / "runlog.jsonl"
        record = experiment_record("fig06", store=str(store_path))
        log.write_text(json.dumps(record) + "\n")
        assert resolve_sources([log]) == [("store", store_path)]

    def test_mixed_log_not_upgraded(self, tmp_path):
        # One record predates --store: upgrading would drop it, so the
        # log keeps its JSONL view.
        store_path = store_with(tmp_path, ["fig06"])
        log = tmp_path / "runlog.jsonl"
        log.write_text(
            json.dumps(experiment_record("fig04")) + "\n"
            + json.dumps(experiment_record("fig06",
                                           store=str(store_path))) + "\n")
        assert resolve_sources([log]) == [("log", log)]

    def test_dangling_store_pointer_keeps_log(self, tmp_path):
        log = tmp_path / "runlog.jsonl"
        record = experiment_record("fig06",
                                   store=str(tmp_path / "gone.sqlite"))
        log.write_text(json.dumps(record) + "\n")
        assert resolve_sources([log]) == [("log", log)]

    def test_log_and_its_store_collapse_to_one_source(self, tmp_path):
        store_path = store_with(tmp_path, ["fig06"])
        log = tmp_path / "runlog.jsonl"
        record = experiment_record("fig06", store=str(store_path))
        log.write_text(json.dumps(record) + "\n")
        assert resolve_sources([log, store_path]) == [
            ("store", store_path)]


class TestRenderReport:
    def test_merges_multiple_logs(self, tmp_path):
        first = tmp_path / "one.jsonl"
        second = tmp_path / "two.jsonl"
        first.write_text(json.dumps(experiment_record("fig06")) + "\n")
        second.write_text(json.dumps(experiment_record("fig07")) + "\n")
        text = render_report([first, second])
        assert "fig06" in text
        assert "fig07" in text
        assert str(first) in text

    def test_renders_store_source(self, tmp_path):
        path = store_with(tmp_path, ["fig06", "fig07"])
        text = render_report([path])
        assert f"{path} (store)" in text
        assert "fig06" in text
        assert "2 records" in text

    def test_sort_and_last_forwarded(self, tmp_path):
        log = tmp_path / "log.jsonl"
        log.write_text(
            json.dumps(experiment_record("zz", timestamp=1.0)) + "\n"
            + json.dumps(experiment_record("aa", timestamp=2.0)) + "\n")
        text = render_report([log], sort="name", last=1)
        assert "1 records" in text
        assert "aa" in text
        assert "\nzz" not in text

    def test_store_and_log_render_identical_rows(self, tmp_path):
        # The store<->runlog equivalence, end to end through the
        # renderer: the same run reported from either source gives the
        # same table body.
        from repro.obs.store import ExperimentStore
        from repro.obs.runlog import RunLogWriter

        store_path = store_with(tmp_path, ["fig06"])
        with ExperimentStore(store_path) as store:
            records = store.experiment_records()
        log = tmp_path / "copy.jsonl"
        writer = RunLogWriter(log)
        for record in records:
            record = dict(record)
            record.pop("store")  # break the upgrade link on purpose
            writer.write(record)
        from_store = render_report([store_path]).splitlines()[1:]
        from_log = render_report([log]).splitlines()[1:]
        assert from_store == from_log
