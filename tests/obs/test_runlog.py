"""The JSON-lines run-log writer and reader."""

import json
import threading

from repro.obs.runlog import (
    RunLogWriter,
    base_record,
    git_sha,
    read_run_log,
)


class TestWriter:
    def test_appends_one_json_line_per_record(self, tmp_path):
        path = tmp_path / "log.jsonl"
        writer = RunLogWriter(path)
        writer.write({"record": "experiment", "name": "fig06"})
        writer.write({"record": "run", "name": "all"})
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["name"] == "fig06"
        assert writer.records_written == 2

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "log.jsonl"
        RunLogWriter(path).write({"record": "run", "name": "x"})
        assert path.is_file()

    def test_appends_across_writers(self, tmp_path):
        path = tmp_path / "log.jsonl"
        RunLogWriter(path).write({"record": "run", "name": "a"})
        RunLogWriter(path).write({"record": "run", "name": "b"})
        assert [r["name"] for r in read_run_log(path)] == ["a", "b"]

    def test_non_json_values_degrade_to_strings(self, tmp_path):
        path = tmp_path / "log.jsonl"
        RunLogWriter(path).write({"record": "run", "name": "x",
                                  "path": path})
        assert read_run_log(path)[0]["path"] == str(path)

    def test_concurrent_appends_from_two_writers(self, tmp_path):
        # Two invocations sharing one log: append-mode single-line
        # writes keep every record intact and parseable.
        path = tmp_path / "log.jsonl"
        per_writer = 50

        def append(tag):
            writer = RunLogWriter(path)
            for i in range(per_writer):
                writer.write({"record": "experiment",
                              "name": f"{tag}-{i}"})

        threads = [threading.Thread(target=append, args=(tag,))
                   for tag in ("a", "b")]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        records = read_run_log(path)
        assert len(records) == 2 * per_writer
        names = {r["name"] for r in records}
        assert names == {f"{tag}-{i}" for tag in ("a", "b")
                         for i in range(per_writer)}


class TestReader:
    def test_skips_corrupt_and_blank_lines(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text(
            '{"record": "experiment", "name": "ok"}\n'
            "\n"
            "{truncated...\n"
            "[1, 2, 3]\n"
            '{"record": "run", "name": "also ok"}\n'
        )
        records = read_run_log(path)
        assert [r["name"] for r in records] == ["ok", "also ok"]

    def test_torn_trailing_line_tolerated(self, tmp_path):
        # A run killed mid-write leaves a final line without newline;
        # the reader keeps every completed record.
        path = tmp_path / "log.jsonl"
        RunLogWriter(path).write({"record": "experiment", "name": "done"})
        with path.open("a") as handle:
            handle.write('{"record": "experiment", "name": "to')
        assert [r["name"] for r in read_run_log(path)] == ["done"]


class TestProvenance:
    def test_base_record_fields(self):
        record = base_record("experiment", "fig06")
        assert record["record"] == "experiment"
        assert record["name"] == "fig06"
        assert record["timestamp"] > 0
        assert "git_sha" in record
        assert isinstance(record["full"], bool)

    def test_git_sha_in_this_checkout(self):
        # The repo is a git checkout, so a short SHA should come back;
        # the function contract allows None only outside a checkout.
        sha = git_sha()
        assert sha is None or (isinstance(sha, str) and len(sha) >= 7)

    def test_git_sha_cached_per_process(self, monkeypatch):
        # One subprocess call per process: the cached value answers
        # repeat calls even if git stops working mid-run.
        import subprocess

        git_sha.cache_clear()
        try:
            first = git_sha()

            def boom(*args, **kwargs):
                raise OSError("git gone")

            monkeypatch.setattr(subprocess, "run", boom)
            assert git_sha() == first      # served from the cache
            git_sha.cache_clear()
            assert git_sha() is None       # a cold call really shells out
        finally:
            git_sha.cache_clear()
