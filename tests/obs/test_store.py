"""The sqlite experiment store: schema, round trips, canned queries."""

import json

import numpy as np
import pytest

from repro.core.attack import PulseTrain
from repro.obs.recorder import FlightRecorder
from repro.obs.store import (
    CANNED_QUERIES,
    ExperimentStore,
    is_store,
    open_readonly,
)
from repro.util.units import mbps, ms


@pytest.fixture(scope="module")
def executed_cell():
    """One real executed cell with its flight-recorder capture."""
    from repro.runner import Cell, PlatformSpec, execute_cell

    cell = Cell(platform=PlatformSpec(kind="dumbbell", n_flows=2, seed=7),
                warmup=1.0, window=2.0)
    recorder = FlightRecorder()
    result = execute_cell(cell, recorder=recorder)
    return cell, result, recorder.harvest()


def make_store(tmp_path, name="store.sqlite"):
    store = ExperimentStore(tmp_path / name)
    store.begin_run("all", argv=["fig06"], git_sha="abc1234",
                    timestamp=100.0)
    store.begin_experiment("fig06", timestamp=101.0)
    return store


def insert_cell(store, *, key, source="executed", gamma=None, extent=None,
                rate_bps=None, goodput_rate=1000.0, n_flows=5, seed=1,
                elapsed=None, backend="packet", kind="dumbbell",
                worker=None):
    """A synthetic cells row (canned-query tests control every column)."""
    cursor = store._db.execute(
        "INSERT INTO cells (experiment_id, key, source, elapsed, spec,"
        " backend, kind, n_flows, seed, gamma, extent, rate_bps,"
        " goodput_bytes, goodput_rate, worker)"
        " VALUES (?, ?, ?, ?, '{}', ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
        (store._experiment_id, key, source, elapsed, backend, kind,
         n_flows, seed, gamma, extent, rate_bps,
         goodput_rate * 2.0, goodput_rate, worker),
    )
    store._db.commit()
    return int(cursor.lastrowid)


class TestSchema:
    def test_creates_all_tables(self, tmp_path):
        with ExperimentStore(tmp_path / "s.sqlite") as store:
            names, rows = store.query(
                "SELECT name FROM sqlite_master WHERE type = 'table'"
                " ORDER BY name")
        assert [r[0] for r in rows] == [
            "cells", "experiments", "metrics", "runs", "series"]

    def test_reopen_is_idempotent(self, tmp_path):
        path = tmp_path / "s.sqlite"
        ExperimentStore(path).close()
        with ExperimentStore(path) as store:
            store.begin_run("x")
            assert store.query("SELECT count(*) FROM runs")[1] == [(1,)]

    def test_is_store_by_content_not_extension(self, tmp_path):
        db = tmp_path / "anything.bin"
        ExperimentStore(db).close()
        assert is_store(db)
        log = tmp_path / "runlog.jsonl"
        log.write_text('{"record": "run"}\n')
        assert not is_store(log)
        assert not is_store(tmp_path / "absent")

    def test_open_readonly_refuses_to_create(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no such"):
            open_readonly(tmp_path / "absent.sqlite")


class TestRecordCell:
    def test_series_round_trip_bit_exact(self, tmp_path, executed_cell):
        cell, result, series = executed_cell
        store = make_store(tmp_path)
        cell_id = store.record_cell("deadbeef" * 8, cell, result,
                                    source="executed", elapsed=0.5,
                                    series=series)
        fetched = store.fetch_series(cell_id)
        assert [s.name for s in fetched] == sorted(s.name for s in series)
        by_name = {s.name: s for s in series}
        for item in fetched:
            original = by_name[item.name]
            assert item.columns == original.columns
            assert item.evicted == original.evicted
            # Bit-exact: blobs are raw float64, no text round trip.
            assert np.array_equal(item.data, original.data)

    def test_fetch_single_series_by_name(self, tmp_path, executed_cell):
        cell, result, series = executed_cell
        store = make_store(tmp_path)
        cell_id = store.record_cell("feed" * 16, cell, result,
                                    source="executed", series=series)
        only = store.fetch_series(cell_id, "tcp.cwnd")
        assert [s.name for s in only] == ["tcp.cwnd"]

    def test_find_cells_by_key_prefix(self, tmp_path, executed_cell):
        cell, result, _ = executed_cell
        store = make_store(tmp_path)
        store.record_cell("aabb" * 16, cell, result, source="executed")
        store.record_cell("ccdd" * 16, cell, result, source="cache")
        matches = store.find_cells("aabb")
        assert len(matches) == 1
        assert matches[0][1] == "aabb" * 16
        assert matches[0][2] == "fig06"
        assert matches[0][3] == "executed"

    def test_attack_cell_rows_carry_derived_gamma(self, tmp_path,
                                                  executed_cell):
        _, result, _ = executed_cell
        from repro.runner import Cell, PlatformSpec

        platform = PlatformSpec(kind="dumbbell", n_flows=2, seed=7)
        # Build the train against the platform's real bottleneck: the
        # stored gamma is Eq. 4 relative to the contested link the cell
        # actually runs on.
        bottleneck = platform.to_config().bottleneck_rate_bps
        attack = Cell(
            platform=platform, warmup=1.0, window=2.0,
            train=PulseTrain.from_gamma(
                gamma=0.5, rate_bps=mbps(30), extent=ms(100),
                bottleneck_bps=bottleneck, n_pulses=3),
        )
        store = make_store(tmp_path)
        store.record_cell("aa" * 32, attack, result, source="executed")
        names, rows = store.query(
            "SELECT gamma, extent, rate_bps, n_flows, seed FROM cells")
        gamma, extent, rate_bps, n_flows, seed = rows[0]
        # Eq. 4 over the spec's actual extents/period; from_gamma rounds
        # the period, so the derived gamma lands near the nominal 0.5.
        assert 0.4 < gamma < 0.6
        assert extent == pytest.approx(0.1)
        assert rate_bps == pytest.approx(mbps(30))
        assert (n_flows, seed) == (2, 7)

    def test_baseline_rows_leave_gamma_null(self, tmp_path, executed_cell):
        cell, result, _ = executed_cell  # no train
        store = make_store(tmp_path)
        store.record_cell("bb" * 32, cell, result, source="executed")
        assert store.query("SELECT gamma, extent FROM cells")[1] == [
            (None, None)]


class TestRunlogEquivalence:
    def test_store_records_match_runlog_records(self, tmp_path):
        # The equivalence contract: a store reconstructs byte-identical
        # runlog-shaped records, so `repro obs report` renders either
        # source the same.
        from repro.obs.runlog import RunLogWriter, read_run_log

        store = make_store(tmp_path)
        metrics = {"engine.events_dispatched": 1000.0,
                   "engine.wall_seconds": 0.5,
                   "note": "text payload", "flag": True}
        runner = {"cells": 3, "hit_ratio": 0.0}
        store.finish_experiment(elapsed_seconds=1.5, runner=runner,
                                metrics=metrics)
        record = {
            "record": "experiment", "name": "fig06", "timestamp": 101.0,
            "git_sha": "abc1234", "full": False, "store": str(store.path),
            "elapsed_seconds": 1.5, "runner": runner, "metrics": metrics,
        }
        log = tmp_path / "runlog.jsonl"
        RunLogWriter(log).write(record)
        assert store.experiment_records() == read_run_log(log)

    def test_run_accounting_persisted(self, tmp_path):
        store = make_store(tmp_path)
        store.finish_experiment(elapsed_seconds=1.0)
        store.finish_run(elapsed_seconds=2.5, runner={"cells": 4})
        names, rows = store.query(
            "SELECT name, git_sha, elapsed_seconds, runner FROM runs")
        assert rows == [("all", "abc1234", 2.5, '{"cells": 4}')]


class TestCannedQueries:
    def test_registry_names_resolve_to_methods(self, tmp_path):
        store = ExperimentStore(tmp_path / "s.sqlite")
        for name, (method, description) in CANNED_QUERIES.items():
            assert callable(getattr(store, method))
            assert description

    def test_gamma_star_peaks_at_best_mean_gain(self, tmp_path):
        store = make_store(tmp_path)
        for seed in (1, 2):  # baselines: gamma NULL
            insert_cell(store, key=f"base{seed}", seed=seed,
                        goodput_rate=1000.0)
        for seed in (1, 2):  # gain (1-0.6)*(1-0.4) = 0.24
            insert_cell(store, key=f"g40s{seed}", seed=seed, gamma=0.4,
                        extent=0.05, rate_bps=mbps(25), goodput_rate=600.0)
        for seed in (1, 2):  # gain (1-0.7)*(1-0.5) = 0.15
            insert_cell(store, key=f"g50s{seed}", seed=seed, gamma=0.5,
                        extent=0.05, rate_bps=mbps(25), goodput_rate=700.0)
        names, rows = store.gamma_star()
        assert len(rows) == 1
        row = dict(zip(names, rows[0]))
        assert row["experiment"] == "fig06"
        assert row["gamma_star"] == pytest.approx(0.4)
        assert row["gain"] == pytest.approx(0.24)
        assert row["gammas"] == 2
        assert row["cells"] == 4

    def test_gamma_star_ignores_fluid_cells(self, tmp_path):
        store = make_store(tmp_path)
        insert_cell(store, key="base", goodput_rate=1000.0)
        insert_cell(store, key="fluid", gamma=0.9, extent=0.05,
                    rate_bps=mbps(25), goodput_rate=100.0, backend="fluid")
        assert store.gamma_star()[1] == []

    def test_slowest_cells_orders_executed_by_elapsed(self, tmp_path):
        store = make_store(tmp_path)
        insert_cell(store, key="fast", elapsed=0.1)
        insert_cell(store, key="slow", elapsed=3.0)
        insert_cell(store, key="hit!", elapsed=9.0, source="cache")
        names, rows = store.slowest_cells(limit=5)
        assert [r[0] for r in rows] == ["slow", "fast"]

    def test_cache_hits_accounts_by_source(self, tmp_path):
        store = make_store(tmp_path)
        insert_cell(store, key="a", source="executed")
        insert_cell(store, key="b", source="cache")
        insert_cell(store, key="c", source="memo")
        names, rows = store.cache_hits()
        row = dict(zip(names, rows[0]))
        assert row["cells"] == 3
        assert row["executed"] == 1
        assert row["cache_hits"] == 1
        assert row["memo_hits"] == 1
        assert row["hit_ratio"] == pytest.approx(0.667)

    def test_drop_sync_flags_synchronized_loss_bins(self, tmp_path):
        store = make_store(tmp_path)
        cell_id = insert_cell(store, key="sync", n_flows=2)
        # Two loss bins; both legitimate flows lose in each -> the
        # paper's quasi-global synchronization signature (ratio 1.0).
        data = np.array([
            [0.05, 0.0, 0.0], [0.06, 1.0, 0.0],
            [1.05, 0.0, 0.0], [1.06, 1.0, 0.0],
            [1.07, 7.0, 1.0],  # attack drop: excluded
        ])
        store._db.execute(
            "INSERT INTO series (cell_id, name, columns, n_rows, evicted,"
            " rows) VALUES (?, ?, ?, ?, 0, ?)",
            (cell_id, "link.bottleneck.drops",
             json.dumps(["time", "flow_id", "is_attack"]), len(data),
             data.tobytes()))
        store._db.commit()
        names, rows = store.drop_sync(bin_width=0.1)
        row = dict(zip(names, rows[0]))
        assert row["cell"] == cell_id
        assert row["link_a"] == "bottleneck"
        assert row["drops"] == 4  # legitimate only
        assert row["loss_bins"] == 2
        assert row["sync_ratio"] == pytest.approx(1.0)

    def test_drop_sync_correlates_two_links(self, tmp_path):
        store = make_store(tmp_path)
        cell_id = insert_cell(store, key="twolinks", n_flows=2)
        drops = np.array([[0.05, 0.0, 0.0], [1.05, 1.0, 0.0]])
        for label in ("bottleneck", "bottleneck_reverse"):
            store._db.execute(
                "INSERT INTO series (cell_id, name, columns, n_rows,"
                " evicted, rows) VALUES (?, ?, ?, ?, 0, ?)",
                (cell_id, f"link.{label}.drops",
                 json.dumps(["time", "flow_id", "is_attack"]), len(drops),
                 drops.tobytes()))
        store._db.commit()
        names, rows = store.drop_sync(bin_width=0.1)
        pairs = [dict(zip(names, r)) for r in rows
                 if r[names.index("link_b")] is not None]
        assert len(pairs) == 1
        assert pairs[0]["correlation"] == pytest.approx(1.0)


class TestRawQuery:
    def test_query_returns_names_and_rows(self, tmp_path):
        store = make_store(tmp_path)
        insert_cell(store, key="abc")
        names, rows = store.query(
            "SELECT key, source FROM cells WHERE key = ?", ("abc",))
        assert names == ["key", "source"]
        assert rows == [("abc", "executed")]


class TestWorkerAttribution:
    def test_record_cell_persists_worker(self, tmp_path, executed_cell):
        cell, result, _ = executed_cell
        store = make_store(tmp_path)
        store.record_cell("aa" * 32, cell, result, source="executed",
                          elapsed=0.5, worker="hostA:4242")
        store.record_cell("bb" * 32, cell, result, source="cache")
        names, rows = store.query(
            "SELECT key, worker FROM cells ORDER BY key")
        assert rows == [("aa" * 32, "hostA:4242"), ("bb" * 32, None)]

    def test_slowest_cells_names_the_worker(self, tmp_path):
        store = make_store(tmp_path)
        insert_cell(store, key="slow", elapsed=3.0, worker="hostB:7")
        insert_cell(store, key="fast", elapsed=0.1)
        names, rows = store.slowest_cells(limit=5)
        assert "worker" in names
        by_key = {row[0]: dict(zip(names, row)) for row in rows}
        assert by_key["slow"]["worker"] == "hostB:7"
        assert by_key["fast"]["worker"] == "-"  # pre-fabric rows

    def test_workers_rollup_attributes_stragglers(self, tmp_path):
        store = make_store(tmp_path)
        insert_cell(store, key="a1", elapsed=1.0, worker="hostA:1")
        insert_cell(store, key="a2", elapsed=3.0, worker="hostA:1")
        insert_cell(store, key="b1", elapsed=0.5, worker="hostB:2")
        insert_cell(store, key="hit", source="cache", worker="hostB:2")
        names, rows = store.workers()
        table = [dict(zip(names, row)) for row in rows]
        # Busiest worker first; cache hits are not execution time.
        assert [t["worker"] for t in table] == ["hostA:1", "hostB:2"]
        assert table[0]["cells"] == 2
        assert table[0]["busy_s"] == pytest.approx(4.0)
        assert table[0]["mean_s"] == pytest.approx(2.0)
        assert table[0]["max_s"] == pytest.approx(3.0)
        assert table[1]["cells"] == 1

    def test_workers_is_a_canned_query(self):
        assert "workers" in CANNED_QUERIES

    def test_pre_worker_store_is_migrated(self, tmp_path):
        """Opening a store created before the worker column adds it."""
        path = tmp_path / "old.sqlite"
        store = make_store(tmp_path, name="old.sqlite")
        store.close()
        import sqlite3

        db = sqlite3.connect(str(path))
        db.execute("ALTER TABLE cells DROP COLUMN worker")
        db.commit()
        db.close()
        with ExperimentStore(path) as reopened:
            names, _ = reopened.query("SELECT * FROM cells LIMIT 0")
            assert "worker" in names
